/**
 * @file
 * `act` -- a command-line carbon calculator over the ACT model.
 *
 *   act list <devices|socs|storage|nodes|regions|sources>
 *   act cpa <node_nm> [options]           Eq. 5 carbon per area
 *   act logic <area_mm2> <node_nm> [options]   Eq. 4 die footprint
 *   act storage <technology> <gigabytes>       Eq. 6-8 footprint
 *   act device <name> [options]           Eq. 3 over a device BOM
 *   act soc <name> [options]              mobile platform summary
 *   act footprint --energy-kwh E [--ci-use g] --embodied-g C
 *                 --time-years T --lifetime-years LT    Eq. 1
 *   act sweep --list-domains              table of runnable domains
 *   act sweep --plan <plan.json> [--shards N --shard-index i]
 *             [--out <file>]     run a serialized sweep (or one shard)
 *   act merge <partial.json...> [--out <file>]   recombine shards
 *   act status <dir>                       fleet view over heartbeats
 *   act trace-merge <out> <traces...>      one Perfetto timeline
 *
 * Fab options: --fab-ci <g/kWh>  --yield <y>  --abatement <a>
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "config/json.h"
#include "obs/heartbeat.h"
#include "obs/metrics_doc.h"
#include "obs/trace_merge.h"
#include "core/embodied.h"
#include "core/footprint.h"
#include "core/lifecycle.h"
#include "core/metrics.h"
#include "core/operational.h"
#include "data/device_json.h"
#include "data/soc_db.h"
#include "mobile/platform.h"
#include "sweep/domains.h"
#include "sweep/engine.h"
#include "sweep/plan.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/trace.h"

namespace {

using namespace act;

void
printUsage()
{
    std::cout <<
        "usage: act <command> [arguments] [fab options]\n"
        "\n"
        "commands:\n"
        "  list <devices|socs|storage|nodes|regions|sources>\n"
        "  cpa <node_nm>                  carbon per cm2 (Eq. 5)\n"
        "  logic <area_mm2> <node_nm>     die embodied carbon (Eq. 4)\n"
        "  storage <technology> <GB>      memory/storage carbon "
        "(Eq. 6-8)\n"
        "  device <name>                  device BOM footprint (Eq. 3)\n"
        "  device-file <path.json>        user-defined device footprint\n"
        "  lifecycle <name|path.json>     four-phase product estimate\n"
        "  soc <name>                     mobile platform summary\n"
        "  footprint --energy-kwh E [--ci-use g] --embodied-g C\n"
        "            --time-years T --lifetime-years LT   (Eq. 1)\n"
        "  sweep --list-domains           table of runnable domains\n"
        "  sweep --plan <plan.json> [--out <file>]\n"
        "        [--shards N --shard-index i]  run a serialized sweep;\n"
        "        with a shard spec, write one partial-result file\n"
        "        (plus a .heartbeat.json sidecar; ACT_HEARTBEAT=0\n"
        "        disables, ACT_HEARTBEAT_SECS sets the interval)\n"
        "  merge <partial.json...> [--out <file>]  recombine shard\n"
        "        partials into the single-process result document\n"
        "        [--metrics-out <file>]  write the aggregated\n"
        "        act.metrics.v1 document merged from the partials\n"
        "        [--metrics-prom <file>]  same, Prometheus text format\n"
        "  status <dir> [--stale-secs S] [--watch <secs>]  render a\n"
        "        fleet table from the heartbeat sidecars in <dir>\n"
        "  trace-merge <out> <trace.json...>  align per-process traces\n"
        "        on the wall clock into one Perfetto-loadable file\n"
        "\n"
        "fab options (for cpa/logic/device/soc):\n"
        "  --fab-ci <g/kWh>   fab carbon intensity "
        "(default: Taiwan grid + 25% solar)\n"
        "  --yield <y>        fab yield in (0, 1] (default 0.875)\n"
        "  --abatement <a>    gas abatement in [0.90, 1.0] "
        "(default 0.97)\n"
        "\n"
        "observability (any command):\n"
        "  --metrics          print the metrics-registry table after "
        "the command\n"
        "  --trace <file>     write a Chrome trace-event JSON profile "
        "(Perfetto)\n"
        "  --prom <file>      write this process's metrics snapshot "
        "in the\n"
        "                     Prometheus text format (implies "
        "--metrics;\n"
        "                     env: ACT_METRICS_PROM)\n";
}

/** Flags that stand alone instead of taking a value. */
constexpr std::string_view kBooleanFlags[] = {
    "list-domains",
};

bool
isBooleanFlag(std::string_view name)
{
    for (const std::string_view flag : kBooleanFlags) {
        if (flag == name)
            return true;
    }
    return false;
}

/** Simple flag map over argv[from..). */
class Args
{
  public:
    Args(int argc, char **argv, int from)
    {
        for (int i = from; i < argc; ++i) {
            const std::string arg = argv[i];
            if (util::startsWith(arg, "--")) {
                const std::string name = arg.substr(2);
                if (isBooleanFlag(name)) {
                    flags_.emplace_back(name, "true");
                    continue;
                }
                if (i + 1 >= argc)
                    util::fatal("flag ", arg, " needs a value");
                flags_.emplace_back(name, argv[++i]);
            } else {
                positional_.push_back(arg);
            }
        }
    }

    const std::vector<std::string> &positional() const
    { return positional_; }

    double
    numberOr(const std::string &name, double fallback) const
    {
        for (const auto &[key, value] : flags_) {
            if (key == name) {
                try {
                    return std::stod(value);
                } catch (const std::logic_error &) {
                    util::fatal("flag --", name,
                                " expects a number, got '", value, "'");
                }
            }
        }
        return fallback;
    }

    std::string
    stringOr(const std::string &name, const std::string &fallback) const
    {
        for (const auto &[key, value] : flags_) {
            if (key == name)
                return value;
        }
        return fallback;
    }

    bool
    has(const std::string &name) const
    {
        for (const auto &[key, value] : flags_) {
            if (key == name)
                return true;
        }
        return false;
    }

  private:
    std::vector<std::pair<std::string, std::string>> flags_;
    std::vector<std::string> positional_;
};

core::FabParams
fabFromArgs(const Args &args)
{
    core::FabParams fab;
    if (args.has("fab-ci")) {
        fab.ci_fab = util::gramsPerKilowattHour(
            args.numberOr("fab-ci", fab.ci_fab.value()));
    }
    fab.yield = args.numberOr("yield", fab.yield);
    fab.abatement = args.numberOr("abatement", fab.abatement);
    return fab;
}

int
cmdList(const std::string &what)
{
    if (what == "devices") {
        for (const auto &device :
             data::DeviceDatabase::instance().records()) {
            std::cout << device.name << " (" << device.release_year
                      << ", " << device.ics.size() << " BOM entries)\n";
        }
    } else if (what == "socs") {
        for (const auto &soc : data::SocDatabase::instance().records()) {
            std::cout << soc.name << " (" << soc.release_year << ", "
                      << soc.node_nm << " nm, "
                      << util::asSquareMillimeters(soc.die_area)
                      << " mm2)\n";
        }
    } else if (what == "storage") {
        for (data::StorageClass cls :
             {data::StorageClass::Dram, data::StorageClass::Ssd,
              data::StorageClass::Hdd}) {
            for (const auto &record : data::storageTable(cls)) {
                std::cout << record.name << " ("
                          << record.cps.value() << " g CO2/GB)\n";
            }
        }
    } else if (what == "nodes") {
        for (const auto &record :
             data::FabDatabase::instance().records()) {
            std::cout << record.name << " (EPA "
                      << record.epa.value() << " kWh/cm2)\n";
        }
    } else if (what == "regions") {
        for (const auto &record : data::regionTable()) {
            std::cout << record.name << " ("
                      << record.intensity.value() << " g CO2/kWh)\n";
        }
    } else if (what == "sources") {
        for (const auto &record : data::energySourceTable()) {
            std::cout << record.name << " ("
                      << record.intensity.value() << " g CO2/kWh)\n";
        }
    } else {
        util::fatal("unknown list target '", what, "'");
    }
    return 0;
}

int
cmdCpa(const Args &args)
{
    if (args.positional().empty())
        util::fatal("cpa needs a node in nm");
    const double nm = std::stod(args.positional()[0]);
    const core::FabParams fab = fabFromArgs(args);
    const auto cpa = core::carbonPerArea(fab, nm);
    std::cout << "CPA(" << nm << " nm) = "
              << util::formatSig(cpa.value(), 4) << " g CO2/cm2 "
              << "(CI_fab " << util::formatSig(fab.ci_fab.value(), 4)
              << " g/kWh, yield " << fab.yield << ", abatement "
              << fab.abatement << ")\n";
    return 0;
}

int
cmdLogic(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("logic needs <area_mm2> <node_nm>");
    const double mm2 = std::stod(args.positional()[0]);
    const double nm = std::stod(args.positional()[1]);
    const core::FabParams fab = fabFromArgs(args);
    const auto mass = core::logicEmbodied(
        util::squareMillimeters(mm2), nm, fab);
    std::cout << mm2 << " mm2 @ " << nm << " nm -> "
              << util::formatSig(util::asGrams(mass), 4) << " g CO2 ("
              << util::formatSig(util::asKilograms(mass), 3)
              << " kg)\n";
    return 0;
}

int
cmdStorage(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("storage needs <technology> <gigabytes>");
    const std::string technology = args.positional()[0];
    const double gb = std::stod(args.positional()[1]);
    const auto mass = core::storageEmbodied(
        util::gigabytes(gb), technology);
    std::cout << gb << " GB of " << technology << " -> "
              << util::formatSig(util::asGrams(mass), 4) << " g CO2\n";
    return 0;
}

int
printDeviceFootprint(const data::DeviceRecord &device, const Args &args)
{
    if (device.ics.empty()) {
        util::fatal("'", device.name,
                    "' has no modeled BOM (pre-28 nm era)");
    }
    const core::EmbodiedModel model(fabFromArgs(args));
    const auto footprint = model.evaluate(device);

    util::Table table({"IC", "kg CO2"});
    for (const auto &component : footprint.components)
        table.addRow(component.name,
                     {util::asKilograms(component.embodied)});
    table.addSeparator();
    table.addRow("packaging (Nr = " +
                     std::to_string(footprint.package_count) + ")",
                 {util::asKilograms(footprint.packaging)});
    table.addRow("TOTAL", {util::asKilograms(footprint.total())});
    std::cout << device.name << " embodied IC footprint:\n"
              << table.render();
    return 0;
}

int
cmdDevice(const Args &args)
{
    if (args.positional().empty())
        util::fatal("device needs a name (see 'act list devices')");
    return printDeviceFootprint(
        data::DeviceDatabase::instance().byNameOrDie(
            args.positional()[0]),
        args);
}

int
cmdDeviceFile(const Args &args)
{
    if (args.positional().empty())
        util::fatal("device-file needs a JSON path");
    return printDeviceFootprint(
        data::loadDeviceFile(args.positional()[0]), args);
}

int
cmdLifecycle(const Args &args)
{
    if (args.positional().empty())
        util::fatal("lifecycle needs a device name or JSON path");
    const std::string target = args.positional()[0];
    const auto named =
        data::DeviceDatabase::instance().findByName(target);
    const data::DeviceRecord device =
        named ? *named : data::loadDeviceFile(target);
    const auto estimate =
        core::estimateLifecycle(device, fabFromArgs(args));

    util::Table table({"Phase", "kg CO2"});
    table.addRow("IC manufacturing (ACT bottom-up)",
                 {util::asKilograms(estimate.ic_manufacturing)});
    table.addRow("other manufacturing",
                 {util::asKilograms(estimate.other_manufacturing)});
    table.addRow("transport", {util::asKilograms(estimate.transport)});
    table.addRow("use", {util::asKilograms(estimate.use)});
    table.addRow("end of life",
                 {util::asKilograms(estimate.end_of_life)});
    table.addSeparator();
    table.addRow("TOTAL", {util::asKilograms(estimate.total())});
    std::cout << device.name << " life-cycle estimate:\n"
              << table.render();
    std::cout << "manufacturing share: "
              << util::formatFixed(
                     estimate.manufacturingShare() * 100.0, 1)
              << "%\n";
    return 0;
}

int
cmdSoc(const Args &args)
{
    if (args.positional().empty())
        util::fatal("soc needs a name (see 'act list socs')");
    const auto soc = data::SocDatabase::instance().byNameOrDie(
        args.positional()[0]);
    const core::FabParams fab = fabFromArgs(args);
    const auto embodied = mobile::platformEmbodied(soc, fab);
    const auto point = mobile::designPoint(soc, fab);

    util::Table table({"Quantity", "Value"});
    table.addRow({"process node",
                  util::formatSig(soc.node_nm, 3) + " nm"});
    table.addRow({"die area",
                  util::formatSig(
                      util::asSquareMillimeters(soc.die_area), 4) +
                      " mm2"});
    table.addRow({"aggregate score",
                  util::formatSig(soc.aggregateScore(), 4)});
    table.addRow({"TDP", util::formatSig(util::asWatts(soc.tdp), 3) +
                             " W"});
    table.addRow({"SoC embodied",
                  util::formatSig(util::asGrams(embodied.soc), 4) +
                      " g CO2"});
    table.addRow({"DRAM embodied",
                  util::formatSig(util::asGrams(embodied.dram), 4) +
                      " g CO2"});
    table.addRow({"platform embodied",
                  util::formatSig(util::asKilograms(
                      embodied.total()), 3) + " kg CO2"});
    table.addRow({"reference energy",
                  util::formatSig(util::asJoules(point.energy), 4) +
                      " J"});
    std::cout << soc.name << ":\n" << table.render();
    return 0;
}

int
cmdFootprint(const Args &args)
{
    if (!args.has("energy-kwh") || !args.has("embodied-g") ||
        !args.has("time-years") || !args.has("lifetime-years")) {
        util::fatal("footprint needs --energy-kwh, --embodied-g, "
                    "--time-years, --lifetime-years");
    }
    const auto use = core::OperationalParams::withIntensity(
        util::gramsPerKilowattHour(args.numberOr(
            "ci-use", data::defaultUseIntensity().value())));
    const auto opcf = core::operationalFootprint(
        util::kilowattHours(args.numberOr("energy-kwh", 0.0)), use);
    const auto cf = core::combineFootprint(
        opcf, util::grams(args.numberOr("embodied-g", 0.0)),
        util::years(args.numberOr("time-years", 0.0)),
        util::years(args.numberOr("lifetime-years", 1.0)));
    std::cout << "OPCF = " << util::formatSig(util::asGrams(opcf), 4)
              << " g, embodied allocated = "
              << util::formatSig(
                     util::asGrams(cf.embodied_allocated), 4)
              << " g, CF = "
              << util::formatSig(util::asGrams(cf.total()), 4)
              << " g CO2 (embodied share "
              << util::formatFixed(cf.embodiedShare() * 100.0, 1)
              << "%)\n";
    return 0;
}

std::size_t
countOr(const Args &args, const std::string &name, std::size_t fallback)
{
    const double value =
        args.numberOr(name, static_cast<double>(fallback));
    if (value < 0.0 || value != static_cast<double>(
                                    static_cast<std::size_t>(value)))
        util::fatal("flag --", name,
                    " expects a non-negative integer, got ", value);
    return static_cast<std::size_t>(value);
}

int
cmdSweep(const Args &args)
{
    if (args.has("list-domains")) {
        util::Table table({"Domain", "Description"});
        for (const sweep::Domain &domain : sweep::allDomains())
            table.addRow({std::string(domain.name),
                          std::string(domain.description)});
        std::cout << table.render();
        return 0;
    }
    if (!args.has("plan"))
        util::fatal("sweep needs --plan <plan.json> (or "
                    "--list-domains to see what can run)");
    const std::string plan_path = args.stringOr("plan", "");
    sweep::SweepPlan plan =
        sweep::sweepPlanFromJson(config::loadJsonFile(plan_path));
    const sweep::Domain &domain = sweep::findDomain(plan.domain);
    domain.prepare(plan);
    const std::string out = args.stringOr("out", "");

    if (!args.has("shards") && !args.has("shard-index")) {
        const config::JsonValue doc =
            sweep::fullSweepResult(plan, domain.evaluator(plan));
        if (!out.empty())
            config::saveJsonFile(out, doc);
        std::cout << domain.summarize(
                         plan, doc.at("results").asArray())
                  << "\n";
        return 0;
    }

    sweep::ShardSpec shard;
    shard.shard_count = countOr(args, "shards", 1);
    shard.shard_index = countOr(args, "shard-index", 0);
    if (out.empty())
        util::fatal("a sharded sweep needs --out <partial.json>");

    sweep::ShardRunOptions options;
    if (util::envBool("ACT_HEARTBEAT", true))
        options.heartbeat_path = obs::heartbeatPathFor(out);
    options.heartbeat_interval_s = static_cast<double>(
        util::envInt("ACT_HEARTBEAT_SECS", 1, 0, 3600));

    sweep::ShardResult partial =
        sweep::runShardedSweep(plan, shard, domain.evaluator(plan),
                               options);
    // Telemetry rides along in the partial (and only there): the
    // merged result document is byte-identical either way.
    if (util::metricsEnabled()) {
        partial.metrics = obs::metricsToJson(
            util::MetricsRegistry::instance().snapshot());
    }
    config::saveJsonFile(out, sweep::toJson(partial));
    std::cout << "shard " << shard.shard_index << "/"
              << shard.shard_count << " of '" << plan.domain
              << "': chunks [" << partial.chunk_begin << ", "
              << partial.chunk_begin + partial.chunks.size()
              << ") -> " << out << "\n";
    return 0;
}

int
cmdMerge(const Args &args)
{
    if (args.positional().empty())
        util::fatal("merge needs at least one partial-result file");
    std::vector<sweep::ShardResult> partials;
    partials.reserve(args.positional().size());
    for (const std::string &path : args.positional())
        partials.push_back(
            sweep::shardResultFromJson(config::loadJsonFile(path)));
    const config::JsonValue merged = sweep::mergeShards(partials);
    const std::string out = args.stringOr("out", "");
    if (!out.empty())
        config::saveJsonFile(out, merged);

    // Aggregate whatever telemetry the partials carried (absent
    // sections are fine -- shards may mix metrics on and off).
    std::vector<config::JsonValue> metric_docs;
    for (const sweep::ShardResult &partial : partials) {
        if (!partial.metrics.isNull())
            metric_docs.push_back(
                obs::validateMetricsDoc(partial.metrics));
    }
    const std::string metrics_out = args.stringOr("metrics-out", "");
    const std::string metrics_prom = args.stringOr("metrics-prom", "");
    if (!metric_docs.empty() || !metrics_out.empty() ||
        !metrics_prom.empty()) {
        const config::JsonValue aggregated =
            obs::mergeMetricsDocs(metric_docs);
        if (!metrics_out.empty())
            config::saveJsonFile(metrics_out, aggregated);
        if (!metrics_prom.empty()) {
            std::ofstream prom(metrics_prom, std::ios::trunc);
            if (!prom)
                util::fatal("cannot write '", metrics_prom, "'");
            prom << obs::renderPrometheus(aggregated);
        }
        if (!metric_docs.empty()) {
            std::cout << "--- merged metrics (" << metric_docs.size()
                      << " of " << partials.size() << " shards) ---\n"
                      << obs::renderMetricsDocTable(aggregated);
        }
    }

    const sweep::SweepPlan &plan = partials.front().plan;
    std::cout << sweep::findDomain(plan.domain)
                     .summarize(plan, merged.at("results").asArray())
              << "\n";
    return 0;
}

int
cmdStatus(const Args &args)
{
    const std::string directory = args.positional().empty()
                                      ? std::string(".")
                                      : args.positional()[0];
    const double stale_secs = args.numberOr("stale-secs", 15.0);
    const double watch_secs = args.numberOr("watch", 0.0);

    for (;;) {
        const auto heartbeats = obs::loadHeartbeatDirectory(directory);
        if (heartbeats.empty()) {
            std::cout << "no " << obs::kHeartbeatSuffix << " files in '"
                      << directory << "'\n";
        } else {
            std::cout << obs::renderFleetTable(
                heartbeats, obs::wallClockSeconds(), stale_secs);
        }
        if (watch_secs <= 0.0)
            break;
        std::cout.flush();
        std::this_thread::sleep_for(
            std::chrono::duration<double>(watch_secs));
        std::cout << "\n";
    }
    return 0;
}

int
cmdTraceMerge(const Args &args)
{
    if (args.positional().size() < 2)
        util::fatal("trace-merge needs <out> and at least one trace "
                    "file");
    const std::string out = args.positional()[0];
    const std::vector<std::string> inputs(
        args.positional().begin() + 1, args.positional().end());
    obs::mergeTraceFiles(out, inputs);
    std::cout << "merged " << inputs.size() << " trace"
              << (inputs.size() == 1 ? "" : "s") << " -> " << out
              << "\n";
    return 0;
}

int
runCommand(const std::string &command, const Args &args)
{
    TRACE_SPAN("cli", command);
    if (command == "list") {
        if (args.positional().empty())
            act::util::fatal("list needs a target");
        return cmdList(args.positional()[0]);
    }
    if (command == "cpa")
        return cmdCpa(args);
    if (command == "logic")
        return cmdLogic(args);
    if (command == "storage")
        return cmdStorage(args);
    if (command == "device")
        return cmdDevice(args);
    if (command == "device-file")
        return cmdDeviceFile(args);
    if (command == "lifecycle")
        return cmdLifecycle(args);
    if (command == "soc")
        return cmdSoc(args);
    if (command == "footprint")
        return cmdFootprint(args);
    if (command == "sweep")
        return cmdSweep(args);
    if (command == "merge")
        return cmdMerge(args);
    if (command == "status")
        return cmdStatus(args);
    if (command == "trace-merge")
        return cmdTraceMerge(args);

    act::util::fatal("unknown command '", command,
                     "' (try 'act --help')");
}

} // namespace

int
main(int argc, char **argv)
{
    // Peel the observability flags off before command parsing so they
    // work uniformly with every command (and mirror ACT_METRICS /
    // ACT_TRACE / ACT_METRICS_PROM).
    std::string prom_path =
        act::util::envString("ACT_METRICS_PROM", "");
    std::vector<char *> arguments;
    arguments.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0) {
            act::util::setMetricsEnabled(true);
            continue;
        }
        if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                act::util::fatal("--trace needs a file path");
            act::util::setTraceFile(argv[++i]);
            continue;
        }
        if (std::strcmp(argv[i], "--prom") == 0) {
            if (i + 1 >= argc)
                act::util::fatal("--prom needs a file path");
            prom_path = argv[++i];
            continue;
        }
        arguments.push_back(argv[i]);
    }
    if (!prom_path.empty())
        act::util::setMetricsEnabled(true);
    argc = static_cast<int>(arguments.size());
    argv = arguments.data();

    if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "help") == 0) {
        printUsage();
        return argc < 2 ? 1 : 0;
    }

    const std::string command = argv[1];
    const Args args(argc, argv, 2);
    const int status = runCommand(command, args);

    if (!prom_path.empty()) {
        std::ofstream prom(prom_path, std::ios::trunc);
        if (!prom) {
            act::util::warn("cannot write Prometheus snapshot to '",
                            prom_path, "'");
        } else {
            prom << act::obs::renderPrometheus(act::obs::metricsToJson(
                act::util::MetricsRegistry::instance().snapshot()));
        }
    }
    if (act::util::metricsEnabled()) {
        std::cout << "\n--- metrics ---\n"
                  << act::util::MetricsRegistry::instance()
                         .renderTable();
    }
    act::util::flushTrace();
    return status;
}
