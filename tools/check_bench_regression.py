#!/usr/bin/env python3
"""Compare a perf_microbench BENCH_results.json against the checked-in
baseline and fail on large regressions of the tracked benchmarks.

Raw nanosecond numbers are not comparable across machines, so the
comparison is *calibrated*: both files must contain a calibration
benchmark (default BM_CpaUncached, a pure-arithmetic kernel with no
caching or threading effects), and every baseline time is rescaled by
the calibration ratio before comparing. A tracked benchmark fails only
when its calibrated CPU time exceeds the baseline by more than the
tolerance factor (default 1.25, i.e. >25% slower).

Large *improvements* are reported too: a tracked benchmark running
faster than 1/tolerance of the calibrated baseline (>25% faster by
default) prints a "baseline stale -- refresh" notice. That still exits
0 -- speedups never break CI -- but it is the cue to re-run with
--update-baseline, which rewrites the baseline file from the results
file so future comparisons measure against the new floor.

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

DEFAULT_CALIBRATE = "BM_CpaUncached"
DEFAULT_CHECKS = ["BM_CpaCached", "BM_MonteCarloBatch"]


def load_document(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")


def load_times(document, path):
    """Map benchmark name -> CPU ns/iteration from a results document."""
    times = {}
    for entry in document.get("benchmarks", []):
        name = entry.get("name")
        cpu = entry.get("cpu_time_ns")
        if isinstance(name, str) and isinstance(cpu, (int, float)):
            times[name] = float(cpu)
    if not times:
        raise SystemExit(f"error: no benchmark entries in {path}")
    return times


PROVENANCE_KEYS = ("git_sha", "simd_level", "act_threads", "hostname")


def warn_provenance_mismatch(baseline_doc, results_doc):
    """Warn (never fail) when the two runs' provenance stamps differ.

    The calibration benchmark absorbs uniform machine-speed deltas but
    not, e.g., a different SIMD dispatch level or thread setting -- a
    mismatch means the comparison is weaker than it looks.
    """
    baseline = baseline_doc.get("provenance")
    results = results_doc.get("provenance")
    if not isinstance(baseline, dict) or not isinstance(results, dict):
        return
    for key in PROVENANCE_KEYS:
        old, new = baseline.get(key), results.get(key)
        if old is not None and new is not None and old != new:
            print(f"warning: provenance mismatch on '{key}': baseline "
                  f"ran with {old!r}, results with {new!r} -- "
                  "calibrated comparison may be unreliable",
                  file=sys.stderr)


def require(times, name, path):
    if name not in times:
        raise SystemExit(f"error: benchmark '{name}' missing from {path}")
    if times[name] <= 0.0:
        raise SystemExit(f"error: benchmark '{name}' in {path} has a "
                         "non-positive CPU time")
    return times[name]


def update_baseline(baseline_path, results_path):
    """Rewrite the baseline file from a fresh results file."""
    document = load_document(results_path)
    entries = [entry for entry in document.get("benchmarks", [])
               if isinstance(entry.get("name"), str)]
    if not entries:
        raise SystemExit(
            f"error: no benchmark entries in {results_path}")
    entries.sort(key=lambda entry: entry["name"])
    baseline = {"benchmarks": entries}
    if isinstance(document.get("provenance"), dict):
        baseline["provenance"] = document["provenance"]
    try:
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        raise SystemExit(
            f"error: cannot write {baseline_path}: {error}")
    print(f"updated {baseline_path} from {results_path} "
          f"({len(entries)} benchmarks)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_baseline.json")
    parser.add_argument("--results", required=True,
                        help="freshly produced BENCH_results.json")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="fail when calibrated time exceeds "
                        "baseline by this factor (default 1.25)")
    parser.add_argument("--calibrate", default=DEFAULT_CALIBRATE,
                        help="benchmark used to rescale for machine "
                        f"speed (default {DEFAULT_CALIBRATE})")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="benchmark to compare (repeatable; "
                        f"default {' '.join(DEFAULT_CHECKS)})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file from the "
                        "results file instead of comparing")
    args = parser.parse_args()
    checks = args.check if args.check else DEFAULT_CHECKS
    if args.tolerance <= 0.0:
        raise SystemExit("error: tolerance must be positive")

    if args.update_baseline:
        return update_baseline(args.baseline, args.results)

    baseline_doc = load_document(args.baseline)
    results_doc = load_document(args.results)
    warn_provenance_mismatch(baseline_doc, results_doc)
    baseline = load_times(baseline_doc, args.baseline)
    results = load_times(results_doc, args.results)

    scale = (require(results, args.calibrate, args.results) /
             require(baseline, args.calibrate, args.baseline))
    print(f"calibration ({args.calibrate}): this machine runs "
          f"{scale:.3f}x the baseline machine's time")

    failed = []
    stale = []
    for name in checks:
        expected = require(baseline, name, args.baseline) * scale
        actual = require(results, name, args.results)
        ratio = actual / expected
        if ratio > args.tolerance:
            verdict = "REGRESSION"
            failed.append(name)
        elif ratio < 1.0 / args.tolerance:
            verdict = "improved"
            stale.append(name)
        else:
            verdict = "ok"
        print(f"  {name}: {actual:.1f} ns vs calibrated baseline "
              f"{expected:.1f} ns ({ratio:.3f}x) -- {verdict}")

    if failed:
        print(f"FAIL: {', '.join(failed)} slower than "
              f"{args.tolerance:.2f}x the calibrated baseline")
        return 1
    if stale:
        print(f"NOTICE: {', '.join(stale)} more than "
              f"{args.tolerance:.2f}x faster than the calibrated "
              "baseline -- baseline stale, refresh it with "
              "--update-baseline")
    print(f"PASS: all {len(checks)} tracked benchmarks within "
          f"{args.tolerance:.2f}x of the calibrated baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
