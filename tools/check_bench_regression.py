#!/usr/bin/env python3
"""Compare a perf_microbench BENCH_results.json against the checked-in
baseline and fail on large regressions of the tracked benchmarks.

Raw nanosecond numbers are not comparable across machines, so the
comparison is *calibrated*: both files must contain a calibration
benchmark (default BM_CpaUncached, a pure-arithmetic kernel with no
caching or threading effects), and every baseline time is rescaled by
the calibration ratio before comparing. A tracked benchmark fails only
when its calibrated CPU time exceeds the baseline by more than the
tolerance factor (default 1.25, i.e. >25% slower).

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys

DEFAULT_CALIBRATE = "BM_CpaUncached"
DEFAULT_CHECKS = ["BM_CpaCached", "BM_MonteCarloBatch"]


def load_times(path):
    """Map benchmark name -> CPU ns/iteration from a results file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: cannot read {path}: {error}")
    times = {}
    for entry in document.get("benchmarks", []):
        name = entry.get("name")
        cpu = entry.get("cpu_time_ns")
        if isinstance(name, str) and isinstance(cpu, (int, float)):
            times[name] = float(cpu)
    if not times:
        raise SystemExit(f"error: no benchmark entries in {path}")
    return times


def require(times, name, path):
    if name not in times:
        raise SystemExit(f"error: benchmark '{name}' missing from {path}")
    if times[name] <= 0.0:
        raise SystemExit(f"error: benchmark '{name}' in {path} has a "
                         "non-positive CPU time")
    return times[name]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_baseline.json")
    parser.add_argument("--results", required=True,
                        help="freshly produced BENCH_results.json")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="fail when calibrated time exceeds "
                        "baseline by this factor (default 1.25)")
    parser.add_argument("--calibrate", default=DEFAULT_CALIBRATE,
                        help="benchmark used to rescale for machine "
                        f"speed (default {DEFAULT_CALIBRATE})")
    parser.add_argument("--check", action="append", default=None,
                        metavar="NAME",
                        help="benchmark to compare (repeatable; "
                        f"default {' '.join(DEFAULT_CHECKS)})")
    args = parser.parse_args()
    checks = args.check if args.check else DEFAULT_CHECKS
    if args.tolerance <= 0.0:
        raise SystemExit("error: tolerance must be positive")

    baseline = load_times(args.baseline)
    results = load_times(args.results)

    scale = (require(results, args.calibrate, args.results) /
             require(baseline, args.calibrate, args.baseline))
    print(f"calibration ({args.calibrate}): this machine runs "
          f"{scale:.3f}x the baseline machine's time")

    failed = []
    for name in checks:
        expected = require(baseline, name, args.baseline) * scale
        actual = require(results, name, args.results)
        ratio = actual / expected
        verdict = "ok" if ratio <= args.tolerance else "REGRESSION"
        print(f"  {name}: {actual:.1f} ns vs calibrated baseline "
              f"{expected:.1f} ns ({ratio:.3f}x) -- {verdict}")
        if ratio > args.tolerance:
            failed.append(name)

    if failed:
        print(f"FAIL: {', '.join(failed)} slower than "
              f"{args.tolerance:.2f}x the calibrated baseline")
        return 1
    print(f"PASS: all {len(checks)} tracked benchmarks within "
          f"{args.tolerance:.2f}x of the calibrated baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
