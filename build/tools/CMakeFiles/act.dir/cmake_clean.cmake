file(REMOVE_RECURSE
  "CMakeFiles/act.dir/act_cli.cc.o"
  "CMakeFiles/act.dir/act_cli.cc.o.d"
  "act"
  "act.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
