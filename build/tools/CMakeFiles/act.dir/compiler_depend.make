# Empty compiler generated dependencies file for act.
# This may be replaced when dependencies are built.
