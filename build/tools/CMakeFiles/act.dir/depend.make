# Empty dependencies file for act.
# This may be replaced when dependencies are built.
