# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("config")
subdirs("data")
subdirs("core")
subdirs("dse")
subdirs("mobile")
subdirs("accel")
subdirs("ssd")
subdirs("report")
subdirs("server")
