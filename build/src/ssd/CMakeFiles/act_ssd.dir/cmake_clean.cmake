file(REMOVE_RECURSE
  "CMakeFiles/act_ssd.dir/ftl_sim.cc.o"
  "CMakeFiles/act_ssd.dir/ftl_sim.cc.o.d"
  "CMakeFiles/act_ssd.dir/lifetime.cc.o"
  "CMakeFiles/act_ssd.dir/lifetime.cc.o.d"
  "CMakeFiles/act_ssd.dir/wa_model.cc.o"
  "CMakeFiles/act_ssd.dir/wa_model.cc.o.d"
  "libact_ssd.a"
  "libact_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
