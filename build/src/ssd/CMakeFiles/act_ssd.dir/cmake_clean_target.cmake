file(REMOVE_RECURSE
  "libact_ssd.a"
)
