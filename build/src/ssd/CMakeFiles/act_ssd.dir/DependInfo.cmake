
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/ftl_sim.cc" "src/ssd/CMakeFiles/act_ssd.dir/ftl_sim.cc.o" "gcc" "src/ssd/CMakeFiles/act_ssd.dir/ftl_sim.cc.o.d"
  "/root/repo/src/ssd/lifetime.cc" "src/ssd/CMakeFiles/act_ssd.dir/lifetime.cc.o" "gcc" "src/ssd/CMakeFiles/act_ssd.dir/lifetime.cc.o.d"
  "/root/repo/src/ssd/wa_model.cc" "src/ssd/CMakeFiles/act_ssd.dir/wa_model.cc.o" "gcc" "src/ssd/CMakeFiles/act_ssd.dir/wa_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/act_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
