# Empty compiler generated dependencies file for act_ssd.
# This may be replaced when dependencies are built.
