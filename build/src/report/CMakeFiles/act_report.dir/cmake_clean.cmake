file(REMOVE_RECURSE
  "CMakeFiles/act_report.dir/experiment.cc.o"
  "CMakeFiles/act_report.dir/experiment.cc.o.d"
  "libact_report.a"
  "libact_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
