# Empty dependencies file for act_report.
# This may be replaced when dependencies are built.
