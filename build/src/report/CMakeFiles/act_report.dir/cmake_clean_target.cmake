file(REMOVE_RECURSE
  "libact_report.a"
)
