file(REMOVE_RECURSE
  "libact_util.a"
)
