file(REMOVE_RECURSE
  "CMakeFiles/act_util.dir/chart.cc.o"
  "CMakeFiles/act_util.dir/chart.cc.o.d"
  "CMakeFiles/act_util.dir/csv.cc.o"
  "CMakeFiles/act_util.dir/csv.cc.o.d"
  "CMakeFiles/act_util.dir/interp.cc.o"
  "CMakeFiles/act_util.dir/interp.cc.o.d"
  "CMakeFiles/act_util.dir/logging.cc.o"
  "CMakeFiles/act_util.dir/logging.cc.o.d"
  "CMakeFiles/act_util.dir/random.cc.o"
  "CMakeFiles/act_util.dir/random.cc.o.d"
  "CMakeFiles/act_util.dir/stats.cc.o"
  "CMakeFiles/act_util.dir/stats.cc.o.d"
  "CMakeFiles/act_util.dir/strings.cc.o"
  "CMakeFiles/act_util.dir/strings.cc.o.d"
  "CMakeFiles/act_util.dir/table.cc.o"
  "CMakeFiles/act_util.dir/table.cc.o.d"
  "libact_util.a"
  "libact_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
