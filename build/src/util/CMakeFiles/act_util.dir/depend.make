# Empty dependencies file for act_util.
# This may be replaced when dependencies are built.
