
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dse/montecarlo.cc" "src/dse/CMakeFiles/act_dse.dir/montecarlo.cc.o" "gcc" "src/dse/CMakeFiles/act_dse.dir/montecarlo.cc.o.d"
  "/root/repo/src/dse/optimize.cc" "src/dse/CMakeFiles/act_dse.dir/optimize.cc.o" "gcc" "src/dse/CMakeFiles/act_dse.dir/optimize.cc.o.d"
  "/root/repo/src/dse/pareto.cc" "src/dse/CMakeFiles/act_dse.dir/pareto.cc.o" "gcc" "src/dse/CMakeFiles/act_dse.dir/pareto.cc.o.d"
  "/root/repo/src/dse/scoreboard.cc" "src/dse/CMakeFiles/act_dse.dir/scoreboard.cc.o" "gcc" "src/dse/CMakeFiles/act_dse.dir/scoreboard.cc.o.d"
  "/root/repo/src/dse/sensitivity.cc" "src/dse/CMakeFiles/act_dse.dir/sensitivity.cc.o" "gcc" "src/dse/CMakeFiles/act_dse.dir/sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/act_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/act_data.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
