file(REMOVE_RECURSE
  "libact_dse.a"
)
