# Empty compiler generated dependencies file for act_dse.
# This may be replaced when dependencies are built.
