file(REMOVE_RECURSE
  "CMakeFiles/act_dse.dir/montecarlo.cc.o"
  "CMakeFiles/act_dse.dir/montecarlo.cc.o.d"
  "CMakeFiles/act_dse.dir/optimize.cc.o"
  "CMakeFiles/act_dse.dir/optimize.cc.o.d"
  "CMakeFiles/act_dse.dir/pareto.cc.o"
  "CMakeFiles/act_dse.dir/pareto.cc.o.d"
  "CMakeFiles/act_dse.dir/scoreboard.cc.o"
  "CMakeFiles/act_dse.dir/scoreboard.cc.o.d"
  "CMakeFiles/act_dse.dir/sensitivity.cc.o"
  "CMakeFiles/act_dse.dir/sensitivity.cc.o.d"
  "libact_dse.a"
  "libact_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
