file(REMOVE_RECURSE
  "libact_data.a"
)
