# Empty dependencies file for act_data.
# This may be replaced when dependencies are built.
