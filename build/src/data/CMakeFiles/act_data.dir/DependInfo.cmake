
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/carbon_intensity_db.cc" "src/data/CMakeFiles/act_data.dir/carbon_intensity_db.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/carbon_intensity_db.cc.o.d"
  "/root/repo/src/data/ci_profile.cc" "src/data/CMakeFiles/act_data.dir/ci_profile.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/ci_profile.cc.o.d"
  "/root/repo/src/data/device_db.cc" "src/data/CMakeFiles/act_data.dir/device_db.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/device_db.cc.o.d"
  "/root/repo/src/data/device_json.cc" "src/data/CMakeFiles/act_data.dir/device_json.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/device_json.cc.o.d"
  "/root/repo/src/data/fab_db.cc" "src/data/CMakeFiles/act_data.dir/fab_db.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/fab_db.cc.o.d"
  "/root/repo/src/data/memory_db.cc" "src/data/CMakeFiles/act_data.dir/memory_db.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/memory_db.cc.o.d"
  "/root/repo/src/data/soc_db.cc" "src/data/CMakeFiles/act_data.dir/soc_db.cc.o" "gcc" "src/data/CMakeFiles/act_data.dir/soc_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
