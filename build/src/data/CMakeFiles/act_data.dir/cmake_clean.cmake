file(REMOVE_RECURSE
  "CMakeFiles/act_data.dir/carbon_intensity_db.cc.o"
  "CMakeFiles/act_data.dir/carbon_intensity_db.cc.o.d"
  "CMakeFiles/act_data.dir/ci_profile.cc.o"
  "CMakeFiles/act_data.dir/ci_profile.cc.o.d"
  "CMakeFiles/act_data.dir/device_db.cc.o"
  "CMakeFiles/act_data.dir/device_db.cc.o.d"
  "CMakeFiles/act_data.dir/device_json.cc.o"
  "CMakeFiles/act_data.dir/device_json.cc.o.d"
  "CMakeFiles/act_data.dir/fab_db.cc.o"
  "CMakeFiles/act_data.dir/fab_db.cc.o.d"
  "CMakeFiles/act_data.dir/memory_db.cc.o"
  "CMakeFiles/act_data.dir/memory_db.cc.o.d"
  "CMakeFiles/act_data.dir/soc_db.cc.o"
  "CMakeFiles/act_data.dir/soc_db.cc.o.d"
  "libact_data.a"
  "libact_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
