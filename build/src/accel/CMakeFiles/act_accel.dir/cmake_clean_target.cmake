file(REMOVE_RECURSE
  "libact_accel.a"
)
