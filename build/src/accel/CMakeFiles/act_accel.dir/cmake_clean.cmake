file(REMOVE_RECURSE
  "CMakeFiles/act_accel.dir/design_space.cc.o"
  "CMakeFiles/act_accel.dir/design_space.cc.o.d"
  "CMakeFiles/act_accel.dir/network.cc.o"
  "CMakeFiles/act_accel.dir/network.cc.o.d"
  "CMakeFiles/act_accel.dir/npu_model.cc.o"
  "CMakeFiles/act_accel.dir/npu_model.cc.o.d"
  "libact_accel.a"
  "libact_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
