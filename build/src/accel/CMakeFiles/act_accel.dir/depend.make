# Empty dependencies file for act_accel.
# This may be replaced when dependencies are built.
