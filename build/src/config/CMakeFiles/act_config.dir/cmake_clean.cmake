file(REMOVE_RECURSE
  "CMakeFiles/act_config.dir/json.cc.o"
  "CMakeFiles/act_config.dir/json.cc.o.d"
  "libact_config.a"
  "libact_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
