file(REMOVE_RECURSE
  "libact_config.a"
)
