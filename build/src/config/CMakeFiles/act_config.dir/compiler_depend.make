# Empty compiler generated dependencies file for act_config.
# This may be replaced when dependencies are built.
