file(REMOVE_RECURSE
  "CMakeFiles/act_mobile.dir/dvfs.cc.o"
  "CMakeFiles/act_mobile.dir/dvfs.cc.o.d"
  "CMakeFiles/act_mobile.dir/fleet.cc.o"
  "CMakeFiles/act_mobile.dir/fleet.cc.o.d"
  "CMakeFiles/act_mobile.dir/platform.cc.o"
  "CMakeFiles/act_mobile.dir/platform.cc.o.d"
  "CMakeFiles/act_mobile.dir/provisioning.cc.o"
  "CMakeFiles/act_mobile.dir/provisioning.cc.o.d"
  "CMakeFiles/act_mobile.dir/reconfigurable.cc.o"
  "CMakeFiles/act_mobile.dir/reconfigurable.cc.o.d"
  "libact_mobile.a"
  "libact_mobile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
