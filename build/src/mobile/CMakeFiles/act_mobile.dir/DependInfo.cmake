
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobile/dvfs.cc" "src/mobile/CMakeFiles/act_mobile.dir/dvfs.cc.o" "gcc" "src/mobile/CMakeFiles/act_mobile.dir/dvfs.cc.o.d"
  "/root/repo/src/mobile/fleet.cc" "src/mobile/CMakeFiles/act_mobile.dir/fleet.cc.o" "gcc" "src/mobile/CMakeFiles/act_mobile.dir/fleet.cc.o.d"
  "/root/repo/src/mobile/platform.cc" "src/mobile/CMakeFiles/act_mobile.dir/platform.cc.o" "gcc" "src/mobile/CMakeFiles/act_mobile.dir/platform.cc.o.d"
  "/root/repo/src/mobile/provisioning.cc" "src/mobile/CMakeFiles/act_mobile.dir/provisioning.cc.o" "gcc" "src/mobile/CMakeFiles/act_mobile.dir/provisioning.cc.o.d"
  "/root/repo/src/mobile/reconfigurable.cc" "src/mobile/CMakeFiles/act_mobile.dir/reconfigurable.cc.o" "gcc" "src/mobile/CMakeFiles/act_mobile.dir/reconfigurable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/act_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/act_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
