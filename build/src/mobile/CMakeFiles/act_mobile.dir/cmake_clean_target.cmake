file(REMOVE_RECURSE
  "libact_mobile.a"
)
