# Empty compiler generated dependencies file for act_mobile.
# This may be replaced when dependencies are built.
