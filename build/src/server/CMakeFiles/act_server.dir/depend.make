# Empty dependencies file for act_server.
# This may be replaced when dependencies are built.
