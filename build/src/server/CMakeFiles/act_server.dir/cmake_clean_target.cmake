file(REMOVE_RECURSE
  "libact_server.a"
)
