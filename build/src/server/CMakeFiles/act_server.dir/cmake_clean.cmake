file(REMOVE_RECURSE
  "CMakeFiles/act_server.dir/datacenter.cc.o"
  "CMakeFiles/act_server.dir/datacenter.cc.o.d"
  "CMakeFiles/act_server.dir/storage_tier.cc.o"
  "CMakeFiles/act_server.dir/storage_tier.cc.o.d"
  "libact_server.a"
  "libact_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
