file(REMOVE_RECURSE
  "CMakeFiles/act_core.dir/chiplet.cc.o"
  "CMakeFiles/act_core.dir/chiplet.cc.o.d"
  "CMakeFiles/act_core.dir/embodied.cc.o"
  "CMakeFiles/act_core.dir/embodied.cc.o.d"
  "CMakeFiles/act_core.dir/fab_params.cc.o"
  "CMakeFiles/act_core.dir/fab_params.cc.o.d"
  "CMakeFiles/act_core.dir/footprint.cc.o"
  "CMakeFiles/act_core.dir/footprint.cc.o.d"
  "CMakeFiles/act_core.dir/lifecycle.cc.o"
  "CMakeFiles/act_core.dir/lifecycle.cc.o.d"
  "CMakeFiles/act_core.dir/metrics.cc.o"
  "CMakeFiles/act_core.dir/metrics.cc.o.d"
  "CMakeFiles/act_core.dir/model_config.cc.o"
  "CMakeFiles/act_core.dir/model_config.cc.o.d"
  "CMakeFiles/act_core.dir/operational.cc.o"
  "CMakeFiles/act_core.dir/operational.cc.o.d"
  "CMakeFiles/act_core.dir/replacement.cc.o"
  "CMakeFiles/act_core.dir/replacement.cc.o.d"
  "CMakeFiles/act_core.dir/scheduling.cc.o"
  "CMakeFiles/act_core.dir/scheduling.cc.o.d"
  "CMakeFiles/act_core.dir/yield.cc.o"
  "CMakeFiles/act_core.dir/yield.cc.o.d"
  "libact_core.a"
  "libact_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
