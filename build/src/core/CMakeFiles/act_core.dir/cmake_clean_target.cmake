file(REMOVE_RECURSE
  "libact_core.a"
)
