
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chiplet.cc" "src/core/CMakeFiles/act_core.dir/chiplet.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/chiplet.cc.o.d"
  "/root/repo/src/core/embodied.cc" "src/core/CMakeFiles/act_core.dir/embodied.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/embodied.cc.o.d"
  "/root/repo/src/core/fab_params.cc" "src/core/CMakeFiles/act_core.dir/fab_params.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/fab_params.cc.o.d"
  "/root/repo/src/core/footprint.cc" "src/core/CMakeFiles/act_core.dir/footprint.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/footprint.cc.o.d"
  "/root/repo/src/core/lifecycle.cc" "src/core/CMakeFiles/act_core.dir/lifecycle.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/lifecycle.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/act_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/model_config.cc" "src/core/CMakeFiles/act_core.dir/model_config.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/model_config.cc.o.d"
  "/root/repo/src/core/operational.cc" "src/core/CMakeFiles/act_core.dir/operational.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/operational.cc.o.d"
  "/root/repo/src/core/replacement.cc" "src/core/CMakeFiles/act_core.dir/replacement.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/replacement.cc.o.d"
  "/root/repo/src/core/scheduling.cc" "src/core/CMakeFiles/act_core.dir/scheduling.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/scheduling.cc.o.d"
  "/root/repo/src/core/yield.cc" "src/core/CMakeFiles/act_core.dir/yield.cc.o" "gcc" "src/core/CMakeFiles/act_core.dir/yield.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/act_data.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
