# Empty dependencies file for act_core.
# This may be replaced when dependencies are built.
