file(REMOVE_RECURSE
  "CMakeFiles/storage_fleet_planner.dir/storage_fleet_planner.cpp.o"
  "CMakeFiles/storage_fleet_planner.dir/storage_fleet_planner.cpp.o.d"
  "storage_fleet_planner"
  "storage_fleet_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_fleet_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
