# Empty dependencies file for storage_fleet_planner.
# This may be replaced when dependencies are built.
