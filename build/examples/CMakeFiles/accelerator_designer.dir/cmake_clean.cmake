file(REMOVE_RECURSE
  "CMakeFiles/accelerator_designer.dir/accelerator_designer.cpp.o"
  "CMakeFiles/accelerator_designer.dir/accelerator_designer.cpp.o.d"
  "accelerator_designer"
  "accelerator_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
