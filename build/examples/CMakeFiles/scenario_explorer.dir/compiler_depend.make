# Empty compiler generated dependencies file for scenario_explorer.
# This may be replaced when dependencies are built.
