# Empty compiler generated dependencies file for fig09_provisioning_metrics.
# This may be replaced when dependencies are built.
