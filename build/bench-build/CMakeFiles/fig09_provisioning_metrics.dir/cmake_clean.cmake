file(REMOVE_RECURSE
  "../bench/fig09_provisioning_metrics"
  "../bench/fig09_provisioning_metrics.pdb"
  "CMakeFiles/fig09_provisioning_metrics.dir/fig09_provisioning_metrics.cc.o"
  "CMakeFiles/fig09_provisioning_metrics.dir/fig09_provisioning_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_provisioning_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
