# Empty dependencies file for fig01_lifecycle_shift.
# This may be replaced when dependencies are built.
