file(REMOVE_RECURSE
  "../bench/fig01_lifecycle_shift"
  "../bench/fig01_lifecycle_shift.pdb"
  "CMakeFiles/fig01_lifecycle_shift.dir/fig01_lifecycle_shift.cc.o"
  "CMakeFiles/fig01_lifecycle_shift.dir/fig01_lifecycle_shift.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_lifecycle_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
