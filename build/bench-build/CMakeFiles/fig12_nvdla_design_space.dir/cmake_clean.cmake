file(REMOVE_RECURSE
  "../bench/fig12_nvdla_design_space"
  "../bench/fig12_nvdla_design_space.pdb"
  "CMakeFiles/fig12_nvdla_design_space.dir/fig12_nvdla_design_space.cc.o"
  "CMakeFiles/fig12_nvdla_design_space.dir/fig12_nvdla_design_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nvdla_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
