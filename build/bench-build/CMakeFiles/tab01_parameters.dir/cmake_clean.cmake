file(REMOVE_RECURSE
  "../bench/tab01_parameters"
  "../bench/tab01_parameters.pdb"
  "CMakeFiles/tab01_parameters.dir/tab01_parameters.cc.o"
  "CMakeFiles/tab01_parameters.dir/tab01_parameters.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
