# Empty dependencies file for tab01_parameters.
# This may be replaced when dependencies are built.
