# Empty dependencies file for ext_server_refresh.
# This may be replaced when dependencies are built.
