file(REMOVE_RECURSE
  "../bench/ext_server_refresh"
  "../bench/ext_server_refresh.pdb"
  "CMakeFiles/ext_server_refresh.dir/ext_server_refresh.cc.o"
  "CMakeFiles/ext_server_refresh.dir/ext_server_refresh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_server_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
