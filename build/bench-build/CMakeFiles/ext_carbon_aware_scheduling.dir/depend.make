# Empty dependencies file for ext_carbon_aware_scheduling.
# This may be replaced when dependencies are built.
