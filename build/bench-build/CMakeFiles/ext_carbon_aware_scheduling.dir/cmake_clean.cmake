file(REMOVE_RECURSE
  "../bench/ext_carbon_aware_scheduling"
  "../bench/ext_carbon_aware_scheduling.pdb"
  "CMakeFiles/ext_carbon_aware_scheduling.dir/ext_carbon_aware_scheduling.cc.o"
  "CMakeFiles/ext_carbon_aware_scheduling.dir/ext_carbon_aware_scheduling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_carbon_aware_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
