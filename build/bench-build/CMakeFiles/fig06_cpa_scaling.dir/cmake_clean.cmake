file(REMOVE_RECURSE
  "../bench/fig06_cpa_scaling"
  "../bench/fig06_cpa_scaling.pdb"
  "CMakeFiles/fig06_cpa_scaling.dir/fig06_cpa_scaling.cc.o"
  "CMakeFiles/fig06_cpa_scaling.dir/fig06_cpa_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cpa_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
