# Empty dependencies file for tab07_08_fab_intensity.
# This may be replaced when dependencies are built.
