file(REMOVE_RECURSE
  "../bench/tab07_08_fab_intensity"
  "../bench/tab07_08_fab_intensity.pdb"
  "CMakeFiles/tab07_08_fab_intensity.dir/tab07_08_fab_intensity.cc.o"
  "CMakeFiles/tab07_08_fab_intensity.dir/tab07_08_fab_intensity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_08_fab_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
