# Empty dependencies file for tab09_11_storage_intensity.
# This may be replaced when dependencies are built.
