file(REMOVE_RECURSE
  "../bench/tab09_11_storage_intensity"
  "../bench/tab09_11_storage_intensity.pdb"
  "CMakeFiles/tab09_11_storage_intensity.dir/tab09_11_storage_intensity.cc.o"
  "CMakeFiles/tab09_11_storage_intensity.dir/tab09_11_storage_intensity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab09_11_storage_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
