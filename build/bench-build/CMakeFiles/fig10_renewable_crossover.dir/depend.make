# Empty dependencies file for fig10_renewable_crossover.
# This may be replaced when dependencies are built.
