file(REMOVE_RECURSE
  "../bench/fig10_renewable_crossover"
  "../bench/fig10_renewable_crossover.pdb"
  "CMakeFiles/fig10_renewable_crossover.dir/fig10_renewable_crossover.cc.o"
  "CMakeFiles/fig10_renewable_crossover.dir/fig10_renewable_crossover.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_renewable_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
