file(REMOVE_RECURSE
  "../bench/fig13_qos_and_jevons"
  "../bench/fig13_qos_and_jevons.pdb"
  "CMakeFiles/fig13_qos_and_jevons.dir/fig13_qos_and_jevons.cc.o"
  "CMakeFiles/fig13_qos_and_jevons.dir/fig13_qos_and_jevons.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_qos_and_jevons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
