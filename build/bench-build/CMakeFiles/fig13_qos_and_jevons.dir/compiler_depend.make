# Empty compiler generated dependencies file for fig13_qos_and_jevons.
# This may be replaced when dependencies are built.
