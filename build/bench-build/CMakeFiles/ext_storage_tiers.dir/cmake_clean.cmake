file(REMOVE_RECURSE
  "../bench/ext_storage_tiers"
  "../bench/ext_storage_tiers.pdb"
  "CMakeFiles/ext_storage_tiers.dir/ext_storage_tiers.cc.o"
  "CMakeFiles/ext_storage_tiers.dir/ext_storage_tiers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_storage_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
