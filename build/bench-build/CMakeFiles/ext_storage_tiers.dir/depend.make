# Empty dependencies file for ext_storage_tiers.
# This may be replaced when dependencies are built.
