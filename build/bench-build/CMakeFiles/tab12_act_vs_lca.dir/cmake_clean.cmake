file(REMOVE_RECURSE
  "../bench/tab12_act_vs_lca"
  "../bench/tab12_act_vs_lca.pdb"
  "CMakeFiles/tab12_act_vs_lca.dir/tab12_act_vs_lca.cc.o"
  "CMakeFiles/tab12_act_vs_lca.dir/tab12_act_vs_lca.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab12_act_vs_lca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
