# Empty compiler generated dependencies file for tab12_act_vs_lca.
# This may be replaced when dependencies are built.
