# Empty dependencies file for fig07_memory_cps.
# This may be replaced when dependencies are built.
