file(REMOVE_RECURSE
  "../bench/fig07_memory_cps"
  "../bench/fig07_memory_cps.pdb"
  "CMakeFiles/fig07_memory_cps.dir/fig07_memory_cps.cc.o"
  "CMakeFiles/fig07_memory_cps.dir/fig07_memory_cps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_memory_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
