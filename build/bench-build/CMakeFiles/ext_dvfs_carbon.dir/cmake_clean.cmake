file(REMOVE_RECURSE
  "../bench/ext_dvfs_carbon"
  "../bench/ext_dvfs_carbon.pdb"
  "CMakeFiles/ext_dvfs_carbon.dir/ext_dvfs_carbon.cc.o"
  "CMakeFiles/ext_dvfs_carbon.dir/ext_dvfs_carbon.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dvfs_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
