# Empty compiler generated dependencies file for ext_dvfs_carbon.
# This may be replaced when dependencies are built.
