# Empty compiler generated dependencies file for ext_cpa_sensitivity.
# This may be replaced when dependencies are built.
