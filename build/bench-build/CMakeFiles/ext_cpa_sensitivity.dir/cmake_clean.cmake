file(REMOVE_RECURSE
  "../bench/ext_cpa_sensitivity"
  "../bench/ext_cpa_sensitivity.pdb"
  "CMakeFiles/ext_cpa_sensitivity.dir/ext_cpa_sensitivity.cc.o"
  "CMakeFiles/ext_cpa_sensitivity.dir/ext_cpa_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cpa_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
