file(REMOVE_RECURSE
  "../bench/fig11_reconfigurable"
  "../bench/fig11_reconfigurable.pdb"
  "CMakeFiles/fig11_reconfigurable.dir/fig11_reconfigurable.cc.o"
  "CMakeFiles/fig11_reconfigurable.dir/fig11_reconfigurable.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reconfigurable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
