# Empty compiler generated dependencies file for fig11_reconfigurable.
# This may be replaced when dependencies are built.
