# Empty dependencies file for fig08_mobile_design_space.
# This may be replaced when dependencies are built.
