file(REMOVE_RECURSE
  "../bench/fig08_mobile_design_space"
  "../bench/fig08_mobile_design_space.pdb"
  "CMakeFiles/fig08_mobile_design_space.dir/fig08_mobile_design_space.cc.o"
  "CMakeFiles/fig08_mobile_design_space.dir/fig08_mobile_design_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_mobile_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
