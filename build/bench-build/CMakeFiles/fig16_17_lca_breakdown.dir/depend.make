# Empty dependencies file for fig16_17_lca_breakdown.
# This may be replaced when dependencies are built.
