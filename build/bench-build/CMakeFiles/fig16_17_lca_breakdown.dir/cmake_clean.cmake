file(REMOVE_RECURSE
  "../bench/fig16_17_lca_breakdown"
  "../bench/fig16_17_lca_breakdown.pdb"
  "CMakeFiles/fig16_17_lca_breakdown.dir/fig16_17_lca_breakdown.cc.o"
  "CMakeFiles/fig16_17_lca_breakdown.dir/fig16_17_lca_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_lca_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
