# Empty dependencies file for tab05_06_carbon_intensity.
# This may be replaced when dependencies are built.
