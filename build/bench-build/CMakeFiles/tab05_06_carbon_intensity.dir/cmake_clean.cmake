file(REMOVE_RECURSE
  "../bench/tab05_06_carbon_intensity"
  "../bench/tab05_06_carbon_intensity.pdb"
  "CMakeFiles/tab05_06_carbon_intensity.dir/tab05_06_carbon_intensity.cc.o"
  "CMakeFiles/tab05_06_carbon_intensity.dir/tab05_06_carbon_intensity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_06_carbon_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
