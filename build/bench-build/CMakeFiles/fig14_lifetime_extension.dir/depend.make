# Empty dependencies file for fig14_lifetime_extension.
# This may be replaced when dependencies are built.
