file(REMOVE_RECURSE
  "../bench/fig14_lifetime_extension"
  "../bench/fig14_lifetime_extension.pdb"
  "CMakeFiles/fig14_lifetime_extension.dir/fig14_lifetime_extension.cc.o"
  "CMakeFiles/fig14_lifetime_extension.dir/fig14_lifetime_extension.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_lifetime_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
