file(REMOVE_RECURSE
  "../bench/fig04_device_breakdown"
  "../bench/fig04_device_breakdown.pdb"
  "CMakeFiles/fig04_device_breakdown.dir/fig04_device_breakdown.cc.o"
  "CMakeFiles/fig04_device_breakdown.dir/fig04_device_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_device_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
