# Empty compiler generated dependencies file for ext_chiplet_partitioning.
# This may be replaced when dependencies are built.
