file(REMOVE_RECURSE
  "../bench/ext_chiplet_partitioning"
  "../bench/ext_chiplet_partitioning.pdb"
  "CMakeFiles/ext_chiplet_partitioning.dir/ext_chiplet_partitioning.cc.o"
  "CMakeFiles/ext_chiplet_partitioning.dir/ext_chiplet_partitioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_chiplet_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
