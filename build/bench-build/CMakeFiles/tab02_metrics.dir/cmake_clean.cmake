file(REMOVE_RECURSE
  "../bench/tab02_metrics"
  "../bench/tab02_metrics.pdb"
  "CMakeFiles/tab02_metrics.dir/tab02_metrics.cc.o"
  "CMakeFiles/tab02_metrics.dir/tab02_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
