# Empty compiler generated dependencies file for tab02_metrics.
# This may be replaced when dependencies are built.
