file(REMOVE_RECURSE
  "../bench/fig15_ssd_reliability"
  "../bench/fig15_ssd_reliability.pdb"
  "CMakeFiles/fig15_ssd_reliability.dir/fig15_ssd_reliability.cc.o"
  "CMakeFiles/fig15_ssd_reliability.dir/fig15_ssd_reliability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_ssd_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
