# Empty compiler generated dependencies file for fig15_ssd_reliability.
# This may be replaced when dependencies are built.
