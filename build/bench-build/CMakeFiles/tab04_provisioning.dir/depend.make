# Empty dependencies file for tab04_provisioning.
# This may be replaced when dependencies are built.
