file(REMOVE_RECURSE
  "../bench/tab04_provisioning"
  "../bench/tab04_provisioning.pdb"
  "CMakeFiles/tab04_provisioning.dir/tab04_provisioning.cc.o"
  "CMakeFiles/tab04_provisioning.dir/tab04_provisioning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
