# Empty dependencies file for mobile_platform_test.
# This may be replaced when dependencies are built.
