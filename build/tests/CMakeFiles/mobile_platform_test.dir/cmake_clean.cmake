file(REMOVE_RECURSE
  "CMakeFiles/mobile_platform_test.dir/mobile_platform_test.cc.o"
  "CMakeFiles/mobile_platform_test.dir/mobile_platform_test.cc.o.d"
  "mobile_platform_test"
  "mobile_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
