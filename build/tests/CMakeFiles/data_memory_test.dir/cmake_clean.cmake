file(REMOVE_RECURSE
  "CMakeFiles/data_memory_test.dir/data_memory_test.cc.o"
  "CMakeFiles/data_memory_test.dir/data_memory_test.cc.o.d"
  "data_memory_test"
  "data_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
