# Empty compiler generated dependencies file for data_memory_test.
# This may be replaced when dependencies are built.
