file(REMOVE_RECURSE
  "CMakeFiles/mobile_provisioning_test.dir/mobile_provisioning_test.cc.o"
  "CMakeFiles/mobile_provisioning_test.dir/mobile_provisioning_test.cc.o.d"
  "mobile_provisioning_test"
  "mobile_provisioning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_provisioning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
