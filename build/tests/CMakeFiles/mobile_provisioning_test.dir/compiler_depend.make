# Empty compiler generated dependencies file for mobile_provisioning_test.
# This may be replaced when dependencies are built.
