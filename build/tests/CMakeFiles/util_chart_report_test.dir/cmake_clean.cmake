file(REMOVE_RECURSE
  "CMakeFiles/util_chart_report_test.dir/util_chart_report_test.cc.o"
  "CMakeFiles/util_chart_report_test.dir/util_chart_report_test.cc.o.d"
  "util_chart_report_test"
  "util_chart_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_chart_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
