# Empty dependencies file for util_chart_report_test.
# This may be replaced when dependencies are built.
