# Empty dependencies file for config_json_test.
# This may be replaced when dependencies are built.
