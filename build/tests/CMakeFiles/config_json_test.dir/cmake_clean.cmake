file(REMOVE_RECURSE
  "CMakeFiles/config_json_test.dir/config_json_test.cc.o"
  "CMakeFiles/config_json_test.dir/config_json_test.cc.o.d"
  "config_json_test"
  "config_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
