file(REMOVE_RECURSE
  "CMakeFiles/data_fab_test.dir/data_fab_test.cc.o"
  "CMakeFiles/data_fab_test.dir/data_fab_test.cc.o.d"
  "data_fab_test"
  "data_fab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_fab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
