# Empty dependencies file for server_storage_tier_test.
# This may be replaced when dependencies are built.
