file(REMOVE_RECURSE
  "CMakeFiles/server_storage_tier_test.dir/server_storage_tier_test.cc.o"
  "CMakeFiles/server_storage_tier_test.dir/server_storage_tier_test.cc.o.d"
  "server_storage_tier_test"
  "server_storage_tier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_storage_tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
