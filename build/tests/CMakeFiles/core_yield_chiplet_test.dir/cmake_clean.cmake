file(REMOVE_RECURSE
  "CMakeFiles/core_yield_chiplet_test.dir/core_yield_chiplet_test.cc.o"
  "CMakeFiles/core_yield_chiplet_test.dir/core_yield_chiplet_test.cc.o.d"
  "core_yield_chiplet_test"
  "core_yield_chiplet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_yield_chiplet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
