file(REMOVE_RECURSE
  "CMakeFiles/dse_montecarlo_test.dir/dse_montecarlo_test.cc.o"
  "CMakeFiles/dse_montecarlo_test.dir/dse_montecarlo_test.cc.o.d"
  "dse_montecarlo_test"
  "dse_montecarlo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_montecarlo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
