# Empty dependencies file for dse_montecarlo_test.
# This may be replaced when dependencies are built.
