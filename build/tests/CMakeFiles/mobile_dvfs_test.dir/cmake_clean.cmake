file(REMOVE_RECURSE
  "CMakeFiles/mobile_dvfs_test.dir/mobile_dvfs_test.cc.o"
  "CMakeFiles/mobile_dvfs_test.dir/mobile_dvfs_test.cc.o.d"
  "mobile_dvfs_test"
  "mobile_dvfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
