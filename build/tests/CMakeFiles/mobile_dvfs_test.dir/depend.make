# Empty dependencies file for mobile_dvfs_test.
# This may be replaced when dependencies are built.
