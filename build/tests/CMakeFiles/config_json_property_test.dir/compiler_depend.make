# Empty compiler generated dependencies file for config_json_property_test.
# This may be replaced when dependencies are built.
