file(REMOVE_RECURSE
  "CMakeFiles/config_json_property_test.dir/config_json_property_test.cc.o"
  "CMakeFiles/config_json_property_test.dir/config_json_property_test.cc.o.d"
  "config_json_property_test"
  "config_json_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_json_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
