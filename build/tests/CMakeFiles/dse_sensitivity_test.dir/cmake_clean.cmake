file(REMOVE_RECURSE
  "CMakeFiles/dse_sensitivity_test.dir/dse_sensitivity_test.cc.o"
  "CMakeFiles/dse_sensitivity_test.dir/dse_sensitivity_test.cc.o.d"
  "dse_sensitivity_test"
  "dse_sensitivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
