# Empty dependencies file for mobile_reconfigurable_test.
# This may be replaced when dependencies are built.
