file(REMOVE_RECURSE
  "CMakeFiles/mobile_reconfigurable_test.dir/mobile_reconfigurable_test.cc.o"
  "CMakeFiles/mobile_reconfigurable_test.dir/mobile_reconfigurable_test.cc.o.d"
  "mobile_reconfigurable_test"
  "mobile_reconfigurable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_reconfigurable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
