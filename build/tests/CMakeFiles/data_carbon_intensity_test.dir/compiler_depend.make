# Empty compiler generated dependencies file for data_carbon_intensity_test.
# This may be replaced when dependencies are built.
