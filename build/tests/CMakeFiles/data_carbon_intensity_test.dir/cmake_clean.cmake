file(REMOVE_RECURSE
  "CMakeFiles/data_carbon_intensity_test.dir/data_carbon_intensity_test.cc.o"
  "CMakeFiles/data_carbon_intensity_test.dir/data_carbon_intensity_test.cc.o.d"
  "data_carbon_intensity_test"
  "data_carbon_intensity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_carbon_intensity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
