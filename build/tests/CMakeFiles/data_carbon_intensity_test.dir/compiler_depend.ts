# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for data_carbon_intensity_test.
