# Empty compiler generated dependencies file for data_soc_test.
# This may be replaced when dependencies are built.
