file(REMOVE_RECURSE
  "CMakeFiles/data_soc_test.dir/data_soc_test.cc.o"
  "CMakeFiles/data_soc_test.dir/data_soc_test.cc.o.d"
  "data_soc_test"
  "data_soc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_soc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
