file(REMOVE_RECURSE
  "CMakeFiles/core_embodied_test.dir/core_embodied_test.cc.o"
  "CMakeFiles/core_embodied_test.dir/core_embodied_test.cc.o.d"
  "core_embodied_test"
  "core_embodied_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_embodied_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
