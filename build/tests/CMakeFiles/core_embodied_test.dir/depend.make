# Empty dependencies file for core_embodied_test.
# This may be replaced when dependencies are built.
