
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mobile_fleet_test.cc" "tests/CMakeFiles/mobile_fleet_test.dir/mobile_fleet_test.cc.o" "gcc" "tests/CMakeFiles/mobile_fleet_test.dir/mobile_fleet_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/server/CMakeFiles/act_server.dir/DependInfo.cmake"
  "/root/repo/build/src/mobile/CMakeFiles/act_mobile.dir/DependInfo.cmake"
  "/root/repo/build/src/accel/CMakeFiles/act_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/act_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/act_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/act_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/act_data.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/act_config.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/act_report.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/act_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
