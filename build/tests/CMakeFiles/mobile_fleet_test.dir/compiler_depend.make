# Empty compiler generated dependencies file for mobile_fleet_test.
# This may be replaced when dependencies are built.
