file(REMOVE_RECURSE
  "CMakeFiles/mobile_fleet_test.dir/mobile_fleet_test.cc.o"
  "CMakeFiles/mobile_fleet_test.dir/mobile_fleet_test.cc.o.d"
  "mobile_fleet_test"
  "mobile_fleet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
