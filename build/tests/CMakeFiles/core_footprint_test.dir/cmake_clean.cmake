file(REMOVE_RECURSE
  "CMakeFiles/core_footprint_test.dir/core_footprint_test.cc.o"
  "CMakeFiles/core_footprint_test.dir/core_footprint_test.cc.o.d"
  "core_footprint_test"
  "core_footprint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_footprint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
