/**
 * @file
 * Analytical performance/energy/area model of an NVDLA-class NPU
 * (DESIGN.md substitution #4), parameterized by MAC count (64-2048) and
 * process node, backing the Section 7 studies (Figs. 12 and 13).
 *
 * Performance: the MAC array is organized as Catom input channels x
 * Katom output channels per cycle (NVDLA atomics). A conv layer takes
 *   ceil(Cin/Catom) * ceil(Cout/Katom) * Hout * Wout * K^2
 * compute cycles; each layer also moves weights and activations over a
 * fixed-bandwidth DRAM interface and its elapsed cycles are
 * max(compute, memory). Wide arrays lose utilization to channel
 * mismatches and become bandwidth bound -- the mechanism behind the
 * paper's diminishing returns beyond ~1024 MACs.
 *
 * Energy per frame: active MAC switching + idle-array switching during
 * stalls + per-cycle system power (SRAM, control, leakage) + DRAM
 * traffic energy.
 *
 * Area: fixed control/interface overhead plus per-MAC datapath and
 * buffer area, scaled across nodes by a density factor; embodied carbon
 * is Eq. 4 over that area.
 */

#ifndef ACT_ACCEL_NPU_MODEL_H
#define ACT_ACCEL_NPU_MODEL_H

#include <cstdint>
#include <span>
#include <vector>

#include "accel/network.h"
#include "core/embodied.h"
#include "util/units.h"

namespace act::accel {

/** MAC-array organization: input x output channel atomics. */
struct Atomics
{
    int input_channels = 8;
    int output_channels = 8;
};

/** Atomics for a MAC count; fatal unless 64 <= count <= 2048, pow2. */
Atomics atomicsFor(int mac_count);

/** Model calibration constants; defaults reproduce the paper. */
struct NpuModelParams
{
    /** Core clock at the 16 nm reference node. */
    double clock_hz_16nm = 1.0e9;
    /** DRAM interface bandwidth, bytes per core cycle. */
    double dram_bytes_per_cycle = 8.0;
    /** Energy of one active MAC operation (16 nm reference). */
    double mac_energy_pj = 1.0;
    /** Idle/stall switching energy per MAC per cycle. */
    double idle_energy_pj = 0.6;
    /** Per-cycle system energy: SRAM, control, clock tree, leakage. */
    double system_energy_pj = 160.0;
    /** DRAM access energy per byte. */
    double dram_energy_pj_per_byte = 30.0;

    /** Area model at 16 nm: fixed + per-MAC (mm2). */
    double area_fixed_mm2 = 0.3968;
    double area_per_mac_mm2 = 7.584e-4;
    /** Logic density exponent across nodes: area scales with
     *  (node/16)^exponent (buffer-heavy designs scale sublinearly). */
    double density_exponent = 0.47;
    /** Clock scales with (16/node)^exponent. */
    double clock_exponent = 0.4;
};

/** One NPU configuration. */
struct NpuConfig
{
    int mac_count = 256;
    double node_nm = 16.0;
};

/** Per-layer evaluation detail. */
struct LayerTiming
{
    std::int64_t compute_cycles = 0;
    std::int64_t memory_cycles = 0;
    std::int64_t elapsed_cycles = 0;
    std::int64_t traffic_bytes = 0;
};

/** Whole-frame evaluation of one configuration. */
struct NpuEvaluation
{
    NpuConfig config;
    std::int64_t total_macs = 0;
    std::int64_t elapsed_cycles = 0;
    std::int64_t traffic_bytes = 0;
    /** Fraction of MAC-cycles doing useful work. */
    double utilization = 0.0;
    util::Duration latency{};
    double frames_per_second = 0.0;
    util::Energy energy_per_frame{};
    util::Area area{};
};

/** The NPU analytical simulator. */
class NpuModel
{
  public:
    explicit NpuModel(NpuModelParams params = NpuModelParams{});

    const NpuModelParams &params() const { return params_; }

    /** Silicon area of a configuration. */
    util::Area area(const NpuConfig &config) const;

    /** Core clock frequency at a node. */
    double clockHz(double node_nm) const;

    /** Per-layer timing under a configuration. */
    LayerTiming evaluateLayer(const ConvLayer &layer,
                              const NpuConfig &config) const;

    /** Full-frame evaluation over a network. */
    NpuEvaluation evaluate(const Network &network,
                           const NpuConfig &config) const;

    /** Eq. 4 embodied carbon of a configuration. */
    util::Mass embodied(const NpuConfig &config,
                        const core::FabParams &fab) const;

  private:
    NpuModelParams params_;
};

} // namespace act::accel

#endif // ACT_ACCEL_NPU_MODEL_H
