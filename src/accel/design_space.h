/**
 * @file
 * The Section 7 design-space studies over the NPU model:
 *  - the Fig. 12 metric sweep over 64-2048 MACs,
 *  - the Fig. 13 (left) QoS-constrained carbon minimization,
 *  - the Fig. 13 (right) area-budget Jevons study across nodes.
 */

#ifndef ACT_ACCEL_DESIGN_SPACE_H
#define ACT_ACCEL_DESIGN_SPACE_H

#include <optional>
#include <string>
#include <vector>

#include "accel/npu_model.h"
#include "core/metrics.h"

namespace act::accel {

/** The paper's MAC-count sweep: 64 to 2048 in powers of two. */
std::vector<int> macSweep();

/** One swept configuration with everything the studies need. */
struct SweepEntry
{
    NpuEvaluation evaluation;
    util::Mass embodied{};
    core::DesignPoint design_point;
};

/** Evaluate the full sweep at one node under given fab conditions,
 *  over the reference vision network. */
std::vector<SweepEntry> sweepDesignSpace(const NpuModel &model,
                                         double node_nm,
                                         const core::FabParams &fab);

/** As above over an arbitrary network (used by the Fig. 12 network
 *  ablation). */
std::vector<SweepEntry> sweepDesignSpace(const NpuModel &model,
                                         const Network &network,
                                         double node_nm,
                                         const core::FabParams &fab);

/** Fig. 13 (left) result. */
struct QosStudy
{
    double qos_fps = 30.0;
    /** Carbon-minimal configuration meeting QoS. */
    std::optional<SweepEntry> carbon_optimal;
    /** Performance-optimal configuration (max FPS). */
    SweepEntry performance_optimal;
    /** Energy-optimal configuration (min energy per frame). */
    SweepEntry energy_optimal;

    /** Embodied overhead of the performance/energy optima relative to
     *  the QoS carbon optimum (the paper's 3.3x and 1.4x). */
    double performanceOverhead() const;
    double energyOverhead() const;
};

QosStudy qosStudy(const NpuModel &model, double node_nm,
                  const core::FabParams &fab, double qos_fps = 30.0);

/** Fig. 13 (right): best configuration under an area budget. */
struct BudgetEntry
{
    double node_nm = 0.0;
    double budget_mm2 = 0.0;
    /** Highest-MAC configuration fitting the budget (nullopt when even
     *  the smallest configuration does not fit). */
    std::optional<SweepEntry> best;
};

BudgetEntry budgetStudy(const NpuModel &model, double node_nm,
                        double budget_mm2, const core::FabParams &fab);

} // namespace act::accel

#endif // ACT_ACCEL_DESIGN_SPACE_H
