/**
 * @file
 * Convolutional network descriptors for the NPU case study (Section 7).
 * The paper drives an NVDLA-based NPU with an image-processing workload
 * under a 30 FPS QoS target; this module defines layer shapes and a
 * representative ~7 GMAC/frame vision backbone used by the design-space
 * studies (DESIGN.md substitution #4).
 */

#ifndef ACT_ACCEL_NETWORK_H
#define ACT_ACCEL_NETWORK_H

#include <cstdint>
#include <string>
#include <vector>

namespace act::accel {

/** One convolutional layer (square kernels and feature maps). */
struct ConvLayer
{
    std::string name;
    /** Output feature-map height and width. */
    int out_height = 0;
    int out_width = 0;
    int in_channels = 0;
    int out_channels = 0;
    /** Kernel size (K x K). */
    int kernel = 1;

    /** Multiply-accumulate operations for this layer. */
    std::int64_t macs() const;
};

/** A whole network. */
struct Network
{
    std::string name;
    std::vector<ConvLayer> layers;

    /** Total MAC operations per frame. */
    std::int64_t totalMacs() const;
};

/**
 * The representative vision backbone used in the Fig. 12/13 studies:
 * a 224x224 classification-style network with mixed channel widths
 * (including non-power-of-two stages) so large MAC arrays see realistic
 * mapping losses.
 */
const Network &referenceVisionNetwork();

/**
 * A mapper-friendly wide backbone (all channel counts multiples of
 * 64), used by the Fig. 12 --ablation to show how the carbon-optimal
 * MAC count depends on the workload's mapping behavior.
 */
const Network &wideVisionNetwork();

} // namespace act::accel

#endif // ACT_ACCEL_NETWORK_H
