#include "accel/network.h"

namespace act::accel {

std::int64_t
ConvLayer::macs() const
{
    return static_cast<std::int64_t>(out_height) * out_width *
           in_channels * out_channels * kernel * kernel;
}

std::int64_t
Network::totalMacs() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.macs();
    return total;
}

namespace {

/** Append a DenseNet-style block: @p layers 3x3 convs with growth-rate
 *  output width, input channels accumulating by concatenation. */
void
appendDenseBlock(Network &network, const std::string &prefix, int size,
                 int in_channels, int growth, int layers)
{
    int channels = in_channels;
    for (int i = 0; i < layers; ++i) {
        network.layers.push_back({prefix + std::to_string(i + 1), size,
                                  size, channels, growth, 3});
        channels += growth;
    }
}

Network
buildReferenceNetwork()
{
    // A ~4.8 GMAC/frame 224x224 DenseNet-style backbone with growth
    // rate 48. Narrow per-layer output widths map perfectly onto small
    // output-channel atomics (Katom <= 16) but lose ~25% utilization at
    // Katom = 32 and more at Catom = 64 -- the mechanism behind the
    // diminishing returns of wide NVDLA configurations (Fig. 12).
    Network network;
    network.name = "dense-vision-backbone";

    // Stem.
    network.layers.push_back({"stem1", 112, 112, 3, 64, 3});
    network.layers.push_back({"stem2", 56, 56, 64, 96, 3});
    network.layers.push_back({"stem3", 56, 56, 96, 96, 3});
    network.layers.push_back({"stem4", 56, 56, 96, 48, 3});
    network.layers.push_back({"stem5", 56, 56, 48, 96, 3});

    // Dense block 1 at 28x28: 16 layers, 96 -> 864 channels.
    appendDenseBlock(network, "dense1_", 28, 96, 48, 16);
    // 1x1 transition down to 192 channels.
    network.layers.push_back({"trans1", 28, 28, 864, 192, 1});

    // Dense block 2 at 14x14: 20 layers, 192 -> 1152 channels.
    appendDenseBlock(network, "dense2_", 14, 192, 48, 20);
    network.layers.push_back({"trans2", 14, 14, 1152, 512, 1});

    // Deep wide tail.
    network.layers.push_back({"conv_deep1", 7, 7, 512, 512, 3});
    network.layers.push_back({"conv_deep2", 7, 7, 512, 512, 3});
    network.layers.push_back({"fc", 1, 1, 512, 1000, 1});
    return network;
}

Network
buildWideNetwork()
{
    // A ResNet-style wide backbone: every channel count is a multiple
    // of 64, so even the widest atomics map near-perfectly and the
    // returns from larger arrays diminish much later.
    Network network;
    network.name = "wide-vision-backbone";
    network.layers.push_back({"stem", 112, 112, 3, 64, 3});
    network.layers.push_back({"conv2a", 56, 56, 64, 64, 3});
    network.layers.push_back({"conv2b", 56, 56, 64, 64, 3});
    network.layers.push_back({"conv2c", 56, 56, 64, 128, 3});
    network.layers.push_back({"conv3a", 28, 28, 128, 128, 3});
    network.layers.push_back({"conv3b", 28, 28, 128, 128, 3});
    network.layers.push_back({"conv3c", 28, 28, 128, 256, 3});
    for (int i = 0; i < 4; ++i) {
        network.layers.push_back({"conv4_" + std::to_string(i), 14, 14,
                                  256, 256, 3});
    }
    network.layers.push_back({"conv4t", 14, 14, 256, 512, 3});
    for (int i = 0; i < 3; ++i) {
        network.layers.push_back({"conv5_" + std::to_string(i), 14, 14,
                                  512, 512, 3});
    }
    network.layers.push_back({"conv6a", 7, 7, 512, 512, 3});
    network.layers.push_back({"conv6b", 7, 7, 512, 512, 3});
    network.layers.push_back({"fc", 1, 1, 512, 1000, 1});
    return network;
}

} // namespace

const Network &
referenceVisionNetwork()
{
    static const Network network = buildReferenceNetwork();
    return network;
}

const Network &
wideVisionNetwork()
{
    static const Network network = buildWideNetwork();
    return network;
}

} // namespace act::accel
