#include "accel/design_space.h"

#include "core/eval_plan.h"
#include "sweep/engine.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/trace.h"

namespace act::accel {

std::vector<int>
macSweep()
{
    return {64, 128, 256, 512, 1024, 2048};
}

std::vector<SweepEntry>
sweepDesignSpace(const NpuModel &model, double node_nm,
                 const core::FabParams &fab)
{
    return sweepDesignSpace(model, referenceVisionNetwork(), node_nm,
                            fab);
}

std::vector<SweepEntry>
sweepDesignSpace(const NpuModel &model, const Network &network,
                 double node_nm, const core::FabParams &fab)
{
    TRACE_SPAN("accel.design_space",
               "sweepDesignSpace:" + util::formatSig(node_nm, 3) +
                   "nm");
    // Each MAC configuration evaluates independently; the sweep
    // engine fills pre-sized slots so sweep order stays the paper's
    // order. Every configuration shares (fab, node), so Eq. 5 is
    // compiled once for the whole sweep and embodied carbon is a
    // single multiply per entry -- the same CPA * area product
    // model.embodied() computes.
    const util::CarbonPerArea cpa =
        core::EvalPlan::forNode(fab, node_nm).cpa();
    const std::vector<int> macs_sweep = macSweep();
    return sweep::runSweepMap<SweepEntry>(
        sweep::SweepPlan::map("accel.design_space", macs_sweep.size()),
        [&](std::size_t i) {
            SweepEntry entry;
            const NpuConfig config{macs_sweep[i], node_nm};
            entry.evaluation = model.evaluate(network, config);
            entry.embodied = cpa * entry.evaluation.area;

            entry.design_point.name =
                std::to_string(macs_sweep[i]) + " MACs";
            entry.design_point.embodied = entry.embodied;
            entry.design_point.energy =
                entry.evaluation.energy_per_frame;
            entry.design_point.delay = entry.evaluation.latency;
            entry.design_point.area = entry.evaluation.area;
            return entry;
        });
}

double
QosStudy::performanceOverhead() const
{
    if (!carbon_optimal)
        util::fatal("QoS study has no feasible carbon optimum");
    return performance_optimal.embodied / carbon_optimal->embodied;
}

double
QosStudy::energyOverhead() const
{
    if (!carbon_optimal)
        util::fatal("QoS study has no feasible carbon optimum");
    return energy_optimal.embodied / carbon_optimal->embodied;
}

QosStudy
qosStudy(const NpuModel &model, double node_nm,
         const core::FabParams &fab, double qos_fps)
{
    const auto entries = sweepDesignSpace(model, node_nm, fab);

    QosStudy study;
    study.qos_fps = qos_fps;

    const SweepEntry *perf_best = &entries.front();
    const SweepEntry *energy_best = &entries.front();
    const SweepEntry *carbon_best = nullptr;
    for (const auto &entry : entries) {
        if (entry.evaluation.frames_per_second >
            perf_best->evaluation.frames_per_second) {
            perf_best = &entry;
        }
        if (entry.evaluation.energy_per_frame <
            energy_best->evaluation.energy_per_frame) {
            energy_best = &entry;
        }
        if (entry.evaluation.frames_per_second >= qos_fps &&
            (!carbon_best || entry.embodied < carbon_best->embodied)) {
            carbon_best = &entry;
        }
    }

    study.performance_optimal = *perf_best;
    study.energy_optimal = *energy_best;
    if (carbon_best)
        study.carbon_optimal = *carbon_best;
    return study;
}

BudgetEntry
budgetStudy(const NpuModel &model, double node_nm, double budget_mm2,
            const core::FabParams &fab)
{
    BudgetEntry result;
    result.node_nm = node_nm;
    result.budget_mm2 = budget_mm2;

    for (const auto &entry : sweepDesignSpace(model, node_nm, fab)) {
        const double area_mm2 =
            util::asSquareMillimeters(entry.evaluation.area);
        if (area_mm2 > budget_mm2)
            continue;
        if (!result.best ||
            entry.evaluation.config.mac_count >
                result.best->evaluation.config.mac_count) {
            result.best = entry;
        }
    }
    return result;
}

} // namespace act::accel
