#include "accel/npu_model.h"

#include <cmath>

#include "util/logging.h"

namespace act::accel {

Atomics
atomicsFor(int mac_count)
{
    switch (mac_count) {
      case 64: return {8, 8};
      case 128: return {16, 8};
      case 256: return {16, 16};
      case 512: return {32, 16};
      case 1024: return {32, 32};
      case 2048: return {64, 32};
      default:
        util::fatal("unsupported MAC count ", mac_count,
                    " (expected a power of two in [64, 2048])");
    }
}

NpuModel::NpuModel(NpuModelParams params) : params_(params) {}

util::Area
NpuModel::area(const NpuConfig &config) const
{
    // Validates the MAC count as a side effect.
    (void)atomicsFor(config.mac_count);
    const double area_16nm =
        params_.area_fixed_mm2 +
        params_.area_per_mac_mm2 * config.mac_count;
    const double density_scale =
        std::pow(config.node_nm / 16.0, params_.density_exponent);
    return util::squareMillimeters(area_16nm * density_scale);
}

double
NpuModel::clockHz(double node_nm) const
{
    return params_.clock_hz_16nm *
           std::pow(16.0 / node_nm, params_.clock_exponent);
}

LayerTiming
NpuModel::evaluateLayer(const ConvLayer &layer,
                        const NpuConfig &config) const
{
    const Atomics atomics = atomicsFor(config.mac_count);
    const auto ceil_div = [](std::int64_t a, std::int64_t b) {
        return (a + b - 1) / b;
    };

    LayerTiming timing;
    timing.compute_cycles =
        static_cast<std::int64_t>(layer.out_height) * layer.out_width *
        layer.kernel * layer.kernel *
        ceil_div(layer.in_channels, atomics.input_channels) *
        ceil_div(layer.out_channels, atomics.output_channels);

    // Traffic: int8 weights, input feature map (approximated at the
    // output resolution times the stride^2 implied by any downsampling
    // -- we conservatively use the output resolution for both maps),
    // and the output feature map.
    const std::int64_t weights =
        static_cast<std::int64_t>(layer.in_channels) *
        layer.out_channels * layer.kernel * layer.kernel;
    const std::int64_t ifmap =
        static_cast<std::int64_t>(layer.out_height) * layer.out_width *
        layer.in_channels;
    const std::int64_t ofmap =
        static_cast<std::int64_t>(layer.out_height) * layer.out_width *
        layer.out_channels;
    timing.traffic_bytes = weights + ifmap + ofmap;
    timing.memory_cycles = static_cast<std::int64_t>(std::ceil(
        static_cast<double>(timing.traffic_bytes) /
        params_.dram_bytes_per_cycle));

    timing.elapsed_cycles =
        std::max(timing.compute_cycles, timing.memory_cycles);
    return timing;
}

NpuEvaluation
NpuModel::evaluate(const Network &network, const NpuConfig &config) const
{
    NpuEvaluation result;
    result.config = config;
    result.total_macs = network.totalMacs();

    for (const auto &layer : network.layers) {
        const LayerTiming timing = evaluateLayer(layer, config);
        result.elapsed_cycles += timing.elapsed_cycles;
        result.traffic_bytes += timing.traffic_bytes;
    }

    const double mac_cycles = static_cast<double>(result.elapsed_cycles) *
                              config.mac_count;
    result.utilization =
        static_cast<double>(result.total_macs) / mac_cycles;

    const double clock = clockHz(config.node_nm);
    result.latency = util::seconds(
        static_cast<double>(result.elapsed_cycles) / clock);
    result.frames_per_second = 1.0 / util::asSeconds(result.latency);

    // Energy: active switching scales quadratically-ish with voltage
    // across nodes; we fold node scaling into a single factor relative
    // to the 16 nm reference.
    const double node_energy_scale = config.node_nm / 16.0;
    const double active_pj =
        params_.mac_energy_pj * static_cast<double>(result.total_macs);
    const double idle_pj =
        params_.idle_energy_pj *
        (mac_cycles - static_cast<double>(result.total_macs));
    const double system_pj =
        params_.system_energy_pj *
        static_cast<double>(result.elapsed_cycles);
    const double dram_pj = params_.dram_energy_pj_per_byte *
                           static_cast<double>(result.traffic_bytes);
    result.energy_per_frame = util::joules(
        (active_pj + idle_pj + system_pj) * node_energy_scale * 1e-12 +
        dram_pj * 1e-12);

    result.area = area(config);
    return result;
}

util::Mass
NpuModel::embodied(const NpuConfig &config,
                   const core::FabParams &fab) const
{
    return core::logicEmbodied(area(config), config.node_nm, fab);
}

} // namespace act::accel
