#include "fleet/job_stream.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace act::fleet {

void
checkJobStream(const JobStreamParams &params)
{
    if (!(params.horizon_hours > 0.0) ||
        !std::isfinite(params.horizon_hours)) {
        util::fatal("job stream 'horizon_hours' must be positive, got ",
                    params.horizon_hours);
    }
    if (!(params.median_duration_hours > 0.0) ||
        !std::isfinite(params.median_duration_hours)) {
        util::fatal("job stream 'median_duration_hours' must be "
                    "positive, got ", params.median_duration_hours);
    }
    if (!(params.duration_sigma_factor >= 1.0) ||
        !std::isfinite(params.duration_sigma_factor)) {
        util::fatal("job stream 'duration_sigma_factor' must be >= 1, "
                    "got ", params.duration_sigma_factor);
    }
    if (!(params.max_duration_hours >= params.median_duration_hours) ||
        !std::isfinite(params.max_duration_hours)) {
        util::fatal("job stream 'max_duration_hours' must be >= the "
                    "median duration, got ", params.max_duration_hours);
    }
    if (!(params.deferrable_fraction >= 0.0 &&
          params.deferrable_fraction <= 1.0)) {
        util::fatal("job stream 'deferrable_fraction' must be in "
                    "[0, 1], got ", params.deferrable_fraction);
    }
    if (!(params.max_slack_hours >= 0.0) ||
        !std::isfinite(params.max_slack_hours)) {
        util::fatal("job stream 'max_slack_hours' must be "
                    "non-negative, got ", params.max_slack_hours);
    }
}

Job
jobAt(const JobStreamParams &params, std::uint64_t index)
{
    // Fixed draw order: any reordering is a stream-format change that
    // breaks every pinned fleet result.
    util::Xorshift64Star rng(util::deriveSeed(params.seed, index));
    Job job;
    job.arrival_hours = rng.nextUniform(0.0, params.horizon_hours);
    job.duration_hours =
        std::min(params.max_duration_hours,
                 rng.nextLogNormal(params.median_duration_hours,
                                   params.duration_sigma_factor));
    job.utilization = rng.nextUnit();
    job.deferrable = rng.nextUnit() < params.deferrable_fraction;
    const double slack = rng.nextUniform(0.0, params.max_slack_hours);
    job.slack_hours = job.deferrable ? slack : 0.0;
    return job;
}

JobStreamParams
jobStreamFromJson(const config::JsonValue &value)
{
    if (!value.isObject())
        util::fatal("a job stream must be a JSON object");
    JobStreamParams params;
    params.horizon_hours =
        value.numberOr("horizon_hours", params.horizon_hours);
    params.median_duration_hours = value.numberOr(
        "median_duration_hours", params.median_duration_hours);
    params.duration_sigma_factor = value.numberOr(
        "duration_sigma_factor", params.duration_sigma_factor);
    params.max_duration_hours = value.numberOr(
        "max_duration_hours", params.max_duration_hours);
    params.deferrable_fraction = value.numberOr(
        "deferrable_fraction", params.deferrable_fraction);
    params.max_slack_hours =
        value.numberOr("max_slack_hours", params.max_slack_hours);
    checkJobStream(params);
    return params;
}

config::JsonValue
toJson(const JobStreamParams &params)
{
    config::JsonObject object;
    object["horizon_hours"] = config::JsonValue(params.horizon_hours);
    object["median_duration_hours"] =
        config::JsonValue(params.median_duration_hours);
    object["duration_sigma_factor"] =
        config::JsonValue(params.duration_sigma_factor);
    object["max_duration_hours"] =
        config::JsonValue(params.max_duration_hours);
    object["deferrable_fraction"] =
        config::JsonValue(params.deferrable_fraction);
    object["max_slack_hours"] =
        config::JsonValue(params.max_slack_hours);
    return config::JsonValue(std::move(object));
}

} // namespace act::fleet
