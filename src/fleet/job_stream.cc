#include "fleet/job_stream.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"
#include "util/random.h"
#include "util/simd_kernels.h"

namespace act::fleet {

void
checkJobStream(const JobStreamParams &params)
{
    if (!(params.horizon_hours > 0.0) ||
        !std::isfinite(params.horizon_hours)) {
        util::fatal("job stream 'horizon_hours' must be positive, got ",
                    params.horizon_hours);
    }
    if (!(params.median_duration_hours > 0.0) ||
        !std::isfinite(params.median_duration_hours)) {
        util::fatal("job stream 'median_duration_hours' must be "
                    "positive, got ", params.median_duration_hours);
    }
    if (!(params.duration_sigma_factor >= 1.0) ||
        !std::isfinite(params.duration_sigma_factor)) {
        util::fatal("job stream 'duration_sigma_factor' must be >= 1, "
                    "got ", params.duration_sigma_factor);
    }
    if (!(params.max_duration_hours >= params.median_duration_hours) ||
        !std::isfinite(params.max_duration_hours)) {
        util::fatal("job stream 'max_duration_hours' must be >= the "
                    "median duration, got ", params.max_duration_hours);
    }
    if (!(params.deferrable_fraction >= 0.0 &&
          params.deferrable_fraction <= 1.0)) {
        util::fatal("job stream 'deferrable_fraction' must be in "
                    "[0, 1], got ", params.deferrable_fraction);
    }
    if (!(params.max_slack_hours >= 0.0) ||
        !std::isfinite(params.max_slack_hours)) {
        util::fatal("job stream 'max_slack_hours' must be "
                    "non-negative, got ", params.max_slack_hours);
    }
}

Job
jobAt(const JobStreamParams &params, std::uint64_t index)
{
    // Fixed draw order: any reordering is a stream-format change that
    // breaks every pinned fleet result.
    util::Xorshift64Star rng(util::deriveSeed(params.seed, index));
    Job job;
    job.arrival_hours = rng.nextUniform(0.0, params.horizon_hours);
    job.duration_hours =
        std::min(params.max_duration_hours,
                 rng.nextLogNormal(params.median_duration_hours,
                                   params.duration_sigma_factor));
    job.utilization = rng.nextUnit();
    job.deferrable = rng.nextUnit() < params.deferrable_fraction;
    const double slack = rng.nextUniform(0.0, params.max_slack_hours);
    job.slack_hours = job.deferrable ? slack : 0.0;
    return job;
}

void
jobBlockAt(const JobStreamParams &params, std::uint64_t first,
           std::size_t count, JobBlock &block)
{
    block.count = count;
    block.arrival_hours.resize(count);
    block.duration_hours.resize(count);
    block.utilization.resize(count);
    block.slack_hours.resize(count);
    block.deferrable.resize(count);
    block.states.resize(count);
    block.units.resize(kJobDraws * count);
    if (count == 0)
        return;

    // Each job's generator state: deriveSeed through the same `| 1`
    // remap as the Xorshift64Star constructor jobAt() uses.
    for (std::size_t i = 0; i < count; ++i) {
        block.states[i] =
            util::deriveSeed(params.seed, first + i) | 1;
    }
    const util::simd::KernelTable &kt = util::simd::activeKernels();
    kt.job_units(block.states.data(), count, kJobDraws,
                 block.units.data());
    const double *u_normal1 = block.units.data() + count;
    const double *u_normal2 = block.units.data() + 2 * count;
    const double *u_defer = block.units.data() + 4 * count;

    // Draw 0: arrival = nextUniform(0, horizon) = 0 + (h - 0) * u.
    const util::simd::UniformTransform arrival_tr{
        0.0, params.horizon_hours - 0.0};
    kt.transform_uniform(block.units.data(), 1, count, arrival_tr,
                         block.arrival_hours.data());

    // Draws 1-2: the log-normal duration. nextLogNormal()'s guard
    // hoisted out of the loop (its operands are loop constants), then
    // jobAt()'s exact Box-Muller tree per job: the spare is never
    // consumed because each job gets a fresh generator.
    if (params.median_duration_hours <= 0.0 ||
        params.duration_sigma_factor <= 1.0)
        util::fatal(
            "nextLogNormal() needs median > 0 and sigma factor > 1");
    const double log_sigma = std::log(params.duration_sigma_factor);
    for (std::size_t i = 0; i < count; ++i) {
        double u1 = u_normal1[i];
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = u_normal2[i];
        const double radius = std::sqrt(-2.0 * std::log(u1));
        const double angle = 2.0 * 3.14159265358979323846 * u2;
        const double normal = radius * std::cos(angle);
        block.duration_hours[i] =
            std::min(params.max_duration_hours,
                     params.median_duration_hours *
                         std::exp(log_sigma * normal));
    }

    // Draw 3: utilization is the raw unit value.
    std::memcpy(block.utilization.data(),
                block.units.data() + 3 * count,
                count * sizeof(double));

    // Draws 4-5: the slack draw is always consumed (jobAt() draws it
    // before testing deferrable), then zeroed for pinned jobs.
    const util::simd::UniformTransform slack_tr{
        0.0, params.max_slack_hours - 0.0};
    kt.transform_uniform(block.units.data() + 5 * count, 1, count,
                         slack_tr, block.slack_hours.data());
    for (std::size_t i = 0; i < count; ++i) {
        const bool deferrable =
            u_defer[i] < params.deferrable_fraction;
        block.deferrable[i] = deferrable ? 1 : 0;
        if (!deferrable)
            block.slack_hours[i] = 0.0;
    }
}

JobStreamParams
jobStreamFromJson(const config::JsonValue &value)
{
    if (!value.isObject())
        util::fatal("a job stream must be a JSON object");
    JobStreamParams params;
    params.horizon_hours =
        value.numberOr("horizon_hours", params.horizon_hours);
    params.median_duration_hours = value.numberOr(
        "median_duration_hours", params.median_duration_hours);
    params.duration_sigma_factor = value.numberOr(
        "duration_sigma_factor", params.duration_sigma_factor);
    params.max_duration_hours = value.numberOr(
        "max_duration_hours", params.max_duration_hours);
    params.deferrable_fraction = value.numberOr(
        "deferrable_fraction", params.deferrable_fraction);
    params.max_slack_hours =
        value.numberOr("max_slack_hours", params.max_slack_hours);
    checkJobStream(params);
    return params;
}

config::JsonValue
toJson(const JobStreamParams &params)
{
    config::JsonObject object;
    object["horizon_hours"] = config::JsonValue(params.horizon_hours);
    object["median_duration_hours"] =
        config::JsonValue(params.median_duration_hours);
    object["duration_sigma_factor"] =
        config::JsonValue(params.duration_sigma_factor);
    object["max_duration_hours"] =
        config::JsonValue(params.max_duration_hours);
    object["deferrable_fraction"] =
        config::JsonValue(params.deferrable_fraction);
    object["max_slack_hours"] =
        config::JsonValue(params.max_slack_hours);
    return config::JsonValue(std::move(object));
}

} // namespace act::fleet
