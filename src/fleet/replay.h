/**
 * @file
 * Trace-driven fleet replay: stream a deterministic job stream
 * (job_stream.h) against regional carbon-intensity series
 * (data/intensity_series.h) under the core/scheduling deferral
 * policies, attributing per-job operational + amortized-embodied
 * carbon via the server layer's power/PUE/Eq. 1 machinery.
 *
 * Determinism contract: every job is a pure function of
 * (params, index); every placement is a pure function of
 * (setup, job); and per-chunk results land in mergeable
 * FleetAccumulators that reduce in chunk order. A replay is therefore
 * bit-identical at any thread x shard x SIMD split of the same plan
 * (the chunk layout itself is pinned by the plan, see sweep/plan.h).
 *
 * Layering: data < core < server < fleet < sweep domains.
 *
 * Setup JSON (the `config` object of a "fleet" sweep plan):
 *
 *   {
 *     "pue": 1.3,
 *     "lifetime_years": [4],               // churn axis
 *     "policies": ["uniform", "greedy", "deadline", "migrate"],
 *     "regions": [ { "name": "...", ... intensity series ... }, ... ],
 *     "jobs": { ... job stream ... }
 *   }
 *
 * Scenarios are the full policy x home-region x lifetime grid, in
 * that nesting order.
 */

#ifndef ACT_FLEET_REPLAY_H
#define ACT_FLEET_REPLAY_H

#include <cstdint>
#include <string>
#include <vector>

#include "config/json.h"
#include "core/scheduling.h"
#include "data/intensity_series.h"
#include "fleet/job_stream.h"
#include "server/datacenter.h"
#include "util/parallel.h"
#include "util/units.h"

namespace act::fleet {

/** One region's series plus the prefix sums that make any cyclic
 *  window cost O(1) to evaluate. */
struct RegionSeries
{
    /** Builds the prefix sums and the doubled sample array. */
    RegionSeries(std::string name, data::IntensitySeries series);

    std::string name;
    data::IntensitySeries series;
    /** prefix_g[i] = sum of samples [0, i); size() + 1 entries. */
    std::vector<double> prefix_g;
    /** The samples twice back-to-back (2 * size() entries), so the
     *  window kernels index grams2x[s0 + rem] == gramsAt(s0 + rem)
     *  without a per-lane modulo. */
    std::vector<double> grams2x;
};

/** One cell of the policy x region x churn grid. */
struct FleetScenario
{
    std::string label;
    core::PolicySpec policy;
    std::size_t home_region = 0;
    util::Duration lifetime = util::years(4.0);
};

/** Everything a replay chunk needs, resolved once per process. */
struct FleetSetup
{
    server::ServerPlatform platform;
    double pue = 1.2;
    JobStreamParams jobs;
    std::vector<RegionSeries> regions;
    std::vector<FleetScenario> scenarios;
};

/**
 * Parse a fleet setup from a sweep plan's config object; @p seed
 * (the plan seed) becomes the job stream's base seed. Fatal on
 * malformed input, empty regions, or regions whose series disagree on
 * length or step.
 */
FleetSetup fleetSetupFromJson(const config::JsonValue &config,
                              std::uint64_t seed);

/** Mergeable per-scenario totals of one replay chunk. */
struct FleetAccumulator
{
    std::uint64_t jobs = 0;
    /** Jobs whose start slipped past their arrival sample. */
    std::uint64_t deferred = 0;
    /** Jobs placed outside their home region. */
    std::uint64_t migrated = 0;
    double operational_g = 0.0;
    double embodied_g = 0.0;
    /** Grid energy (IT draw x PUE). */
    double energy_kwh = 0.0;
    double busy_hours = 0.0;
    /** Counterfactual operational carbon of running every job at its
     *  arrival sample in its home region (the savings baseline). */
    double baseline_g = 0.0;

    /** Fold @p other in (associative over ordered reduction). */
    void add(const FleetAccumulator &other);
};

/**
 * Replay jobs [range.begin, range.end) of the stream against every
 * scenario; result[s] accumulates scenario s. Placement quantizes to
 * sample starts: a job may start at any of the samples within its
 * policy-allowed slack of its arrival, and takes the window with the
 * lowest duration-weighted intensity (ties -> earliest start, then
 * lowest region index).
 *
 * Batched implementation (DESIGN.md §15): jobs are generated in SoA
 * blocks, scenarios sharing a (policy kind, home region) pair share
 * one placement per job (lifetime only affects the footprint
 * amortization), and the per-shift window costs + argmin run through
 * the SIMD kernel table -- bit-identical to replayJobsOracle() at
 * every dispatch level.
 */
std::vector<FleetAccumulator> replayJobs(const FleetSetup &setup,
                                         util::IndexRange range);

/**
 * The retained scalar reference: one jobAt() call per job, one full
 * weightAt() scan per scenario, no grouping, no kernels. The batched
 * replayJobs() must match it bit-for-bit (tested in
 * tests/sweep_fleet_domain_test.cc); kept as the semantic anchor of
 * the placement contract, not for production use.
 */
std::vector<FleetAccumulator>
replayJobsOracle(const FleetSetup &setup, util::IndexRange range);

/** Chunk payload codec (bit-exact doubles, exact counts). */
config::JsonValue toJson(const FleetAccumulator &accumulator);
FleetAccumulator fleetAccumulatorFromJson(const config::JsonValue &value);

} // namespace act::fleet

#endif // ACT_FLEET_REPLAY_H
