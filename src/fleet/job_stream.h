/**
 * @file
 * Deterministic seeded job streams for fleet replay. Job i of a
 * stream is a pure function of (params, i): its generator is seeded
 * with util::deriveSeed(params.seed, i), so any chunk of the stream
 * regenerates its jobs without coordination -- the foundation of the
 * fleet layer's bit-identity at any thread x shard x grain split.
 *
 * JSON form (all fields optional):
 *
 *   { "horizon_hours": 8760, "median_duration_hours": 2,
 *     "duration_sigma_factor": 2.5, "max_duration_hours": 48,
 *     "deferrable_fraction": 0.6, "max_slack_hours": 12 }
 */

#ifndef ACT_FLEET_JOB_STREAM_H
#define ACT_FLEET_JOB_STREAM_H

#include <cstdint>

#include "config/json.h"

namespace act::fleet {

/** Distribution parameters of one job stream. */
struct JobStreamParams
{
    /** Base seed; job i draws from util::deriveSeed(seed, i). */
    std::uint64_t seed = 42;
    /** Arrivals are uniform over [0, horizon) hours. */
    double horizon_hours = 24.0;
    /** Durations are log-normal (median, multiplicative spread),
     *  clamped to max_duration_hours. */
    double median_duration_hours = 2.0;
    double duration_sigma_factor = 2.5;
    double max_duration_hours = 48.0;
    /** Probability a job tolerates deferral at all. */
    double deferrable_fraction = 0.6;
    /** Deferrable jobs draw their slack uniform over [0, max]. */
    double max_slack_hours = 12.0;
};

/** One job of the stream. */
struct Job
{
    double arrival_hours = 0.0;
    double duration_hours = 0.0;
    /** Server utilization while running, in [0, 1). */
    double utilization = 0.0;
    /** Hours past arrival the start may slip (0 if not deferrable). */
    double slack_hours = 0.0;
    bool deferrable = false;
};

/** Fatal on non-finite / out-of-range stream parameters. */
void checkJobStream(const JobStreamParams &params);

/** Generate job @p index of the stream (pure in (params, index)). */
Job jobAt(const JobStreamParams &params, std::uint64_t index);

/** Parse the JSON form; the seed comes from the caller (a SweepPlan),
 *  not the document. Fatal on malformed input. */
JobStreamParams jobStreamFromJson(const config::JsonValue &value);

config::JsonValue toJson(const JobStreamParams &params);

} // namespace act::fleet

#endif // ACT_FLEET_JOB_STREAM_H
