/**
 * @file
 * Deterministic seeded job streams for fleet replay. Job i of a
 * stream is a pure function of (params, i): its generator is seeded
 * with util::deriveSeed(params.seed, i), so any chunk of the stream
 * regenerates its jobs without coordination -- the foundation of the
 * fleet layer's bit-identity at any thread x shard x grain split.
 *
 * JSON form (all fields optional):
 *
 *   { "horizon_hours": 8760, "median_duration_hours": 2,
 *     "duration_sigma_factor": 2.5, "max_duration_hours": 48,
 *     "deferrable_fraction": 0.6, "max_slack_hours": 12 }
 */

#ifndef ACT_FLEET_JOB_STREAM_H
#define ACT_FLEET_JOB_STREAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "config/json.h"

namespace act::fleet {

/** Distribution parameters of one job stream. */
struct JobStreamParams
{
    /** Base seed; job i draws from util::deriveSeed(seed, i). */
    std::uint64_t seed = 42;
    /** Arrivals are uniform over [0, horizon) hours. */
    double horizon_hours = 24.0;
    /** Durations are log-normal (median, multiplicative spread),
     *  clamped to max_duration_hours. */
    double median_duration_hours = 2.0;
    double duration_sigma_factor = 2.5;
    double max_duration_hours = 48.0;
    /** Probability a job tolerates deferral at all. */
    double deferrable_fraction = 0.6;
    /** Deferrable jobs draw their slack uniform over [0, max]. */
    double max_slack_hours = 12.0;
};

/** One job of the stream. */
struct Job
{
    double arrival_hours = 0.0;
    double duration_hours = 0.0;
    /** Server utilization while running, in [0, 1). */
    double utilization = 0.0;
    /** Hours past arrival the start may slip (0 if not deferrable). */
    double slack_hours = 0.0;
    bool deferrable = false;
};

/** Fatal on non-finite / out-of-range stream parameters. */
void checkJobStream(const JobStreamParams &params);

/** Generate job @p index of the stream (pure in (params, index)). */
Job jobAt(const JobStreamParams &params, std::uint64_t index);

/** Draws jobAt() consumes per job, in stream order: arrival,
 *  Box-Muller u1/u2, utilization, deferrable, slack. */
inline constexpr std::size_t kJobDraws = 6;

/**
 * SoA columns of a block of consecutive jobs, plus the RNG scratch
 * the generator reuses across calls. Column i of a block starting at
 * stream index `first` holds exactly jobAt(params, first + i)'s
 * fields -- jobAt() stays the scalar oracle; jobBlockAt() consumes
 * each job's deriveSeed stream in the identical draw order, just
 * lanes-wide across jobs.
 */
struct JobBlock
{
    std::size_t count = 0;
    std::vector<double> arrival_hours;
    std::vector<double> duration_hours;
    std::vector<double> utilization;
    /** 0 when the job is not deferrable, like Job::slack_hours. */
    std::vector<double> slack_hours;
    std::vector<std::uint8_t> deferrable;
    /** RNG scratch: per-job raw states and the kJobDraws x count
     *  draw-major unit matrix. */
    std::vector<std::uint64_t> states;
    std::vector<double> units;
};

/**
 * Generate jobs [first, first + count) of the stream into @p block,
 * bit-identical to `count` jobAt() calls. The uniform draws run
 * through the active SIMD kernels (one lane per job); the log-normal
 * duration stays a scalar libm loop with jobAt()'s exact Box-Muller
 * expression shapes.
 */
void jobBlockAt(const JobStreamParams &params, std::uint64_t first,
                std::size_t count, JobBlock &block);

/** Parse the JSON form; the seed comes from the caller (a SweepPlan),
 *  not the document. Fatal on malformed input. */
JobStreamParams jobStreamFromJson(const config::JsonValue &value);

config::JsonValue toJson(const JobStreamParams &params);

} // namespace act::fleet

#endif // ACT_FLEET_JOB_STREAM_H
