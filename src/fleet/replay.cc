#include "fleet/replay.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/footprint.h"
#include "util/logging.h"
#include "util/simd_kernels.h"
#include "util/strings.h"

namespace act::fleet {

namespace {

/** Sum of @p count consecutive samples from @p start, cyclic, O(1)
 *  via the prefix sums. */
double
sumSamples(const RegionSeries &region, std::size_t start,
           std::size_t count)
{
    const std::size_t n = region.series.size();
    const double *prefix = region.prefix_g.data();
    double sum = static_cast<double>(count / n) * prefix[n];
    const std::size_t rem = count % n;
    const std::size_t s0 = start % n;
    if (s0 + rem <= n)
        sum += prefix[s0 + rem] - prefix[s0];
    else
        sum += (prefix[n] - prefix[s0]) + prefix[s0 + rem - n];
    return sum;
}

/**
 * Duration-weighted intensity (g/kWh x h) of a job occupying
 * [start, start + duration) sample-aligned: full samples at step
 * hours each plus the fractional tail. Multiplying by the job's grid
 * power in kW yields its operational grams.
 */
double
weightAt(const RegionSeries &region, std::size_t start,
         double duration_hours)
{
    const double step = region.series.stepHours();
    const auto full = static_cast<std::size_t>(duration_hours / step);
    const double tail_hours =
        duration_hours - static_cast<double>(full) * step;
    double weight = sumSamples(region, start, full) * step;
    if (tail_hours > 0.0)
        weight += region.series.gramsAt(start + full) * tail_hours;
    return weight;
}

/** Hours of start slip a policy of @p kind grants a job with the
 *  given deferral fields. Placement depends on the policy only
 *  through this value and the cross-region flag. */
double
allowedSlackHours(const FleetSetup &setup, core::DeferralPolicy kind,
                  bool deferrable, double slack_hours)
{
    if (!deferrable)
        return 0.0;
    switch (kind) {
    case core::DeferralPolicy::Uniform:
        return 0.0;
    case core::DeferralPolicy::GreedyGreenest:
        // Fleet-wide batch window: any deferrable job may slip up to
        // the stream's maximum slack.
        return setup.jobs.max_slack_hours;
    case core::DeferralPolicy::DeadlineBounded:
    case core::DeferralPolicy::GreenestRegion:
        return slack_hours;
    }
    util::fatal("unknown deferral policy kind");
}

/** Hours of start slip this scenario's policy grants @p job. */
double
allowedSlack(const FleetSetup &setup, const FleetScenario &scenario,
             const Job &job)
{
    return allowedSlackHours(setup, scenario.policy.kind,
                             job.deferrable, job.slack_hours);
}

/** Jobs per SoA generation block: big enough to amortize the kernel
 *  dispatch, small enough to stay cache-resident per thread. */
constexpr std::size_t kJobBlock = 512;

/**
 * Scenarios sharing one placement per job. Placement depends on the
 * scenario only through the policy kind (slack + cross-region flag)
 * and the home region; lifetime enters combineFootprint() afterwards.
 * A policy x region x lifetime grid therefore needs only
 * |kinds| x |regions| placements per job, fanned out to its cells.
 */
/** Shift-window classes a job exposes, ordered by width: the fixed
 *  arrival sample, the per-job slack draw, and the fleet-wide greedy
 *  window (counts never shrink along this order, see
 *  allowedSlackHours()). */
enum WindowClass : std::size_t
{
    kWindowUnit = 0,
    kWindowSlack = 1,
    kWindowGreedy = 2,
};

struct PlacementGroup
{
    core::DeferralPolicy kind = core::DeferralPolicy::Uniform;
    std::size_t home_region = 0;
    /** Index into a job's per-class shift counts. */
    std::size_t window_class = kWindowUnit;
    /** GreenestRegion scans every region, not just home. */
    bool cross_region = false;
    /** Scenario indices this placement fans out to, ascending. */
    std::vector<std::size_t> scenarios;
};

/** The window class a policy kind's slack grant falls in. */
std::size_t
windowClassOf(core::DeferralPolicy kind)
{
    switch (kind) {
    case core::DeferralPolicy::Uniform:
        return kWindowUnit;
    case core::DeferralPolicy::GreedyGreenest:
        return kWindowGreedy;
    case core::DeferralPolicy::DeadlineBounded:
    case core::DeferralPolicy::GreenestRegion:
        return kWindowSlack;
    }
    util::fatal("unknown deferral policy kind");
}

/** Empty slot marker of the per-job argmin memo. */
constexpr std::size_t kNoArgmin = static_cast<std::size_t>(-1);

/** Below this window width the kernel-dispatch overhead outweighs the
 *  lanes; the inline strict-< scan wins. The result is identical
 *  either way: argmin is an exact integer reduction (first index of
 *  the minimum), so the choice cannot affect bit-identity. */
constexpr std::size_t kArgminKernelMin = 32;

/**
 * Memoized argmin over one region's cost row. Within a job, every
 * group of the same window class (per-job slack vs the fleet-wide
 * greedy window) asks the same (region, count) query -- notably each
 * cross-region group scans all regions -- so the reduction runs once
 * per distinct query.
 */
std::size_t
memoArgmin(const util::simd::KernelTable &kt,
           std::vector<std::size_t> &memo, std::size_t region,
           bool greedy, const double *costs_row, std::size_t count)
{
    std::size_t &slot = memo[region * 2 + (greedy ? 1 : 0)];
    if (slot == kNoArgmin) {
        if (count < kArgminKernelMin) {
            std::size_t best = 0;
            double best_value = costs_row[0];
            for (std::size_t s = 1; s < count; ++s) {
                if (costs_row[s] < best_value) {
                    best_value = costs_row[s];
                    best = s;
                }
            }
            slot = best;
        } else {
            slot = kt.argmin_first(costs_row, count);
        }
    }
    return slot;
}

std::vector<PlacementGroup>
buildPlacementGroups(const FleetSetup &setup)
{
    std::vector<PlacementGroup> groups;
    for (std::size_t s = 0; s < setup.scenarios.size(); ++s) {
        const FleetScenario &scenario = setup.scenarios[s];
        PlacementGroup *match = nullptr;
        for (PlacementGroup &group : groups) {
            if (group.kind == scenario.policy.kind &&
                group.home_region == scenario.home_region) {
                match = &group;
                break;
            }
        }
        if (match == nullptr) {
            groups.push_back(
                {scenario.policy.kind, scenario.home_region,
                 windowClassOf(scenario.policy.kind),
                 scenario.policy.kind ==
                     core::DeferralPolicy::GreenestRegion,
                 {}});
            match = &groups.back();
        }
        match->scenarios.push_back(s);
    }
    return groups;
}

} // namespace

RegionSeries::RegionSeries(std::string name_in,
                           data::IntensitySeries series_in)
    : name(std::move(name_in)), series(std::move(series_in))
{
    prefix_g.reserve(series.size() + 1);
    prefix_g.push_back(0.0);
    double sum = 0.0;
    for (const double g : series.samples()) {
        sum += g;
        prefix_g.push_back(sum);
    }
    grams2x.reserve(2 * series.size());
    for (int pass = 0; pass < 2; ++pass) {
        for (const double g : series.samples())
            grams2x.push_back(g);
    }
}

FleetSetup
fleetSetupFromJson(const config::JsonValue &config, std::uint64_t seed)
{
    if (!config.isObject())
        util::fatal("a fleet plan needs a 'config' object");
    FleetSetup setup;
    setup.platform = server::dellR740Platform(core::FabParams{});
    setup.pue = config.numberOr("pue", 1.2);
    if (!(setup.pue >= 1.0) || !std::isfinite(setup.pue))
        util::fatal("fleet config 'pue' must be >= 1, got ", setup.pue);

    setup.jobs = config.contains("jobs")
                     ? jobStreamFromJson(config.at("jobs"))
                     : JobStreamParams{};
    setup.jobs.seed = seed;

    if (!config.contains("regions"))
        util::fatal("fleet config needs a 'regions' array");
    for (const config::JsonValue &entry :
         config.at("regions").asArray()) {
        data::IntensitySeries series =
            data::intensitySeriesFromJson(entry);
        std::string name = entry.stringOr("name", series.name());
        setup.regions.emplace_back(std::move(name), std::move(series));
    }
    if (setup.regions.empty())
        util::fatal("fleet config has an empty 'regions' array");
    const std::size_t samples = setup.regions.front().series.size();
    const double step = setup.regions.front().series.stepHours();
    for (const RegionSeries &region : setup.regions) {
        if (region.series.size() != samples ||
            region.series.stepHours() != step) {
            util::fatal("fleet regions must share series length and "
                        "step; region '", region.name, "' has ",
                        region.series.size(), " x ",
                        region.series.stepHours(), " h vs ", samples,
                        " x ", step, " h");
        }
    }

    std::vector<core::PolicySpec> policies;
    std::vector<std::string> policy_names;
    if (config.contains("policies")) {
        for (const config::JsonValue &entry :
             config.at("policies").asArray()) {
            policies.push_back(core::policyByName(entry.asString()));
            policy_names.push_back(entry.asString());
        }
    } else {
        for (const char *name : {"uniform", "greedy"}) {
            policies.push_back(core::policyByName(name));
            policy_names.emplace_back(name);
        }
    }
    if (policies.empty())
        util::fatal("fleet config has an empty 'policies' array");
    const double deadline_raw =
        config.numberOr("deadline_samples", 6.0);
    // A bare size_t cast would wrap negatives to huge windows and
    // silently truncate fractions; both are config mistakes.
    if (!(deadline_raw > 0.0) || !std::isfinite(deadline_raw) ||
        deadline_raw != std::floor(deadline_raw)) {
        util::fatal("fleet config 'deadline_samples' must be a "
                    "positive integer, got ", deadline_raw);
    }
    const auto deadline_samples =
        static_cast<std::size_t>(deadline_raw);
    for (core::PolicySpec &policy : policies) {
        if (policy.kind == core::DeferralPolicy::DeadlineBounded)
            policy.deadline_samples = deadline_samples;
    }

    std::vector<double> lifetimes;
    if (config.contains("lifetime_years")) {
        for (const config::JsonValue &entry :
             config.at("lifetime_years").asArray()) {
            lifetimes.push_back(entry.asNumber());
        }
    } else {
        lifetimes.push_back(4.0);
    }
    for (const double years : lifetimes) {
        if (!(years > 0.0) || !std::isfinite(years)) {
            util::fatal("fleet config 'lifetime_years' entries must be "
                        "positive, got ", years);
        }
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t r = 0; r < setup.regions.size(); ++r) {
            for (const double years : lifetimes) {
                FleetScenario scenario;
                scenario.policy = policies[p];
                scenario.home_region = r;
                scenario.lifetime = util::years(years);
                scenario.label = policy_names[p] + "@" +
                                 setup.regions[r].name + "/" +
                                 util::formatSig(years, 3) + "y";
                setup.scenarios.push_back(std::move(scenario));
            }
        }
    }
    return setup;
}

void
FleetAccumulator::add(const FleetAccumulator &other)
{
    jobs += other.jobs;
    deferred += other.deferred;
    migrated += other.migrated;
    operational_g += other.operational_g;
    embodied_g += other.embodied_g;
    energy_kwh += other.energy_kwh;
    busy_hours += other.busy_hours;
    baseline_g += other.baseline_g;
}

std::vector<FleetAccumulator>
replayJobs(const FleetSetup &setup, util::IndexRange range)
{
    std::vector<FleetAccumulator> accumulators(setup.scenarios.size());
    if (setup.scenarios.empty() || range.begin >= range.end)
        return accumulators;

    const std::size_t n_regions = setup.regions.size();
    const std::size_t n = setup.regions.front().series.size();
    const double step = setup.regions.front().series.stepHours();
    const double embodied_g = util::asGrams(setup.platform.embodied);
    const std::vector<PlacementGroup> groups =
        buildPlacementGroups(setup);
    // Per-scenario Eq. 1 with the LT > 0 check hoisted out of the job
    // loop; combine() below is combineFootprint() inlined.
    std::vector<core::Eq1Amortizer> amortizers;
    amortizers.reserve(setup.scenarios.size());
    for (const FleetScenario &scenario : setup.scenarios)
        amortizers.emplace_back(scenario.lifetime);
    // Upper bound on shifts any policy grants: greedy uses the stream
    // maximum; the per-job slack draw stays below it.
    const std::size_t max_count =
        static_cast<std::size_t>(setup.jobs.max_slack_hours / step) +
        1;

    const util::simd::KernelTable &kt = util::simd::activeKernels();
    const double idle_w = util::asWatts(setup.platform.idle_power);
    const double span_w = util::asWatts(setup.platform.peak_power -
                                        setup.platform.idle_power);
    const util::simd::PowerTransform power_tr{idle_w, span_w,
                                              setup.pue};

    // Reused per-thread scratch: the SoA job block and the per-region
    // cost rows (row r = window costs of region r for this job).
    thread_local JobBlock block;
    thread_local std::vector<double> grid_kw;
    thread_local std::vector<std::size_t> arrivals;
    thread_local std::vector<double> costs;
    costs.resize(n_regions * max_count);
    // Widest window class each region's cost row must cover, fixed by
    // the group structure (cross-region groups touch every region);
    // kNoArgmin marks regions no group reads. Counts are monotone in
    // the class, so the widest class is the widest count.
    std::vector<std::size_t> region_class(n_regions, kNoArgmin);
    for (const PlacementGroup &group : groups) {
        if (group.cross_region) {
            for (std::size_t r = 0; r < n_regions; ++r) {
                if (region_class[r] == kNoArgmin ||
                    region_class[r] < group.window_class)
                    region_class[r] = group.window_class;
            }
        } else {
            std::size_t &slot = region_class[group.home_region];
            if (slot == kNoArgmin || slot < group.window_class)
                slot = group.window_class;
        }
    }
    // Memoized per-job argmin results: groups of the same kind class
    // share (region, shift-count) argmin queries, so each distinct
    // query runs once. Index = r * 2 + (greedy window ? 1 : 0).
    std::vector<std::size_t> argmin_memo(n_regions * 2);

    for (std::size_t first = range.begin; first < range.end;
         first += kJobBlock) {
        const std::size_t count =
            std::min<std::size_t>(kJobBlock, range.end - first);
        jobBlockAt(setup.jobs, first, count, block);
        grid_kw.resize(count);
        arrivals.resize(count);

        // powerAtUtilization()'s range check, batched; on failure
        // re-run the scalar calls in stream order so the fatal
        // diagnostic names the first offending job, like the oracle.
        if (!kt.all_within(block.utilization.data(), count, 0.0, 1.0,
                           false)) {
            for (std::size_t i = 0; i < count; ++i) {
                (void)server::powerAtUtilization(
                    setup.platform, block.utilization[i]);
            }
        }
        // Grid draw of each job (IT power x PUE), in kW.
        kt.power_grid_kw(block.utilization.data(), count, power_tr,
                         grid_kw.data());
        for (std::size_t i = 0; i < count; ++i) {
            arrivals[i] = static_cast<std::size_t>(
                block.arrival_hours[i] / step);
        }

        for (std::size_t i = 0; i < count; ++i) {
            const double duration = block.duration_hours[i];
            const double job_grid_kw = grid_kw[i];
            const std::size_t arrival = arrivals[i];
            const bool deferrable = block.deferrable[i] != 0;
            const double job_slack = block.slack_hours[i];

            // The window shape every region shares for this job.
            const auto full_samples =
                static_cast<std::size_t>(duration / step);
            const double tail_hours =
                duration - static_cast<double>(full_samples) * step;
            const std::size_t rem = full_samples % n;
            const double cycles =
                static_cast<double>(full_samples / n);

            // Shift-window classes of this job: the per-job slack
            // (deadline / migrate) and the fleet-wide greedy window.
            const std::size_t slack_count =
                static_cast<std::size_t>(
                    allowedSlackHours(setup,
                                      core::DeferralPolicy::
                                          DeadlineBounded,
                                      deferrable, job_slack) /
                    step) +
                1;
            const std::size_t greedy_count =
                static_cast<std::size_t>(
                    allowedSlackHours(setup,
                                      core::DeferralPolicy::
                                          GreedyGreenest,
                                      deferrable, job_slack) /
                    step) +
                1;

            // This job's shift count per window class.
            const std::size_t counts[3] = {1, slack_count,
                                           greedy_count};
            for (std::size_t r = 0; r < n_regions; ++r) {
                if (region_class[r] == kNoArgmin)
                    continue;
                const RegionSeries &region = setup.regions[r];
                util::simd::WindowCostProblem problem;
                problem.prefix = region.prefix_g.data();
                problem.grams2x = region.grams2x.data();
                problem.n = n;
                problem.start0 = arrival;
                problem.count = counts[region_class[r]];
                problem.rem = rem;
                problem.base = cycles * region.prefix_g[n];
                problem.step = step;
                problem.tail_hours = tail_hours;
                kt.window_costs(problem,
                                costs.data() + r * max_count);
            }
            std::fill(argmin_memo.begin(), argmin_memo.end(),
                      kNoArgmin);

            for (const PlacementGroup &group : groups) {
                const bool greedy =
                    group.window_class == kWindowGreedy;
                const std::size_t group_count =
                    counts[group.window_class];
                const double *home_costs =
                    costs.data() + group.home_region * max_count;
                const double baseline_weight = home_costs[0];

                // Greenest window within slack; ties resolve to the
                // earliest start, then the lowest region index
                // (replayJobsOracle's scalar scan semantics).
                double best_weight = baseline_weight;
                std::size_t best_shift = 0;
                std::size_t best_region = group.home_region;
                if (group.cross_region) {
                    // Region-major argmin combine. The scalar scan is
                    // shift-major with strict <, and its initial
                    // home@0 candidate shadows equal weights -- which
                    // the eq-branch reproduces: while best_shift is
                    // still 0 no index can be smaller, and after a
                    // strict improvement equal weights win exactly
                    // when they start earlier.
                    for (std::size_t r = 0; r < n_regions; ++r) {
                        const double *region_costs =
                            costs.data() + r * max_count;
                        const std::size_t shift = memoArgmin(
                            kt, argmin_memo, r, greedy, region_costs,
                            group_count);
                        const double weight = region_costs[shift];
                        if (weight < best_weight ||
                            (weight == best_weight &&
                             shift < best_shift)) {
                            best_weight = weight;
                            best_shift = shift;
                            best_region = r;
                        }
                    }
                } else if (group_count > 1) {
                    const std::size_t shift = memoArgmin(
                        kt, argmin_memo, group.home_region, greedy,
                        home_costs, group_count);
                    best_weight = home_costs[shift];
                    best_shift = shift;
                }
                const std::size_t best_start = arrival + best_shift;

                const double operational_g_job =
                    job_grid_kw * best_weight;
                for (const std::size_t s : group.scenarios) {
                    const core::CarbonFootprint footprint =
                        amortizers[s].combine(
                            util::grams(operational_g_job),
                            util::grams(embodied_g),
                            util::hours(duration));

                    FleetAccumulator &acc = accumulators[s];
                    acc.jobs += 1;
                    acc.deferred += best_start != arrival ? 1 : 0;
                    acc.migrated +=
                        best_region != group.home_region ? 1 : 0;
                    acc.operational_g +=
                        util::asGrams(footprint.operational);
                    acc.embodied_g +=
                        util::asGrams(footprint.embodied_allocated);
                    acc.energy_kwh += job_grid_kw * duration;
                    acc.busy_hours += duration;
                    acc.baseline_g += job_grid_kw * baseline_weight;
                }
            }
        }
    }
    return accumulators;
}

std::vector<FleetAccumulator>
replayJobsOracle(const FleetSetup &setup, util::IndexRange range)
{
    std::vector<FleetAccumulator> accumulators(setup.scenarios.size());
    const double step = setup.regions.front().series.stepHours();
    const double embodied_g = util::asGrams(setup.platform.embodied);

    for (std::size_t index = range.begin; index < range.end; ++index) {
        const Job job = jobAt(setup.jobs, index);
        // Grid draw of this job (IT power x PUE), in kW.
        const double grid_kw =
            util::asWatts(server::powerAtUtilization(
                setup.platform, job.utilization)) /
            1000.0 * setup.pue;
        const std::size_t arrival =
            static_cast<std::size_t>(job.arrival_hours / step);

        for (std::size_t s = 0; s < setup.scenarios.size(); ++s) {
            const FleetScenario &scenario = setup.scenarios[s];
            const RegionSeries &home =
                setup.regions[scenario.home_region];
            const bool cross_region =
                scenario.policy.kind ==
                core::DeferralPolicy::GreenestRegion;
            const auto max_shift = static_cast<std::size_t>(
                allowedSlack(setup, scenario, job) / step);

            // Greenest window within slack; ties resolve to the
            // earliest start, then the lowest region index, so the
            // choice is implementation-independent.
            double best_weight =
                weightAt(home, arrival, job.duration_hours);
            std::size_t best_start = arrival;
            std::size_t best_region = scenario.home_region;
            const double baseline_weight = best_weight;
            for (std::size_t shift = 0; shift <= max_shift; ++shift) {
                const std::size_t start = arrival + shift;
                if (cross_region) {
                    for (std::size_t r = 0; r < setup.regions.size();
                         ++r) {
                        const double weight = weightAt(
                            setup.regions[r], start,
                            job.duration_hours);
                        if (weight < best_weight) {
                            best_weight = weight;
                            best_start = start;
                            best_region = r;
                        }
                    }
                } else if (shift > 0) {
                    const double weight =
                        weightAt(home, start, job.duration_hours);
                    if (weight < best_weight) {
                        best_weight = weight;
                        best_start = start;
                    }
                }
            }

            const double operational_g_job = grid_kw * best_weight;
            const core::CarbonFootprint footprint =
                core::combineFootprint(
                    util::grams(operational_g_job),
                    util::grams(embodied_g),
                    util::hours(job.duration_hours),
                    scenario.lifetime);

            FleetAccumulator &acc = accumulators[s];
            acc.jobs += 1;
            acc.deferred += best_start != arrival ? 1 : 0;
            acc.migrated +=
                best_region != scenario.home_region ? 1 : 0;
            acc.operational_g += util::asGrams(footprint.operational);
            acc.embodied_g +=
                util::asGrams(footprint.embodied_allocated);
            acc.energy_kwh += grid_kw * job.duration_hours;
            acc.busy_hours += job.duration_hours;
            acc.baseline_g += grid_kw * baseline_weight;
        }
    }
    return accumulators;
}

config::JsonValue
toJson(const FleetAccumulator &accumulator)
{
    config::JsonObject object;
    object["jobs"] =
        config::JsonValue(static_cast<double>(accumulator.jobs));
    object["deferred"] =
        config::JsonValue(static_cast<double>(accumulator.deferred));
    object["migrated"] =
        config::JsonValue(static_cast<double>(accumulator.migrated));
    object["operational_g"] =
        config::JsonValue(accumulator.operational_g);
    object["embodied_g"] = config::JsonValue(accumulator.embodied_g);
    object["energy_kwh"] = config::JsonValue(accumulator.energy_kwh);
    object["busy_hours"] = config::JsonValue(accumulator.busy_hours);
    object["baseline_g"] = config::JsonValue(accumulator.baseline_g);
    return config::JsonValue(std::move(object));
}

FleetAccumulator
fleetAccumulatorFromJson(const config::JsonValue &value)
{
    FleetAccumulator accumulator;
    accumulator.jobs =
        static_cast<std::uint64_t>(value.at("jobs").asNumber());
    accumulator.deferred =
        static_cast<std::uint64_t>(value.at("deferred").asNumber());
    accumulator.migrated =
        static_cast<std::uint64_t>(value.at("migrated").asNumber());
    accumulator.operational_g = value.at("operational_g").asNumber();
    accumulator.embodied_g = value.at("embodied_g").asNumber();
    accumulator.energy_kwh = value.at("energy_kwh").asNumber();
    accumulator.busy_hours = value.at("busy_hours").asNumber();
    accumulator.baseline_g = value.at("baseline_g").asNumber();
    return accumulator;
}

} // namespace act::fleet
