#include "fleet/replay.h"

#include <cmath>
#include <utility>

#include "core/footprint.h"
#include "util/logging.h"
#include "util/strings.h"

namespace act::fleet {

namespace {

/** Sum of @p count consecutive samples from @p start, cyclic, O(1)
 *  via the prefix sums. */
double
sumSamples(const RegionSeries &region, std::size_t start,
           std::size_t count)
{
    const std::size_t n = region.series.size();
    const double *prefix = region.prefix_g.data();
    double sum = static_cast<double>(count / n) * prefix[n];
    const std::size_t rem = count % n;
    const std::size_t s0 = start % n;
    if (s0 + rem <= n)
        sum += prefix[s0 + rem] - prefix[s0];
    else
        sum += (prefix[n] - prefix[s0]) + prefix[s0 + rem - n];
    return sum;
}

/**
 * Duration-weighted intensity (g/kWh x h) of a job occupying
 * [start, start + duration) sample-aligned: full samples at step
 * hours each plus the fractional tail. Multiplying by the job's grid
 * power in kW yields its operational grams.
 */
double
weightAt(const RegionSeries &region, std::size_t start,
         double duration_hours)
{
    const double step = region.series.stepHours();
    const auto full = static_cast<std::size_t>(duration_hours / step);
    const double tail_hours =
        duration_hours - static_cast<double>(full) * step;
    double weight = sumSamples(region, start, full) * step;
    if (tail_hours > 0.0)
        weight += region.series.gramsAt(start + full) * tail_hours;
    return weight;
}

/** Hours of start slip this scenario's policy grants @p job. */
double
allowedSlack(const FleetSetup &setup, const FleetScenario &scenario,
             const Job &job)
{
    if (!job.deferrable)
        return 0.0;
    switch (scenario.policy.kind) {
    case core::DeferralPolicy::Uniform:
        return 0.0;
    case core::DeferralPolicy::GreedyGreenest:
        // Fleet-wide batch window: any deferrable job may slip up to
        // the stream's maximum slack.
        return setup.jobs.max_slack_hours;
    case core::DeferralPolicy::DeadlineBounded:
    case core::DeferralPolicy::GreenestRegion:
        return job.slack_hours;
    }
    util::fatal("unknown deferral policy kind");
}

} // namespace

RegionSeries::RegionSeries(std::string name_in,
                           data::IntensitySeries series_in)
    : name(std::move(name_in)), series(std::move(series_in))
{
    prefix_g.reserve(series.size() + 1);
    prefix_g.push_back(0.0);
    double sum = 0.0;
    for (const double g : series.samples()) {
        sum += g;
        prefix_g.push_back(sum);
    }
}

FleetSetup
fleetSetupFromJson(const config::JsonValue &config, std::uint64_t seed)
{
    if (!config.isObject())
        util::fatal("a fleet plan needs a 'config' object");
    FleetSetup setup;
    setup.platform = server::dellR740Platform(core::FabParams{});
    setup.pue = config.numberOr("pue", 1.2);
    if (!(setup.pue >= 1.0) || !std::isfinite(setup.pue))
        util::fatal("fleet config 'pue' must be >= 1, got ", setup.pue);

    setup.jobs = config.contains("jobs")
                     ? jobStreamFromJson(config.at("jobs"))
                     : JobStreamParams{};
    setup.jobs.seed = seed;

    if (!config.contains("regions"))
        util::fatal("fleet config needs a 'regions' array");
    for (const config::JsonValue &entry :
         config.at("regions").asArray()) {
        data::IntensitySeries series =
            data::intensitySeriesFromJson(entry);
        std::string name = entry.stringOr("name", series.name());
        setup.regions.emplace_back(std::move(name), std::move(series));
    }
    if (setup.regions.empty())
        util::fatal("fleet config has an empty 'regions' array");
    const std::size_t samples = setup.regions.front().series.size();
    const double step = setup.regions.front().series.stepHours();
    for (const RegionSeries &region : setup.regions) {
        if (region.series.size() != samples ||
            region.series.stepHours() != step) {
            util::fatal("fleet regions must share series length and "
                        "step; region '", region.name, "' has ",
                        region.series.size(), " x ",
                        region.series.stepHours(), " h vs ", samples,
                        " x ", step, " h");
        }
    }

    std::vector<core::PolicySpec> policies;
    std::vector<std::string> policy_names;
    if (config.contains("policies")) {
        for (const config::JsonValue &entry :
             config.at("policies").asArray()) {
            policies.push_back(core::policyByName(entry.asString()));
            policy_names.push_back(entry.asString());
        }
    } else {
        for (const char *name : {"uniform", "greedy"}) {
            policies.push_back(core::policyByName(name));
            policy_names.emplace_back(name);
        }
    }
    if (policies.empty())
        util::fatal("fleet config has an empty 'policies' array");
    const auto deadline_samples = static_cast<std::size_t>(
        config.numberOr("deadline_samples", 6.0));
    for (core::PolicySpec &policy : policies) {
        if (policy.kind == core::DeferralPolicy::DeadlineBounded)
            policy.deadline_samples = deadline_samples;
    }

    std::vector<double> lifetimes;
    if (config.contains("lifetime_years")) {
        for (const config::JsonValue &entry :
             config.at("lifetime_years").asArray()) {
            lifetimes.push_back(entry.asNumber());
        }
    } else {
        lifetimes.push_back(4.0);
    }
    for (const double years : lifetimes) {
        if (!(years > 0.0) || !std::isfinite(years)) {
            util::fatal("fleet config 'lifetime_years' entries must be "
                        "positive, got ", years);
        }
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t r = 0; r < setup.regions.size(); ++r) {
            for (const double years : lifetimes) {
                FleetScenario scenario;
                scenario.policy = policies[p];
                scenario.home_region = r;
                scenario.lifetime = util::years(years);
                scenario.label = policy_names[p] + "@" +
                                 setup.regions[r].name + "/" +
                                 util::formatSig(years, 3) + "y";
                setup.scenarios.push_back(std::move(scenario));
            }
        }
    }
    return setup;
}

void
FleetAccumulator::add(const FleetAccumulator &other)
{
    jobs += other.jobs;
    deferred += other.deferred;
    migrated += other.migrated;
    operational_g += other.operational_g;
    embodied_g += other.embodied_g;
    energy_kwh += other.energy_kwh;
    busy_hours += other.busy_hours;
    baseline_g += other.baseline_g;
}

std::vector<FleetAccumulator>
replayJobs(const FleetSetup &setup, util::IndexRange range)
{
    std::vector<FleetAccumulator> accumulators(setup.scenarios.size());
    const double step = setup.regions.front().series.stepHours();
    const double embodied_g = util::asGrams(setup.platform.embodied);

    for (std::size_t index = range.begin; index < range.end; ++index) {
        const Job job = jobAt(setup.jobs, index);
        // Grid draw of this job (IT power x PUE), in kW.
        const double grid_kw =
            util::asWatts(server::powerAtUtilization(
                setup.platform, job.utilization)) /
            1000.0 * setup.pue;
        const std::size_t arrival =
            static_cast<std::size_t>(job.arrival_hours / step);

        for (std::size_t s = 0; s < setup.scenarios.size(); ++s) {
            const FleetScenario &scenario = setup.scenarios[s];
            const RegionSeries &home =
                setup.regions[scenario.home_region];
            const bool cross_region =
                scenario.policy.kind ==
                core::DeferralPolicy::GreenestRegion;
            const auto max_shift = static_cast<std::size_t>(
                allowedSlack(setup, scenario, job) / step);

            // Greenest window within slack; ties resolve to the
            // earliest start, then the lowest region index, so the
            // choice is implementation-independent.
            double best_weight =
                weightAt(home, arrival, job.duration_hours);
            std::size_t best_start = arrival;
            std::size_t best_region = scenario.home_region;
            const double baseline_weight = best_weight;
            for (std::size_t shift = 0; shift <= max_shift; ++shift) {
                const std::size_t start = arrival + shift;
                if (cross_region) {
                    for (std::size_t r = 0; r < setup.regions.size();
                         ++r) {
                        const double weight = weightAt(
                            setup.regions[r], start,
                            job.duration_hours);
                        if (weight < best_weight) {
                            best_weight = weight;
                            best_start = start;
                            best_region = r;
                        }
                    }
                } else if (shift > 0) {
                    const double weight =
                        weightAt(home, start, job.duration_hours);
                    if (weight < best_weight) {
                        best_weight = weight;
                        best_start = start;
                    }
                }
            }

            const double operational_g_job = grid_kw * best_weight;
            const core::CarbonFootprint footprint =
                core::combineFootprint(
                    util::grams(operational_g_job),
                    util::grams(embodied_g),
                    util::hours(job.duration_hours),
                    scenario.lifetime);

            FleetAccumulator &acc = accumulators[s];
            acc.jobs += 1;
            acc.deferred += best_start != arrival ? 1 : 0;
            acc.migrated +=
                best_region != scenario.home_region ? 1 : 0;
            acc.operational_g += util::asGrams(footprint.operational);
            acc.embodied_g +=
                util::asGrams(footprint.embodied_allocated);
            acc.energy_kwh += grid_kw * job.duration_hours;
            acc.busy_hours += job.duration_hours;
            acc.baseline_g += grid_kw * baseline_weight;
        }
    }
    return accumulators;
}

config::JsonValue
toJson(const FleetAccumulator &accumulator)
{
    config::JsonObject object;
    object["jobs"] =
        config::JsonValue(static_cast<double>(accumulator.jobs));
    object["deferred"] =
        config::JsonValue(static_cast<double>(accumulator.deferred));
    object["migrated"] =
        config::JsonValue(static_cast<double>(accumulator.migrated));
    object["operational_g"] =
        config::JsonValue(accumulator.operational_g);
    object["embodied_g"] = config::JsonValue(accumulator.embodied_g);
    object["energy_kwh"] = config::JsonValue(accumulator.energy_kwh);
    object["busy_hours"] = config::JsonValue(accumulator.busy_hours);
    object["baseline_g"] = config::JsonValue(accumulator.baseline_g);
    return config::JsonValue(std::move(object));
}

FleetAccumulator
fleetAccumulatorFromJson(const config::JsonValue &value)
{
    FleetAccumulator accumulator;
    accumulator.jobs =
        static_cast<std::uint64_t>(value.at("jobs").asNumber());
    accumulator.deferred =
        static_cast<std::uint64_t>(value.at("deferred").asNumber());
    accumulator.migrated =
        static_cast<std::uint64_t>(value.at("migrated").asNumber());
    accumulator.operational_g = value.at("operational_g").asNumber();
    accumulator.embodied_g = value.at("embodied_g").asNumber();
    accumulator.energy_kwh = value.at("energy_kwh").asNumber();
    accumulator.busy_hours = value.at("busy_hours").asNumber();
    accumulator.baseline_g = value.at("baseline_g").asNumber();
    return accumulator;
}

} // namespace act::fleet
