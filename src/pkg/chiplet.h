/**
 * @file
 * Homogeneous chiplet-vs-monolithic analysis -- the original "chiplet
 * design" study (Reuse tenet, Fig. 1), now a thin wrapper over the
 * general packaging model in pkg/package.h.
 *
 * Splitting a large die into N equal chiplets improves per-die yield
 * (the defect models are super-linear in area) at the cost of
 * die-to-die interface area, a packaging/interposer overhead, and one
 * package-assembly step per chiplet:
 *
 *   ECF(N) = N * [A_chiplet(N) / Y(A_chiplet(N))] * CPA
 *          + interposer(N) + assembly(N)
 *   A_chiplet(N) = A_logic / N * (1 + beachfront overhead)
 *
 * evaluateChiplets() maps one partitioning onto a PackageSpec -- one
 * die group of count N, an organic substrate sized from the scaled
 * logic area, unit bond yield -- and evaluates it through the
 * packaging oracle, reproducing the pre-refactor model exactly.
 */

#ifndef ACT_PKG_CHIPLET_H
#define ACT_PKG_CHIPLET_H

#include <vector>

#include "pkg/package.h"

namespace act::pkg {

/** Homogeneous chiplet partitioning cost model. */
struct ChipletParams
{
    core::DefectParams defects{};
    /** Fractional die-area overhead per split for die-to-die PHYs and
     *  duplicated infrastructure ("beachfront"); applied per chiplet
     *  as (1 + overhead * (N - 1) / N) so N = 1 has none. */
    double interface_overhead = 0.10;
    /** Silicon interposer / advanced substrate area as a multiple of
     *  the aggregate chiplet area (0 disables; ~0.1 for organic
     *  substrates, ~1.1 for full silicon interposers). */
    double interposer_area_factor = 0.10;
    /** The interposer is manufactured in a mature, cheap node. */
    double interposer_node_nm = 28.0;
    /** Extra assembly carbon per chiplet beyond the first package
     *  (fraction of Kr). */
    double assembly_overhead_fraction = 0.5;
};

/** One partitioning choice evaluated. */
struct ChipletPoint
{
    int num_chiplets = 1;
    util::Area chiplet_area{};
    double chiplet_yield = 0.0;
    /** Good silicon charged per system (sum of A/Y over chiplets). */
    util::Area effective_silicon{};
    util::Mass silicon_embodied{};
    util::Mass interposer_embodied{};
    util::Mass assembly_embodied{};

    util::Mass total() const
    {
        return silicon_embodied + interposer_embodied +
               assembly_embodied;
    }
};

/** The PackageSpec one partitioning maps onto (N equal chiplets of
 *  @p logic_area at @p nm under @p params). Fatal on invalid inputs. */
PackageSpec chipletPackageSpec(util::Area logic_area, int num_chiplets,
                               double nm, const ChipletParams &params);

/**
 * Evaluate one partitioning of @p logic_area into @p num_chiplets
 * equal chiplets at process node @p nm. Fatal for num_chiplets < 1,
 * a non-positive area, negative overheads, or a non-positive
 * interposer node.
 */
ChipletPoint evaluateChiplets(util::Area logic_area, int num_chiplets,
                              double nm, const core::FabParams &fab,
                              const ChipletParams &params);

/** Sweep 1..max_chiplets partitions. */
std::vector<ChipletPoint>
chipletSweep(util::Area logic_area, double nm,
             const core::FabParams &fab, const ChipletParams &params,
             int max_chiplets = 8);

/** Index of the carbon-minimal partitioning in a sweep. */
std::size_t optimalChipletCount(const std::vector<ChipletPoint> &sweep);

} // namespace act::pkg

#endif // ACT_PKG_CHIPLET_H
