#include "pkg/package.h"

#include <cmath>

#include "core/embodied.h"
#include "util/logging.h"

namespace act::pkg {

std::string_view
packagingStyleName(PackagingStyle style)
{
    switch (style) {
      case PackagingStyle::Monolithic:
        return "monolithic";
      case PackagingStyle::OrganicSubstrate:
        return "organic";
      case PackagingStyle::SiliconInterposer:
        return "interposer";
      case PackagingStyle::Stacked3D:
        return "3d";
    }
    util::panic("unknown PackagingStyle enumerator");
}

PackagingStyle
packagingStyleByName(std::string_view name)
{
    for (const PackagingStyle style : kPackagingStyles) {
        if (packagingStyleName(style) == name)
            return style;
    }
    std::string known;
    for (const PackagingStyle style : kPackagingStyles) {
        if (!known.empty())
            known += ", ";
        known += packagingStyleName(style);
    }
    util::fatal("unknown packaging style '", std::string(name),
                "' (known: ", known, ")");
}

PackageSpec
PackageSpec::forStyle(PackagingStyle style)
{
    PackageSpec spec;
    spec.style = style;
    switch (style) {
      case PackagingStyle::Monolithic:
        // On-die wires; no substrate, no bonds.
        spec.d2d_energy_pj_per_bit = 0.05;
        break;
      case PackagingStyle::OrganicSubstrate:
        spec.substrate_area_factor = 0.10;
        spec.bond_yield = 0.99;
        spec.d2d_energy_pj_per_bit = 1.0;
        break;
      case PackagingStyle::SiliconInterposer:
        spec.substrate_area_factor = 1.10;
        spec.bond_yield = 0.99;
        spec.d2d_energy_pj_per_bit = 0.30;
        break;
      case PackagingStyle::Stacked3D:
        spec.tsv_area_overhead = 0.05;
        spec.bond_yield = 0.98;
        spec.d2d_energy_pj_per_bit = 0.10;
        break;
    }
    return spec;
}

int
PackageSpec::dieCount() const
{
    int count = 0;
    for (const ChipletSpec &chiplet : chiplets)
        count += chiplet.count;
    return count;
}

void
validatePackageSpec(const PackageSpec &spec)
{
    if (spec.chiplets.empty())
        util::fatal("package spec has an empty chiplet list");
    for (const ChipletSpec &chiplet : spec.chiplets) {
        if (chiplet.count < 1) {
            util::fatal("chiplet group '", chiplet.name,
                        "' count must be >= 1, got ", chiplet.count);
        }
        if (util::asSquareCentimeters(chiplet.area) <= 0.0) {
            util::fatal("chiplet group '", chiplet.name,
                        "' area must be positive");
        }
    }
    if (spec.substrate_area_factor < 0.0) {
        util::fatal("substrate area factor must be >= 0, got ",
                    spec.substrate_area_factor);
    }
    if (spec.substrate_node_nm <= 0.0) {
        util::fatal("interposer/substrate node must be positive, got ",
                    spec.substrate_node_nm, " nm");
    }
    if (!(spec.bond_yield > 0.0 && spec.bond_yield <= 1.0)) {
        util::fatal("bond yield must be in (0, 1], got ",
                    spec.bond_yield);
    }
    if (spec.tsv_area_overhead < 0.0) {
        util::fatal("TSV area overhead must be >= 0, got ",
                    spec.tsv_area_overhead);
    }
    if (spec.tsv_area_overhead > 0.0 &&
        spec.style != PackagingStyle::Stacked3D) {
        util::fatal("TSV area overhead only applies to 3D stacks, not "
                    "the '", packagingStyleName(spec.style),
                    "' style");
    }
    if (spec.assembly_overhead_fraction < 0.0) {
        util::fatal("assembly overhead fraction must be >= 0, got ",
                    spec.assembly_overhead_fraction);
    }
    if (spec.d2d_energy_pj_per_bit < 0.0) {
        util::fatal("die-to-die energy must be >= 0, got ",
                    spec.d2d_energy_pj_per_bit, " pJ/bit");
    }
    if (spec.style == PackagingStyle::Monolithic &&
        spec.dieCount() != 1) {
        util::fatal("a monolithic package holds exactly one die, got ",
                    spec.dieCount());
    }
}

int
bondCount(PackagingStyle style, int die_count)
{
    switch (style) {
      case PackagingStyle::Monolithic:
        return 0;
      case PackagingStyle::OrganicSubstrate:
      case PackagingStyle::SiliconInterposer:
        // One attach per die onto the substrate/interposer.
        return die_count;
      case PackagingStyle::Stacked3D:
        // One bonded interface per stacked pair.
        return die_count - 1;
    }
    util::panic("unknown PackagingStyle enumerator");
}

PackageResult
evaluatePackage(const PackageSpec &spec, const core::FabParams &fab)
{
    validatePackageSpec(spec);

    PackageResult result;
    result.style = spec.style;
    result.die_count = spec.dieCount();
    result.d2d_energy_pj_per_bit = spec.d2d_energy_pj_per_bit;

    // The defect models replace the scalar yield term of Eq. 5:
    // evaluate CPA at Y = 1 and charge the effective (yielded)
    // silicon area instead.
    core::FabParams perfect_yield = fab;
    perfect_yield.yield = 1.0;

    for (const ChipletSpec &chiplet : spec.chiplets) {
        util::Area die_area = chiplet.area;
        if (spec.style == PackagingStyle::Stacked3D &&
            spec.tsv_area_overhead > 0.0) {
            // Every die in the stack lands on the TSV-ready pitch.
            die_area = die_area * (1.0 + spec.tsv_area_overhead);
        }
        const double count = static_cast<double>(chiplet.count);
        const double die_yield =
            core::dieYield(die_area, chiplet.defects);
        const util::Area effective =
            core::effectiveAreaPerGoodDie(die_area, chiplet.defects) *
            count;
        result.silicon_area += die_area * count;
        result.effective_silicon += effective;
        if (die_yield < result.min_die_yield)
            result.min_die_yield = die_yield;
        result.silicon_embodied +=
            core::carbonPerArea(perfect_yield, chiplet.node_nm) *
            effective;
    }

    if (spec.style != PackagingStyle::Monolithic &&
        spec.substrate_area_factor > 0.0) {
        const util::Area footprint =
            util::asSquareCentimeters(spec.footprint_override) > 0.0
                ? spec.footprint_override
                : result.silicon_area;
        util::Area substrate_area =
            footprint * spec.substrate_area_factor;
        if (spec.style == PackagingStyle::SiliconInterposer) {
            // Silicon interposers are dies too: charge their own
            // yielded area under the substrate defect model.
            substrate_area = core::effectiveAreaPerGoodDie(
                substrate_area, spec.substrate_defects);
        }
        result.substrate_embodied =
            core::carbonPerArea(perfect_yield, spec.substrate_node_nm) *
            substrate_area;
    }

    // One package plus an assembly increment per extra die.
    const double n = static_cast<double>(result.die_count);
    result.assembly_embodied =
        core::kPackagingFootprint +
        core::kPackagingFootprint *
            (spec.assembly_overhead_fraction * (n - 1.0));

    // A failed bond scraps the assembled package: divide everything
    // by the composed assembly yield.
    result.package_yield = std::pow(
        spec.bond_yield,
        static_cast<double>(bondCount(spec.style, result.die_count)));
    result.total = (result.silicon_embodied +
                    result.substrate_embodied +
                    result.assembly_embodied) /
                   result.package_yield;
    return result;
}

} // namespace act::pkg
