/**
 * @file
 * Compiled package evaluation: resolve a PackageSpec *once* -- every
 * die group's defect yield, every node's Table 7/8 lookup, the
 * substrate silicon, the assembly constant, and the composed bond
 * yield -- into dense plan rows over core::EvalPlan, then evaluate
 * whole sample columns with the same branchless SoA kernels the
 * Monte Carlo batch path runs on.
 *
 * A compiled plan is the package-combine step over per-chiplet Eq. 5
 * rows:
 *
 *   total(s) = (sum_r row_r.cpa(inputs[s]) * weight_r + assembly)
 *              / Y_pkg
 *
 * where weight_r is the row's yielded silicon in cm2 (fixed at
 * compile time -- defect yields do not depend on the bound fab
 * inputs) and row_r.cpa runs the compiled Eq. 5 arithmetic at the
 * row's node. Bindable inputs are the fab-level terms shared by
 * every row: CiFab and Abatement. Yield cannot be bound -- the
 * defect models replace the scalar fab yield -- and Epa/Gpa/Mpa are
 * node-resolved constants.
 *
 * For any input the compiled result is bit-identical to
 * pkg::evaluatePackage() over a correspondingly mutated FabParams
 * (the scalar oracle), and evaluateBatch() is bit-identical to
 * evaluate() in a loop at every SIMD dispatch level -- the same
 * contract core::EvalPlan keeps (DESIGN.md §10-11, §13).
 */

#ifndef ACT_PKG_PKG_PLAN_H
#define ACT_PKG_PKG_PLAN_H

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "core/eval_plan.h"
#include "pkg/package.h"

namespace act::pkg {

/** One compiled package-carbon evaluation over bound fab inputs. */
class PackagePlan
{
  public:
    /** Most bound inputs a package plan supports. */
    static constexpr std::size_t kMaxInputs =
        core::EvalPlan::kMaxInputs;

    /**
     * Compile @p spec under @p fab. @p bindings may name CiFab and/or
     * Abatement; fatal on Yield/Epa/Gpa/Mpa (see file comment), on
     * duplicates, or on an invalid spec (validatePackageSpec).
     */
    static PackagePlan
    compile(const PackageSpec &spec, const core::FabParams &fab,
            std::span<const core::EvalInput> bindings = {});

    /** Number of bound inputs (the expected values[] length). */
    std::size_t inputCount() const { return input_count_; }

    /** The bound inputs, in values[] order. */
    std::span<const core::EvalInput> bindings() const
    {
        return {bindings_.data(), input_count_};
    }

    /**
     * Evaluate one sample: values[i] feeds binding i; pass nullptr
     * for a plan with no bound inputs. Returns grams CO2 per package.
     */
    double evaluate(const double *values = nullptr) const;

    /**
     * Batched evaluation over structure-of-arrays columns:
     * outputs[s] = evaluate({inputs[0][s], ...}) for s in [0, n).
     * @p scratch must hold n doubles (a reused per-row CPA column).
     */
    void evaluateBatch(std::size_t n, const double *const *inputs,
                       double *outputs, double *scratch) const;

    /** The compiled baseline (no inputs perturbed). */
    util::Mass baseline() const
    {
        return util::grams(evaluate(nullptr));
    }

    /** Plan rows: one per die group, plus one for the substrate. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Composed assembly yield b^bonds. */
    double packageYield() const { return package_yield_; }

  private:
    PackagePlan() = default;

    /** One Eq. 5 row: a node-resolved plan times its silicon. */
    struct Row
    {
        core::EvalPlan plan;
        /** Yielded silicon charged against this row's CPA, cm2. */
        double weight_cm2 = 0.0;
    };

    std::vector<Row> rows_;
    double assembly_g_ = 0.0;
    double package_yield_ = 1.0;
    std::array<core::EvalInput, kMaxInputs> bindings_{};
    std::size_t input_count_ = 0;
};

} // namespace act::pkg

#endif // ACT_PKG_PKG_PLAN_H
