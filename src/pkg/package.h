/**
 * @file
 * Packaging-aware embodied-carbon model -- the multi-die extension of
 * Eq. 5 that ACT v3 (Lee et al.) and 3D-Carbon (Zhao et al.) build:
 * heterogeneous chiplets, each with its own area, process node, and
 * defect model, composed under a packaging style with bonding-yield
 * losses, interposer/substrate silicon, TSV area overheads, and
 * per-die assembly carbon.
 *
 * The model follows the known-good-die (KGD) flow:
 *
 *   1. Each die group is manufactured and tested standalone: the
 *      silicon charged per good die is A / Y(A) with Y from the
 *      classical defect models (core/yield.h), evaluated at the
 *      group's own node -- the Eq. 4/5 arithmetic with the scalar
 *      fab yield replaced by the defect model.
 *   2. 2.5D packages add interposer/substrate silicon sized from the
 *      package footprint; silicon interposers carry their own defect
 *      yield, organic substrates are charged at unit yield.
 *   3. Assembly bonds the known-good dies; every bond can fail, and a
 *      failed bond scraps the whole package, so the total divides by
 *      the composed package yield  Y_pkg = b^bonds  (b the per-bond
 *      yield; organic/2.5D attach one bond per die, 3D stacks bond
 *      n-1 interfaces).
 *
 *   total = (sum_g CPA(node_g) * (A_g / Y_g) * count_g
 *            + CPA(substrate node) * A_sub / Y_sub
 *            + assembly) / Y_pkg
 *
 * evaluatePackage() is the scalar oracle; pkg/pkg_plan.h compiles the
 * same arithmetic into core::EvalPlan rows for the batched DSE path.
 */

#ifndef ACT_PKG_PACKAGE_H
#define ACT_PKG_PACKAGE_H

#include <string>
#include <string_view>
#include <vector>

#include "core/fab_params.h"
#include "core/yield.h"
#include "util/units.h"

namespace act::pkg {

/** How the dies of a package are integrated. */
enum class PackagingStyle
{
    /** One die, conventional package -- the Eq. 4 baseline. */
    Monolithic,
    /** Multi-die on an organic build-up substrate (MCM). */
    OrganicSubstrate,
    /** 2.5D integration on a silicon interposer. */
    SiliconInterposer,
    /** 3D die stacking with through-silicon vias. */
    Stacked3D,
};

/** Canonical name ("monolithic", "organic", "interposer", "3d"). */
std::string_view packagingStyleName(PackagingStyle style);

/** Parse a style name; fatal with the known names on miss. */
PackagingStyle packagingStyleByName(std::string_view name);

/** All styles, in declaration order. */
inline constexpr PackagingStyle kPackagingStyles[] = {
    PackagingStyle::Monolithic,
    PackagingStyle::OrganicSubstrate,
    PackagingStyle::SiliconInterposer,
    PackagingStyle::Stacked3D,
};

/**
 * One group of identical dies in a package. Identical dies are
 * manufactured as one batch, so their yielded silicon is charged as
 * (A / Y) * count -- heterogeneous packages list one group per
 * distinct die.
 */
struct ChipletSpec
{
    /** Optional label for reports. */
    std::string name;
    /** Die area before any TSV overhead. */
    util::Area area{};
    /** Process node in nm (Table 7 range [3, 28]). */
    double node_nm = 7.0;
    /** Defect model replacing the scalar fab yield for this die. */
    core::DefectParams defects{};
    /** Number of identical copies of this die in the package. */
    int count = 1;
};

/** A multi-die package: dies plus the integration parameters. */
struct PackageSpec
{
    PackagingStyle style = PackagingStyle::Monolithic;
    std::vector<ChipletSpec> chiplets;

    /**
     * Interposer / substrate area as a multiple of the package
     * footprint (0 disables; ~0.1 for organic build-up substrates,
     * ~1.1 for full silicon interposers).
     */
    double substrate_area_factor = 0.0;
    /** Interposers are manufactured in a mature, cheap node. */
    double substrate_node_nm = 28.0;
    /** Defect model for silicon interposers (organic substrates are
     *  charged at unit yield). */
    core::DefectParams substrate_defects{
        0.05, 3.0, core::YieldModel::NegativeBinomial};
    /**
     * Footprint area the substrate is sized from; zero means "sum of
     * die areas". An explicit footprint models placement keep-outs
     * and die-to-die spacing.
     */
    util::Area footprint_override{};

    /** Per-bond assembly yield in (0, 1]. */
    double bond_yield = 1.0;
    /** Fractional die-area overhead for TSVs (3D stacks only). */
    double tsv_area_overhead = 0.0;
    /** Extra assembly carbon per die beyond the first, as a fraction
     *  of the per-package Kr (core::kPackagingFootprint). */
    double assembly_overhead_fraction = 0.5;
    /** Die-to-die interface signaling energy, pJ/bit. */
    double d2d_energy_pj_per_bit = 0.0;

    /** A spec preloaded with typical parameters for @p style. */
    static PackageSpec forStyle(PackagingStyle style);

    /** Total number of dies (sum of group counts). */
    int dieCount() const;
};

/**
 * Validate a spec: fatal on an empty chiplet list, non-positive die
 * areas or counts, negative overheads or factors, a non-positive
 * substrate node, a bond yield outside (0, 1], more than one die
 * under the monolithic style, or TSV overhead outside a 3D stack.
 */
void validatePackageSpec(const PackageSpec &spec);

/** The bond count the package yield composes over. */
int bondCount(PackagingStyle style, int die_count);

/** Full evaluation of one package. */
struct PackageResult
{
    PackagingStyle style = PackagingStyle::Monolithic;
    int die_count = 0;
    /** Raw silicon per package (die areas including TSV overhead). */
    util::Area silicon_area{};
    /** Yielded silicon charged per package (sum of (A/Y) * count). */
    util::Area effective_silicon{};
    /** Worst per-die yield across the groups (diagnostic). */
    double min_die_yield = 1.0;
    /** Composed assembly yield b^bonds (1.0 for monolithic). */
    double package_yield = 1.0;

    util::Mass silicon_embodied{};
    util::Mass substrate_embodied{};
    util::Mass assembly_embodied{};
    /** (silicon + substrate + assembly) / package_yield. */
    util::Mass total{};

    /** Die-to-die signaling energy, pJ/bit (style-resolved). */
    double d2d_energy_pj_per_bit = 0.0;

    /** Operational energy to move @p bits across the d2d fabric. */
    util::Energy interfaceEnergy(double bits) const
    {
        return util::joules(d2d_energy_pj_per_bit * 1e-12 * bits);
    }
};

/**
 * Scalar packaging oracle: evaluate @p spec under fab conditions
 * @p fab (the scalar fab yield is superseded by the per-die defect
 * models). Bit-identical to pkg::PackagePlan by construction.
 */
PackageResult evaluatePackage(const PackageSpec &spec,
                              const core::FabParams &fab);

} // namespace act::pkg

#endif // ACT_PKG_PACKAGE_H
