#include "pkg/chiplet.h"

#include "util/logging.h"

namespace act::pkg {

namespace {

void
validateChipletParams(const ChipletParams &params)
{
    if (params.interface_overhead < 0.0) {
        util::fatal("chiplet interface overhead must be >= 0, got ",
                    params.interface_overhead);
    }
    if (params.interposer_area_factor < 0.0) {
        util::fatal("interposer area factor must be >= 0, got ",
                    params.interposer_area_factor);
    }
    if (params.interposer_node_nm <= 0.0) {
        util::fatal("interposer node must be positive, got ",
                    params.interposer_node_nm, " nm");
    }
    if (params.assembly_overhead_fraction < 0.0) {
        util::fatal("assembly overhead fraction must be >= 0, got ",
                    params.assembly_overhead_fraction);
    }
}

} // namespace

PackageSpec
chipletPackageSpec(util::Area logic_area, int num_chiplets, double nm,
                   const ChipletParams &params)
{
    if (num_chiplets < 1)
        util::fatal("chiplet count must be >= 1, got ", num_chiplets);
    if (util::asSquareCentimeters(logic_area) <= 0.0)
        util::fatal("logic area must be positive");
    validateChipletParams(params);

    const double n = static_cast<double>(num_chiplets);
    const double interface_scale =
        1.0 + params.interface_overhead * (n - 1.0) / n;

    // N = 1 is a plain monolithic package; N > 1 maps onto the
    // organic-substrate style with unit bond yield -- the historical
    // model charged no assembly losses, only substrate silicon.
    PackageSpec spec;
    spec.style = num_chiplets == 1 ? PackagingStyle::Monolithic
                                   : PackagingStyle::OrganicSubstrate;
    ChipletSpec die;
    die.name = "chiplet";
    die.area = logic_area * (interface_scale / n);
    die.node_nm = nm;
    die.defects = params.defects;
    die.count = num_chiplets;
    spec.chiplets.push_back(die);
    spec.substrate_area_factor =
        num_chiplets > 1 ? params.interposer_area_factor : 0.0;
    spec.substrate_node_nm = params.interposer_node_nm;
    // The substrate is sized from the full scaled logic area, not the
    // rounded per-chiplet areas.
    spec.footprint_override = logic_area * interface_scale;
    spec.bond_yield = 1.0;
    spec.assembly_overhead_fraction = params.assembly_overhead_fraction;
    return spec;
}

ChipletPoint
evaluateChiplets(util::Area logic_area, int num_chiplets, double nm,
                 const core::FabParams &fab,
                 const ChipletParams &params)
{
    const PackageSpec spec =
        chipletPackageSpec(logic_area, num_chiplets, nm, params);
    const PackageResult result = evaluatePackage(spec, fab);

    ChipletPoint point;
    point.num_chiplets = num_chiplets;
    point.chiplet_area = spec.chiplets[0].area;
    point.chiplet_yield = result.min_die_yield;
    point.effective_silicon = result.effective_silicon;
    point.silicon_embodied = result.silicon_embodied;
    point.interposer_embodied = result.substrate_embodied;
    point.assembly_embodied = result.assembly_embodied;
    return point;
}

std::vector<ChipletPoint>
chipletSweep(util::Area logic_area, double nm,
             const core::FabParams &fab, const ChipletParams &params,
             int max_chiplets)
{
    if (max_chiplets < 1)
        util::fatal("max chiplet count must be >= 1");
    std::vector<ChipletPoint> sweep;
    sweep.reserve(static_cast<std::size_t>(max_chiplets));
    for (int n = 1; n <= max_chiplets; ++n)
        sweep.push_back(
            evaluateChiplets(logic_area, n, nm, fab, params));
    return sweep;
}

std::size_t
optimalChipletCount(const std::vector<ChipletPoint> &sweep)
{
    if (sweep.empty())
        util::fatal("optimalChipletCount() on an empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].total() < sweep[best].total())
            best = i;
    }
    return best;
}

} // namespace act::pkg
