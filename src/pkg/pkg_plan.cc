#include "pkg/pkg_plan.h"

#include <cmath>

#include "core/embodied.h"
#include "core/yield.h"
#include "util/logging.h"

namespace act::pkg {

PackagePlan
PackagePlan::compile(const PackageSpec &spec,
                     const core::FabParams &fab,
                     std::span<const core::EvalInput> bindings)
{
    validatePackageSpec(spec);
    for (const core::EvalInput input : bindings) {
        if (input != core::EvalInput::CiFab &&
            input != core::EvalInput::Abatement) {
            util::fatal("package plans can only bind the fab-level "
                        "inputs 'ci_fab' and 'abatement'; '",
                        core::evalInputName(input),
                        "' is resolved at compile time (yield comes "
                        "from the defect models)");
        }
    }

    PackagePlan plan;
    for (std::size_t i = 0; i < bindings.size(); ++i)
        plan.bindings_[i] = bindings[i];
    plan.input_count_ = bindings.size();

    // Mirror evaluatePackage() expression for expression: the defect
    // models replace the scalar yield, so rows compile at Y = 1 and
    // charge the effective silicon instead.
    core::FabParams perfect_yield = fab;
    perfect_yield.yield = 1.0;

    util::Area silicon_area{};
    for (const ChipletSpec &chiplet : spec.chiplets) {
        util::Area die_area = chiplet.area;
        if (spec.style == PackagingStyle::Stacked3D &&
            spec.tsv_area_overhead > 0.0) {
            die_area = die_area * (1.0 + spec.tsv_area_overhead);
        }
        const double count = static_cast<double>(chiplet.count);
        const util::Area effective =
            core::effectiveAreaPerGoodDie(die_area, chiplet.defects) *
            count;
        silicon_area += die_area * count;
        plan.rows_.push_back(
            {core::EvalPlan::forNode(perfect_yield, chiplet.node_nm,
                                     bindings),
             util::asSquareCentimeters(effective)});
    }

    if (spec.style != PackagingStyle::Monolithic &&
        spec.substrate_area_factor > 0.0) {
        const util::Area footprint =
            util::asSquareCentimeters(spec.footprint_override) > 0.0
                ? spec.footprint_override
                : silicon_area;
        util::Area substrate_area =
            footprint * spec.substrate_area_factor;
        if (spec.style == PackagingStyle::SiliconInterposer) {
            substrate_area = core::effectiveAreaPerGoodDie(
                substrate_area, spec.substrate_defects);
        }
        plan.rows_.push_back(
            {core::EvalPlan::forNode(perfect_yield,
                                     spec.substrate_node_nm, bindings),
             util::asSquareCentimeters(substrate_area)});
    }

    const double n = static_cast<double>(spec.dieCount());
    plan.assembly_g_ =
        util::asGrams(core::kPackagingFootprint) +
        util::asGrams(core::kPackagingFootprint) *
            (spec.assembly_overhead_fraction * (n - 1.0));
    plan.package_yield_ = std::pow(
        spec.bond_yield,
        static_cast<double>(bondCount(spec.style, spec.dieCount())));
    return plan;
}

double
PackagePlan::evaluate(const double *values) const
{
    double acc = 0.0;
    for (const Row &row : rows_)
        acc = acc + row.plan.evaluate(values) * row.weight_cm2;
    return (acc + assembly_g_) / package_yield_;
}

void
PackagePlan::evaluateBatch(std::size_t n, const double *const *inputs,
                           double *outputs, double *scratch) const
{
    for (std::size_t s = 0; s < n; ++s)
        outputs[s] = 0.0;
    // Row loop outside, samples inside: each row's CPA column comes
    // from the compiled Eq. 5 batch kernel, then folds into the
    // accumulator with exactly evaluate()'s per-sample expression
    // shapes -- same rounding, same bits, at every dispatch level.
    for (const Row &row : rows_) {
        row.plan.evaluateBatch(n, inputs, scratch);
        const double weight = row.weight_cm2;
        for (std::size_t s = 0; s < n; ++s)
            outputs[s] = outputs[s] + scratch[s] * weight;
    }
    const double assembly = assembly_g_;
    const double package_yield = package_yield_;
    for (std::size_t s = 0; s < n; ++s)
        outputs[s] = (outputs[s] + assembly) / package_yield;
}

} // namespace act::pkg
