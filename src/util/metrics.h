/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket histograms that any layer can update from any thread,
 * plus snapshot/rendering so bench binaries and the CLI can print an
 * end-of-run table (via util/table) or CSV (via util/csv).
 *
 * Overhead contract:
 *  - Counters and gauges are always live: an update is one relaxed
 *    atomic load + store (counters write a single-writer per-thread
 *    slab slot, so there is no locked RMW and no line shared between
 *    writers). Model-level statistics (e.g. the CPA cache hit rate)
 *    therefore work even when metrics emission is off.
 *  - Histogram summary statistics (count/sum/min/max) are always live
 *    too, so snapshot means survive with metrics emission off. Bucket
 *    collection -- and any *measurement* feeding an observe (clock
 *    reads, per-chunk bookkeeping) -- is gated behind
 *    `metricsEnabled()`, a single relaxed atomic flag. With
 *    `ACT_METRICS` unset the cost of an instrumented code path is one
 *    relaxed load and a branch.
 *  - Registration (`counter()`, `gauge()`, `histogram()`) takes a lock
 *    and is intended for cold paths; call sites cache the returned
 *    reference, which stays valid for the life of the process (the
 *    registry is intentionally leaked so worker threads may update
 *    metrics during static destruction).
 *
 * Enable with `ACT_METRICS=1` in the environment, the `--metrics` flag
 * on the bench binaries / CLI, or `util::setMetricsEnabled(true)`.
 */

#ifndef ACT_UTIL_METRICS_H
#define ACT_UTIL_METRICS_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace act::util {

/** True when metrics collection (histograms, timed sections) is on. */
bool metricsEnabled();

/** Turn metrics collection on or off at runtime. */
void setMetricsEnabled(bool enabled);

namespace detail {

/** Counter ids at or above this spill to a shared atomic slot. */
constexpr std::size_t kCounterSlabSlots = 256;

/**
 * Per-thread counter storage: one single-writer slot per counter id,
 * so the hot-path update is a relaxed load + store (no locked RMW).
 * `value()` sums the slot across every slab ever registered; slabs
 * outlive their thread (shared_ptr keepalive in the slab registry).
 */
struct CounterSlab
{
    std::atomic<std::uint64_t> values[kCounterSlabSlots];
};

/** Register (once) and return the calling thread's slab. */
CounterSlab *registerCounterSlab();

inline CounterSlab *
tlsCounterSlab()
{
    // Trivially-initialized thread_local: no init guard on the fast
    // path beyond the null check.
    thread_local CounterSlab *slab = nullptr;
    if (slab == nullptr)
        slab = registerCounterSlab();
    return slab;
}

} // namespace detail

/** A monotonically increasing count; always live, never gated. */
class Counter
{
  public:
    Counter();
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t n = 1)
    {
        if (id_ < detail::kCounterSlabSlots) {
            std::atomic<std::uint64_t> &slot =
                detail::tlsCounterSlab()->values[id_];
            slot.store(slot.load(std::memory_order_relaxed) + n,
                       std::memory_order_relaxed);
        } else {
            spill_.fetch_add(n, std::memory_order_relaxed);
        }
    }

    std::uint64_t value() const;

    /** Zero the counter. Approximate when adds race the reset. */
    void reset();

  private:
    /** Slot index in every thread's slab, assigned at construction. */
    std::size_t id_;
    /** Shared fallback once the per-thread slabs are exhausted. */
    std::atomic<std::uint64_t> spill_{0};
};

/** A last-value-wins instantaneous measurement; always live. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * A fixed-bucket histogram. Bucket upper bounds are set at registration
 * (ascending; one implicit overflow bucket is appended). `observe()`
 * always records count/sum/min/max (like a counter); the bucket scan
 * is skipped while `metricsEnabled()` is false.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bucket_bounds);
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void observe(double value);

    std::uint64_t count() const;
    double sum() const;
    double min() const;
    double max() const;

    const std::vector<double> &bounds() const { return bounds_; }

    /** Cumulative bucket counts at snapshot time (bounds + overflow). */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Quantile estimate by linear interpolation inside the bucket that
     * holds the requested rank (the observed min/max clamp the first
     * and overflow buckets). 0 when empty.
     */
    double quantile(double q) const;

    /** Zero every bucket and statistic. Approximate under racing
     *  observes, like Counter::reset(). */
    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/** One rendered histogram in a MetricsSnapshot. */
struct HistogramSnapshot
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    /** (upper bound, count) pairs; the last bound is +infinity. */
    std::vector<std::pair<double, std::uint64_t>> buckets;

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/** A point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }
};

/**
 * The process-wide registry. Metric objects are created on first
 * request for a name and live for the rest of the process; requesting
 * an existing name returns the same object (a histogram's bounds are
 * fixed by the first registration).
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         std::vector<double> bucket_bounds = {});

    /**
     * A derived gauge: @p read is evaluated at snapshot time (e.g. a
     * cache hit rate computed from two counters). Re-registering a
     * name replaces the callback. @p read must be thread-safe and must
     * not call back into the registry.
     */
    void registerCallbackGauge(std::string_view name,
                               std::function<double()> read);

    MetricsSnapshot snapshot() const;

    /** ASCII table (util/table) of every metric, sorted by name. */
    std::string renderTable() const;

    /** CSV (util/csv) of every metric, sorted by name. */
    std::string renderCsv() const;

    /** Reset every counter and histogram (gauges keep their value). */
    void reset();

  private:
    MetricsRegistry();
    ~MetricsRegistry() = delete; // intentionally leaked

    struct Impl;
    Impl *impl_;
};

/**
 * The default duration bucket ladder, in microseconds: a 1/2/5 decade
 * ladder from 1 us to 10 s, suiting everything from a single chunk to
 * a whole sweep.
 */
std::vector<double> latencyBucketsUs();

} // namespace act::util

#endif // ACT_UTIL_METRICS_H
