#include "util/csv.h"

#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace act::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("CsvWriter requires at least one column");
}

void
CsvWriter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("CSV row has ", cells.size(), " cells, expected ",
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

void
CsvWriter::addRow(const std::string &label, const std::vector<double> &values)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatSig(v, 8));
    addRow(std::move(cells));
}

std::string
CsvWriter::escapeField(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string escaped = "\"";
    for (char c : field) {
        if (c == '"')
            escaped += "\"\"";
        else
            escaped += c;
    }
    escaped += '"';
    return escaped;
}

void
CsvWriter::write(std::ostream &out) const
{
    const auto write_row = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i > 0)
                out << ',';
            out << escapeField(cells[i]);
        }
        out << '\n';
    };
    write_row(headers_);
    for (const auto &row : rows_)
        write_row(row);
}

std::string
CsvWriter::toString() const
{
    std::ostringstream out;
    write(out);
    return out.str();
}

} // namespace act::util
