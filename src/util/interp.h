/**
 * @file
 * Interpolation helpers. The fab intensity tables (Table 7) anchor a
 * handful of process nodes; real chipsets sit between anchors (16 nm,
 * 12 nm, 8 nm), so the fab model interpolates. Both linear and
 * log-x-linear interpolation over sorted breakpoint tables are provided.
 */

#ifndef ACT_UTIL_INTERP_H
#define ACT_UTIL_INTERP_H

#include <span>
#include <utility>
#include <vector>

namespace act::util {

/** Clamp @p value into [lo, hi]. */
double clamp(double value, double lo, double hi);

/** Linear interpolation between two points at parameter t in [0, 1]. */
double lerp(double a, double b, double t);

/**
 * A piecewise-linear curve over sorted (x, y) breakpoints.
 * Queries outside the domain clamp to the boundary value by default or
 * extrapolate linearly when configured to.
 */
class PiecewiseLinear
{
  public:
    enum class OutOfRange { Clamp, Extrapolate };

    /**
     * @param points breakpoints; must be non-empty and strictly
     *        increasing in x (fatal otherwise).
     * @param log_x interpolate against log(x) instead of x; suits
     *        process-node scaling where nodes span 3-28 nm.
     */
    PiecewiseLinear(std::vector<std::pair<double, double>> points,
                    bool log_x = false,
                    OutOfRange policy = OutOfRange::Clamp);

    /** Interpolated value at @p x. */
    double at(double x) const;

    double minX() const { return points_.front().first; }
    double maxX() const { return points_.back().first; }

  private:
    std::vector<std::pair<double, double>> points_;
    bool log_x_;
    OutOfRange policy_;

    double transform(double x) const;
};

} // namespace act::util

#endif // ACT_UTIL_INTERP_H
