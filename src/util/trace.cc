#include "util/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "util/logging.h"

namespace act::util {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

} // namespace detail

namespace {

/** One buffered trace event; categories are string literals. */
struct TraceEvent
{
    const char *category = nullptr;
    std::string name;
    char phase = 'X';
    std::uint32_t tid = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
};

std::uint32_t
currentTid()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t tid =
        next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

/**
 * Global event buffer. A single mutex is fine here: events are span-
 * or chunk-granular (never per-sample), and the buffer is only touched
 * while tracing is enabled. Leaked on purpose so pool workers can
 * still record during static destruction.
 */
class TraceCollector
{
  public:
    static TraceCollector &
    instance()
    {
        static TraceCollector *collector = new TraceCollector;
        return *collector;
    }

    void
    append(TraceEvent event)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events_.push_back(std::move(event));
    }

    void
    setFile(const std::string &path)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!path_.empty())
            writeLocked();
        path_ = path;
        events_.clear();
        detail::g_trace_enabled.store(!path_.empty(),
                                      std::memory_order_relaxed);
        if (!path_.empty() && !atexit_registered_) {
            atexit_registered_ = true;
            std::atexit([] { flushTrace(); });
        }
    }

    std::string
    file() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return path_;
    }

    void
    flush()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!path_.empty())
            writeLocked();
    }

  private:
    TraceCollector() = default;

    /** Escape for a JSON string body (quotes, backslash, control). */
    static void
    appendEscaped(std::string &out, const std::string &text)
    {
        for (const char c : text) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              case '\r':
                out += "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buffer[8];
                    std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buffer;
                } else {
                    out += c;
                }
            }
        }
    }

    /** Chrome "ts"/"dur" are microseconds; keep ns as the fraction. */
    static void
    appendMicros(std::string &out, std::uint64_t ns)
    {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                      static_cast<unsigned long long>(ns / 1000),
                      static_cast<unsigned long long>(ns % 1000));
        out += buffer;
    }

    void
    writeLocked()
    {
        std::ofstream out(path_, std::ios::trunc);
        if (!out) {
            warn("cannot write trace file '", path_, "'");
            return;
        }
        std::string body;
        body.reserve(events_.size() * 96 + 192);
        body += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
        // Wall-clock anchor for cross-process trace assembly: event
        // timestamps are steady-clock offsets from the process trace
        // epoch, and this metadata event records where that epoch sits
        // on the wall clock (viewers ignore unknown "M" names).
        body += "{\"name\":\"trace_epoch\",\"cat\":\"__metadata\","
                "\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
                "\"args\":{\"wall_epoch_us\":";
        body += std::to_string(detail::traceWallEpochUs());
        body += "}}";
        bool first = false;
        for (const TraceEvent &event : events_) {
            if (!first)
                body += ',';
            first = false;
            body += "{\"name\":\"";
            appendEscaped(body, event.name);
            body += "\",\"cat\":\"";
            appendEscaped(body, event.category);
            body += "\",\"ph\":\"";
            body += event.phase;
            body += "\",\"pid\":1,\"tid\":";
            body += std::to_string(event.tid);
            body += ",\"ts\":";
            appendMicros(body, event.ts_ns);
            if (event.phase == 'X') {
                body += ",\"dur\":";
                appendMicros(body, event.dur_ns);
            } else if (event.phase == 'i') {
                body += ",\"s\":\"t\"";
            }
            body += '}';
        }
        body += "]}\n";
        out << body;
    }

    mutable std::mutex mutex_;
    std::string path_;
    std::vector<TraceEvent> events_;
    bool atexit_registered_ = false;
};

/** Parse ACT_TRACE once at startup; an empty value warns. */
struct TraceEnvInit
{
    TraceEnvInit()
    {
        const char *env = std::getenv("ACT_TRACE");
        if (env == nullptr)
            return;
        if (*env == '\0') {
            warn("ignoring empty ACT_TRACE value "
                 "(expected a file path)");
            return;
        }
        setTraceFile(env);
    }
} g_trace_env_init;

} // namespace

namespace detail {

namespace {

/** The steady-clock trace epoch and its wall-clock position, captured
 *  together so the pair names one instant. */
struct TraceEpoch
{
    std::chrono::steady_clock::time_point steady;
    std::uint64_t wall_us;

    TraceEpoch()
        : steady(std::chrono::steady_clock::now()),
          wall_us(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::system_clock::now()
                      .time_since_epoch())
                  .count()))
    {}
};

const TraceEpoch &
traceEpoch()
{
    static const TraceEpoch epoch;
    return epoch;
}

} // namespace

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - traceEpoch().steady)
            .count());
}

std::uint64_t
traceWallEpochUs()
{
    return traceEpoch().wall_us;
}

void
traceComplete(const char *category, std::string name,
              std::uint64_t start_ns, std::uint64_t end_ns)
{
    TraceEvent event;
    event.category = category;
    event.name = std::move(name);
    event.phase = 'X';
    event.tid = currentTid();
    event.ts_ns = start_ns;
    event.dur_ns = end_ns - start_ns;
    TraceCollector::instance().append(std::move(event));
}

} // namespace detail

void
setTraceFile(const std::string &path)
{
    TraceCollector::instance().setFile(path);
}

std::string
traceFile()
{
    return TraceCollector::instance().file();
}

void
flushTrace()
{
    TraceCollector::instance().flush();
}

void
traceInstant(const char *category, std::string name)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.category = category;
    event.name = std::move(name);
    event.phase = 'i';
    event.tid = currentTid();
    event.ts_ns = detail::traceNowNs();
    TraceCollector::instance().append(std::move(event));
}

} // namespace act::util
