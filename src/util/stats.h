/**
 * @file
 * Statistics helpers used by the evaluation harnesses: means, geometric
 * means, dispersion, compound growth rates, and simple least-squares fits.
 */

#ifndef ACT_UTIL_STATS_H
#define ACT_UTIL_STATS_H

#include <cstddef>
#include <span>
#include <vector>

namespace act::util {

/** Arithmetic mean; fatal on an empty input. */
double mean(std::span<const double> values);

/**
 * Geometric mean; fatal on an empty input or any non-positive value.
 * Used to aggregate per-workload speedups exactly as the paper does.
 */
double geomean(std::span<const double> values);

/** Population standard deviation. */
double stddev(std::span<const double> values);

/** Smallest / largest element; fatal on an empty input. */
double minValue(std::span<const double> values);
double maxValue(std::span<const double> values);

/** Index of the smallest / largest element; fatal on an empty input. */
std::size_t argmin(std::span<const double> values);
std::size_t argmax(std::span<const double> values);

/**
 * Compound annual growth rate implied by a time series of yearly samples:
 * (last / first)^(1 / (n - 1)). Requires at least two positive samples.
 * The paper's "1.21x annual energy efficiency improvement" (Fig. 14) is a
 * CAGR over per-generation efficiency samples.
 */
double compoundAnnualGrowth(std::span<const double> yearly_values);

/** Result of an ordinary least-squares line fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;
    /** Coefficient of determination. */
    double r2 = 0.0;
};

/** Least-squares fit; fatal unless both spans have the same size >= 2. */
LinearFit fitLine(std::span<const double> x, std::span<const double> y);

/** Normalize each element by the given baseline value. */
std::vector<double> normalizeBy(std::span<const double> values,
                                double baseline);

} // namespace act::util

#endif // ACT_UTIL_STATS_H
