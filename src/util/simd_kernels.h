/**
 * @file
 * Internal kernel table behind util/simd.h: the batch kernels the
 * Monte Carlo and fleet replay hot paths need (unit-stream RNG fill,
 * uniform and triangular inverse-CDF transforms, the Eq. 5 ratio
 * kernel, multi-stream job draws, the grid-power transform, and the
 * fleet window-cost/argmin pair), as per-level tables of function
 * pointers. Problem descriptors are plain PODs so the per-level
 * translation units -- one of which is compiled with -mavx2 -- depend
 * on nothing above util.
 *
 * The scalar table is the semantic reference: each vector kernel must
 * reproduce its outputs bit-for-bit on every input (tested in
 * tests/util_simd_test.cc). Callers normally go through
 * activeKernels(); tests index a specific level with kernels().
 */

#ifndef ACT_UTIL_SIMD_KERNELS_H
#define ACT_UTIL_SIMD_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace act::util::simd {

/** The xorshift64* output multiplier (Xorshift64Star::next()). */
inline constexpr std::uint64_t kXorshiftMultiplier =
    0x2545F4914F6CDD1DULL;

/** Uniform over [a, a + ba): value = a + ba * u. */
struct UniformTransform
{
    double a = 0.0;
    double ba = 0.0;
};

/**
 * Triangular over [a, b] with mode c, inverse-CDF sampled. The
 * precomputed differences keep the scalar sampler's exact expression
 * shapes: `u * ba * ca` associates as `(u * ba) * ca`.
 */
struct TriangularTransform
{
    double a = 0.0;
    double b = 0.0;
    double ba = 0.0;    ///< b - a
    double ca = 0.0;    ///< c - a
    double bc = 0.0;    ///< b - c
    double pivot = 0.0; ///< (c - a) / (b - a)
};

/** Grid-power transform: out = (idle_w + span_w * u) / 1000 * pue,
 *  i.e. server::powerAtUtilization in watts folded into grid kW. The
 *  span is precomputed (peak - idle) exactly as the scalar expression
 *  computes it, so the kernel keeps the scalar tree. */
struct PowerTransform
{
    double idle_w = 0.0;
    double span_w = 0.0;
    double pue = 1.0;
};

/**
 * One job's window-cost evaluation over a cyclic intensity series:
 * for each shift k in [0, count), the duration-weighted intensity of
 * the window starting at sample (start0 + k). Mirrors the fleet
 * replayer's weightAt()/sumSamples() pair exactly:
 *
 *   s0     = (start0 + k) % n
 *   sum    = base + (s0 + rem <= n
 *                      ? prefix[s0 + rem] - prefix[s0]
 *                      : (prefix[n] - prefix[s0]) + prefix[s0+rem-n])
 *   out[k] = sum * step  (+ grams2x[s0 + rem] * tail_hours if tail)
 *
 * base = double(full / n) * prefix[n] and rem = full % n are per-job
 * constants (full = whole samples covered); grams2x is the series
 * doubled back-to-back so grams2x[s0 + rem] == grams[(s0 + rem) % n]
 * without a per-lane modulo. The vector kernels split [0, count) into
 * segments of uniform branch (wrap vs non-wrap) so loads stay
 * contiguous and every lane keeps the scalar association.
 */
struct WindowCostProblem
{
    const double *prefix = nullptr;  ///< n + 1 cyclic prefix sums
    const double *grams2x = nullptr; ///< 2n samples (series doubled)
    std::size_t n = 0;               ///< series length
    std::size_t start0 = 0;          ///< window start of shift 0
    std::size_t count = 0;           ///< shifts evaluated
    std::size_t rem = 0;             ///< full % n
    double base = 0.0;               ///< double(full / n) * prefix[n]
    double step = 0.0;               ///< sample step, hours
    double tail_hours = 0.0;         ///< fractional tail; <= 0 -> none
};

/** One Eq. 5 term: a per-sample SoA column or a compiled constant
 *  (values[0]). */
struct RatioTerm
{
    const double *values = nullptr;
    bool column = false;
};

/** The full Eq. 5 evaluation problem, resolved by EvalPlan. */
struct RatioTerms
{
    RatioTerm ci;
    RatioTerm epa;
    RatioTerm gpa;
    RatioTerm mpa;
    RatioTerm yield;
    RatioTerm abatement;
    double gpa95 = 0.0;
    double gpa99 = 0.0;
    /** Recompute GPA from the abatement term via the Table 7 columns
     *  (the abatement-bound plan shape); else read the gpa term. */
    bool recompute_gpa = false;
};

/**
 * One dispatch level's kernels. All kernels are pure (no global
 * state) and safe to call concurrently from many threads.
 */
struct KernelTable
{
    /**
     * Emit the next @p n values of Xorshift64Star::nextUnit() for the
     * generator whose raw state is @p state, and return the state the
     * scalar generator would hold after those n next() calls. The
     * vector levels run lane-interleaved blocks with a scalar tail;
     * the emitted sequence is the scalar sequence exactly.
     */
    std::uint64_t (*fill_units)(std::uint64_t state, double *dst,
                                std::size_t n);

    /** out[s] = a + ba * units[s * stride] for s in [0, n). */
    void (*transform_uniform)(const double *units, std::size_t stride,
                              std::size_t n, const UniformTransform &tr,
                              double *out);

    /** Triangular inverse CDF of units[s * stride] into out[s]. */
    void (*transform_triangular)(const double *units,
                                 std::size_t stride, std::size_t n,
                                 const TriangularTransform &tr,
                                 double *out);

    /** The Eq. 5 ratio kernel over n samples into out. Performs no
     *  validation; callers run the range checks first. */
    void (*eval_ratio)(const RatioTerms &terms, std::size_t n,
                       double *out);

    /**
     * True when every p[s], s in [0, n), lies in (lo, hi] when
     * @p lo_exclusive, else in [lo, hi]; NaN is never within. A
     * validation fast path: callers that need a diagnostic re-scan
     * in their original order on failure, so which element failed
     * first is not reported here.
     */
    bool (*all_within)(const double *p, std::size_t n, double lo,
                       double hi, bool lo_exclusive);

    /**
     * Emit @p draws nextUnit() values for each of @p jobs independent
     * xorshift64* streams, draw-major: out[d * jobs + j] is draw d of
     * the stream whose raw state is states[j]. Lane = stream, so no
     * jumps are needed -- each lane steps its own state exactly like
     * the scalar generator. States must be nonzero (Xorshift64Star's
     * constructor guarantees this via `| 1`).
     */
    void (*job_units)(const std::uint64_t *states, std::size_t jobs,
                      std::size_t draws, double *out);

    /** out[s] = (idle_w + span_w * u[s]) / 1000.0 * pue. */
    void (*power_grid_kw)(const double *u, std::size_t n,
                          const PowerTransform &tr, double *out);

    /** Window costs for shifts [0, count) into out; see
     *  WindowCostProblem. */
    void (*window_costs)(const WindowCostProblem &problem, double *out);

    /**
     * Index of the minimum of p[0..n); ties resolve to the earliest
     * index (strict-< scan semantics), matching the fleet placement
     * scan's earliest-start tie-break. n must be >= 1.
     */
    std::size_t (*argmin_first)(const double *p, std::size_t n);
};

/**
 * Advance a raw xorshift64* state by @p steps applications of the
 * state update (the update is linear over GF(2), so f^steps is a
 * 64x64 bit-matrix power, built by square-and-multiply and applied in
 * O(64^2)). A small per-thread cache keyed on @p steps makes repeated
 * jumps of the same distance -- the fill kernels' segment starts --
 * cost only the O(64^2) apply. Exact: returns the same state as
 * calling the update @p steps times.
 */
std::uint64_t xorshiftJump(std::uint64_t state, std::uint64_t steps);

/** The scalar reference kernels (always available). */
const KernelTable &scalarKernels();

/** The 2-lane tier (SSE2 on x86-64, NEON on aarch64); null when this
 *  architecture has no 2-lane backend. */
const KernelTable *sse2Kernels();

/** The 4-lane AVX2 tier; null when not compiled in. Only safe to call
 *  through when the CPU reports AVX2 (see simdLevelAvailable()). */
const KernelTable *avx2Kernels();

/** The table for @p level; fatal when that level is not compiled into
 *  this binary. Does not re-check CPU support. */
const KernelTable &kernels(SimdLevel level);

/** kernels(simdLevel()): the table the process dispatches to. */
const KernelTable &activeKernels();

} // namespace act::util::simd

#endif // ACT_UTIL_SIMD_KERNELS_H
