/**
 * @file
 * The scalar kernel table: the semantic reference every vector level
 * must match bit-for-bit. These loops are verbatim transcriptions of
 * the code they replaced -- Xorshift64Star::nextUnit() consumption,
 * the compiled Monte Carlo samplers, and the EvalPlan::evaluateBatch
 * compute loops -- so "matches the scalar kernel" continues to mean
 * "matches the pre-SIMD tree".
 */

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd_kernels.h"

namespace act::util::simd {

namespace {

std::uint64_t
fillUnitsScalar(std::uint64_t state, double *dst, std::size_t n)
{
    // Xorshift64Star::next() split into state update + output
    // multiply; the cast is exact (operand < 2^53).
    for (std::size_t i = 0; i < n; ++i) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        dst[i] = static_cast<double>(
                     (state * kXorshiftMultiplier) >> 11) *
                 0x1.0p-53;
    }
    return state;
}

void
transformUniformScalar(const double *units, std::size_t stride,
                       std::size_t n, const UniformTransform &tr,
                       double *out)
{
    for (std::size_t s = 0; s < n; ++s)
        out[s] = tr.a + tr.ba * units[s * stride];
}

void
transformTriangularScalar(const double *units, std::size_t stride,
                          std::size_t n, const TriangularTransform &tr,
                          double *out)
{
    for (std::size_t s = 0; s < n; ++s) {
        const double u = units[s * stride];
        if (u < tr.pivot)
            out[s] = tr.a + std::sqrt(u * tr.ba * tr.ca);
        else
            out[s] = tr.b - std::sqrt((1.0 - u) * tr.ba * tr.bc);
    }
}

void
evalRatioScalar(const RatioTerms &t, std::size_t n, double *out)
{
    const double *ci = t.ci.values;
    const double *epa = t.epa.values;
    const double *gpa = t.gpa.values;
    const double *mpa = t.mpa.values;
    const double *yield = t.yield.values;
    const double *abatement = t.abatement.values;
    const std::size_t ci_s = t.ci.column ? 1 : 0;
    const std::size_t epa_s = t.epa.column ? 1 : 0;
    const std::size_t gpa_s = t.gpa.column ? 1 : 0;
    const std::size_t mpa_s = t.mpa.column ? 1 : 0;
    const std::size_t yield_s = t.yield.column ? 1 : 0;
    const std::size_t ab_s = t.abatement.column ? 1 : 0;

    if (t.recompute_gpa) {
        for (std::size_t s = 0; s < n; ++s) {
            const double tt =
                (abatement[s * ab_s] - 0.95) / (0.99 - 0.95);
            // util::lerp then std::max(0.0, .), spelled out so this
            // translation unit stays dependency-free.
            const double raw = t.gpa95 + (t.gpa99 - t.gpa95) * tt;
            const double gpa_v = (0.0 < raw) ? raw : 0.0;
            out[s] = (ci[s * ci_s] * epa[s * epa_s] + gpa_v +
                      mpa[s * mpa_s]) /
                     yield[s * yield_s];
        }
        return;
    }
    for (std::size_t s = 0; s < n; ++s) {
        out[s] = (ci[s * ci_s] * epa[s * epa_s] + gpa[s * gpa_s] +
                  mpa[s * mpa_s]) /
                 yield[s * yield_s];
    }
}

void
jobUnitsScalar(const std::uint64_t *states, std::size_t jobs,
               std::size_t draws, double *out)
{
    // Per stream, exactly Xorshift64Star::nextUnit() `draws` times;
    // draw-major so each draw row is a contiguous column downstream.
    for (std::size_t j = 0; j < jobs; ++j) {
        std::uint64_t state = states[j];
        for (std::size_t d = 0; d < draws; ++d) {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            out[d * jobs + j] =
                static_cast<double>(
                    (state * kXorshiftMultiplier) >> 11) *
                0x1.0p-53;
        }
    }
}

void
powerGridKwScalar(const double *u, std::size_t n,
                  const PowerTransform &tr, double *out)
{
    // server::powerAtUtilization in watts folded into grid kW, the
    // fleet replayer's exact tree: idle + (peak - idle) * u, / 1000,
    // * pue, with span_w precomputed as the scalar sub.
    for (std::size_t s = 0; s < n; ++s)
        out[s] = (tr.idle_w + tr.span_w * u[s]) / 1000.0 * tr.pue;
}

void
windowCostsScalar(const WindowCostProblem &pr, double *out)
{
    // Verbatim transcription of the fleet replayer's per-shift
    // weightAt()/sumSamples() pair; see WindowCostProblem.
    const double *prefix = pr.prefix;
    const double *grams2x = pr.grams2x;
    const std::size_t n = pr.n;
    const bool tail = pr.tail_hours > 0.0;
    std::size_t s0 = pr.start0 % n;
    for (std::size_t k = 0; k < pr.count; ++k) {
        double sum = pr.base;
        if (s0 + pr.rem <= n)
            sum += prefix[s0 + pr.rem] - prefix[s0];
        else
            sum += (prefix[n] - prefix[s0]) + prefix[s0 + pr.rem - n];
        double weight = sum * pr.step;
        if (tail)
            weight += grams2x[s0 + pr.rem] * pr.tail_hours;
        out[k] = weight;
        if (++s0 == n)
            s0 = 0;
    }
}

std::size_t
argminFirstScalar(const double *p, std::size_t n)
{
    std::size_t best = 0;
    double best_value = p[0];
    for (std::size_t s = 1; s < n; ++s) {
        if (p[s] < best_value) {
            best_value = p[s];
            best = s;
        }
    }
    return best;
}

bool
allWithinScalar(const double *p, std::size_t n, double lo, double hi,
                bool lo_exclusive)
{
    for (std::size_t s = 0; s < n; ++s) {
        const bool above = lo_exclusive ? (p[s] > lo) : (p[s] >= lo);
        if (!(above && p[s] <= hi))
            return false;
    }
    return true;
}

/** A 64x64 matrix over GF(2): col[j] is the image of basis bit j. */
struct BitMatrix
{
    std::uint64_t col[64];
};

/** y = M x over GF(2): XOR of the columns selected by x's bits. */
inline std::uint64_t
bitMatVec(const BitMatrix &m, std::uint64_t x)
{
    std::uint64_t y = 0;
    for (int j = 0; j < 64; ++j)
        y ^= m.col[j] & (0 - ((x >> j) & 1));
    return y;
}

/** C = A B over GF(2). */
inline BitMatrix
bitMatMul(const BitMatrix &a, const BitMatrix &b)
{
    BitMatrix c;
    for (int j = 0; j < 64; ++j)
        c.col[j] = bitMatVec(a, b.col[j]);
    return c;
}

/** A^steps where A is the xorshift64* state-update matrix. */
BitMatrix
xorshiftMatrixPower(std::uint64_t steps)
{
    BitMatrix result;
    BitMatrix base;
    for (int j = 0; j < 64; ++j) {
        // Identity, and the update applied to each basis vector. The
        // update is linear: XORs of shifts, no arithmetic carries.
        result.col[j] = std::uint64_t{1} << j;
        std::uint64_t x = std::uint64_t{1} << j;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        base.col[j] = x;
    }
    while (steps != 0) {
        if (steps & 1)
            result = bitMatMul(base, result);
        base = bitMatMul(base, base);
        steps >>= 1;
    }
    return result;
}

} // namespace

std::uint64_t
xorshiftJump(std::uint64_t state, std::uint64_t steps)
{
    // The fill kernels jump by the same distance (the segment length)
    // once per lane per call, and chunk sizes repeat across a sweep,
    // so a tiny per-thread cache turns the matrix power into a one-off
    // per distance. Round-robin replacement; 0 marks an empty slot
    // (jumping by 0 steps never reaches the cache).
    if (steps == 0)
        return state;
    struct CacheEntry
    {
        std::uint64_t steps = 0;
        BitMatrix matrix;
    };
    constexpr std::size_t kCacheSize = 4;
    thread_local CacheEntry cache[kCacheSize];
    thread_local std::size_t next_slot = 0;
    for (const CacheEntry &entry : cache) {
        if (entry.steps == steps)
            return bitMatVec(entry.matrix, state);
    }
    CacheEntry &slot = cache[next_slot];
    next_slot = (next_slot + 1) % kCacheSize;
    slot.steps = steps;
    slot.matrix = xorshiftMatrixPower(steps);
    return bitMatVec(slot.matrix, state);
}

const KernelTable &
scalarKernels()
{
    static const KernelTable table = {
        &fillUnitsScalar,
        &transformUniformScalar,
        &transformTriangularScalar,
        &evalRatioScalar,
        &allWithinScalar,
        &jobUnitsScalar,
        &powerGridKwScalar,
        &windowCostsScalar,
        &argminFirstScalar,
    };
    return table;
}

} // namespace act::util::simd
