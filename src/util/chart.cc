#include "util/chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace act::util {

namespace {

std::size_t
maxLabelWidth(const std::vector<std::string> &labels)
{
    std::size_t width = 0;
    for (const auto &label : labels)
        width = std::max(width, label.size());
    return width;
}

} // namespace

std::string
renderBarChart(const std::string &title, const std::vector<BarEntry> &entries,
               int width, int significant_digits)
{
    std::ostringstream out;
    out << title << '\n';
    if (entries.empty())
        return out.str();

    double max_value = 0.0;
    std::vector<std::string> labels;
    labels.reserve(entries.size());
    for (const auto &entry : entries) {
        max_value = std::max(max_value, entry.value);
        labels.push_back(entry.label);
    }
    const std::size_t label_width = maxLabelWidth(labels);

    for (const auto &entry : entries) {
        const int bar_length =
            max_value <= 0.0
                ? 0
                : static_cast<int>(
                      std::lround(entry.value / max_value * width));
        out << "  " << entry.label
            << std::string(label_width - entry.label.size(), ' ') << " |"
            << std::string(static_cast<std::size_t>(bar_length), '#') << ' '
            << formatSig(entry.value, significant_digits);
        if (!entry.note.empty())
            out << "  " << entry.note;
        out << '\n';
    }
    return out.str();
}

std::string
renderStackedBarChart(const std::string &title, const std::string &first_name,
                      const std::string &second_name,
                      const std::vector<StackedBarEntry> &entries, int width)
{
    std::ostringstream out;
    out << title << "  [#=" << first_name << " .=" << second_name << "]\n";
    if (entries.empty())
        return out.str();

    double max_total = 0.0;
    std::vector<std::string> labels;
    labels.reserve(entries.size());
    for (const auto &entry : entries) {
        max_total = std::max(max_total, entry.first + entry.second);
        labels.push_back(entry.label);
    }
    const std::size_t label_width = maxLabelWidth(labels);

    for (const auto &entry : entries) {
        const double total = entry.first + entry.second;
        int first_length = 0;
        int second_length = 0;
        if (max_total > 0.0) {
            first_length = static_cast<int>(
                std::lround(entry.first / max_total * width));
            second_length = static_cast<int>(
                std::lround(entry.second / max_total * width));
        }
        out << "  " << entry.label
            << std::string(label_width - entry.label.size(), ' ') << " |"
            << std::string(static_cast<std::size_t>(first_length), '#')
            << std::string(static_cast<std::size_t>(second_length), '.')
            << ' ' << formatSig(total, 4) << " ("
            << formatSig(entry.first, 4) << " + "
            << formatSig(entry.second, 4) << ")\n";
    }
    return out.str();
}

} // namespace act::util
