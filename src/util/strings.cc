#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace act::util {

std::vector<std::string>
split(std::string_view text, char delimiter)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delimiter, start);
        if (pos == std::string_view::npos) {
            fields.emplace_back(text.substr(start));
            return fields;
        }
        fields.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
    }
    return text.substr(begin, end - begin);
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
formatFixed(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
formatSig(double value, int significant_digits)
{
    if (value == 0.0)
        return "0";
    const double magnitude = std::fabs(value);
    char buffer[64];
    if (magnitude >= 1e6 || magnitude < 1e-4) {
        std::snprintf(buffer, sizeof(buffer), "%.*e",
                      significant_digits - 1, value);
        return buffer;
    }
    const int leading_exponent =
        static_cast<int>(std::floor(std::log10(magnitude)));
    const int decimals =
        std::max(0, significant_digits - leading_exponent - 1);
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
join(const std::vector<std::string> &parts, std::string_view separator)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out << separator;
        out << parts[i];
    }
    return out.str();
}

} // namespace act::util
