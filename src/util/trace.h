/**
 * @file
 * Chrome trace-event JSON profiling hooks. Scoped `TRACE_SPAN(cat,
 * name)` RAII timers record complete ("ph":"X") events with per-thread
 * ids; `traceInstant()` records point events. The file written by
 * `flushTrace()` is a standard trace-event document
 * (`{"traceEvents":[...]}`) loadable in Perfetto / chrome://tracing and
 * parseable by the in-repo config JSON parser.
 *
 * Overhead contract: tracing is compiled in always but gated behind one
 * relaxed atomic flag -- with no trace file set, a TRACE_SPAN costs a
 * relaxed load and a branch (no clock read, no allocation). Enable with
 * `ACT_TRACE=<file>` in the environment, `--trace <file>` on the bench
 * binaries / CLI, or `util::setTraceFile(path)`.
 *
 * Events are buffered in memory and written on `flushTrace()`, at
 * `setTraceFile()` changes, and automatically at process exit.
 */

#ifndef ACT_UTIL_TRACE_H
#define ACT_UTIL_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace act::util {

namespace detail {

extern std::atomic<bool> g_trace_enabled;

/** Nanoseconds on the steady clock since the process trace epoch. */
std::uint64_t traceNowNs();

/**
 * Wall-clock time of the process trace epoch (the instant event
 * timestamps count from), in microseconds since the Unix epoch. The
 * writer stamps it into every trace file as a `trace_epoch` metadata
 * event so `act trace-merge` can align traces from different
 * processes onto one timeline.
 */
std::uint64_t traceWallEpochUs();

void traceComplete(const char *category, std::string name,
                   std::uint64_t start_ns, std::uint64_t end_ns);

} // namespace detail

/** True when a trace file is set and events are being recorded. */
inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/**
 * Start recording to @p path (flushing and closing any previous file
 * first); an empty path flushes and disables recording.
 */
void setTraceFile(const std::string &path);

/** The current trace file path; empty when tracing is off. */
std::string traceFile();

/** Write every buffered event to the current trace file. */
void flushTrace();

/** Record a point-in-time ("ph":"i") event. */
void traceInstant(const char *category, std::string name);

/**
 * RAII timer for one complete trace event. Captures the start time at
 * construction when tracing is enabled and records the event at
 * destruction (or an explicit `finish()`).
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, std::string name)
    {
        if (traceEnabled()) {
            category_ = category;
            name_ = std::move(name);
            start_ns_ = detail::traceNowNs();
            active_ = true;
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    ~TraceSpan() { finish(); }

    /** Record the event now instead of at scope exit. */
    void
    finish()
    {
        if (!active_)
            return;
        active_ = false;
        detail::traceComplete(category_, std::move(name_), start_ns_,
                              detail::traceNowNs());
    }

  private:
    const char *category_ = nullptr;
    std::string name_;
    std::uint64_t start_ns_ = 0;
    bool active_ = false;
};

} // namespace act::util

#define ACT_TRACE_CONCAT2(a, b) a##b
#define ACT_TRACE_CONCAT(a, b) ACT_TRACE_CONCAT2(a, b)

/** Scoped span: TRACE_SPAN("core.cpa", "miss"); */
#define TRACE_SPAN(category, name)                                     \
    ::act::util::TraceSpan ACT_TRACE_CONCAT(act_trace_span_,           \
                                            __LINE__)(category, name)

#endif // ACT_UTIL_TRACE_H
