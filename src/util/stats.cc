#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace act::util {

double
mean(std::span<const double> values)
{
    if (values.empty())
        fatal("mean() of an empty range");
    return std::accumulate(values.begin(), values.end(), 0.0) /
           static_cast<double>(values.size());
}

double
geomean(std::span<const double> values)
{
    if (values.empty())
        fatal("geomean() of an empty range");
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geomean() requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
stddev(std::span<const double> values)
{
    const double mu = mean(values);
    double sq_sum = 0.0;
    for (double v : values)
        sq_sum += (v - mu) * (v - mu);
    return std::sqrt(sq_sum / static_cast<double>(values.size()));
}

double
minValue(std::span<const double> values)
{
    if (values.empty())
        fatal("minValue() of an empty range");
    return *std::min_element(values.begin(), values.end());
}

double
maxValue(std::span<const double> values)
{
    if (values.empty())
        fatal("maxValue() of an empty range");
    return *std::max_element(values.begin(), values.end());
}

std::size_t
argmin(std::span<const double> values)
{
    if (values.empty())
        fatal("argmin() of an empty range");
    return static_cast<std::size_t>(
        std::min_element(values.begin(), values.end()) - values.begin());
}

std::size_t
argmax(std::span<const double> values)
{
    if (values.empty())
        fatal("argmax() of an empty range");
    return static_cast<std::size_t>(
        std::max_element(values.begin(), values.end()) - values.begin());
}

double
compoundAnnualGrowth(std::span<const double> yearly_values)
{
    if (yearly_values.size() < 2)
        fatal("compoundAnnualGrowth() needs at least two samples");
    const double first = yearly_values.front();
    const double last = yearly_values.back();
    if (first <= 0.0 || last <= 0.0)
        fatal("compoundAnnualGrowth() requires positive samples");
    const double periods = static_cast<double>(yearly_values.size() - 1);
    return std::pow(last / first, 1.0 / periods);
}

LinearFit
fitLine(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size() || x.size() < 2)
        fatal("fitLine() needs two equally-sized ranges of >= 2 points");

    const double n = static_cast<double>(x.size());
    const double mean_x = mean(x);
    const double mean_y = mean(y);

    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double dx = x[i] - mean_x;
        const double dy = y[i] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0)
        fatal("fitLine() with all-identical x values");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = mean_y - fit.slope * mean_x;
    fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    (void)n;
    return fit;
}

std::vector<double>
normalizeBy(std::span<const double> values, double baseline)
{
    if (baseline == 0.0)
        fatal("normalizeBy() with a zero baseline");
    std::vector<double> out;
    out.reserve(values.size());
    for (double v : values)
        out.push_back(v / baseline);
    return out;
}

} // namespace act::util
