#include "util/interp.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace act::util {

double
clamp(double value, double lo, double hi)
{
    return std::min(std::max(value, lo), hi);
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points, bool log_x,
    OutOfRange policy)
    : points_(std::move(points)), log_x_(log_x), policy_(policy)
{
    if (points_.empty())
        fatal("PiecewiseLinear requires at least one breakpoint");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first) {
            fatal("PiecewiseLinear breakpoints must be strictly "
                  "increasing in x");
        }
    }
    if (log_x_ && points_.front().first <= 0.0)
        fatal("log-x interpolation requires positive x breakpoints");
}

double
PiecewiseLinear::transform(double x) const
{
    return log_x_ ? std::log(x) : x;
}

double
PiecewiseLinear::at(double x) const
{
    if (points_.size() == 1)
        return points_.front().second;

    if (x <= points_.front().first) {
        if (policy_ == OutOfRange::Clamp)
            return points_.front().second;
        const auto &[x0, y0] = points_[0];
        const auto &[x1, y1] = points_[1];
        const double t = (transform(x) - transform(x0)) /
                         (transform(x1) - transform(x0));
        return lerp(y0, y1, t);
    }
    if (x >= points_.back().first) {
        if (policy_ == OutOfRange::Clamp)
            return points_.back().second;
        const auto &[x0, y0] = points_[points_.size() - 2];
        const auto &[x1, y1] = points_.back();
        const double t = (transform(x) - transform(x0)) /
                         (transform(x1) - transform(x0));
        return lerp(y0, y1, t);
    }

    const auto upper = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double value, const auto &point) { return value < point.first; });
    const auto lower = upper - 1;
    const double t = (transform(x) - transform(lower->first)) /
                     (transform(upper->first) - transform(lower->first));
    return lerp(lower->second, upper->second, t);
}

} // namespace act::util
