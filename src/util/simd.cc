#include "util/simd.h"

#include <atomic>
#include <string>

#include "util/env.h"
#include "util/logging.h"
#include "util/simd_kernels.h"

namespace act::util {

namespace {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

/** The resolved level, or -1 before first use. A plain atomic is
 *  enough: concurrent first uses race to store the same value. */
std::atomic<int> g_level{-1};

SimdLevel
clampToAvailable(SimdLevel level)
{
    if (simdLevelAvailable(level))
        return level;
    const SimdLevel detected = detectedSimdLevel();
    warn("SIMD level '", simdLevelName(level),
         "' is not available on this host; using '",
         simdLevelName(detected), "'");
    return detected;
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return "scalar";
    case SimdLevel::Sse2:
        return "sse2";
    case SimdLevel::Avx2:
        return "avx2";
    }
    return "unknown";
}

bool
simdLevelAvailable(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return true;
    case SimdLevel::Sse2:
        return simd::sse2Kernels() != nullptr;
    case SimdLevel::Avx2:
        return simd::avx2Kernels() != nullptr && cpuHasAvx2();
    }
    return false;
}

SimdLevel
detectedSimdLevel()
{
    if (simdLevelAvailable(SimdLevel::Avx2))
        return SimdLevel::Avx2;
    if (simdLevelAvailable(SimdLevel::Sse2))
        return SimdLevel::Sse2;
    return SimdLevel::Scalar;
}

SimdLevel
simdLevelFromName(const char *name)
{
    const std::string value(name);
    if (value == "scalar")
        return SimdLevel::Scalar;
    if (value == "sse2")
        return SimdLevel::Sse2;
    if (value == "avx2")
        return SimdLevel::Avx2;
    if (value != "auto") {
        warn("ACT_SIMD value '", value,
             "' is not scalar|sse2|avx2|auto; using auto");
    }
    return detectedSimdLevel();
}

SimdLevel
simdLevel()
{
    const int cached = g_level.load(std::memory_order_relaxed);
    if (cached >= 0)
        return static_cast<SimdLevel>(cached);
    const SimdLevel resolved = clampToAvailable(
        simdLevelFromName(envString("ACT_SIMD", "auto").c_str()));
    g_level.store(static_cast<int>(resolved),
                  std::memory_order_relaxed);
    return resolved;
}

SimdLevel
setSimdLevel(SimdLevel level)
{
    const SimdLevel actual = clampToAvailable(level);
    g_level.store(static_cast<int>(actual),
                  std::memory_order_relaxed);
    return actual;
}

namespace simd {

const KernelTable &
kernels(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Scalar:
        return scalarKernels();
    case SimdLevel::Sse2:
        if (const KernelTable *table = sse2Kernels())
            return *table;
        break;
    case SimdLevel::Avx2:
        if (const KernelTable *table = avx2Kernels())
            return *table;
        break;
    }
    fatal("SIMD kernels for level '", simdLevelName(level),
          "' are not compiled into this binary");
}

const KernelTable &
activeKernels()
{
    return kernels(simdLevel());
}

} // namespace simd

} // namespace act::util
