/**
 * @file
 * A small, dependency-free deterministic parallel execution layer for
 * the DSE hot loops (Monte Carlo, tornado sweeps, design-space
 * evaluation, scoreboard construction).
 *
 * Design contract -- determinism first:
 *  - Work is split into *static* chunks whose boundaries depend only on
 *    the iteration range and grain, never on the thread count. Threads
 *    pull chunks dynamically, but which chunk produced which result is
 *    fixed, so `parallelMapReduce` can reduce partial results in chunk
 *    order and return bit-identical output for any thread count
 *    (including 1, the serial fallback).
 *  - The thread pool is lazily started on first parallel call and is
 *    shared process-wide. Nested parallel calls from inside a pool
 *    worker degrade to serial execution rather than deadlocking.
 *  - The worker count resolves as: programmatic override
 *    (`setThreadCount`) > `ACT_THREADS` environment variable >
 *    `std::thread::hardware_concurrency()`.
 *
 * Bodies passed to these functions run concurrently and must be
 * thread-safe (pure functions over disjoint output slots are the
 * intended usage).
 */

#ifndef ACT_UTIL_PARALLEL_H
#define ACT_UTIL_PARALLEL_H

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace act::util {

/**
 * Effective worker count for parallel sections: the `setThreadCount`
 * override when set, else `ACT_THREADS` (parsed once), else the
 * hardware concurrency; always at least 1.
 */
std::size_t threadCount();

/**
 * Override the worker count for subsequent parallel sections. Pass 0 to
 * restore automatic resolution (ACT_THREADS / hardware concurrency).
 * Thread-safe; existing pool workers are retained but idle when the
 * count shrinks.
 */
void setThreadCount(std::size_t count);

/** A half-open index range [begin, end). */
struct IndexRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Split [begin, end) into consecutive chunks of @p grain indices (the
 * last chunk may be short). With grain 0 an automatic grain is chosen
 * as a function of the range size only, so chunk boundaries -- and
 * therefore reduction order -- never depend on the thread count.
 */
std::vector<IndexRange> staticChunks(std::size_t begin, std::size_t end,
                                     std::size_t grain);

/**
 * Invoke @p body(chunk_index, range) once per chunk, distributing
 * chunks over the pool. Blocks until every chunk completed. Runs
 * serially when the effective thread count is 1, the range has a single
 * chunk, or the caller is itself a pool worker.
 */
void runChunks(const std::vector<IndexRange> &chunks,
               const std::function<void(std::size_t, IndexRange)> &body);

/**
 * Parallel for over [begin, end): @p body(i) for every index, grouped
 * into static chunks of @p grain (0 = automatic). No ordering between
 * iterations; @p body must be thread-safe.
 */
void parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t)> &body);

/**
 * Deterministic map/reduce over static chunks: @p map(range) produces
 * one partial result per chunk (chunks run concurrently), then
 * @p reduce folds the partials *in chunk order* on the calling thread:
 *
 *   acc = reduce(reduce(reduce(init, m0), m1), m2) ...
 *
 * Because chunk boundaries and reduction order are thread-count
 * independent, the result is bit-identical for every thread count.
 */
template <typename T, typename Map, typename Reduce>
T
parallelMapReduce(std::size_t begin, std::size_t end, std::size_t grain,
                  Map &&map, Reduce &&reduce, T init = T{})
{
    const std::vector<IndexRange> chunks =
        staticChunks(begin, end, grain);
    std::vector<T> partial(chunks.size());
    runChunks(chunks, [&](std::size_t chunk, IndexRange range) {
        partial[chunk] = map(range);
    });
    T accumulator = std::move(init);
    for (T &part : partial)
        accumulator = reduce(std::move(accumulator), std::move(part));
    return accumulator;
}

} // namespace act::util

#endif // ACT_UTIL_PARALLEL_H
