#include "util/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace act::util {

std::int64_t
envInt(const char *name, std::int64_t fallback, std::int64_t min,
       std::int64_t max)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    char *tail = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(env, &tail, 10);
    if (tail != env && *tail == '\0' && errno != ERANGE &&
        parsed >= min && parsed <= max) {
        return static_cast<std::int64_t>(parsed);
    }
    warn("ignoring invalid ", name, " value '", std::string(env),
         "' (expected an integer in [", min, ", ", max,
         "]); using default");
    return fallback;
}

bool
envBool(const char *name, bool fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
        std::strcmp(env, "on") == 0) {
        return true;
    }
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
        std::strcmp(env, "off") == 0) {
        return false;
    }
    warn("ignoring invalid ", name, " value '", std::string(env),
         "' (expected 0/1, true/false, or on/off); using default");
    return fallback;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    if (*env == '\0') {
        warn("ignoring empty ", name, " value; using default");
        return fallback;
    }
    return env;
}

} // namespace act::util
