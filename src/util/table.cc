#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace act::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table requires at least one column");
    alignment_.assign(headers_.size(), Align::Right);
    alignment_[0] = Align::Left;
}

void
Table::setAlignment(std::vector<Align> alignment)
{
    if (alignment.size() != headers_.size())
        fatal("Table alignment size mismatch");
    alignment_ = std::move(alignment);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("Table row has ", cells.size(), " cells, expected ",
              headers_.size());
    }
    rows_.push_back({std::move(cells), pending_separator_});
    pending_separator_ = false;
}

void
Table::addRow(const std::string &label, const std::vector<double> &values,
              int significant_digits)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatSig(v, significant_digits));
    addRow(std::move(cells));
}

void
Table::addSeparator()
{
    pending_separator_ = true;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const Row &row : rows_) {
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    const auto rule = [&widths]() {
        std::string line = "+";
        for (std::size_t w : widths) {
            line.append(w + 2, '-');
            line.push_back('+');
        }
        line.push_back('\n');
        return line;
    };

    const auto render_cells =
        [this, &widths](const std::vector<std::string> &cells) {
            std::ostringstream out;
            out << "|";
            for (std::size_t c = 0; c < cells.size(); ++c) {
                const std::size_t pad = widths[c] - cells[c].size();
                out << ' ';
                if (alignment_[c] == Align::Right)
                    out << std::string(pad, ' ') << cells[c];
                else
                    out << cells[c] << std::string(pad, ' ');
                out << " |";
            }
            out << '\n';
            return out.str();
        };

    std::ostringstream out;
    out << rule();
    out << render_cells(headers_);
    out << rule();
    for (const Row &row : rows_) {
        if (row.separator_before)
            out << rule();
        out << render_cells(row.cells);
    }
    out << rule();
    return out.str();
}

} // namespace act::util
