/**
 * @file
 * Plain-text table rendering for the benchmark harness. Every table and
 * figure binary prints its rows through this class so output is uniform
 * and easy to diff against EXPERIMENTS.md.
 */

#ifndef ACT_UTIL_TABLE_H
#define ACT_UTIL_TABLE_H

#include <initializer_list>
#include <string>
#include <vector>

namespace act::util {

/** Column alignment within a rendered table. */
enum class Align { Left, Right };

/**
 * A simple monospace table builder.
 *
 * Usage:
 *   Table t({"Node", "EPA (kWh/cm2)"});
 *   t.addRow({"28nm", "0.90"});
 *   std::cout << t.render();
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Per-column alignment; defaults to Left for the first column and
     *  Right for the rest, which suits "name, numbers..." layouts. */
    void setAlignment(std::vector<Align> alignment);

    /** Append a row; fatal if the cell count mismatches the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: first cell is a label, the rest are numbers rendered
     *  with the given number of significant digits. */
    void addRow(const std::string &label, const std::vector<double> &values,
                int significant_digits = 4);

    /** Insert a horizontal rule before the next row. */
    void addSeparator();

    std::size_t rowCount() const { return rows_.size(); }

    /** Render to a string, one trailing newline included. */
    std::string render() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator_before = false;
    };

    std::vector<std::string> headers_;
    std::vector<Align> alignment_;
    std::vector<Row> rows_;
    bool pending_separator_ = false;
};

} // namespace act::util

#endif // ACT_UTIL_TABLE_H
