/**
 * @file
 * A small deterministic PRNG (xorshift64*) with the distributions the
 * library needs: uniform reals/integers, normal (Box-Muller), and
 * log-normal. Deterministic for a fixed seed across platforms, unlike
 * <random>'s distributions, so simulation results and Monte Carlo
 * percentiles are reproducible everywhere.
 */

#ifndef ACT_UTIL_RANDOM_H
#define ACT_UTIL_RANDOM_H

#include <cstddef>
#include <cstdint>

namespace act::util {

/**
 * Derive the seed of an independent child stream from a base seed and
 * a stream index, via two rounds of the SplitMix64 finalizer. Used by
 * the parallel Monte Carlo driver so that chunk c of a sweep draws
 * from stream deriveSeed(seed, c) regardless of which thread runs it:
 * the sampled sequence is a pure function of (seed, chunk layout) and
 * therefore independent of the thread count.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/** xorshift64* generator; passes BigCrush-level smoke tests and is
 *  ample for workload sampling and Monte Carlo. */
class Xorshift64Star
{
  public:
    /**
     * The `| 1` rejects the all-zero seed: zero is the fixed point of
     * the xorshift update (next() would return 0 forever), so seed 0
     * is remapped to 1. Seeds that already have their low bit set are
     * unchanged, and every historical output sequence is preserved.
     */
    explicit Xorshift64Star(std::uint64_t seed = 42)
        : state_(seed | 1)
    {}

    /** Raw generator state, for handoff to XorshiftLanes and back. */
    std::uint64_t
    state() const
    {
        return state_;
    }

    /**
     * Rebuild a generator positioned at a raw @p state (the inverse
     * of state()). The all-zero state -- unreachable through the
     * constructor but representable here -- is remapped to 1, exactly
     * what the constructor does for seed 0, instead of becoming a
     * silent stream of zeros.
     */
    static Xorshift64Star fromState(std::uint64_t state);

    /** Next raw 64-bit value. Inline: this is the innermost call of
     *  every Monte Carlo sampling loop. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform in [0, 1). */
    double
    nextUnit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound); fatal for bound == 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform real in [lo, hi). */
    double
    nextUniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextUnit();
    }

    /** Standard normal via Box-Muller. */
    double nextNormal();

    /** Normal with the given mean and standard deviation. */
    double nextNormal(double mean, double stddev);

    /**
     * Log-normal such that the *median* of the distribution equals
     * @p median and the multiplicative spread is @p sigma_factor
     * (i.e. one log-sd spans median/sigma_factor .. median*sigma_factor).
     */
    double nextLogNormal(double median, double sigma_factor);

  private:
    std::uint64_t state_;
    bool have_spare_ = false;
    double spare_ = 0.0;
};

/**
 * Multi-lane view of a Xorshift64Star stream: emits the generator's
 * nextUnit() sequence -- the exact scalar values, in the exact scalar
 * order -- but in bulk, through the active SIMD dispatch level
 * (util/simd.h). Lanes advance independent sub-states that are
 * interleaved back into scalar consumption order, with a scalar tail
 * for ragged lengths, so chunk/shard/seed contracts built on the
 * scalar generator survive bit-identically at any width.
 *
 * Usage: construct from a positioned generator, fillUnits() any
 * number of times, then scalar() to get a generator positioned as if
 * nextUnit() had been called once per emitted value. Only the uniform
 * stream is lane-accelerated; Box-Muller state (nextNormal's spare)
 * does not transfer and must be drained before handoff.
 */
class XorshiftLanes
{
  public:
    explicit XorshiftLanes(const Xorshift64Star &rng)
        : state_(rng.state())
    {}

    /** Emit the next @p n nextUnit() values into @p dst. */
    void fillUnits(double *dst, std::size_t n);

    /** The equivalent scalar generator at the current position. */
    Xorshift64Star
    scalar() const
    {
        return Xorshift64Star::fromState(state_);
    }

  private:
    std::uint64_t state_;
};

} // namespace act::util

#endif // ACT_UTIL_RANDOM_H
