/**
 * @file
 * The 2-lane kernel tier: SSE2 on x86-64 (part of the baseline ISA,
 * so no special compile flags), NEON on aarch64, a null table
 * elsewhere. The lane policies implement the surface documented in
 * simd_kernels_impl.h; see that file for why the templates are
 * included inside an anonymous namespace.
 *
 * The fiddly parts, shared with the AVX2 tier:
 *  - 64-bit multiply by the xorshift64* constant without a 64-bit
 *    vector multiply instruction (pre-AVX-512 x86 has none): three
 *    32x32->64 partial products, with the high-of-high product
 *    dropped because it shifts past bit 63.
 *  - Exact uint64 -> double for the 53-bit value v >> 11: split into
 *    a 21-bit high and 32-bit low half, convert each exactly via the
 *    2^52 magic-number trick, recombine as hi * 2^32 + lo (exact:
 *    hi * 2^32 needs <= 21 significand bits, the sum <= 53). The
 *    final * 2^-53 is a power-of-two scale, also exact.
 *  - std::max(0.0, x) and `u < pivot ? a : b` replicated with
 *    compare + blend so NaN and signed-zero lanes behave exactly like
 *    the scalar operators.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd_kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace act::util::simd {

namespace {

#include "util/simd_kernels_impl.h"

struct LanesSse2
{
    static constexpr std::size_t kLanes = 2;
    using VF = __m128d;
    using VU = __m128i;

    static VF
    bcast(double v)
    {
        return _mm_set1_pd(v);
    }
    static VF
    loadu(const double *p)
    {
        return _mm_loadu_pd(p);
    }
    static VF
    loadStride(const double *p, std::size_t stride)
    {
        return _mm_set_pd(p[stride], p[0]);
    }
    static void
    storeu(double *p, VF v)
    {
        _mm_storeu_pd(p, v);
    }
    static VF
    add(VF a, VF b)
    {
        return _mm_add_pd(a, b);
    }
    static VF
    sub(VF a, VF b)
    {
        return _mm_sub_pd(a, b);
    }
    static VF
    mul(VF a, VF b)
    {
        return _mm_mul_pd(a, b);
    }
    static VF
    div(VF a, VF b)
    {
        return _mm_div_pd(a, b);
    }
    static VF
    sqrt(VF a)
    {
        return _mm_sqrt_pd(a);
    }
    static VF
    max0(VF a)
    {
        // maxpd(a, 0): picks the second operand on NaN and on the
        // (+0, -0) tie -- exactly std::max(0.0, x).
        return _mm_max_pd(a, _mm_setzero_pd());
    }
    static VF
    blendLess(VF u, VF pivot, VF lo, VF hi)
    {
        const VF mask = _mm_cmplt_pd(u, pivot);
        return _mm_or_pd(_mm_and_pd(mask, lo),
                         _mm_andnot_pd(mask, hi));
    }
    static VF
    within(VF x, VF lo, VF hi, bool lo_exclusive)
    {
        const VF above = lo_exclusive ? _mm_cmpgt_pd(x, lo)
                                      : _mm_cmpge_pd(x, lo);
        return _mm_and_pd(above, _mm_cmple_pd(x, hi));
    }
    static bool
    allLanes(VF mask)
    {
        return _mm_movemask_pd(mask) == 0x3;
    }
    static VU
    fromLanes(const std::uint64_t *lane)
    {
        return _mm_set_epi64x(static_cast<long long>(lane[1]),
                              static_cast<long long>(lane[0]));
    }
    static std::uint64_t
    lane0(VU v)
    {
        return static_cast<std::uint64_t>(_mm_cvtsi128_si64(v));
    }
    static VU
    xorshiftStep(VU x)
    {
        x = _mm_xor_si128(x, _mm_srli_epi64(x, 12));
        x = _mm_xor_si128(x, _mm_slli_epi64(x, 25));
        x = _mm_xor_si128(x, _mm_srli_epi64(x, 27));
        return x;
    }
    static VU
    mulM(VU x)
    {
        const VU mlo = _mm_set1_epi64x(
            static_cast<long long>(kXorshiftMultiplier & 0xFFFFFFFFULL));
        const VU mhi = _mm_set1_epi64x(
            static_cast<long long>(kXorshiftMultiplier >> 32));
        const VU lolo = _mm_mul_epu32(x, mlo);
        const VU hilo = _mm_mul_epu32(_mm_srli_epi64(x, 32), mlo);
        const VU lohi = _mm_mul_epu32(x, mhi);
        return _mm_add_epi64(
            lolo, _mm_slli_epi64(_mm_add_epi64(hilo, lohi), 32));
    }
    static VF
    u32InU64ToDouble(VU v)
    {
        const VU magic = _mm_set1_epi64x(0x4330000000000000LL);
        return _mm_sub_pd(_mm_castsi128_pd(_mm_or_si128(v, magic)),
                          _mm_set1_pd(0x1.0p52));
    }
    static VF
    unitFromValue(VU v)
    {
        const VU u = _mm_srli_epi64(v, 11);
        const VU hi = _mm_srli_epi64(u, 32);
        const VU lo =
            _mm_and_si128(u, _mm_set1_epi64x(0xFFFFFFFFLL));
        const VF recombined =
            _mm_add_pd(_mm_mul_pd(u32InU64ToDouble(hi),
                                  _mm_set1_pd(0x1.0p32)),
                       u32InU64ToDouble(lo));
        return _mm_mul_pd(recombined, _mm_set1_pd(0x1.0p-53));
    }
};

} // namespace

const KernelTable *
sse2Kernels()
{
    static const KernelTable table = {
        &fillUnitsT<LanesSse2>,
        &transformUniformT<LanesSse2>,
        &transformTriangularT<LanesSse2>,
        &evalRatioT<LanesSse2>,
        &allWithinT<LanesSse2>,
        &jobUnitsT<LanesSse2>,
        &powerGridKwT<LanesSse2>,
        &windowCostsT<LanesSse2>,
        &argminFirstT<LanesSse2>,
    };
    return &table;
}

} // namespace act::util::simd

#elif defined(__aarch64__)

#include <arm_neon.h>

namespace act::util::simd {

namespace {

#include "util/simd_kernels_impl.h"

struct LanesNeon
{
    static constexpr std::size_t kLanes = 2;
    using VF = float64x2_t;
    using VU = uint64x2_t;

    static VF
    bcast(double v)
    {
        return vdupq_n_f64(v);
    }
    static VF
    loadu(const double *p)
    {
        return vld1q_f64(p);
    }
    static VF
    loadStride(const double *p, std::size_t stride)
    {
        const double lanes[2] = {p[0], p[stride]};
        return vld1q_f64(lanes);
    }
    static void
    storeu(double *p, VF v)
    {
        vst1q_f64(p, v);
    }
    static VF
    add(VF a, VF b)
    {
        return vaddq_f64(a, b);
    }
    static VF
    sub(VF a, VF b)
    {
        return vsubq_f64(a, b);
    }
    static VF
    mul(VF a, VF b)
    {
        return vmulq_f64(a, b);
    }
    static VF
    div(VF a, VF b)
    {
        return vdivq_f64(a, b);
    }
    static VF
    sqrt(VF a)
    {
        return vsqrtq_f64(a);
    }
    static VF
    max0(VF a)
    {
        // vmaxq_f64 propagates NaN, unlike std::max(0.0, x) which
        // returns 0 -- so build the select by hand.
        const VF zero = vdupq_n_f64(0.0);
        return vbslq_f64(vcgtq_f64(a, zero), a, zero);
    }
    static VF
    blendLess(VF u, VF pivot, VF lo, VF hi)
    {
        return vbslq_f64(vcltq_f64(u, pivot), lo, hi);
    }
    static VF
    within(VF x, VF lo, VF hi, bool lo_exclusive)
    {
        const uint64x2_t above = lo_exclusive ? vcgtq_f64(x, lo)
                                              : vcgeq_f64(x, lo);
        return vreinterpretq_f64_u64(
            vandq_u64(above, vcleq_f64(x, hi)));
    }
    static bool
    allLanes(VF mask)
    {
        const uint64x2_t m = vreinterpretq_u64_f64(mask);
        return (vgetq_lane_u64(m, 0) & vgetq_lane_u64(m, 1)) ==
               ~std::uint64_t{0};
    }
    static VU
    fromLanes(const std::uint64_t *lane)
    {
        return vld1q_u64(lane);
    }
    static std::uint64_t
    lane0(VU v)
    {
        return vgetq_lane_u64(v, 0);
    }
    static VU
    xorshiftStep(VU x)
    {
        x = veorq_u64(x, vshrq_n_u64(x, 12));
        x = veorq_u64(x, vshlq_n_u64(x, 25));
        x = veorq_u64(x, vshrq_n_u64(x, 27));
        return x;
    }
    static VU
    mulM(VU x)
    {
        // NEON has no 64x64 vector multiply either; two scalar
        // multiplies through a lane round-trip beat the partial-
        // product dance on every aarch64 core we care about.
        std::uint64_t lanes[2];
        vst1q_u64(lanes, x);
        lanes[0] *= kXorshiftMultiplier;
        lanes[1] *= kXorshiftMultiplier;
        return vld1q_u64(lanes);
    }
    static VF
    u32InU64ToDouble(VU v)
    {
        const VU magic = vdupq_n_u64(0x4330000000000000ULL);
        return vsubq_f64(vreinterpretq_f64_u64(vorrq_u64(v, magic)),
                         vdupq_n_f64(0x1.0p52));
    }
    static VF
    unitFromValue(VU v)
    {
        const VU u = vshrq_n_u64(v, 11);
        const VU hi = vshrq_n_u64(u, 32);
        const VU lo = vandq_u64(u, vdupq_n_u64(0xFFFFFFFFULL));
        const VF recombined =
            vaddq_f64(vmulq_f64(u32InU64ToDouble(hi),
                                vdupq_n_f64(0x1.0p32)),
                      u32InU64ToDouble(lo));
        return vmulq_f64(recombined, vdupq_n_f64(0x1.0p-53));
    }
};

} // namespace

const KernelTable *
sse2Kernels()
{
    static const KernelTable table = {
        &fillUnitsT<LanesNeon>,
        &transformUniformT<LanesNeon>,
        &transformTriangularT<LanesNeon>,
        &evalRatioT<LanesNeon>,
        &allWithinT<LanesNeon>,
        &jobUnitsT<LanesNeon>,
        &powerGridKwT<LanesNeon>,
        &windowCostsT<LanesNeon>,
        &argminFirstT<LanesNeon>,
    };
    return &table;
}

} // namespace act::util::simd

#else

namespace act::util::simd {

const KernelTable *
sse2Kernels()
{
    return nullptr;
}

} // namespace act::util::simd

#endif
