/**
 * @file
 * Strongly-typed physical quantities used throughout the ACT model.
 *
 * The ACT carbon model multiplies many per-unit intensities (g CO2 per kWh,
 * g CO2 per cm2, kWh per cm2, g CO2 per GB, ...) with base quantities.
 * Mixing these up silently is the single easiest way to produce a wrong
 * carbon estimate, so every quantity carries its dimension in the type
 * system and only dimensionally meaningful products are defined.
 *
 * Base units (value() is always expressed in these):
 *   - Mass:            grams of CO2-equivalent
 *   - Energy:          kilowatt-hours
 *   - Area:            square centimeters
 *   - Duration:        seconds
 *   - Capacity:        gigabytes
 *   - Power:           watts
 */

#ifndef ACT_UTIL_UNITS_H
#define ACT_UTIL_UNITS_H

#include <cmath>
#include <compare>
#include <cstdint>

namespace act::util {

/**
 * A dimension-tagged scalar. Two Quantity instantiations with different
 * tags do not convert into each other; arithmetic is only defined within
 * a tag (plus scalar scaling), and the cross-dimension products that the
 * ACT model actually needs are defined as free functions below.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Magnitude in the dimension's base unit. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator+(Quantity other) const
    { return Quantity(value_ + other.value_); }
    constexpr Quantity operator-(Quantity other) const
    { return Quantity(value_ - other.value_); }
    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator*(double scale) const
    { return Quantity(value_ * scale); }
    constexpr Quantity operator/(double scale) const
    { return Quantity(value_ / scale); }

    /** Ratio of two like quantities is a plain number. */
    constexpr double operator/(Quantity other) const
    { return value_ / other.value_; }

    constexpr Quantity &
    operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }

    constexpr Quantity &
    operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }

    constexpr Quantity &
    operator*=(double scale)
    {
        value_ *= scale;
        return *this;
    }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double scale, Quantity<Tag> q)
{
    return q * scale;
}

struct MassTag {};             ///< grams CO2e
struct EnergyTag {};           ///< kilowatt-hours
struct AreaTag {};             ///< square centimeters
struct DurationTag {};         ///< seconds
struct CapacityTag {};         ///< gigabytes
struct PowerTag {};            ///< watts
struct CarbonIntensityTag {};  ///< g CO2 per kWh
struct CarbonPerAreaTag {};    ///< g CO2 per cm2
struct EnergyPerAreaTag {};    ///< kWh per cm2
struct CarbonPerCapTag {};     ///< g CO2 per GB

using Mass = Quantity<MassTag>;
using Energy = Quantity<EnergyTag>;
using Area = Quantity<AreaTag>;
using Duration = Quantity<DurationTag>;
using Capacity = Quantity<CapacityTag>;
using Power = Quantity<PowerTag>;
/** Carbon intensity of an energy source or grid (g CO2 / kWh). */
using CarbonIntensity = Quantity<CarbonIntensityTag>;
/** Carbon emitted per unit die area manufactured (g CO2 / cm2). */
using CarbonPerArea = Quantity<CarbonPerAreaTag>;
/** Fab energy consumed per unit die area manufactured (kWh / cm2). */
using EnergyPerArea = Quantity<EnergyPerAreaTag>;
/** Carbon emitted per unit memory/storage capacity (g CO2 / GB). */
using CarbonPerCapacity = Quantity<CarbonPerCapTag>;

// --- Constructors in natural units ------------------------------------

constexpr Mass grams(double g) { return Mass(g); }
constexpr Mass kilograms(double kg) { return Mass(kg * 1e3); }
constexpr Mass tonnes(double t) { return Mass(t * 1e6); }

constexpr Energy kilowattHours(double kwh) { return Energy(kwh); }
constexpr Energy wattHours(double wh) { return Energy(wh / 1e3); }
constexpr Energy joules(double j) { return Energy(j / 3.6e6); }
constexpr Energy millijoules(double mj) { return joules(mj * 1e-3); }

constexpr Area squareCentimeters(double cm2) { return Area(cm2); }
constexpr Area squareMillimeters(double mm2) { return Area(mm2 / 100.0); }

constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerDay = 86400.0;
constexpr double kDaysPerYear = 365.0;
constexpr double kSecondsPerYear = kSecondsPerDay * kDaysPerYear;

constexpr Duration seconds(double s) { return Duration(s); }
constexpr Duration milliseconds(double ms) { return Duration(ms * 1e-3); }
constexpr Duration hours(double h) { return Duration(h * kSecondsPerHour); }
constexpr Duration days(double d) { return Duration(d * kSecondsPerDay); }
constexpr Duration years(double y) { return Duration(y * kSecondsPerYear); }

constexpr Capacity gigabytes(double gb) { return Capacity(gb); }
constexpr Capacity terabytes(double tb) { return Capacity(tb * 1e3); }

constexpr Power watts(double w) { return Power(w); }
constexpr Power milliwatts(double mw) { return Power(mw * 1e-3); }

constexpr CarbonIntensity
gramsPerKilowattHour(double g)
{
    return CarbonIntensity(g);
}

constexpr CarbonPerArea gramsPerCm2(double g) { return CarbonPerArea(g); }
constexpr CarbonPerArea
kilogramsPerCm2(double kg)
{
    return CarbonPerArea(kg * 1e3);
}

constexpr EnergyPerArea
kilowattHoursPerCm2(double kwh)
{
    return EnergyPerArea(kwh);
}

constexpr CarbonPerCapacity
gramsPerGigabyte(double g)
{
    return CarbonPerCapacity(g);
}

// --- Accessors in natural units ----------------------------------------

constexpr double asKilograms(Mass m) { return m.value() / 1e3; }
constexpr double asGrams(Mass m) { return m.value(); }
constexpr double asMicrograms(Mass m) { return m.value() * 1e6; }
constexpr double asJoules(Energy e) { return e.value() * 3.6e6; }
constexpr double asMillijoules(Energy e) { return asJoules(e) * 1e3; }
constexpr double asKilowattHours(Energy e) { return e.value(); }
constexpr double asSquareMillimeters(Area a) { return a.value() * 100.0; }
constexpr double asSquareCentimeters(Area a) { return a.value(); }
constexpr double asMilliseconds(Duration d) { return d.value() * 1e3; }
constexpr double asSeconds(Duration d) { return d.value(); }
constexpr double asYears(Duration d) { return d.value() / kSecondsPerYear; }
constexpr double asGigabytes(Capacity c) { return c.value(); }
constexpr double asWatts(Power p) { return p.value(); }

// --- Dimensionally meaningful products ---------------------------------

/** OPCF = CI_use x Energy (Eq. 2). */
constexpr Mass
operator*(CarbonIntensity ci, Energy e)
{
    return Mass(ci.value() * e.value());
}

constexpr Mass operator*(Energy e, CarbonIntensity ci) { return ci * e; }

/** E_SoC = CPA x Area (Eq. 4). */
constexpr Mass
operator*(CarbonPerArea cpa, Area a)
{
    return Mass(cpa.value() * a.value());
}

constexpr Mass operator*(Area a, CarbonPerArea cpa) { return cpa * a; }

/** Fab energy for a die: EPA x Area. */
constexpr Energy
operator*(EnergyPerArea epa, Area a)
{
    return Energy(epa.value() * a.value());
}

constexpr Energy operator*(Area a, EnergyPerArea epa) { return epa * a; }

/** Carbon from converting fab energy-per-area at a fab carbon intensity. */
constexpr CarbonPerArea
operator*(CarbonIntensity ci, EnergyPerArea epa)
{
    return CarbonPerArea(ci.value() * epa.value());
}

constexpr CarbonPerArea
operator*(EnergyPerArea epa, CarbonIntensity ci)
{
    return ci * epa;
}

/** E_DRAM / E_SSD / E_HDD = CPS x Capacity (Eqs. 6-8). */
constexpr Mass
operator*(CarbonPerCapacity cps, Capacity c)
{
    return Mass(cps.value() * c.value());
}

constexpr Mass operator*(Capacity c, CarbonPerCapacity cps) { return cps * c; }

/** Operational energy = Power x Duration. */
constexpr Energy
operator*(Power p, Duration d)
{
    return joules(p.value() * d.value());
}

constexpr Energy operator*(Duration d, Power p) { return p * d; }

/** Average power = Energy / Duration. */
constexpr Power
operator/(Energy e, Duration d)
{
    return Power(asJoules(e) / d.value());
}

/** Per-unit intensities recovered from totals. */
constexpr CarbonPerArea
operator/(Mass m, Area a)
{
    return CarbonPerArea(m.value() / a.value());
}

constexpr CarbonPerCapacity
operator/(Mass m, Capacity c)
{
    return CarbonPerCapacity(m.value() / c.value());
}

constexpr CarbonIntensity
operator/(Mass m, Energy e)
{
    return CarbonIntensity(m.value() / e.value());
}

} // namespace act::util

#endif // ACT_UTIL_UNITS_H
