/**
 * @file
 * Status-message and error-reporting helpers, in the gem5 tradition.
 *
 * fatal()  -- the condition is the user's fault (bad configuration,
 *             out-of-range parameter); exits with status 1.
 * panic()  -- the condition is a bug in ACT itself; aborts.
 * warn()   -- something is questionable but execution can continue.
 * inform() -- plain status output.
 */

#ifndef ACT_UTIL_LOGGING_H
#define ACT_UTIL_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace act::util {

namespace detail {

[[noreturn]] void fatalImpl(const std::string &message);
[[noreturn]] void panicImpl(const std::string &message);
void warnImpl(const std::string &message);
void informImpl(const std::string &message);

template <typename... Args>
std::string
concatenate(Args &&...args)
{
    std::ostringstream out;
    (out << ... << std::forward<Args>(args));
    return out.str();
}

} // namespace detail

/** Abort with an error that is the user's fault. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalImpl(detail::concatenate(std::forward<Args>(args)...));
}

/** Abort with an error that indicates a bug inside ACT. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::panicImpl(detail::concatenate(std::forward<Args>(args)...));
}

/** Emit a non-fatal warning. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concatenate(std::forward<Args>(args)...));
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concatenate(std::forward<Args>(args)...));
}

} // namespace act::util

#endif // ACT_UTIL_LOGGING_H
