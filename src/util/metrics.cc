#include "util/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "util/csv.h"
#include "util/env.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace act::util {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/** Parse ACT_METRICS once at startup; invalid values warn and are
 *  treated as unset, mirroring the ACT_THREADS policy. */
struct MetricsEnvInit
{
    MetricsEnvInit()
    {
        if (envBool("ACT_METRICS", false))
            g_metrics_enabled.store(true, std::memory_order_relaxed);
    }
} g_metrics_env_init;

} // namespace

bool
metricsEnabled()
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

void
setMetricsEnabled(bool enabled)
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/** Every thread's counter slab, kept alive past thread exit so late
 *  `value()` calls still see the contribution. Leaked on purpose. */
struct SlabRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<detail::CounterSlab>> slabs;
};

SlabRegistry &
slabRegistry()
{
    static SlabRegistry *registry = new SlabRegistry;
    return *registry;
}

std::size_t
allocateCounterId()
{
    static std::atomic<std::size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

namespace detail {

CounterSlab *
registerCounterSlab()
{
    auto slab = std::make_shared<CounterSlab>();
    for (auto &value : slab->values)
        value.store(0, std::memory_order_relaxed);
    SlabRegistry &registry = slabRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.slabs.push_back(slab);
    return slab.get();
}

} // namespace detail

Counter::Counter() : id_(allocateCounterId())
{
    if (id_ >= detail::kCounterSlabSlots)
        warn("metrics counter slab exhausted (", id_,
             " counters); falling back to a shared slot");
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = spill_.load(std::memory_order_relaxed);
    if (id_ < detail::kCounterSlabSlots) {
        SlabRegistry &registry = slabRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        for (const auto &slab : registry.slabs)
            total += slab->values[id_].load(std::memory_order_relaxed);
    }
    return total;
}

void
Counter::reset()
{
    spill_.store(0, std::memory_order_relaxed);
    if (id_ < detail::kCounterSlabSlots) {
        SlabRegistry &registry = slabRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        for (const auto &slab : registry.slabs)
            slab->values[id_].store(0, std::memory_order_relaxed);
    }
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)),
      buckets_(bounds_.size() + 1)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        panic("histogram bucket bounds must be ascending");
}

void
Histogram::observe(double value)
{
    // count/sum/min/max are always live, like counters: means and
    // ranges survive into snapshots and metrics documents even when
    // bucket collection (and the clock reads feeding most histograms)
    // is off. Only the bucket scan is gated.
    if (metricsEnabled()) {
        const auto bucket =
            std::lower_bound(bounds_.begin(), bounds_.end(), value);
        buckets_[static_cast<std::size_t>(bucket - bounds_.begin())]
            .fetch_add(1, std::memory_order_relaxed);
    }
    const std::uint64_t previous =
        count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    if (previous == 0) {
        // First observation seeds min/max so the CAS loops below start
        // from a real value rather than 0.
        min_.store(value, std::memory_order_relaxed);
        max_.store(value, std::memory_order_relaxed);
        return;
    }
    double seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

std::uint64_t
Histogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Histogram::min() const
{
    return min_.load(std::memory_order_relaxed);
}

double
Histogram::max() const
{
    return max_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts;
    counts.reserve(buckets_.size());
    for (const auto &bucket : buckets_)
        counts.push_back(bucket.load(std::memory_order_relaxed));
    return counts;
}

double
Histogram::quantile(double q) const
{
    const std::vector<std::uint64_t> counts = bucketCounts();
    std::uint64_t total = 0;
    for (std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    const double rank = q * static_cast<double>(total);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += counts[i];
        if (static_cast<double>(cumulative) < rank)
            continue;
        // Interpolate inside this bucket; the observed min/max clamp
        // the open-ended first and overflow buckets.
        const double lo = i == 0 ? min() : bounds_[i - 1];
        const double hi = i < bounds_.size() ? bounds_[i] : max();
        const double fraction =
            (rank - before) / static_cast<double>(counts[i]);
        const double clamped = std::clamp(fraction, 0.0, 1.0);
        return std::clamp(lo + (hi - lo) * clamped,
                          std::min(min(), hi), max());
    }
    return max();
}

void
Histogram::reset()
{
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
}

/** Name-keyed maps; node-based so references stay valid forever. */
struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms;
    std::map<std::string, std::function<double()>, std::less<>>
        callback_gauges;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry &
MetricsRegistry::instance()
{
    // Leaked on purpose: pool workers and static destructors may still
    // bump counters while the process shuts down.
    static MetricsRegistry *registry = new MetricsRegistry;
    return *registry;
}

Counter &
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto found = impl_->counters.find(name);
    if (found == impl_->counters.end()) {
        found = impl_->counters
                    .emplace(std::string(name),
                             std::make_unique<Counter>())
                    .first;
    }
    return *found->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto found = impl_->gauges.find(name);
    if (found == impl_->gauges.end()) {
        found = impl_->gauges
                    .emplace(std::string(name),
                             std::make_unique<Gauge>())
                    .first;
    }
    return *found->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<double> bucket_bounds)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto found = impl_->histograms.find(name);
    if (found == impl_->histograms.end()) {
        if (bucket_bounds.empty())
            bucket_bounds = latencyBucketsUs();
        found = impl_->histograms
                    .emplace(std::string(name),
                             std::make_unique<Histogram>(
                                 std::move(bucket_bounds)))
                    .first;
    }
    return *found->second;
}

void
MetricsRegistry::registerCallbackGauge(std::string_view name,
                                       std::function<double()> read)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->callback_gauges.insert_or_assign(std::string(name),
                                            std::move(read));
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snapshot;
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto &[name, counter] : impl_->counters)
        snapshot.counters.emplace_back(name, counter->value());
    for (const auto &[name, gauge] : impl_->gauges)
        snapshot.gauges.emplace_back(name, gauge->value());
    for (const auto &[name, read] : impl_->callback_gauges)
        snapshot.gauges.emplace_back(name, read());
    std::sort(snapshot.gauges.begin(), snapshot.gauges.end());
    for (const auto &[name, histogram] : impl_->histograms) {
        HistogramSnapshot h;
        h.name = name;
        h.count = histogram->count();
        h.sum = histogram->sum();
        h.min = histogram->min();
        h.max = histogram->max();
        h.p50 = histogram->quantile(0.50);
        h.p95 = histogram->quantile(0.95);
        const auto counts = histogram->bucketCounts();
        const auto &bounds = histogram->bounds();
        for (std::size_t i = 0; i < counts.size(); ++i) {
            const double bound =
                i < bounds.size()
                    ? bounds[i]
                    : std::numeric_limits<double>::infinity();
            h.buckets.emplace_back(bound, counts[i]);
        }
        snapshot.histograms.push_back(std::move(h));
    }
    return snapshot;
}

std::string
MetricsRegistry::renderTable() const
{
    const MetricsSnapshot data = snapshot();
    Table table({"Metric", "Count", "Mean", "P50", "P95", "Max"});
    for (const auto &[name, value] : data.counters)
        table.addRow({name, std::to_string(value), "", "", "", ""});
    for (const auto &[name, value] : data.gauges)
        table.addRow({name, "", formatSig(value, 4), "", "", ""});
    for (const auto &histogram : data.histograms) {
        table.addRow({histogram.name, std::to_string(histogram.count),
                      formatSig(histogram.mean(), 4),
                      formatSig(histogram.p50, 4),
                      formatSig(histogram.p95, 4),
                      formatSig(histogram.max, 4)});
    }
    return table.render();
}

std::string
MetricsRegistry::renderCsv() const
{
    const MetricsSnapshot data = snapshot();
    CsvWriter csv({"metric", "type", "count", "sum", "mean", "p50",
                   "p95", "min", "max"});
    for (const auto &[name, value] : data.counters)
        csv.addRow({name, "counter", std::to_string(value), "", "", "",
                    "", "", ""});
    for (const auto &[name, value] : data.gauges)
        csv.addRow({name, "gauge", "", "", formatSig(value, 6), "", "",
                    "", ""});
    for (const auto &histogram : data.histograms) {
        csv.addRow({histogram.name, "histogram",
                    std::to_string(histogram.count),
                    formatSig(histogram.sum, 6),
                    formatSig(histogram.mean(), 6),
                    formatSig(histogram.p50, 6),
                    formatSig(histogram.p95, 6),
                    formatSig(histogram.min, 6),
                    formatSig(histogram.max, 6)});
    }
    return csv.toString();
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (const auto &[name, counter] : impl_->counters)
        counter->reset();
    for (const auto &[name, histogram] : impl_->histograms)
        histogram->reset();
}

std::vector<double>
latencyBucketsUs()
{
    std::vector<double> bounds;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
        bounds.push_back(decade);
        bounds.push_back(2.0 * decade);
        bounds.push_back(5.0 * decade);
    }
    bounds.push_back(1e7); // 10 s
    return bounds;
}

} // namespace act::util
