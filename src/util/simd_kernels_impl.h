/**
 * @file
 * Width-generic implementations of the util/simd_kernels.h kernels,
 * parameterized over a lane-type policy `L` (see the SSE2/AVX2/NEON
 * translation units for the policy surface). NOT a normal header: it
 * contains no include guard and no #include directives, and is meant
 * to be included INSIDE an anonymous namespace within
 * act::util::simd, in a translation unit that already included
 * <cstddef>/<cstdint>/<cmath> and util/simd_kernels.h.
 *
 * Internal linkage is load-bearing, not style: the AVX2 translation
 * unit compiles with -mavx2, so any inline function it shared with
 * another TU could be merged by the linker into a VEX-encoded copy
 * that faults on CPUs without AVX. Anonymous-namespace inclusion
 * gives every TU its own ISA-correct copies.
 *
 * Bit-identity rules (DESIGN.md §11): every expression below keeps
 * the scalar kernel's association and operation set -- no FMA, no
 * reassociation, no fast-math identities. Vector add/sub/mul/div/sqrt
 * are IEEE-754 correctly rounded per lane, so equal expression shapes
 * give equal bits.
 *
 * Policy surface `L` must provide:
 *   kLanes                          lane count (2 or 4)
 *   VF / VU                         double / uint64 vector types
 *   bcast(double) -> VF
 *   loadu(const double*) -> VF      unaligned load of kLanes doubles
 *   loadStride(const double*, s)    gather p[0], p[s], p[2s], ...
 *   storeu(double*, VF)
 *   add/sub/mul/div(VF, VF) -> VF
 *   sqrt(VF) -> VF
 *   max0(VF) -> VF                  per-lane std::max(0.0, x) semantics
 *   blendLess(u, pivot, lo, hi)     per-lane u < pivot ? lo : hi
 *   fromLanes(const uint64_t*) -> VU
 *   lane0(VU) -> uint64_t
 *   xorshiftStep(VU) -> VU          the three xor-shift state updates
 *   mulM(VU) -> VU                  lane-wise * kXorshiftMultiplier
 *   unitFromValue(VU) -> VF         exact double((v >> 11)) * 2^-53
 *   within(x, lo, hi, lo_excl)      all-ones mask per in-range lane
 *   allLanes(VF mask) -> bool       every lane of the mask set
 */

/** One scalar xorshift64* state update: Xorshift64Star::next()
 *  without the output multiply. */
inline std::uint64_t
scalarXorshiftStep(std::uint64_t x)
{
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x;
}

/** Xorshift64Star::nextUnit() of the state scalarXorshiftStep() just
 *  produced: the 53-bit top of state * M, scaled into [0, 1). The
 *  cast is exact (the operand is < 2^53). */
inline double
scalarXorshiftUnit(std::uint64_t state)
{
    return static_cast<double>((state * kXorshiftMultiplier) >> 11) *
           0x1.0p-53;
}

/** Minimum per-lane segment length for the segment-split fill path;
 *  below it the jump-matrix applications outweigh the chain win. */
inline constexpr std::size_t kSegmentSplitMin = 64;

/**
 * Unit-stream fill, two strategies by size, both emitting exactly the
 * scalar sequence (f is the xorshift update, v_k the k-th nextUnit()).
 *
 * Large n (segment >= kSegmentSplitMin): segment-split. The first
 * W*(n/W) values are cut into W equal segments and lane j starts at
 * f^(j*seg) via the GF(2) jump (xorshiftJump), so one vector f-step
 * advances all W segments at once -- the serial f-chain, the
 * bottleneck of the interleaved path, shrinks by W. Lane j's t-th
 * output is v_{j*seg + t + 1}, stored straight into its segment
 * through a W-wide spill (store-forwarded, no shuffle network
 * needed). The tail and returned state resume from f^(W*seg), one
 * cached jump from lane W-1's start.
 *
 * Small n: lane-interleaved blocks. Lane j of the state vector holds
 * f^(t*W + j); each block applies vector-f once -- the W lane outputs
 * are consecutive scalar values v_{t*W+1} .. v_{t*W+W} in lane order
 * -- then f another W-1 times to restore the invariant. The serial
 * chain runs at scalar cost; the win is vectorizing the output
 * multiply, the exact int->double conversion, and the downstream
 * transforms. Lane 0 tracks the scalar generator at block boundaries,
 * so the ragged tail (and returned state) is plain scalar stepping.
 */
template <class L>
std::uint64_t
fillUnitsT(std::uint64_t state, double *dst, std::size_t n)
{
    constexpr std::size_t W = L::kLanes;
    const std::size_t seg = n / W;
    if (seg >= kSegmentSplitMin) {
        std::uint64_t lane[W];
        lane[0] = state;
        for (std::size_t j = 1; j < W; ++j)
            lane[j] = xorshiftJump(lane[j - 1], seg);
        typename L::VU v = L::fromLanes(lane);
        double spill[W];
        for (std::size_t t = 0; t < seg; ++t) {
            v = L::xorshiftStep(v);
            L::storeu(spill, L::unitFromValue(L::mulM(v)));
            for (std::size_t j = 0; j < W; ++j)
                dst[j * seg + t] = spill[j];
        }
        state = xorshiftJump(lane[W - 1], seg);
        for (std::size_t filled = W * seg; filled < n; ++filled) {
            state = scalarXorshiftStep(state);
            dst[filled] = scalarXorshiftUnit(state);
        }
        return state;
    }
    std::size_t filled = 0;
    if (n >= 2 * W) {
        std::uint64_t lane[W];
        lane[0] = state;
        for (std::size_t j = 1; j < W; ++j)
            lane[j] = scalarXorshiftStep(lane[j - 1]);
        typename L::VU v = L::fromLanes(lane);
        const std::size_t blocks = n / W;
        for (std::size_t b = 0; b < blocks; ++b) {
            v = L::xorshiftStep(v);
            L::storeu(dst + b * W, L::unitFromValue(L::mulM(v)));
            for (std::size_t k = 1; k < W; ++k)
                v = L::xorshiftStep(v);
        }
        state = L::lane0(v);
        filled = blocks * W;
    }
    for (; filled < n; ++filled) {
        state = scalarXorshiftStep(state);
        dst[filled] = scalarXorshiftUnit(state);
    }
    return state;
}

/** Load kLanes consecutive samples of a unit column that is laid out
 *  at @p stride doubles per sample (1 = contiguous, otherwise the
 *  sample-major interleave the fused Monte Carlo chunk produces). */
template <class L>
typename L::VF
loadUnitsT(const double *units, std::size_t stride, std::size_t s)
{
    if (stride == 1)
        return L::loadu(units + s);
    return L::loadStride(units + s * stride, stride);
}

template <class L>
void
transformUniformT(const double *units, std::size_t stride,
                  std::size_t n, const UniformTransform &tr,
                  double *out)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF va = L::bcast(tr.a);
    const typename L::VF vba = L::bcast(tr.ba);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF u = loadUnitsT<L>(units, stride, s);
        L::storeu(out + s, L::add(va, L::mul(vba, u)));
    }
    for (; s < n; ++s)
        out[s] = tr.a + tr.ba * units[s * stride];
}

template <class L>
void
transformTriangularT(const double *units, std::size_t stride,
                     std::size_t n, const TriangularTransform &tr,
                     double *out)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF va = L::bcast(tr.a);
    const typename L::VF vb = L::bcast(tr.b);
    const typename L::VF vba = L::bcast(tr.ba);
    const typename L::VF vca = L::bcast(tr.ca);
    const typename L::VF vbc = L::bcast(tr.bc);
    const typename L::VF vpivot = L::bcast(tr.pivot);
    const typename L::VF vone = L::bcast(1.0);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF u = loadUnitsT<L>(units, stride, s);
        // Both branches of the scalar `u < pivot` are evaluated and
        // blended; each keeps its scalar association -- (u * ba) * ca
        // and ((1 - u) * ba) * bc -- and sqrt of a non-negative
        // operand never traps, so the untaken lane is harmless.
        const typename L::VF low =
            L::add(va, L::sqrt(L::mul(L::mul(u, vba), vca)));
        const typename L::VF high = L::sub(
            vb, L::sqrt(L::mul(L::mul(L::sub(vone, u), vba), vbc)));
        L::storeu(out + s, L::blendLess(u, vpivot, low, high));
    }
    for (; s < n; ++s) {
        const double u = units[s * stride];
        if (u < tr.pivot)
            out[s] = tr.a + std::sqrt(u * tr.ba * tr.ca);
        else
            out[s] = tr.b - std::sqrt((1.0 - u) * tr.ba * tr.bc);
    }
}

template <class L>
bool
allWithinT(const double *p, std::size_t n, double lo, double hi,
           bool lo_exclusive)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF vlo = L::bcast(lo);
    const typename L::VF vhi = L::bcast(hi);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF mask =
            L::within(L::loadu(p + s), vlo, vhi, lo_exclusive);
        // One predictable branch per vector: validation data is
        // overwhelmingly all-valid, and a failure is fatal anyway.
        if (!L::allLanes(mask))
            return false;
    }
    for (; s < n; ++s) {
        const bool above = lo_exclusive ? (p[s] > lo) : (p[s] >= lo);
        if (!(above && p[s] <= hi))
            return false;
    }
    return true;
}

/**
 * An Eq. 5 term lowered for the kernel loop: a (pointer, step) pair
 * where a bound column reads p + s (step 1) and a compiled constant
 * reads a local W-wide splat at step 0 -- so the vector loop is a
 * branchless unaligned load either way, exactly like the scalar
 * kernel's `p[s * stride]`.
 */
template <class L>
struct SplatTerm
{
    const double *p = nullptr;
    std::size_t step = 0;
    double splat[L::kLanes] = {};

    void
    set(const RatioTerm &term)
    {
        if (term.column) {
            p = term.values;
            step = 1;
        } else {
            for (std::size_t k = 0; k < L::kLanes; ++k)
                splat[k] = term.values[0];
            p = splat;
            step = 0;
        }
    }
};

template <class L>
void
evalRatioT(const RatioTerms &t, std::size_t n, double *out)
{
    constexpr std::size_t W = L::kLanes;
    SplatTerm<L> ci, epa, gpa, mpa, yield, abatement;
    ci.set(t.ci);
    epa.set(t.epa);
    gpa.set(t.gpa);
    mpa.set(t.mpa);
    yield.set(t.yield);
    abatement.set(t.abatement);

    std::size_t s = 0;
    if (t.recompute_gpa) {
        // gpa95 + (gpa99 - gpa95) * t with t = (ab - 0.95) / 0.04...:
        // both the lerp difference and the denominator are loop
        // constants in the scalar kernel too (compile-time folded
        // there), so hoisting them changes no bits.
        const typename L::VF v095 = L::bcast(0.95);
        const typename L::VF vdenom = L::bcast(0.99 - 0.95);
        const typename L::VF vg95 = L::bcast(t.gpa95);
        const typename L::VF vdg = L::bcast(t.gpa99 - t.gpa95);
        for (; s + W <= n; s += W) {
            const typename L::VF ab =
                L::loadu(abatement.p + s * abatement.step);
            const typename L::VF tt =
                L::div(L::sub(ab, v095), vdenom);
            const typename L::VF gpa_s =
                L::max0(L::add(vg95, L::mul(vdg, tt)));
            const typename L::VF num = L::add(
                L::add(L::mul(L::loadu(ci.p + s * ci.step),
                              L::loadu(epa.p + s * epa.step)),
                       gpa_s),
                L::loadu(mpa.p + s * mpa.step));
            L::storeu(out + s,
                      L::div(num, L::loadu(yield.p + s * yield.step)));
        }
        for (; s < n; ++s) {
            const double ab = abatement.p[s * abatement.step];
            const double tt = (ab - 0.95) / (0.99 - 0.95);
            // util::lerp then std::max(0.0, .), spelled out.
            const double raw = t.gpa95 + (t.gpa99 - t.gpa95) * tt;
            const double gpa_s = (0.0 < raw) ? raw : 0.0;
            out[s] = (ci.p[s * ci.step] * epa.p[s * epa.step] + gpa_s +
                      mpa.p[s * mpa.step]) /
                     yield.p[s * yield.step];
        }
        return;
    }
    for (; s + W <= n; s += W) {
        const typename L::VF num =
            L::add(L::add(L::mul(L::loadu(ci.p + s * ci.step),
                                 L::loadu(epa.p + s * epa.step)),
                          L::loadu(gpa.p + s * gpa.step)),
                   L::loadu(mpa.p + s * mpa.step));
        L::storeu(out + s,
                  L::div(num, L::loadu(yield.p + s * yield.step)));
    }
    for (; s < n; ++s) {
        out[s] = (ci.p[s * ci.step] * epa.p[s * epa.step] +
                  gpa.p[s * gpa.step] + mpa.p[s * mpa.step]) /
                 yield.p[s * yield.step];
    }
}
