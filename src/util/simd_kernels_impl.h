/**
 * @file
 * Width-generic implementations of the util/simd_kernels.h kernels,
 * parameterized over a lane-type policy `L` (see the SSE2/AVX2/NEON
 * translation units for the policy surface). NOT a normal header: it
 * contains no include guard and no #include directives, and is meant
 * to be included INSIDE an anonymous namespace within
 * act::util::simd, in a translation unit that already included
 * <cstddef>/<cstdint>/<cmath> and util/simd_kernels.h.
 *
 * Internal linkage is load-bearing, not style: the AVX2 translation
 * unit compiles with -mavx2, so any inline function it shared with
 * another TU could be merged by the linker into a VEX-encoded copy
 * that faults on CPUs without AVX. Anonymous-namespace inclusion
 * gives every TU its own ISA-correct copies.
 *
 * Bit-identity rules (DESIGN.md §11): every expression below keeps
 * the scalar kernel's association and operation set -- no FMA, no
 * reassociation, no fast-math identities. Vector add/sub/mul/div/sqrt
 * are IEEE-754 correctly rounded per lane, so equal expression shapes
 * give equal bits.
 *
 * Policy surface `L` must provide:
 *   kLanes                          lane count (2 or 4)
 *   VF / VU                         double / uint64 vector types
 *   bcast(double) -> VF
 *   loadu(const double*) -> VF      unaligned load of kLanes doubles
 *   loadStride(const double*, s)    gather p[0], p[s], p[2s], ...
 *   storeu(double*, VF)
 *   add/sub/mul/div(VF, VF) -> VF
 *   sqrt(VF) -> VF
 *   max0(VF) -> VF                  per-lane std::max(0.0, x) semantics
 *   blendLess(u, pivot, lo, hi)     per-lane u < pivot ? lo : hi
 *   fromLanes(const uint64_t*) -> VU
 *   lane0(VU) -> uint64_t
 *   xorshiftStep(VU) -> VU          the three xor-shift state updates
 *   mulM(VU) -> VU                  lane-wise * kXorshiftMultiplier
 *   unitFromValue(VU) -> VF         exact double((v >> 11)) * 2^-53
 *   within(x, lo, hi, lo_excl)      all-ones mask per in-range lane
 *   allLanes(VF mask) -> bool       every lane of the mask set
 */

/** One scalar xorshift64* state update: Xorshift64Star::next()
 *  without the output multiply. */
inline std::uint64_t
scalarXorshiftStep(std::uint64_t x)
{
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x;
}

/** Xorshift64Star::nextUnit() of the state scalarXorshiftStep() just
 *  produced: the 53-bit top of state * M, scaled into [0, 1). The
 *  cast is exact (the operand is < 2^53). */
inline double
scalarXorshiftUnit(std::uint64_t state)
{
    return static_cast<double>((state * kXorshiftMultiplier) >> 11) *
           0x1.0p-53;
}

/** Minimum per-lane segment length for the segment-split fill path;
 *  below it the jump-matrix applications outweigh the chain win. */
inline constexpr std::size_t kSegmentSplitMin = 64;

/**
 * Unit-stream fill, two strategies by size, both emitting exactly the
 * scalar sequence (f is the xorshift update, v_k the k-th nextUnit()).
 *
 * Large n (segment >= kSegmentSplitMin): segment-split. The first
 * W*(n/W) values are cut into W equal segments and lane j starts at
 * f^(j*seg) via the GF(2) jump (xorshiftJump), so one vector f-step
 * advances all W segments at once -- the serial f-chain, the
 * bottleneck of the interleaved path, shrinks by W. Lane j's t-th
 * output is v_{j*seg + t + 1}, stored straight into its segment
 * through a W-wide spill (store-forwarded, no shuffle network
 * needed). The tail and returned state resume from f^(W*seg), one
 * cached jump from lane W-1's start.
 *
 * Small n: lane-interleaved blocks. Lane j of the state vector holds
 * f^(t*W + j); each block applies vector-f once -- the W lane outputs
 * are consecutive scalar values v_{t*W+1} .. v_{t*W+W} in lane order
 * -- then f another W-1 times to restore the invariant. The serial
 * chain runs at scalar cost; the win is vectorizing the output
 * multiply, the exact int->double conversion, and the downstream
 * transforms. Lane 0 tracks the scalar generator at block boundaries,
 * so the ragged tail (and returned state) is plain scalar stepping.
 */
template <class L>
std::uint64_t
fillUnitsT(std::uint64_t state, double *dst, std::size_t n)
{
    constexpr std::size_t W = L::kLanes;
    const std::size_t seg = n / W;
    if (seg >= kSegmentSplitMin) {
        std::uint64_t lane[W];
        lane[0] = state;
        for (std::size_t j = 1; j < W; ++j)
            lane[j] = xorshiftJump(lane[j - 1], seg);
        typename L::VU v = L::fromLanes(lane);
        double spill[W];
        for (std::size_t t = 0; t < seg; ++t) {
            v = L::xorshiftStep(v);
            L::storeu(spill, L::unitFromValue(L::mulM(v)));
            for (std::size_t j = 0; j < W; ++j)
                dst[j * seg + t] = spill[j];
        }
        state = xorshiftJump(lane[W - 1], seg);
        for (std::size_t filled = W * seg; filled < n; ++filled) {
            state = scalarXorshiftStep(state);
            dst[filled] = scalarXorshiftUnit(state);
        }
        return state;
    }
    std::size_t filled = 0;
    if (n >= 2 * W) {
        std::uint64_t lane[W];
        lane[0] = state;
        for (std::size_t j = 1; j < W; ++j)
            lane[j] = scalarXorshiftStep(lane[j - 1]);
        typename L::VU v = L::fromLanes(lane);
        const std::size_t blocks = n / W;
        for (std::size_t b = 0; b < blocks; ++b) {
            v = L::xorshiftStep(v);
            L::storeu(dst + b * W, L::unitFromValue(L::mulM(v)));
            for (std::size_t k = 1; k < W; ++k)
                v = L::xorshiftStep(v);
        }
        state = L::lane0(v);
        filled = blocks * W;
    }
    for (; filled < n; ++filled) {
        state = scalarXorshiftStep(state);
        dst[filled] = scalarXorshiftUnit(state);
    }
    return state;
}

/** Load kLanes consecutive samples of a unit column that is laid out
 *  at @p stride doubles per sample (1 = contiguous, otherwise the
 *  sample-major interleave the fused Monte Carlo chunk produces). */
template <class L>
typename L::VF
loadUnitsT(const double *units, std::size_t stride, std::size_t s)
{
    if (stride == 1)
        return L::loadu(units + s);
    return L::loadStride(units + s * stride, stride);
}

template <class L>
void
transformUniformT(const double *units, std::size_t stride,
                  std::size_t n, const UniformTransform &tr,
                  double *out)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF va = L::bcast(tr.a);
    const typename L::VF vba = L::bcast(tr.ba);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF u = loadUnitsT<L>(units, stride, s);
        L::storeu(out + s, L::add(va, L::mul(vba, u)));
    }
    for (; s < n; ++s)
        out[s] = tr.a + tr.ba * units[s * stride];
}

template <class L>
void
transformTriangularT(const double *units, std::size_t stride,
                     std::size_t n, const TriangularTransform &tr,
                     double *out)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF va = L::bcast(tr.a);
    const typename L::VF vb = L::bcast(tr.b);
    const typename L::VF vba = L::bcast(tr.ba);
    const typename L::VF vca = L::bcast(tr.ca);
    const typename L::VF vbc = L::bcast(tr.bc);
    const typename L::VF vpivot = L::bcast(tr.pivot);
    const typename L::VF vone = L::bcast(1.0);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF u = loadUnitsT<L>(units, stride, s);
        // Both branches of the scalar `u < pivot` are evaluated and
        // blended; each keeps its scalar association -- (u * ba) * ca
        // and ((1 - u) * ba) * bc -- and sqrt of a non-negative
        // operand never traps, so the untaken lane is harmless.
        const typename L::VF low =
            L::add(va, L::sqrt(L::mul(L::mul(u, vba), vca)));
        const typename L::VF high = L::sub(
            vb, L::sqrt(L::mul(L::mul(L::sub(vone, u), vba), vbc)));
        L::storeu(out + s, L::blendLess(u, vpivot, low, high));
    }
    for (; s < n; ++s) {
        const double u = units[s * stride];
        if (u < tr.pivot)
            out[s] = tr.a + std::sqrt(u * tr.ba * tr.ca);
        else
            out[s] = tr.b - std::sqrt((1.0 - u) * tr.ba * tr.bc);
    }
}

template <class L>
bool
allWithinT(const double *p, std::size_t n, double lo, double hi,
           bool lo_exclusive)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF vlo = L::bcast(lo);
    const typename L::VF vhi = L::bcast(hi);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF mask =
            L::within(L::loadu(p + s), vlo, vhi, lo_exclusive);
        // One predictable branch per vector: validation data is
        // overwhelmingly all-valid, and a failure is fatal anyway.
        if (!L::allLanes(mask))
            return false;
    }
    for (; s < n; ++s) {
        const bool above = lo_exclusive ? (p[s] > lo) : (p[s] >= lo);
        if (!(above && p[s] <= hi))
            return false;
    }
    return true;
}

/**
 * Multi-stream draw matrix: lane j of the state vector is stream j's
 * own xorshift64* state, stepped in place -- no jumps, no interleave
 * bookkeeping, because the streams are independent by construction
 * (deriveSeed per job index). Draw-major output keeps each draw row
 * contiguous for the downstream column transforms.
 */
template <class L>
void
jobUnitsT(const std::uint64_t *states, std::size_t jobs,
          std::size_t draws, double *out)
{
    constexpr std::size_t W = L::kLanes;
    std::size_t j = 0;
    for (; j + W <= jobs; j += W) {
        typename L::VU v = L::fromLanes(states + j);
        for (std::size_t d = 0; d < draws; ++d) {
            v = L::xorshiftStep(v);
            L::storeu(out + d * jobs + j,
                      L::unitFromValue(L::mulM(v)));
        }
    }
    for (; j < jobs; ++j) {
        std::uint64_t state = states[j];
        for (std::size_t d = 0; d < draws; ++d) {
            state = scalarXorshiftStep(state);
            out[d * jobs + j] = scalarXorshiftUnit(state);
        }
    }
}

template <class L>
void
powerGridKwT(const double *u, std::size_t n, const PowerTransform &tr,
             double *out)
{
    constexpr std::size_t W = L::kLanes;
    const typename L::VF vidle = L::bcast(tr.idle_w);
    const typename L::VF vspan = L::bcast(tr.span_w);
    const typename L::VF vkilo = L::bcast(1000.0);
    const typename L::VF vpue = L::bcast(tr.pue);
    std::size_t s = 0;
    for (; s + W <= n; s += W) {
        const typename L::VF watts =
            L::add(vidle, L::mul(vspan, L::loadu(u + s)));
        L::storeu(out + s, L::mul(L::div(watts, vkilo), vpue));
    }
    for (; s < n; ++s)
        out[s] = (tr.idle_w + tr.span_w * u[s]) / 1000.0 * tr.pue;
}

/**
 * Window costs, segmented: [0, count) is cut at the points where the
 * cyclic start wraps past n or the wrap/non-wrap branch flips, so
 * within a segment every lane takes the same branch and all loads are
 * contiguous. Both branch bodies keep the exact scalar association --
 * base + (hi - lo) vs base + ((prefix[n] - lo) + hi') -- which is what
 * makes the vector outputs bit-identical to the scalar scan.
 */
template <class L>
void
windowCostsT(const WindowCostProblem &pr, double *out)
{
    constexpr std::size_t W = L::kLanes;
    const std::size_t n = pr.n;
    const double *prefix = pr.prefix;
    const double *grams2x = pr.grams2x;
    const bool tail = pr.tail_hours > 0.0;
    const typename L::VF vbase = L::bcast(pr.base);
    const typename L::VF vstep = L::bcast(pr.step);
    const typename L::VF vtail = L::bcast(pr.tail_hours);
    const typename L::VF vpn = L::bcast(prefix[n]);
    std::size_t k = 0;
    std::size_t s0 = pr.start0 % n;
    while (k < pr.count) {
        const bool nonwrap = s0 + pr.rem <= n;
        // Last non-wrap start is n - rem, so that segment ends at
        // n - rem + 1 (clamped to n when rem == 0); a wrap segment
        // runs until s0 cycles back to 0.
        std::size_t seg_end = n;
        if (nonwrap && pr.rem > 0 && n - pr.rem + 1 < n)
            seg_end = n - pr.rem + 1;
        std::size_t len = seg_end - s0;
        if (len > pr.count - k)
            len = pr.count - k;
        std::size_t i = 0;
        if (nonwrap) {
            for (; i + W <= len; i += W) {
                const typename L::VF sum = L::add(
                    vbase,
                    L::sub(L::loadu(prefix + s0 + pr.rem + i),
                           L::loadu(prefix + s0 + i)));
                typename L::VF w = L::mul(sum, vstep);
                if (tail)
                    w = L::add(
                        w, L::mul(L::loadu(grams2x + s0 + pr.rem + i),
                                  vtail));
                L::storeu(out + k + i, w);
            }
            for (; i < len; ++i) {
                const double sum =
                    pr.base + (prefix[s0 + pr.rem + i] -
                               prefix[s0 + i]);
                double w = sum * pr.step;
                if (tail)
                    w += grams2x[s0 + pr.rem + i] * pr.tail_hours;
                out[k + i] = w;
            }
        } else {
            for (; i + W <= len; i += W) {
                const typename L::VF sum = L::add(
                    vbase,
                    L::add(L::sub(vpn, L::loadu(prefix + s0 + i)),
                           L::loadu(prefix + s0 + pr.rem - n + i)));
                typename L::VF w = L::mul(sum, vstep);
                if (tail)
                    w = L::add(
                        w, L::mul(L::loadu(grams2x + s0 + pr.rem + i),
                                  vtail));
                L::storeu(out + k + i, w);
            }
            for (; i < len; ++i) {
                const double sum =
                    pr.base + ((prefix[n] - prefix[s0 + i]) +
                               prefix[s0 + pr.rem - n + i]);
                double w = sum * pr.step;
                if (tail)
                    w += grams2x[s0 + pr.rem + i] * pr.tail_hours;
                out[k + i] = w;
            }
        }
        k += len;
        s0 += len;
        if (s0 >= n)
            s0 -= n;
    }
}

/**
 * First-index argmin with strict-< scan semantics. Lanes track the
 * running (value, index) of their index-stride-W subsequence -- the
 * per-lane strict < keeps each lane's earliest minimum -- then the
 * horizontal reduction picks the lexicographically smallest
 * (value, index) pair, which is exactly the scalar left-to-right
 * strict-< scan's answer. Scalar-tail indices all exceed every lane
 * index, so the plain strict < keeps ties with the vector part.
 */
template <class L>
std::size_t
argminFirstT(const double *p, std::size_t n)
{
    constexpr std::size_t W = L::kLanes;
    std::size_t best = 0;
    double best_value = p[0];
    std::size_t s = 1;
    if (n >= 2 * W) {
        double iota[W];
        for (std::size_t j = 0; j < W; ++j)
            iota[j] = static_cast<double>(j);
        typename L::VF vvalue = L::loadu(p);
        typename L::VF vindex = L::loadu(iota);
        typename L::VF vcursor = vindex;
        const typename L::VF vw =
            L::bcast(static_cast<double>(W));
        std::size_t k = W;
        for (; k + W <= n; k += W) {
            const typename L::VF v = L::loadu(p + k);
            vcursor = L::add(vcursor, vw);
            // Index blend first: both blends must see the same
            // pre-update running minimum.
            vindex = L::blendLess(v, vvalue, vcursor, vindex);
            vvalue = L::blendLess(v, vvalue, v, vvalue);
        }
        double values[W];
        double indices[W];
        L::storeu(values, vvalue);
        L::storeu(indices, vindex);
        best = static_cast<std::size_t>(indices[0]);
        best_value = values[0];
        for (std::size_t j = 1; j < W; ++j) {
            const auto index = static_cast<std::size_t>(indices[j]);
            if (values[j] < best_value ||
                (values[j] == best_value && index < best)) {
                best_value = values[j];
                best = index;
            }
        }
        s = k;
    }
    for (; s < n; ++s) {
        if (p[s] < best_value) {
            best_value = p[s];
            best = s;
        }
    }
    return best;
}

/**
 * An Eq. 5 term lowered for the kernel loop: a (pointer, step) pair
 * where a bound column reads p + s (step 1) and a compiled constant
 * reads a local W-wide splat at step 0 -- so the vector loop is a
 * branchless unaligned load either way, exactly like the scalar
 * kernel's `p[s * stride]`.
 */
template <class L>
struct SplatTerm
{
    const double *p = nullptr;
    std::size_t step = 0;
    double splat[L::kLanes] = {};

    void
    set(const RatioTerm &term)
    {
        if (term.column) {
            p = term.values;
            step = 1;
        } else {
            for (std::size_t k = 0; k < L::kLanes; ++k)
                splat[k] = term.values[0];
            p = splat;
            step = 0;
        }
    }
};

template <class L>
void
evalRatioT(const RatioTerms &t, std::size_t n, double *out)
{
    constexpr std::size_t W = L::kLanes;
    SplatTerm<L> ci, epa, gpa, mpa, yield, abatement;
    ci.set(t.ci);
    epa.set(t.epa);
    gpa.set(t.gpa);
    mpa.set(t.mpa);
    yield.set(t.yield);
    abatement.set(t.abatement);

    std::size_t s = 0;
    if (t.recompute_gpa) {
        // gpa95 + (gpa99 - gpa95) * t with t = (ab - 0.95) / 0.04...:
        // both the lerp difference and the denominator are loop
        // constants in the scalar kernel too (compile-time folded
        // there), so hoisting them changes no bits.
        const typename L::VF v095 = L::bcast(0.95);
        const typename L::VF vdenom = L::bcast(0.99 - 0.95);
        const typename L::VF vg95 = L::bcast(t.gpa95);
        const typename L::VF vdg = L::bcast(t.gpa99 - t.gpa95);
        for (; s + W <= n; s += W) {
            const typename L::VF ab =
                L::loadu(abatement.p + s * abatement.step);
            const typename L::VF tt =
                L::div(L::sub(ab, v095), vdenom);
            const typename L::VF gpa_s =
                L::max0(L::add(vg95, L::mul(vdg, tt)));
            const typename L::VF num = L::add(
                L::add(L::mul(L::loadu(ci.p + s * ci.step),
                              L::loadu(epa.p + s * epa.step)),
                       gpa_s),
                L::loadu(mpa.p + s * mpa.step));
            L::storeu(out + s,
                      L::div(num, L::loadu(yield.p + s * yield.step)));
        }
        for (; s < n; ++s) {
            const double ab = abatement.p[s * abatement.step];
            const double tt = (ab - 0.95) / (0.99 - 0.95);
            // util::lerp then std::max(0.0, .), spelled out.
            const double raw = t.gpa95 + (t.gpa99 - t.gpa95) * tt;
            const double gpa_s = (0.0 < raw) ? raw : 0.0;
            out[s] = (ci.p[s * ci.step] * epa.p[s * epa.step] + gpa_s +
                      mpa.p[s * mpa.step]) /
                     yield.p[s * yield.step];
        }
        return;
    }
    for (; s + W <= n; s += W) {
        const typename L::VF num =
            L::add(L::add(L::mul(L::loadu(ci.p + s * ci.step),
                                 L::loadu(epa.p + s * epa.step)),
                          L::loadu(gpa.p + s * gpa.step)),
                   L::loadu(mpa.p + s * mpa.step));
        L::storeu(out + s,
                  L::div(num, L::loadu(yield.p + s * yield.step)));
    }
    for (; s < n; ++s) {
        out[s] = (ci.p[s * ci.step] * epa.p[s * epa.step] +
                  gpa.p[s * gpa.step] + mpa.p[s * mpa.step]) /
                 yield.p[s * yield.step];
    }
}
