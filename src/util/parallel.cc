#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <thread>

#include "util/env.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::util {

namespace {

/** Set while the current thread is executing pool work, so nested
 *  parallel sections fall back to serial execution. */
thread_local bool tls_in_pool_worker = false;

std::atomic<std::size_t> g_thread_override{0};

std::size_t
autoThreadCount()
{
    // Parse ACT_THREADS once; the hardware count is the fallback (a
    // sentinel 0 from envInt means unset or invalid, both warned about
    // by the shared parser when the value is garbage).
    static const std::size_t resolved = [] {
        const std::int64_t parsed = envInt(
            "ACT_THREADS", 0, 1,
            std::numeric_limits<std::int64_t>::max());
        if (parsed >= 1)
            return static_cast<std::size_t>(parsed);
        const unsigned hardware = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hardware >= 1 ? hardware : 1);
    }();
    return resolved;
}

/** Pool observability instruments, registered once. Counters are
 *  always live; the histograms/gauge only fill while metrics are on
 *  (timed sections are additionally gated at the call sites so the
 *  clock reads disappear when both metrics and tracing are off). */
struct PoolInstruments
{
    Counter &jobs =
        MetricsRegistry::instance().counter("parallel.jobs");
    Counter &serial_jobs =
        MetricsRegistry::instance().counter("parallel.serial_jobs");
    Counter &chunks =
        MetricsRegistry::instance().counter("parallel.chunks");
    Histogram &chunk_us =
        MetricsRegistry::instance().histogram("parallel.chunk_us");
    Histogram &queue_wait_us = MetricsRegistry::instance().histogram(
        "parallel.queue_wait_us");
    Histogram &imbalance_pct = MetricsRegistry::instance().histogram(
        "parallel.imbalance_pct",
        {1, 2, 5, 10, 20, 30, 50, 75, 90, 100});
    Gauge &utilization_pct = MetricsRegistry::instance().gauge(
        "parallel.worker_utilization_pct");
};

PoolInstruments &
poolInstruments()
{
    static PoolInstruments *instruments = new PoolInstruments;
    return *instruments;
}

/**
 * Lazily-started shared worker pool. Jobs are generation-stamped; the
 * submitting thread participates in draining the task counter, so a
 * pool with N workers executes a job on up to N + 1 threads.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    void
    run(std::size_t tasks,
        const std::function<void(std::size_t)> &task)
    {
        // One job at a time: concurrent submitters queue up here and
        // each runs its job to completion before the next starts.
        std::lock_guard<std::mutex> submission(submit_mutex_);
        std::unique_lock<std::mutex> lock(mutex_);
        // One helper per task beyond the one the caller runs itself.
        ensureWorkers(std::min(threadCount() - 1, tasks - 1));
        job_ = &task;
        task_count_ = tasks;
        completed_.store(0, std::memory_order_relaxed);
        const std::size_t generation = ++generation_;
        ticket_.store(ticketTag(generation),
                      std::memory_order_release);
        lock.unlock();
        work_ready_.notify_all();

        drain(task, tasks, generation);

        lock.lock();
        job_done_.wait(lock, [&] {
            return completed_.load(std::memory_order_acquire) ==
                   task_count_;
        });
        job_ = nullptr;
    }

  private:
    ThreadPool() = default;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        work_ready_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    /** The generation tag in the high half of a ticket word. */
    static std::uint64_t
    ticketTag(std::size_t generation)
    {
        return (static_cast<std::uint64_t>(generation) & 0xffffffffu)
               << 32;
    }

    /**
     * Pull task indices until the job's tickets run dry. Tickets are
     * claimed by CAS on a (generation, index) word rather than a blind
     * fetch_add: a laggard thread still looping here when the next job
     * is published sees a generation mismatch and leaves, instead of
     * consuming one of the new job's indices and invoking the previous
     * job's task (a dangling reference to the old submitter's stack).
     */
    void
    drain(const std::function<void(std::size_t)> &task,
          std::size_t tasks, std::size_t generation)
    {
        const std::uint64_t tag = ticketTag(generation);
        std::uint64_t current = ticket_.load(std::memory_order_acquire);
        for (;;) {
            if ((current & ~std::uint64_t{0xffffffffu}) != tag)
                break;
            const std::size_t index =
                static_cast<std::size_t>(current & 0xffffffffu);
            if (index >= tasks)
                break;
            if (!ticket_.compare_exchange_weak(
                    current, current + 1, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                continue;
            }
            task(index);
            finishOne(tasks);
            current = ticket_.load(std::memory_order_acquire);
        }
    }

    void
    finishOne(std::size_t tasks)
    {
        if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            tasks) {
            // Lock before notifying so the submitter cannot miss the
            // wakeup between its predicate check and its sleep.
            std::lock_guard<std::mutex> lock(mutex_);
            job_done_.notify_all();
        }
    }

    void
    ensureWorkers(std::size_t want)
    {
        while (workers_.size() < want)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        tls_in_pool_worker = true;
        std::size_t seen_generation = 0;
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            work_ready_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            const std::function<void(std::size_t)> *task = job_;
            const std::size_t tasks = task_count_;
            lock.unlock();
            drain(*task, tasks, seen_generation);
            lock.lock();
        }
    }

    std::mutex submit_mutex_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable job_done_;
    std::vector<std::thread> workers_;
    bool shutdown_ = false;

    // Current job, guarded by mutex_ for publication and stamped by
    // generation_ so idle workers only pick it up once. The ticket
    // word is (generation << 32) | next-task-index; see drain().
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t task_count_ = 0;
    std::size_t generation_ = 0;
    std::atomic<std::uint64_t> ticket_{0};
    std::atomic<std::size_t> completed_{0};
};

} // namespace

std::size_t
threadCount()
{
    const std::size_t override =
        g_thread_override.load(std::memory_order_relaxed);
    return override != 0 ? override : autoThreadCount();
}

void
setThreadCount(std::size_t count)
{
    g_thread_override.store(count, std::memory_order_relaxed);
}

std::vector<IndexRange>
staticChunks(std::size_t begin, std::size_t end, std::size_t grain)
{
    if (begin > end)
        panic("staticChunks() with begin ", begin, " > end ", end);
    const std::size_t total = end - begin;
    if (total == 0)
        return {};
    if (grain == 0) {
        // Automatic grain: a fixed fan-out as a function of the range
        // size only -- never of the thread count -- so that chunk
        // boundaries (and thus reduction order) are reproducible on
        // any machine and with any ACT_THREADS setting.
        constexpr std::size_t kAutoChunkTarget = 64;
        grain = std::max<std::size_t>(
            1, (total + kAutoChunkTarget - 1) / kAutoChunkTarget);
    }
    std::vector<IndexRange> chunks;
    chunks.reserve((total + grain - 1) / grain);
    for (std::size_t start = begin; start < end; start += grain)
        chunks.push_back({start, std::min(start + grain, end)});
    return chunks;
}

namespace {

/**
 * runChunks with per-chunk timing: queue wait (job submission to chunk
 * start), chunk duration, end-of-job imbalance, and worker
 * utilization, plus one trace span per chunk and per job. Only entered
 * when metrics or tracing are enabled, so the clock reads and the
 * durations vector cost nothing in a plain run.
 */
void
runChunksInstrumented(
    const std::vector<IndexRange> &chunks, bool serial,
    const std::function<void(std::size_t, IndexRange)> &body)
{
    PoolInstruments &instruments = poolInstruments();
    TraceSpan job_span("util.parallel",
                      serial ? "runChunks.serial" : "runChunks");
    const std::uint64_t submit_ns = detail::traceNowNs();
    std::vector<std::uint64_t> durations(chunks.size(), 0);
    const auto timed_body = [&](std::size_t chunk, IndexRange range) {
        const std::uint64_t start_ns = detail::traceNowNs();
        instruments.queue_wait_us.observe(
            static_cast<double>(start_ns - submit_ns) / 1000.0);
        {
            TraceSpan chunk_span("util.parallel",
                                 "chunk#" + std::to_string(chunk));
            body(chunk, range);
        }
        const std::uint64_t duration = detail::traceNowNs() - start_ns;
        durations[chunk] = duration;
        instruments.chunk_us.observe(static_cast<double>(duration) /
                                     1000.0);
    };
    if (serial) {
        for (std::size_t chunk = 0; chunk < chunks.size(); ++chunk)
            timed_body(chunk, chunks[chunk]);
    } else {
        ThreadPool::instance().run(
            chunks.size(), [&](std::size_t chunk) {
                timed_body(chunk, chunks[chunk]);
            });
    }
    const std::uint64_t wall_ns = detail::traceNowNs() - submit_ns;
    std::uint64_t busy_ns = 0;
    std::uint64_t slowest = 0;
    std::uint64_t fastest = durations[0];
    for (const std::uint64_t duration : durations) {
        busy_ns += duration;
        slowest = std::max(slowest, duration);
        fastest = std::min(fastest, duration);
    }
    if (slowest > 0) {
        instruments.imbalance_pct.observe(
            100.0 * static_cast<double>(slowest - fastest) /
            static_cast<double>(slowest));
    }
    const std::size_t workers =
        serial ? 1 : std::min(threadCount(), chunks.size());
    if (wall_ns > 0) {
        instruments.utilization_pct.set(
            100.0 * static_cast<double>(busy_ns) /
            (static_cast<double>(wall_ns) *
             static_cast<double>(workers)));
    }
}

} // namespace

void
runChunks(const std::vector<IndexRange> &chunks,
          const std::function<void(std::size_t, IndexRange)> &body)
{
    if (chunks.empty())
        return;
    PoolInstruments &instruments = poolInstruments();
    instruments.jobs.add();
    instruments.chunks.add(chunks.size());
    const bool serial = chunks.size() == 1 || threadCount() <= 1 ||
                        tls_in_pool_worker;
    if (serial)
        instruments.serial_jobs.add();
    if (metricsEnabled() || traceEnabled()) {
        runChunksInstrumented(chunks, serial, body);
        return;
    }
    if (serial) {
        for (std::size_t chunk = 0; chunk < chunks.size(); ++chunk)
            body(chunk, chunks[chunk]);
        return;
    }
    ThreadPool::instance().run(chunks.size(), [&](std::size_t chunk) {
        body(chunk, chunks[chunk]);
    });
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const std::function<void(std::size_t)> &body)
{
    runChunks(staticChunks(begin, end, grain),
              [&](std::size_t, IndexRange range) {
                  for (std::size_t i = range.begin; i < range.end; ++i)
                      body(i);
              });
}

} // namespace act::util
