#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>

#include "util/logging.h"

namespace act::util {

namespace {

/** Set while the current thread is executing pool work, so nested
 *  parallel sections fall back to serial execution. */
thread_local bool tls_in_pool_worker = false;

std::atomic<std::size_t> g_thread_override{0};

std::size_t
autoThreadCount()
{
    // Parse ACT_THREADS once; the hardware count is the fallback.
    static const std::size_t resolved = [] {
        if (const char *env = std::getenv("ACT_THREADS")) {
            char *tail = nullptr;
            const unsigned long parsed = std::strtoul(env, &tail, 10);
            if (tail != env && *tail == '\0' && parsed >= 1)
                return static_cast<std::size_t>(parsed);
            warn("ignoring malformed ACT_THREADS value '",
                 std::string(env), "'");
        }
        const unsigned hardware = std::thread::hardware_concurrency();
        return static_cast<std::size_t>(hardware >= 1 ? hardware : 1);
    }();
    return resolved;
}

/**
 * Lazily-started shared worker pool. Jobs are generation-stamped; the
 * submitting thread participates in draining the task counter, so a
 * pool with N workers executes a job on up to N + 1 threads.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    void
    run(std::size_t tasks,
        const std::function<void(std::size_t)> &task)
    {
        // One job at a time: concurrent submitters queue up here and
        // each runs its job to completion before the next starts.
        std::lock_guard<std::mutex> submission(submit_mutex_);
        std::unique_lock<std::mutex> lock(mutex_);
        // One helper per task beyond the one the caller runs itself.
        ensureWorkers(std::min(threadCount() - 1, tasks - 1));
        job_ = &task;
        task_count_ = tasks;
        next_task_.store(0, std::memory_order_relaxed);
        completed_.store(0, std::memory_order_relaxed);
        ++generation_;
        lock.unlock();
        work_ready_.notify_all();

        drain(task, tasks);

        lock.lock();
        job_done_.wait(lock, [&] {
            return completed_.load(std::memory_order_acquire) ==
                   task_count_;
        });
        job_ = nullptr;
    }

  private:
    ThreadPool() = default;

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        work_ready_.notify_all();
        for (std::thread &worker : workers_)
            worker.join();
    }

    /** Pull task indices until the counter runs dry. */
    void
    drain(const std::function<void(std::size_t)> &task,
          std::size_t tasks)
    {
        for (;;) {
            const std::size_t index =
                next_task_.fetch_add(1, std::memory_order_relaxed);
            if (index >= tasks)
                break;
            task(index);
            finishOne(tasks);
        }
    }

    void
    finishOne(std::size_t tasks)
    {
        if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            tasks) {
            // Lock before notifying so the submitter cannot miss the
            // wakeup between its predicate check and its sleep.
            std::lock_guard<std::mutex> lock(mutex_);
            job_done_.notify_all();
        }
    }

    void
    ensureWorkers(std::size_t want)
    {
        while (workers_.size() < want)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    workerLoop()
    {
        tls_in_pool_worker = true;
        std::size_t seen_generation = 0;
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            work_ready_.wait(lock, [&] {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            const std::function<void(std::size_t)> *task = job_;
            const std::size_t tasks = task_count_;
            lock.unlock();
            drain(*task, tasks);
            lock.lock();
        }
    }

    std::mutex submit_mutex_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable job_done_;
    std::vector<std::thread> workers_;
    bool shutdown_ = false;

    // Current job, guarded by mutex_ for publication and stamped by
    // generation_ so idle workers only pick it up once.
    const std::function<void(std::size_t)> *job_ = nullptr;
    std::size_t task_count_ = 0;
    std::size_t generation_ = 0;
    std::atomic<std::size_t> next_task_{0};
    std::atomic<std::size_t> completed_{0};
};

} // namespace

std::size_t
threadCount()
{
    const std::size_t override =
        g_thread_override.load(std::memory_order_relaxed);
    return override != 0 ? override : autoThreadCount();
}

void
setThreadCount(std::size_t count)
{
    g_thread_override.store(count, std::memory_order_relaxed);
}

std::vector<IndexRange>
staticChunks(std::size_t begin, std::size_t end, std::size_t grain)
{
    if (begin > end)
        panic("staticChunks() with begin ", begin, " > end ", end);
    const std::size_t total = end - begin;
    if (total == 0)
        return {};
    if (grain == 0) {
        // Automatic grain: a fixed fan-out as a function of the range
        // size only -- never of the thread count -- so that chunk
        // boundaries (and thus reduction order) are reproducible on
        // any machine and with any ACT_THREADS setting.
        constexpr std::size_t kAutoChunkTarget = 64;
        grain = std::max<std::size_t>(
            1, (total + kAutoChunkTarget - 1) / kAutoChunkTarget);
    }
    std::vector<IndexRange> chunks;
    chunks.reserve((total + grain - 1) / grain);
    for (std::size_t start = begin; start < end; start += grain)
        chunks.push_back({start, std::min(start + grain, end)});
    return chunks;
}

void
runChunks(const std::vector<IndexRange> &chunks,
          const std::function<void(std::size_t, IndexRange)> &body)
{
    if (chunks.empty())
        return;
    if (chunks.size() == 1 || threadCount() <= 1 ||
        tls_in_pool_worker) {
        for (std::size_t chunk = 0; chunk < chunks.size(); ++chunk)
            body(chunk, chunks[chunk]);
        return;
    }
    ThreadPool::instance().run(chunks.size(), [&](std::size_t chunk) {
        body(chunk, chunks[chunk]);
    });
}

void
parallelFor(std::size_t begin, std::size_t end, std::size_t grain,
            const std::function<void(std::size_t)> &body)
{
    runChunks(staticChunks(begin, end, grain),
              [&](std::size_t, IndexRange range) {
                  for (std::size_t i = range.begin; i < range.end; ++i)
                      body(i);
              });
}

} // namespace act::util
