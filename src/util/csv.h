/**
 * @file
 * Minimal CSV emission so every bench binary can dump its series in a
 * machine-readable form (pass --csv) alongside the human-readable tables.
 */

#ifndef ACT_UTIL_CSV_H
#define ACT_UTIL_CSV_H

#include <ostream>
#include <string>
#include <vector>

namespace act::util {

/**
 * Collects rows and writes RFC-4180-style CSV (quotes fields containing
 * commas, quotes, or newlines).
 */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> headers);

    /** Append a fully-stringified row; fatal on column-count mismatch. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: label plus doubles. */
    void addRow(const std::string &label, const std::vector<double> &values);

    void write(std::ostream &out) const;
    std::string toString() const;

    static std::string escapeField(const std::string &field);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace act::util

#endif // ACT_UTIL_CSV_H
