#include "util/logging.h"

namespace act::util::detail {

void
fatalImpl(const std::string &message)
{
    std::cerr << "fatal: " << message << std::endl;
    std::exit(1);
}

void
panicImpl(const std::string &message)
{
    std::cerr << "panic: " << message << std::endl;
    std::abort();
}

void
warnImpl(const std::string &message)
{
    std::cerr << "warn: " << message << std::endl;
}

void
informImpl(const std::string &message)
{
    std::cout << "info: " << message << std::endl;
}

} // namespace act::util::detail
