/**
 * @file
 * Small string utilities shared across the library: splitting, trimming,
 * case folding, and numeric formatting for report output.
 */

#ifndef ACT_UTIL_STRINGS_H
#define ACT_UTIL_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace act::util {

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char delimiter);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** ASCII lower-case copy. */
std::string toLower(std::string_view text);

/** True when @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Format with fixed decimal places, e.g. formatFixed(1.234, 2) -> "1.23". */
std::string formatFixed(double value, int decimals);

/**
 * Format with a fixed number of significant digits, choosing fixed or
 * scientific notation based on magnitude; used for table output.
 */
std::string formatSig(double value, int significant_digits);

/** Join elements with a separator. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view separator);

} // namespace act::util

#endif // ACT_UTIL_STRINGS_H
