/**
 * @file
 * ASCII bar charts for the figure-reproduction binaries. The paper's
 * figures are re-emitted as labeled horizontal bars plus the raw series,
 * so the shape of each figure is visible directly in terminal output.
 */

#ifndef ACT_UTIL_CHART_H
#define ACT_UTIL_CHART_H

#include <string>
#include <vector>

namespace act::util {

/** One bar in a horizontal bar chart. */
struct BarEntry
{
    std::string label;
    double value = 0.0;
    /** Optional annotation appended after the numeric value. */
    std::string note;
};

/**
 * Render a horizontal bar chart. Bars are scaled to @p width characters
 * at the maximum value; each line shows label, bar, value, and note.
 */
std::string renderBarChart(const std::string &title,
                           const std::vector<BarEntry> &entries,
                           int width = 48, int significant_digits = 4);

/**
 * Render a stacked two-segment bar chart (e.g., embodied vs operational
 * carbon), using '#' for the first segment and '.' for the second.
 */
struct StackedBarEntry
{
    std::string label;
    double first = 0.0;
    double second = 0.0;
};

std::string renderStackedBarChart(const std::string &title,
                                  const std::string &first_name,
                                  const std::string &second_name,
                                  const std::vector<StackedBarEntry> &entries,
                                  int width = 48);

} // namespace act::util

#endif // ACT_UTIL_CHART_H
