#include "util/random.h"

#include <cmath>

#include "util/logging.h"
#include "util/simd_kernels.h"

namespace act::util {

namespace {

/** SplitMix64 finalizer (Steele et al.): a strong 64-bit mixer. */
std::uint64_t
splitMix64Finalize(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
}

} // namespace

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Advance the base by the SplitMix64 gamma per stream index, then
    // finalize twice so adjacent streams share no low-bit structure.
    const std::uint64_t mixed =
        base + (stream + 1) * 0x9E3779B97F4A7C15ULL;
    return splitMix64Finalize(splitMix64Finalize(mixed));
}

Xorshift64Star
Xorshift64Star::fromState(std::uint64_t state)
{
    // state == 0 is the xorshift fixed point; remap it the way the
    // constructor remaps seed 0 (0 | 1 == 1) rather than hand back a
    // generator stuck on zero.
    Xorshift64Star rng;
    rng.state_ = (state != 0) ? state : 1;
    return rng;
}

void
XorshiftLanes::fillUnits(double *dst, std::size_t n)
{
    state_ = simd::activeKernels().fill_units(state_, dst, n);
}

std::uint64_t
Xorshift64Star::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        fatal("nextBelow() with a zero bound");
    return next() % bound;
}

double
Xorshift64Star::nextNormal()
{
    if (have_spare_) {
        have_spare_ = false;
        return spare_;
    }
    // Box-Muller; avoid log(0) by nudging u1 away from zero.
    double u1 = nextUnit();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double u2 = nextUnit();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    spare_ = radius * std::sin(angle);
    have_spare_ = true;
    return radius * std::cos(angle);
}

double
Xorshift64Star::nextNormal(double mean, double stddev)
{
    return mean + stddev * nextNormal();
}

double
Xorshift64Star::nextLogNormal(double median, double sigma_factor)
{
    if (median <= 0.0 || sigma_factor <= 1.0)
        fatal("nextLogNormal() needs median > 0 and sigma factor > 1");
    return median * std::exp(std::log(sigma_factor) * nextNormal());
}

} // namespace act::util
