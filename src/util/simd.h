/**
 * @file
 * Runtime SIMD dispatch for the batch kernels: a small portable
 * abstraction over the vector widths the hot loops use (4-lane AVX2,
 * a 2-lane SSE2/NEON tier, and a scalar fallback), selected once per
 * process from CPU features with an `ACT_SIMD=scalar|sse2|avx2|auto`
 * environment override (parsed through util/env).
 *
 * The dispatch level NEVER changes results. Every vector kernel
 * computes the scalar kernel's arithmetic expression for expression --
 * no FMA contraction (the whole project builds with -ffp-contract=off)
 * and no reassociation -- so IEEE-754 per-lane semantics make each
 * lane bit-identical to the scalar loop. The level is purely a
 * throughput knob; DESIGN.md §11 states the contract and its tests.
 */

#ifndef ACT_UTIL_SIMD_H
#define ACT_UTIL_SIMD_H

namespace act::util {

/**
 * Vector-width tiers for the batch kernels. `Sse2` names the 2-lane
 * tier: SSE2 on x86-64 (always present there), NEON on aarch64. The
 * enumerator order is the preference order -- higher is wider.
 */
enum class SimdLevel
{
    Scalar = 0,
    Sse2 = 1,
    Avx2 = 2,
};

/** Display name: "scalar", "sse2", or "avx2". */
const char *simdLevelName(SimdLevel level);

/** True when kernels for @p level are compiled into this binary and
 *  supported by the CPU it is running on. Scalar is always true. */
bool simdLevelAvailable(SimdLevel level);

/** Widest available level on this build + CPU (what `auto` picks). */
SimdLevel detectedSimdLevel();

/**
 * Map an ACT_SIMD-style name to a level: "scalar", "sse2", "avx2", or
 * "auto" (the detected level). Unrecognized names warn once and fall
 * back to the detected level. The result is NOT clamped to what the
 * host supports; pair with setSimdLevel() or simdLevelAvailable().
 */
SimdLevel simdLevelFromName(const char *name);

/**
 * The active dispatch level. Resolved once on first use: the
 * `ACT_SIMD` environment variable when set (warn + detected level on
 * garbage), otherwise the detected level; a level the host cannot run
 * warns and clamps to the widest available one.
 */
SimdLevel simdLevel();

/**
 * Force the active level (tests and microbenchmarks; call sites
 * should restore `detectedSimdLevel()` afterwards). An unavailable
 * level warns and clamps. Returns the level actually installed.
 */
SimdLevel setSimdLevel(SimdLevel level);

} // namespace act::util

#endif // ACT_UTIL_SIMD_H
