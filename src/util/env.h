/**
 * @file
 * Validated environment-variable parsing shared by every ACT_* knob
 * (ACT_THREADS, ACT_METRICS, ACT_CPA_CACHE, ACT_CPA_CACHE_FILE, ...).
 * One policy everywhere: an unset variable silently yields the
 * fallback; a garbage value emits one warn() and yields the fallback,
 * never a crash or a silently wrapped number.
 */

#ifndef ACT_UTIL_ENV_H
#define ACT_UTIL_ENV_H

#include <cstdint>
#include <string>

namespace act::util {

/**
 * Parse environment variable @p name as an integer in
 * [@p min, @p max]. Returns @p fallback when the variable is unset;
 * warns and returns @p fallback when the value is non-numeric, has
 * trailing characters, or is out of range.
 */
std::int64_t envInt(const char *name, std::int64_t fallback,
                    std::int64_t min, std::int64_t max);

/**
 * Parse environment variable @p name as a boolean: "1"/"true"/"on"
 * and "0"/"false"/"off" are accepted. Returns @p fallback when unset;
 * warns and returns @p fallback on anything else.
 */
bool envBool(const char *name, bool fallback);

/**
 * Environment variable @p name as a string, or @p fallback when the
 * variable is unset or empty (an empty value warns: it is always a
 * mistake for the path-valued ACT_* variables this serves).
 */
std::string envString(const char *name, const std::string &fallback);

} // namespace act::util

#endif // ACT_UTIL_ENV_H
