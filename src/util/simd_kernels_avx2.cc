/**
 * @file
 * The 4-lane AVX2 kernel tier. This is the only translation unit
 * compiled with -mavx2 (set in src/util/CMakeLists.txt when the
 * compiler supports it); everything here has internal linkage or is
 * reached through the table pointer, and avx2Kernels() is only
 * dereferenced after the runtime CPU check in util/simd.cc, so no
 * AVX2 instruction can leak onto a CPU without the feature. Compiled
 * without -mfma on purpose: contraction would break the bit-identity
 * contract (DESIGN.md §11), so every multiply and add stays a
 * separate, correctly rounded instruction.
 *
 * See simd_kernels_sse2.cc for the integer-multiply and exact
 * conversion tricks; they are the same here, just twice as wide.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace act::util::simd {

namespace {

#include "util/simd_kernels_impl.h"

struct LanesAvx2
{
    static constexpr std::size_t kLanes = 4;
    using VF = __m256d;
    using VU = __m256i;

    static VF
    bcast(double v)
    {
        return _mm256_set1_pd(v);
    }
    static VF
    loadu(const double *p)
    {
        return _mm256_loadu_pd(p);
    }
    static VF
    loadStride(const double *p, std::size_t stride)
    {
        return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride],
                             p[0]);
    }
    static void
    storeu(double *p, VF v)
    {
        _mm256_storeu_pd(p, v);
    }
    static VF
    add(VF a, VF b)
    {
        return _mm256_add_pd(a, b);
    }
    static VF
    sub(VF a, VF b)
    {
        return _mm256_sub_pd(a, b);
    }
    static VF
    mul(VF a, VF b)
    {
        return _mm256_mul_pd(a, b);
    }
    static VF
    div(VF a, VF b)
    {
        return _mm256_div_pd(a, b);
    }
    static VF
    sqrt(VF a)
    {
        return _mm256_sqrt_pd(a);
    }
    static VF
    max0(VF a)
    {
        // vmaxpd(a, 0): second operand on NaN and the (+0, -0) tie,
        // exactly std::max(0.0, x).
        return _mm256_max_pd(a, _mm256_setzero_pd());
    }
    static VF
    blendLess(VF u, VF pivot, VF lo, VF hi)
    {
        const VF mask = _mm256_cmp_pd(u, pivot, _CMP_LT_OQ);
        return _mm256_blendv_pd(hi, lo, mask);
    }
    static VF
    within(VF x, VF lo, VF hi, bool lo_exclusive)
    {
        const VF above =
            lo_exclusive ? _mm256_cmp_pd(x, lo, _CMP_GT_OQ)
                         : _mm256_cmp_pd(x, lo, _CMP_GE_OQ);
        return _mm256_and_pd(above, _mm256_cmp_pd(x, hi, _CMP_LE_OQ));
    }
    static bool
    allLanes(VF mask)
    {
        return _mm256_movemask_pd(mask) == 0xF;
    }
    static VU
    fromLanes(const std::uint64_t *lane)
    {
        return _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lane));
    }
    static std::uint64_t
    lane0(VU v)
    {
        return static_cast<std::uint64_t>(
            _mm_cvtsi128_si64(_mm256_castsi256_si128(v)));
    }
    static VU
    xorshiftStep(VU x)
    {
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 12));
        x = _mm256_xor_si256(x, _mm256_slli_epi64(x, 25));
        x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
        return x;
    }
    static VU
    mulM(VU x)
    {
        const VU mlo = _mm256_set1_epi64x(
            static_cast<long long>(kXorshiftMultiplier & 0xFFFFFFFFULL));
        const VU mhi = _mm256_set1_epi64x(
            static_cast<long long>(kXorshiftMultiplier >> 32));
        const VU lolo = _mm256_mul_epu32(x, mlo);
        const VU hilo =
            _mm256_mul_epu32(_mm256_srli_epi64(x, 32), mlo);
        const VU lohi = _mm256_mul_epu32(x, mhi);
        return _mm256_add_epi64(
            lolo,
            _mm256_slli_epi64(_mm256_add_epi64(hilo, lohi), 32));
    }
    static VF
    u32InU64ToDouble(VU v)
    {
        const VU magic = _mm256_set1_epi64x(0x4330000000000000LL);
        return _mm256_sub_pd(
            _mm256_castsi256_pd(_mm256_or_si256(v, magic)),
            _mm256_set1_pd(0x1.0p52));
    }
    static VF
    unitFromValue(VU v)
    {
        const VU u = _mm256_srli_epi64(v, 11);
        const VU hi = _mm256_srli_epi64(u, 32);
        const VU lo =
            _mm256_and_si256(u, _mm256_set1_epi64x(0xFFFFFFFFLL));
        const VF recombined =
            _mm256_add_pd(_mm256_mul_pd(u32InU64ToDouble(hi),
                                        _mm256_set1_pd(0x1.0p32)),
                          u32InU64ToDouble(lo));
        return _mm256_mul_pd(recombined, _mm256_set1_pd(0x1.0p-53));
    }
};

} // namespace

const KernelTable *
avx2Kernels()
{
    static const KernelTable table = {
        &fillUnitsT<LanesAvx2>,
        &transformUniformT<LanesAvx2>,
        &transformTriangularT<LanesAvx2>,
        &evalRatioT<LanesAvx2>,
        &allWithinT<LanesAvx2>,
        &jobUnitsT<LanesAvx2>,
        &powerGridKwT<LanesAvx2>,
        &windowCostsT<LanesAvx2>,
        &argminFirstT<LanesAvx2>,
    };
    return &table;
}

} // namespace act::util::simd

#else

namespace act::util::simd {

const KernelTable *
avx2Kernels()
{
    return nullptr;
}

} // namespace act::util::simd

#endif
