#include "mobile/fleet.h"

#include <cmath>
#include <vector>

#include "core/replacement.h"
#include "data/soc_db.h"
#include "mobile/platform.h"
#include "util/logging.h"
#include "util/stats.h"

namespace act::mobile {

double
familyEfficiencyGrowth(data::SocFamily family)
{
    const auto chipsets =
        data::SocDatabase::instance().familyByYear(family);
    if (chipsets.size() < 2)
        util::fatal("family has fewer than two chipsets");
    const auto &first = chipsets.front();
    const auto &last = chipsets.back();
    const double periods =
        static_cast<double>(last.release_year - first.release_year);
    if (periods <= 0.0)
        util::fatal("family spans zero years");
    return std::pow(last.efficiencyScorePerWatt() /
                        first.efficiencyScorePerWatt(),
                    1.0 / periods);
}

double
annualEfficiencyImprovement()
{
    std::vector<double> growths;
    for (data::SocFamily family :
         {data::SocFamily::Exynos, data::SocFamily::Snapdragon,
          data::SocFamily::Kirin}) {
        growths.push_back(familyEfficiencyGrowth(family));
    }
    return util::geomean(growths);
}

FleetParams
defaultFleetParams(const core::FabParams &fab)
{
    FleetParams params;
    util::Mass total{};
    const auto records = data::SocDatabase::instance().records();
    for (const auto &soc : records)
        total += platformEmbodied(soc, fab).total();
    params.embodied_per_device =
        total / static_cast<double>(records.size());
    params.annual_efficiency_improvement = annualEfficiencyImprovement();
    return params;
}

LifetimePoint
evaluateLifetime(const FleetParams &params, double lifetime_years)
{
    core::ReplacementParams generic;
    generic.embodied_per_unit = params.embodied_per_device;
    generic.first_year_energy = params.annual_use_energy;
    generic.use = params.use;
    generic.annual_efficiency_improvement =
        params.annual_efficiency_improvement;
    generic.horizon = params.horizon;

    const core::ReplacementPoint evaluated =
        core::evaluateReplacement(generic, lifetime_years);
    LifetimePoint point;
    point.lifetime_years = evaluated.lifetime_years;
    point.embodied = evaluated.embodied;
    point.operational = evaluated.operational;
    return point;
}

std::vector<LifetimePoint>
lifetimeSweep(const FleetParams &params)
{
    std::vector<LifetimePoint> sweep;
    for (int lifetime = 1; lifetime <= 10; ++lifetime)
        sweep.push_back(evaluateLifetime(params, lifetime));
    return sweep;
}

std::size_t
optimalLifetimeIndex(const std::vector<LifetimePoint> &sweep)
{
    if (sweep.empty())
        util::fatal("optimalLifetimeIndex() on an empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].total() < sweep[best].total())
            best = i;
    }
    return best;
}

} // namespace act::mobile
