/**
 * @file
 * The Section 8 lifetime-extension study (Fig. 14): how long should a
 * mobile device live before replacement?
 *
 * Over a fixed horizon H with replacement every L years, a fleet incurs
 *   embodied(L)    = (H / L) * E_device
 *   operational(L) = (H / L) * CI_use * E_annual * sum_{a=0}^{L-1} g^a
 * where g is the annual energy-efficiency improvement of new hardware
 * (devices keep their purchase-year efficiency while workloads track
 * the frontier, so relative energy grows g^age). Longer lifetimes
 * amortize embodied carbon but sacrifice the annual efficiency gains.
 */

#ifndef ACT_MOBILE_FLEET_H
#define ACT_MOBILE_FLEET_H

#include <cstddef>
#include <vector>

#include "core/fab_params.h"
#include "core/operational.h"
#include "data/soc_db.h"
#include "util/units.h"

namespace act::mobile {

/** Parameters of the lifetime-extension model. */
struct FleetParams
{
    /** Embodied footprint of one device (SoC + DRAM + packaging). */
    util::Mass embodied_per_device{};
    /** Device energy drawn from the grid per year of use. */
    util::Energy annual_use_energy = util::kilowattHours(1.65);
    core::OperationalParams use{};
    /** Annual energy-efficiency improvement factor (Fig. 14 left). */
    double annual_efficiency_improvement = 1.21;
    /** Evaluation horizon (the paper uses 10 years). */
    util::Duration horizon = util::years(10.0);
};

/**
 * Fig. 14 (left): the fleet-wide annual efficiency improvement,
 * computed as the geometric mean over SoC families of each family's
 * compound annual growth in score-per-watt.
 */
double annualEfficiencyImprovement();

/** Per-family compound annual efficiency growth. */
double familyEfficiencyGrowth(data::SocFamily family);

/**
 * Default parameters: device embodied footprint averaged over the SoC
 * database under the given fab conditions, efficiency growth measured
 * from the database, and the paper's use-phase defaults.
 */
FleetParams defaultFleetParams(const core::FabParams &fab);

/** One point of the Fig. 14 (right) sweep. */
struct LifetimePoint
{
    double lifetime_years = 0.0;
    util::Mass embodied{};
    util::Mass operational{};

    util::Mass total() const { return embodied + operational; }
};

/** Sweep integer lifetimes 1..10 years (Fig. 14 right). */
std::vector<LifetimePoint> lifetimeSweep(const FleetParams &params);

/** Evaluate a single (possibly fractional) lifetime. */
LifetimePoint evaluateLifetime(const FleetParams &params,
                               double lifetime_years);

/** Index of the footprint-minimizing lifetime in a sweep. */
std::size_t optimalLifetimeIndex(const std::vector<LifetimePoint> &sweep);

} // namespace act::mobile

#endif // ACT_MOBILE_FLEET_H
