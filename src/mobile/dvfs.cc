#include "mobile/dvfs.h"

#include <cmath>

#include "util/logging.h"

namespace act::mobile {

namespace {

void
checkFrequency(double f)
{
    if (!(f > 0.0 && f <= 1.0))
        util::fatal("relative frequency must be in (0, 1], got ", f);
}

void
checkParams(const DvfsParams &params)
{
    if (!(params.v_min_fraction > 0.0 && params.v_min_fraction <= 1.0))
        util::fatal("v_min fraction must be in (0, 1]");
    if (!(params.leakage_fraction >= 0.0 &&
          params.leakage_fraction < 1.0)) {
        util::fatal("leakage fraction must be in [0, 1)");
    }
}

} // namespace

double
dvfsVoltage(const DvfsParams &params, double f)
{
    checkFrequency(f);
    checkParams(params);
    return params.v_min_fraction + (1.0 - params.v_min_fraction) * f;
}

util::Energy
taskEnergy(const DvfsParams &params, double f,
           util::Duration nominal_latency)
{
    const double v = dvfsVoltage(params, f);
    const double dynamic_term =
        (1.0 - params.leakage_fraction) * v * v;
    const double leakage_term = params.leakage_fraction * v / f;
    return params.nominal_power * nominal_latency *
           (dynamic_term + leakage_term);
}

DvfsPoint
evaluateFrequency(const DvfsParams &params, double f,
                  util::Duration nominal_latency,
                  const core::OperationalParams &use)
{
    DvfsPoint point;
    point.frequency = f;
    point.latency = nominal_latency / f;
    point.energy = taskEnergy(params, f, nominal_latency);
    point.footprint = core::combineFootprint(
        core::operationalFootprint(point.energy, use),
        params.device_embodied, point.latency,
        params.device_lifetime);
    return point;
}

std::vector<DvfsPoint>
dvfsSweep(const DvfsParams &params, util::Duration nominal_latency,
          const core::OperationalParams &use, double f_min,
          std::size_t steps)
{
    checkFrequency(f_min);
    if (steps < 2)
        util::fatal("DVFS sweep needs at least 2 steps");
    std::vector<DvfsPoint> sweep;
    sweep.reserve(steps);
    const double delta =
        (1.0 - f_min) / static_cast<double>(steps - 1);
    for (std::size_t i = 0; i < steps; ++i) {
        sweep.push_back(evaluateFrequency(
            params, f_min + delta * static_cast<double>(i),
            nominal_latency, use));
    }
    return sweep;
}

namespace {

/** Golden-section search over f in [lo, 1] for a unimodal objective. */
template <typename ObjectiveT>
double
minimizeFrequency(double lo, ObjectiveT objective)
{
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo;
    double b = 1.0;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = objective(x1);
    double f2 = objective(x2);
    for (int i = 0; i < 100; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = objective(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = objective(x2);
        }
    }
    return 0.5 * (a + b);
}

} // namespace

double
energyOptimalFrequency(const DvfsParams &params,
                       util::Duration nominal_latency)
{
    return minimizeFrequency(0.05, [&](double f) {
        return util::asJoules(taskEnergy(params, f, nominal_latency));
    });
}

double
carbonOptimalFrequency(const DvfsParams &params,
                       util::Duration nominal_latency,
                       const core::OperationalParams &use)
{
    return minimizeFrequency(0.05, [&](double f) {
        return util::asGrams(
            evaluateFrequency(params, f, nominal_latency, use)
                .footprint.total());
    });
}

} // namespace act::mobile
