/**
 * @file
 * Mobile platform model backing Fig. 8: converts an SoC database record
 * into performance, energy, embodied-carbon, and metric design points.
 *
 * Delay is the time to complete a fixed reference amount of Geekbench
 * work (a score of 1000 corresponds to 1 second), energy is TDP times
 * delay (the paper's power proxy), and the platform embodied footprint
 * is the SoC die (Eq. 4) plus its DRAM (Eq. 6) plus packaging for both
 * packages (Eq. 3).
 */

#ifndef ACT_MOBILE_PLATFORM_H
#define ACT_MOBILE_PLATFORM_H

#include <vector>

#include "core/embodied.h"
#include "core/metrics.h"
#include "data/soc_db.h"

namespace act::mobile {

/** Reference work: score x seconds (score 1000 finishes in 1 s). */
constexpr double kReferenceScoreSeconds = 1000.0;

/** Embodied breakdown of one mobile platform. */
struct PlatformEmbodied
{
    util::Mass soc{};
    util::Mass dram{};
    util::Mass packaging{};

    util::Mass total() const { return soc + dram + packaging; }
};

/** Eq. 3/4/6 over an SoC record (SoC die + shipping DRAM + packages). */
PlatformEmbodied platformEmbodied(const data::SocRecord &soc,
                                  const core::FabParams &fab);

/** Time to complete the reference work on this SoC. */
util::Duration referenceDelay(const data::SocRecord &soc);

/** Energy for the reference work at TDP. */
util::Energy referenceEnergy(const data::SocRecord &soc);

/** Full design point (delay, energy, embodied, area) for one SoC. */
core::DesignPoint designPoint(const data::SocRecord &soc,
                              const core::FabParams &fab);

/**
 * One SoC's sweep-invariant constants, resolved once per sweep through
 * core::EvalPlan instead of per design point: the CPA at the SoC's
 * node under the sweep's fab conditions, its DRAM technology's CPS
 * (a string lookup in the scalar path), and the geomean aggregate
 * score. designPoint() recomputes the scalar composition exactly, so
 * the compiled design point is bit-identical to
 * designPoint(*soc, fab).
 */
struct CompiledPlatform
{
    const data::SocRecord *soc = nullptr;
    util::CarbonPerArea cpa{};
    util::CarbonPerCapacity dram_cps{};
    double aggregate_score = 0.0;

    core::DesignPoint designPoint() const;
};

/** Resolve every SoC in the database against @p fab once, in database
 *  order. */
std::vector<CompiledPlatform>
compileMobilePlatforms(const core::FabParams &fab);

/** Design points for every SoC in the database, in database order. */
std::vector<core::DesignPoint>
mobileDesignSpace(const core::FabParams &fab);

} // namespace act::mobile

#endif // ACT_MOBILE_PLATFORM_H
