/**
 * @file
 * DVFS under carbon metrics -- the "DVFS" item the paper lists under
 * the Reduce tenet (Fig. 1).
 *
 * A task of fixed work runs at a relative frequency f in (0, 1], with
 * voltage scaling V(f) = v_min + (1 - v_min) * f. Dynamic power scales
 * with V^2 f and leakage with V, so task energy
 *
 *   E(f) = P_nom * t_nom * [ (1 - L) * V(f)^2 + L * V(f) / f ]
 *
 * is U-shaped in f: racing burns voltage overhead, crawling burns
 * leakage. Under Eq. 1 the *carbon*-optimal point also charges the
 * device's embodied footprint for the occupancy time t_nom / f, so it
 * sits at or above the energy-optimal frequency -- and moves towards
 * race-to-idle as the grid gets greener or the silicon dirtier.
 */

#ifndef ACT_MOBILE_DVFS_H
#define ACT_MOBILE_DVFS_H

#include <vector>

#include "core/footprint.h"
#include "core/operational.h"
#include "util/units.h"

namespace act::mobile {

/** Platform DVFS characteristics. */
struct DvfsParams
{
    /** Power at the nominal operating point (f = 1). */
    util::Power nominal_power = util::watts(5.0);
    /** Voltage floor as a fraction of nominal voltage. */
    double v_min_fraction = 0.6;
    /** Leakage share of nominal power. */
    double leakage_fraction = 0.3;
    /** Embodied footprint of the device executing the task. */
    util::Mass device_embodied = util::kilograms(1.5);
    util::Duration device_lifetime = util::years(3.0);
};

/** One frequency point of a DVFS sweep. */
struct DvfsPoint
{
    /** Relative frequency in (0, 1]. */
    double frequency = 1.0;
    util::Duration latency{};
    util::Energy energy{};
    core::CarbonFootprint footprint{};
};

/** Relative supply voltage at relative frequency @p f. */
double dvfsVoltage(const DvfsParams &params, double f);

/** Task energy at relative frequency @p f for a task that takes
 *  @p nominal_latency at f = 1. Fatal outside (0, 1]. */
util::Energy taskEnergy(const DvfsParams &params, double f,
                        util::Duration nominal_latency);

/** Evaluate one frequency under Eq. 1 (embodied charged for the
 *  occupancy time). */
DvfsPoint evaluateFrequency(const DvfsParams &params, double f,
                            util::Duration nominal_latency,
                            const core::OperationalParams &use);

/** Sweep frequencies over [f_min, 1]. */
std::vector<DvfsPoint> dvfsSweep(const DvfsParams &params,
                                 util::Duration nominal_latency,
                                 const core::OperationalParams &use,
                                 double f_min = 0.2,
                                 std::size_t steps = 33);

/** Frequency minimizing task energy alone. */
double energyOptimalFrequency(const DvfsParams &params,
                              util::Duration nominal_latency);

/** Frequency minimizing the Eq. 1 carbon footprint. */
double carbonOptimalFrequency(const DvfsParams &params,
                              util::Duration nominal_latency,
                              const core::OperationalParams &use);

} // namespace act::mobile

#endif // ACT_MOBILE_DVFS_H
