/**
 * @file
 * The Section 6.1 reuse case study: provisioning a Snapdragon 845-class
 * mobile SoC with a programmable CPU versus GPU- or DSP-based
 * co-processors for on-device AI inference (Table 4, Figs. 9 and 10).
 *
 * Note on Table 4: the paper's prose states the DSP achieves 2.2x lower
 * energy than the CPU and is optimal under the operational-centric
 * metrics (Fig. 9), which matches the 9.2 ms / 2.0 W row that the table
 * labels "GPU". We follow the prose and treat the table's GPU/DSP row
 * labels as swapped (DESIGN.md substitution #2).
 */

#ifndef ACT_MOBILE_PROVISIONING_H
#define ACT_MOBILE_PROVISIONING_H

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/embodied.h"
#include "core/footprint.h"
#include "core/metrics.h"
#include "core/operational.h"
#include "util/units.h"

namespace act::mobile {

/** One compute substrate available on the SoC. */
struct ComputeBlock
{
    std::string name;
    /** Silicon area of this block's cluster. */
    util::Area area{};
    /** Logic process node. */
    double node_nm = 10.0;
    /** Per-inference latency on this block. */
    util::Duration latency{};
    /** Average power while running inference. */
    util::Power power{};
    /** Co-processors still require the host CPU cluster on die. */
    bool is_coprocessor = false;
};

/**
 * The Snapdragon 845 AI-inference substrates of Table 4. Block areas
 * are sized so that, under the paper's default fab parameters, the
 * embodied footprints match the table (CPU 253 g, GPU +205 g,
 * DSP +189 g after the label correction).
 */
std::span<const ComputeBlock> snapdragon845Blocks();

/** Derived per-substrate characteristics (the Table 4 columns). */
struct ProvisioningResult
{
    std::string name;
    util::Duration latency{};
    util::Power power{};
    /** Energy per inference. */
    util::Energy energy{};
    /** Operational carbon per inference (Eq. 2). */
    util::Mass opcf_per_inference{};
    /** Embodied footprint of this block alone. */
    util::Mass ecf_block{};
    /** Embodied footprint including the host CPU for co-processors. */
    util::Mass ecf_total{};
    /** Silicon area including the host CPU for co-processors. */
    util::Area area_total{};
};

/** Evaluate one block under the given fab and use-phase conditions. */
ProvisioningResult evaluateBlock(const ComputeBlock &block,
                                 const ComputeBlock &host_cpu,
                                 const core::FabParams &fab,
                                 const core::OperationalParams &use);

/** Table 4 for all Snapdragon 845 blocks under given conditions. */
std::vector<ProvisioningResult>
provisioningTable(const core::FabParams &fab,
                  const core::OperationalParams &use);

/**
 * Fig. 9 design points: embodied carbon is ecf_total, delay/energy are
 * per inference.
 */
std::vector<core::DesignPoint>
provisioningDesignSpace(const core::FabParams &fab,
                        const core::OperationalParams &use);

/**
 * Break-even lifetime utilization (fraction of the device lifetime
 * spent running inference) above which a co-processor's operational
 * savings repay its additional embodied footprint. nullopt when the
 * co-processor never breaks even (no energy saving).
 */
std::optional<double>
breakEvenUtilization(const ComputeBlock &accelerator,
                     const ComputeBlock &cpu, const core::FabParams &fab,
                     const core::OperationalParams &use,
                     util::Duration lifetime);

/**
 * Per-inference total footprint (Fig. 10 bars): Eq. 1 with the embodied
 * term amortized over the total inferences the device serves during its
 * lifetime. The workload (inference count) is fixed across substrates,
 * so embodied comparisons reduce to ECF ratios as in the paper.
 */
core::CarbonFootprint
perInferenceFootprint(const ProvisioningResult &result,
                      double lifetime_inferences,
                      const core::OperationalParams &use);

/**
 * Inferences served when this substrate runs for a fraction
 * @p utilization of the device lifetime.
 */
double inferencesAtUtilization(const ProvisioningResult &result,
                               double utilization,
                               util::Duration lifetime);

} // namespace act::mobile

#endif // ACT_MOBILE_PROVISIONING_H
