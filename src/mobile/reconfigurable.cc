#include "mobile/reconfigurable.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace act::mobile {

using util::Duration;
using util::Energy;
using util::milliseconds;
using util::millijoules;
using util::squareMillimeters;

namespace {

constexpr std::array<SmivApp, kNumSmivApps> kApps = {
    SmivApp::Fir, SmivApp::Aes, SmivApp::Ai};

constexpr std::array<std::string_view, kNumSmivApps> kAppNames = {
    "FIR", "AES", "AI"};

/** A53-class CPU baselines per operation. */
constexpr std::array<double, kNumSmivApps> kCpuLatencyMs = {2.0, 4.0, 30.0};
constexpr double kCpuPowerWatts = 1.5;

/**
 * Substrate profiles. Areas give the paper's 1.3x (ASIC) and 1.8x
 * (FPGA) embodied overheads over the CPU-only configuration; ratios
 * follow Section 6.2 (AI energy: ASIC 44x better than CPU, FPGA 5x
 * worse than ASIC => 8.8x better than CPU).
 */
const std::array<SubstrateProfile, 3> kSubstrates = {{
    {"CPU", squareMillimeters(14.0), 16.0, {1.0, 1.0, 1.0},
     {1.0, 1.0, 1.0}},
    {"Accel", squareMillimeters(18.2), 16.0, {1.0, 1.0, 26.0},
     {1.0, 1.0, 1.0 / 44.0}},
    {"FPGA", squareMillimeters(25.2), 16.0, {50.0, 80.0, 24.0},
     {1.0 / 25.0, 1.0 / 40.0, 1.0 / 8.8}},
}};

} // namespace

std::string_view
smivAppName(SmivApp app)
{
    return kAppNames[static_cast<std::size_t>(app)];
}

std::span<const SmivApp>
allSmivApps()
{
    return kApps;
}

std::span<const SubstrateProfile>
smivSubstrates()
{
    return kSubstrates;
}

Duration
cpuAppLatency(SmivApp app)
{
    return milliseconds(kCpuLatencyMs[static_cast<std::size_t>(app)]);
}

Energy
cpuAppEnergy(SmivApp app)
{
    return util::watts(kCpuPowerWatts) * cpuAppLatency(app);
}

std::vector<SubstrateResult>
evaluateSubstrates(const core::FabParams &fab)
{
    std::vector<SubstrateResult> results;
    results.reserve(kSubstrates.size());
    for (const auto &substrate : kSubstrates) {
        SubstrateResult result;
        result.name = substrate.name;
        for (std::size_t i = 0; i < kNumSmivApps; ++i) {
            result.latency[i] =
                cpuAppLatency(kApps[i]) / substrate.speedup[i];
            result.energy[i] =
                cpuAppEnergy(kApps[i]) * substrate.energy_ratio[i];
        }
        result.geomean_speedup = util::geomean(
            std::span<const double>(substrate.speedup));
        result.embodied =
            core::logicEmbodied(substrate.soc_area, substrate.node_nm,
                                fab);
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<core::DesignPoint>
reconfigurableDesignSpace(const core::FabParams &fab)
{
    std::vector<core::DesignPoint> points;
    const auto substrates = smivSubstrates();
    std::size_t index = 0;
    for (const auto &result : evaluateSubstrates(fab)) {
        std::array<double, kNumSmivApps> delays{};
        std::array<double, kNumSmivApps> energies{};
        for (std::size_t i = 0; i < kNumSmivApps; ++i) {
            delays[i] = util::asSeconds(result.latency[i]);
            energies[i] = util::asKilowattHours(result.energy[i]);
        }
        core::DesignPoint point;
        point.name = result.name;
        point.embodied = result.embodied;
        point.delay = util::seconds(
            util::geomean(std::span<const double>(delays)));
        point.area = substrates[index++].soc_area;
        point.energy = util::kilowattHours(
            util::geomean(std::span<const double>(energies)));
        points.push_back(std::move(point));
    }
    return points;
}

} // namespace act::mobile
