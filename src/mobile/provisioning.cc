#include "mobile/provisioning.h"

#include <array>

#include "util/logging.h"

namespace act::mobile {

using util::asGrams;
using util::Duration;
using util::milliseconds;
using util::squareMillimeters;
using util::watts;

namespace {

/**
 * Block areas are calibrated so the default-parameter embodied
 * footprints reproduce Table 4 (CPU 253 g CO2, DSP +189 g, GPU +205 g;
 * DSP/GPU rows label-corrected per the prose). At the default CPA for
 * 10 nm (~1548.6 g/cm2) these correspond to a ~16.3 mm2 CPU cluster,
 * ~12.2 mm2 DSP, and ~13.2 mm2 GPU -- consistent with Snapdragon
 * 845-class floorplans.
 */
const std::array<ComputeBlock, 3> kSnapdragon845Blocks = {{
    {"CPU", squareMillimeters(16.337), 10.0, milliseconds(6.0),
     watts(6.6), false},
    {"GPU", squareMillimeters(13.237), 10.0, milliseconds(12.1),
     watts(2.9), true},
    {"DSP", squareMillimeters(12.204), 10.0, milliseconds(9.2),
     watts(2.0), true},
}};

} // namespace

std::span<const ComputeBlock>
snapdragon845Blocks()
{
    return kSnapdragon845Blocks;
}

ProvisioningResult
evaluateBlock(const ComputeBlock &block, const ComputeBlock &host_cpu,
              const core::FabParams &fab,
              const core::OperationalParams &use)
{
    ProvisioningResult result;
    result.name = block.name;
    result.latency = block.latency;
    result.power = block.power;
    result.energy = block.power * block.latency;
    result.opcf_per_inference =
        core::operationalFootprint(result.energy, use);
    result.ecf_block = core::logicEmbodied(block.area, block.node_nm, fab);
    result.ecf_total = result.ecf_block;
    result.area_total = block.area;
    if (block.is_coprocessor) {
        result.ecf_total +=
            core::logicEmbodied(host_cpu.area, host_cpu.node_nm, fab);
        result.area_total += host_cpu.area;
    }
    return result;
}

std::vector<ProvisioningResult>
provisioningTable(const core::FabParams &fab,
                  const core::OperationalParams &use)
{
    const auto blocks = snapdragon845Blocks();
    std::vector<ProvisioningResult> results;
    results.reserve(blocks.size());
    for (const auto &block : blocks)
        results.push_back(evaluateBlock(block, blocks[0], fab, use));
    return results;
}

std::vector<core::DesignPoint>
provisioningDesignSpace(const core::FabParams &fab,
                        const core::OperationalParams &use)
{
    std::vector<core::DesignPoint> points;
    for (const auto &result : provisioningTable(fab, use)) {
        core::DesignPoint point;
        point.name = result.name;
        point.embodied = result.ecf_total;
        point.energy = result.energy;
        point.delay = result.latency;
        point.area = result.area_total;
        points.push_back(std::move(point));
    }
    return points;
}

std::optional<double>
breakEvenUtilization(const ComputeBlock &accelerator,
                     const ComputeBlock &cpu, const core::FabParams &fab,
                     const core::OperationalParams &use,
                     util::Duration lifetime)
{
    if (!accelerator.is_coprocessor)
        util::fatal("breakEvenUtilization() expects a co-processor");

    const util::Energy cpu_energy = cpu.power * cpu.latency;
    const util::Energy accel_energy =
        accelerator.power * accelerator.latency;
    if (accel_energy >= cpu_energy)
        return std::nullopt;  // no operational saving, never breaks even

    const util::Mass saving_per_inference = core::operationalFootprint(
        cpu_energy - accel_energy, use);
    const util::Mass extra_embodied =
        core::logicEmbodied(accelerator.area, accelerator.node_nm, fab);

    // n(u) = u * LT / latency inferences repay the extra embodied
    // carbon when n(u) * saving == extra_embodied.
    const double utilization =
        asGrams(extra_embodied) *
        util::asSeconds(accelerator.latency) /
        (util::asSeconds(lifetime) * asGrams(saving_per_inference));
    return utilization;
}

core::CarbonFootprint
perInferenceFootprint(const ProvisioningResult &result,
                      double lifetime_inferences,
                      const core::OperationalParams &use)
{
    if (lifetime_inferences <= 0.0) {
        util::fatal("lifetime inference count must be positive, got ",
                    lifetime_inferences);
    }
    core::CarbonFootprint footprint;
    footprint.operational =
        core::operationalFootprint(result.energy, use);
    footprint.embodied_allocated =
        result.ecf_total / lifetime_inferences;
    return footprint;
}

double
inferencesAtUtilization(const ProvisioningResult &result,
                        double utilization, util::Duration lifetime)
{
    if (!(utilization > 0.0 && utilization <= 1.0))
        util::fatal("utilization must be in (0, 1], got ", utilization);
    return utilization * util::asSeconds(lifetime) /
           util::asSeconds(result.latency);
}

} // namespace act::mobile
