#include "mobile/platform.h"

#include <utility>

#include "core/eval_plan.h"
#include "sweep/engine.h"
#include "util/trace.h"

namespace act::mobile {

using util::Duration;
using util::Energy;
using util::seconds;

PlatformEmbodied
platformEmbodied(const data::SocRecord &soc, const core::FabParams &fab)
{
    PlatformEmbodied embodied;
    embodied.soc = core::logicEmbodied(soc.die_area, soc.node_nm, fab);
    embodied.dram =
        core::storageEmbodied(soc.dram_capacity, soc.dram_technology);
    // Two discrete packages: the SoC and its (often stacked) DRAM.
    embodied.packaging = core::packagingEmbodied(2);
    return embodied;
}

Duration
referenceDelay(const data::SocRecord &soc)
{
    return seconds(kReferenceScoreSeconds / soc.aggregateScore());
}

Energy
referenceEnergy(const data::SocRecord &soc)
{
    return soc.tdp * referenceDelay(soc);
}

core::DesignPoint
designPoint(const data::SocRecord &soc, const core::FabParams &fab)
{
    core::DesignPoint point;
    point.name = soc.name;
    point.embodied = platformEmbodied(soc, fab).total();
    point.energy = referenceEnergy(soc);
    point.delay = referenceDelay(soc);
    point.area = soc.die_area;
    return point;
}

core::DesignPoint
CompiledPlatform::designPoint() const
{
    // Mirrors designPoint(*soc, fab) term by term -- same composition
    // order, same unit operators -- over the pre-resolved constants,
    // so the result is bit-identical to the scalar path.
    PlatformEmbodied embodied;
    embodied.soc = cpa * soc->die_area;
    embodied.dram = dram_cps * soc->dram_capacity;
    embodied.packaging = core::packagingEmbodied(2);

    core::DesignPoint point;
    point.name = soc->name;
    point.embodied = embodied.total();
    const Duration delay =
        seconds(kReferenceScoreSeconds / aggregate_score);
    point.energy = soc->tdp * delay;
    point.delay = delay;
    point.area = soc->die_area;
    return point;
}

std::vector<CompiledPlatform>
compileMobilePlatforms(const core::FabParams &fab)
{
    const auto records = data::SocDatabase::instance().records();
    std::vector<CompiledPlatform> compiled;
    compiled.reserve(records.size());
    // Several SoCs share a process node; memoize node -> CPA so each
    // node compiles one plan. The database holds a handful of nodes,
    // so a linear scan beats a map. Reusing the identical CPA value
    // is bit-neutral by definition.
    std::vector<std::pair<double, util::CarbonPerArea>> node_cpa;
    const auto cpaForNode = [&](double node_nm) {
        for (const auto &[nm, cpa] : node_cpa) {
            if (nm == node_nm)
                return cpa;
        }
        const util::CarbonPerArea cpa =
            core::EvalPlan::forNode(fab, node_nm).cpa();
        node_cpa.emplace_back(node_nm, cpa);
        return cpa;
    };
    for (const auto &record : records) {
        CompiledPlatform platform;
        platform.soc = &record;
        platform.cpa = cpaForNode(record.node_nm);
        platform.dram_cps = core::EvalPlan::resolveTechnologyCps(
            record.dram_technology);
        platform.aggregate_score = record.aggregateScore();
        compiled.push_back(platform);
    }
    return compiled;
}

std::vector<core::DesignPoint>
mobileDesignSpace(const core::FabParams &fab)
{
    TRACE_SPAN("mobile.design_space", "mobileDesignSpace");
    // Each SoC evaluates independently; the sweep engine fills
    // pre-sized slots so the result keeps database order for any
    // thread count. The per-SoC constants (node CPA, DRAM CPS,
    // aggregate score) are resolved once up front.
    const auto compiled = compileMobilePlatforms(fab);
    return sweep::runSweepMap<core::DesignPoint>(
        sweep::SweepPlan::map("mobile", compiled.size()),
        [&](std::size_t i) { return compiled[i].designPoint(); });
}

} // namespace act::mobile
