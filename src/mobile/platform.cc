#include "mobile/platform.h"

#include "sweep/engine.h"
#include "util/trace.h"

namespace act::mobile {

using util::Duration;
using util::Energy;
using util::seconds;

PlatformEmbodied
platformEmbodied(const data::SocRecord &soc, const core::FabParams &fab)
{
    PlatformEmbodied embodied;
    embodied.soc = core::logicEmbodied(soc.die_area, soc.node_nm, fab);
    embodied.dram =
        core::storageEmbodied(soc.dram_capacity, soc.dram_technology);
    // Two discrete packages: the SoC and its (often stacked) DRAM.
    embodied.packaging = core::packagingEmbodied(2);
    return embodied;
}

Duration
referenceDelay(const data::SocRecord &soc)
{
    return seconds(kReferenceScoreSeconds / soc.aggregateScore());
}

Energy
referenceEnergy(const data::SocRecord &soc)
{
    return soc.tdp * referenceDelay(soc);
}

core::DesignPoint
designPoint(const data::SocRecord &soc, const core::FabParams &fab)
{
    core::DesignPoint point;
    point.name = soc.name;
    point.embodied = platformEmbodied(soc, fab).total();
    point.energy = referenceEnergy(soc);
    point.delay = referenceDelay(soc);
    point.area = soc.die_area;
    return point;
}

std::vector<core::DesignPoint>
mobileDesignSpace(const core::FabParams &fab)
{
    TRACE_SPAN("mobile.design_space", "mobileDesignSpace");
    // Each SoC evaluates independently; the sweep engine fills
    // pre-sized slots so the result keeps database order for any
    // thread count.
    const auto records = data::SocDatabase::instance().records();
    return sweep::runSweepMap<core::DesignPoint>(
        sweep::SweepPlan::map("mobile", records.size()),
        [&](std::size_t i) { return designPoint(records[i], fab); });
}

} // namespace act::mobile
