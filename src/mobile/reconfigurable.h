/**
 * @file
 * The Section 6.2 re-configurable hardware study (Fig. 11): a dual-core
 * Arm A53-class CPU, a specialized AI ASIC, and an embedded FPGA on an
 * SMIV-style 16 nm SoC, evaluated over FIR, AES, and AI inference.
 *
 * The speedup/efficiency ratios follow the paper's quoted measurements
 * (ASIC 26x AI performance and 44x AI energy reduction vs CPU; FPGA
 * 50x/80x/24x performance and 5x worse AI energy than the ASIC; CPU
 * 1.3x/1.8x lower embodied footprint). FIR/AES energy on the FPGA is
 * synthesized assuming ~2x CPU power at the quoted speedups (DESIGN.md
 * substitution #3).
 */

#ifndef ACT_MOBILE_RECONFIGURABLE_H
#define ACT_MOBILE_RECONFIGURABLE_H

#include <array>
#include <span>
#include <string>
#include <vector>

#include "core/embodied.h"
#include "core/metrics.h"

namespace act::mobile {

/** The three applications of Fig. 11. */
enum class SmivApp
{
    Fir,
    Aes,
    Ai,
};

inline constexpr std::size_t kNumSmivApps = 3;

std::string_view smivAppName(SmivApp app);
std::span<const SmivApp> allSmivApps();

/** One compute substrate on the SMIV-style SoC. */
struct SubstrateProfile
{
    std::string name;
    /** Total SoC silicon when provisioned with this substrate. */
    util::Area soc_area{};
    double node_nm = 16.0;
    /** Per-app speedup over the CPU (1.0 where the app falls back to
     *  the host CPU, as FIR/AES do on the AI ASIC). */
    std::array<double, kNumSmivApps> speedup{};
    /** Per-app energy per operation relative to the CPU (lower is
     *  better; 1.0 on CPU fallback). */
    std::array<double, kNumSmivApps> energy_ratio{};
};

/** CPU / ASIC ("Accel") / FPGA profiles, in Fig. 11 order. */
std::span<const SubstrateProfile> smivSubstrates();

/** Absolute per-app CPU baselines (latency and energy per op). */
util::Duration cpuAppLatency(SmivApp app);
util::Energy cpuAppEnergy(SmivApp app);

/** Per-substrate evaluation across the app suite. */
struct SubstrateResult
{
    std::string name;
    /** Per-app latency and energy per operation. */
    std::array<util::Duration, kNumSmivApps> latency{};
    std::array<util::Energy, kNumSmivApps> energy{};
    /** Geomean speedup over the CPU (Fig. 11 "Geo mean" group). */
    double geomean_speedup = 1.0;
    util::Mass embodied{};
};

std::vector<SubstrateResult>
evaluateSubstrates(const core::FabParams &fab);

/**
 * Design points over the suite (geomean delay/energy, embodied totals)
 * -- the space in which the paper reports the FPGA winning all four
 * carbon-aware metrics.
 */
std::vector<core::DesignPoint>
reconfigurableDesignSpace(const core::FabParams &fab);

} // namespace act::mobile

#endif // ACT_MOBILE_RECONFIGURABLE_H
