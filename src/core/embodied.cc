#include "core/embodied.h"

#include <algorithm>

#include "core/cpa_cache.h"
#include "util/interp.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::core {

using util::Area;
using util::Capacity;
using util::CarbonPerArea;
using util::CarbonPerCapacity;
using util::gramsPerCm2;
using util::Mass;

namespace {

void
checkYield(double yield)
{
    if (!(yield > 0.0 && yield <= 1.0))
        util::fatal("fab yield must be in (0, 1], got ", yield);
}

CarbonPerArea
cpaFromIntensities(const FabParams &fab, util::EnergyPerArea epa,
                   CarbonPerArea gpa)
{
    checkYield(fab.yield);
    const CarbonPerArea fab_energy_carbon = fab.ci_fab * epa;
    const data::FabDatabase &db = data::FabDatabase::instance();
    const CarbonPerArea numerator = fab_energy_carbon + gpa + db.mpa();
    return numerator / fab.yield;
}

CarbonPerArea
computeCarbonPerArea(const FabParams &fab, double nm)
{
    const data::FabDatabase &db = data::FabDatabase::instance();
    return cpaFromIntensities(fab, db.epa(nm, fab.lookup),
                              db.gpa(nm, fab.abatement, fab.lookup));
}

CarbonPerArea
computeCarbonPerAreaNamed(const FabParams &fab,
                          std::string_view node_name)
{
    const data::FabDatabase &db = data::FabDatabase::instance();
    const auto record = db.findByName(node_name);
    if (!record)
        util::fatal("unknown fab node '", std::string(node_name), "'");
    // The named row pins EPA; GPA still honors the abatement setting.
    const double t = (fab.abatement - 0.95) / (0.99 - 0.95);
    const CarbonPerArea gpa = gramsPerCm2(std::max(
        0.0, util::lerp(record->gpa_abated_95.value(),
                        record->gpa_abated_99.value(), t)));
    return cpaFromIntensities(fab, record->epa, gpa);
}

/** Per-equation evaluation counters (Eq. 5 is counted by the CPA
 *  cache as core.cpa_cache.hits + misses). */
util::Counter &g_eq3_evals =
    util::MetricsRegistry::instance().counter("core.eq3.device_evals");
util::Counter &g_eq4_evals =
    util::MetricsRegistry::instance().counter("core.eq4.logic_evals");
util::Counter &g_storage_evals =
    util::MetricsRegistry::instance().counter(
        "core.eq6_8.storage_evals");

} // namespace

CarbonPerArea
carbonPerArea(const FabParams &fab, double nm)
{
    return CpaCache::instance().lookup(
        fab, nm, [&] { return computeCarbonPerArea(fab, nm); });
}

CarbonPerArea
carbonPerAreaNamed(const FabParams &fab, std::string_view node_name)
{
    return CpaCache::instance().lookupNamed(fab, node_name, [&] {
        return computeCarbonPerAreaNamed(fab, node_name);
    });
}

Mass
logicEmbodied(Area area, double nm, const FabParams &fab)
{
    g_eq4_evals.add();
    return carbonPerArea(fab, nm) * area;
}

Mass
storageEmbodied(Capacity capacity, CarbonPerCapacity cps)
{
    g_storage_evals.add();
    return cps * capacity;
}

Mass
storageEmbodied(Capacity capacity, std::string_view technology)
{
    return storageEmbodied(capacity,
                           data::storageOrDie(technology).cps);
}

Mass
packagingEmbodied(int package_count)
{
    if (package_count < 0)
        util::fatal("negative package count ", package_count);
    return kPackagingFootprint * static_cast<double>(package_count);
}

Mass
DeviceFootprint::componentTotal() const
{
    Mass total{};
    for (const auto &component : components)
        total += component.embodied;
    return total;
}

Mass
DeviceFootprint::total() const
{
    return componentTotal() + packaging;
}

Mass
DeviceFootprint::categoryTotal(data::IcCategory category) const
{
    Mass total{};
    for (const auto &component : components) {
        if (component.category == category)
            total += component.embodied;
    }
    return total;
}

EmbodiedModel::EmbodiedModel(FabParams fab) : fab_(fab) {}

Mass
EmbodiedModel::icEmbodied(const data::IcComponent &ic) const
{
    switch (ic.kind) {
      case data::IcKind::Logic:
        if (!ic.fab_node_name.empty()) {
            return carbonPerAreaNamed(fab_, ic.fab_node_name) * ic.area;
        }
        return logicEmbodied(ic.area, ic.node_nm, fab_);
      case data::IcKind::Dram:
      case data::IcKind::Nand:
      case data::IcKind::Hdd:
        return storageEmbodied(ic.capacity, ic.technology);
    }
    util::panic("unknown IcKind enumerator");
}

DeviceFootprint
EmbodiedModel::evaluate(const data::DeviceRecord &device) const
{
    g_eq3_evals.add();
    TRACE_SPAN("core.embodied", "evaluate:" + device.name);
    DeviceFootprint footprint;
    footprint.components.reserve(device.ics.size());
    for (const auto &ic : device.ics) {
        footprint.components.push_back(
            {ic.name, ic.category, icEmbodied(ic)});
        footprint.package_count += ic.package_count;
    }
    footprint.packaging = packagingEmbodied(footprint.package_count);
    return footprint;
}

} // namespace act::core
