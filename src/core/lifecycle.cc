#include "core/lifecycle.h"

#include "util/logging.h"

namespace act::core {

double
LifecycleEstimate::manufacturingShare() const
{
    const double total_grams = util::asGrams(total());
    if (total_grams == 0.0)
        return 0.0;
    return util::asGrams(manufacturing()) / total_grams;
}

LifecycleEstimate
estimateLifecycle(const data::DeviceRecord &device, const FabParams &fab)
{
    if (device.ics.empty())
        util::fatal("device '", device.name, "' has no modeled BOM");
    const double ic_share = device.lca.ic_share_of_production;
    if (!(ic_share > 0.0 && ic_share <= 1.0))
        util::fatal("device '", device.name,
                    "' has no usable IC share of production");
    if (device.lca.production_share <= 0.0)
        util::fatal("device '", device.name,
                    "' has no production share");

    const EmbodiedModel model(fab);

    LifecycleEstimate estimate;
    estimate.ic_manufacturing = model.evaluate(device).total();
    // The published LCA says ICs are `ic_share` of production, so the
    // non-IC remainder scales the bottom-up IC estimate accordingly.
    estimate.other_manufacturing =
        estimate.ic_manufacturing * ((1.0 - ic_share) / ic_share);

    // Transport / use / end-of-life keep their published proportion to
    // production, re-anchored on the modeled manufacturing estimate.
    const double per_production_share =
        util::asGrams(estimate.manufacturing()) /
        device.lca.production_share;
    estimate.transport =
        util::grams(per_production_share * device.lca.transport_share);
    estimate.use =
        util::grams(per_production_share * device.lca.use_share);
    estimate.end_of_life =
        util::grams(per_production_share * device.lca.eol_share);
    return estimate;
}

} // namespace act::core
