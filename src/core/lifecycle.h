/**
 * @file
 * Whole-device life-cycle estimation across the four phases of Fig. 3
 * (manufacturing, transport, use, end-of-life).
 *
 * ACT models the IC slice of manufacturing bottom-up (Eq. 3-8); the
 * remaining phases come from the device's published LCA structure: the
 * non-IC production share scales the ACT IC estimate, and transport /
 * use / end-of-life apply the published shares. This produces a full
 * product footprint that stays *anchored* to the architectural model,
 * so hardware changes (a smaller die, newer DRAM) propagate into the
 * product-level estimate -- exactly what top-down LCAs cannot do.
 */

#ifndef ACT_CORE_LIFECYCLE_H
#define ACT_CORE_LIFECYCLE_H

#include "core/embodied.h"
#include "data/device_db.h"

namespace act::core {

/** Full life-cycle estimate for one device. */
struct LifecycleEstimate
{
    /** ACT bottom-up IC manufacturing footprint (Eq. 3). */
    util::Mass ic_manufacturing{};
    /** Non-IC production (PCBs, display, battery, enclosure), scaled
     *  from the LCA's IC share of production. */
    util::Mass other_manufacturing{};
    util::Mass transport{};
    util::Mass use{};
    util::Mass end_of_life{};

    util::Mass manufacturing() const
    { return ic_manufacturing + other_manufacturing; }

    util::Mass total() const
    {
        return manufacturing() + transport + use + end_of_life;
    }

    /** Fraction of the total owed to manufacturing. */
    double manufacturingShare() const;
};

/**
 * Estimate the whole-device life cycle: ICs bottom-up under @p fab,
 * other phases scaled from the device's published LCA structure.
 * Fatal when the device has no modeled BOM or no usable LCA shares.
 */
LifecycleEstimate estimateLifecycle(const data::DeviceRecord &device,
                                    const FabParams &fab);

} // namespace act::core

#endif // ACT_CORE_LIFECYCLE_H
