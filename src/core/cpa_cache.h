/**
 * @file
 * A thread-safe memoization cache in front of the Eq. 5 carbon-per-area
 * computation. DSE sweeps (Fig. 8/12/13, Monte Carlo, tornado) evaluate
 * the CPA model for the same (fab conditions, node) point thousands to
 * millions of times; the underlying table interpolation is pure, so the
 * result can be cached on a fingerprint of the FabParams plus the node.
 *
 * Hot-path design: numeric (fab, nm) lookups read an *immutable*
 * open-addressed table through one atomic pointer load -- no locks, no
 * reference counting, no allocation -- so a hit costs a hash plus a
 * probe. Writers copy the table, insert, and publish the new version
 * under a per-shard mutex (copy-on-write); superseded tables are
 * retired, not freed, so concurrent readers stay valid. Named Table 7
 * lookups are rarer and use a shared_mutex map per shard. Keys compare
 * *exactly* (bitwise on the doubles), so a hit is guaranteed to return
 * the same value the uncached computation would -- never an
 * approximation.
 *
 * Hit/miss counters live in the process-wide metrics registry
 * (`core.cpa_cache.hits` / `core.cpa_cache.misses`, see
 * util/metrics.h) whose striped relaxed atomics keep the fast path
 * free of contended cache lines; `stats()` reads the same counters.
 * When tracing is on (util/trace.h), each miss's recomputation is
 * recorded as a `core.cpa` span.
 *
 * Disable with `ACT_CPA_CACHE=0` in the environment or
 * `CpaCache::instance().setEnabled(false)` (e.g. when benchmarking the
 * raw model). clear() and resetStats() may run concurrently with
 * lookups; entries/counters populated during the call may survive it.
 *
 * Persistence: `ACT_CPA_CACHE_FILE=<path>` loads the cache from
 * @p path at startup and atomically rewrites it at process exit
 * (write-to-temp + rename), so repeated sweeps -- and the shards of
 * one sweep sharing a file -- warm-start instead of recomputing.
 * Entries are stored with their exact bit patterns and the whole file
 * is versioned by core::modelConfigFingerprint(): a file written
 * against different model data is ignored with a warning (never
 * silently replayed), and a corrupt file warns and starts cold.
 */

#ifndef ACT_CORE_CPA_CACHE_H
#define ACT_CORE_CPA_CACHE_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "config/json.h"
#include "core/fab_params.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "util/units.h"

namespace act::core {

/** Cumulative cache effectiveness counters. */
struct CpaCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    double
    hitRate() const
    {
        const std::uint64_t total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(total);
    }
};

/** Process-wide memoization cache for carbonPerArea[Named](). */
class CpaCache
{
  public:
    static CpaCache &instance();

    /**
     * CPA for (fab, nm), computing via @p compute on a miss. The
     * computed value is cached under the exact fab fingerprint; any
     * fatal inside @p compute (bad yield, out-of-range node) fires
     * before anything is cached.
     */
    template <typename Compute>
    util::CarbonPerArea
    lookup(const FabParams &fab, double nm, Compute &&compute)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return compute();
        const NumericKey key = numericKey(fab, nm);
        const std::uint64_t hash = hashNumeric(key);
        if (const double *found = findNumeric(key, hash)) {
            hits_.add();
            return util::gramsPerCm2(*found);
        }
        util::TraceSpan span("core.cpa", "cpa_miss");
        const util::CarbonPerArea value = compute();
        span.finish();
        misses_.add();
        storeNumeric(key, hash, value.value());
        return value;
    }

    /** As lookup(), keyed on a named Table 7 node label instead. */
    template <typename Compute>
    util::CarbonPerArea
    lookupNamed(const FabParams &fab, std::string_view node_name,
                Compute &&compute)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return compute();
        if (const double *found = findNamed(fab, node_name)) {
            hits_.add();
            return util::gramsPerCm2(*found);
        }
        util::TraceSpan span("core.cpa", "cpa_named_miss");
        const util::CarbonPerArea value = compute();
        span.finish();
        misses_.add();
        storeNamed(fab, node_name, value.value());
        return value;
    }

    /** Drop every cached entry (counters are kept). */
    void clear();

    /**
     * Serialize every cached entry to @p path atomically (temp file +
     * rename), stamped with the current model-config fingerprint.
     * Fatal on I/O failure.
     */
    void saveToFile(const std::string &path) const;

    /**
     * Load entries from @p path into the cache (on top of whatever is
     * already cached). A missing file is a silent cold start; a
     * corrupt or stale-fingerprint file warns and loads nothing.
     * Returns the number of entries loaded.
     */
    std::size_t loadFromFile(const std::string &path);

    /** Reset the hit/miss counters (entries are kept). */
    void resetStats();

    CpaCacheStats stats() const;

    /** Number of currently cached CPA points. */
    std::size_t size() const;

    void setEnabled(bool enabled);
    bool enabled() const;

  private:
    /** Bitwise FabParams fingerprint plus the queried feature size. */
    struct NumericKey
    {
        std::uint64_t ci_fab = 0;
        std::uint64_t abatement = 0;
        std::uint64_t yield = 0;
        std::uint64_t lookup = 0;
        std::uint64_t nm = 0;

        bool operator==(const NumericKey &) const = default;
    };

    /** Fingerprint plus a Table 7 row label. */
    struct NamedKey
    {
        std::uint64_t ci_fab = 0;
        std::uint64_t abatement = 0;
        std::uint64_t yield = 0;
        std::uint64_t lookup = 0;
        std::string name;

        bool operator==(const NamedKey &) const = default;
    };

    struct NamedKeyHash
    {
        std::size_t operator()(const NamedKey &key) const;
    };

    /** Immutable once published; readers probe without locks. */
    struct NumericTable
    {
        struct Slot
        {
            NumericKey key;
            double value = 0.0;
            bool used = false;
        };

        explicit NumericTable(std::size_t capacity)
            : slots(capacity), mask(capacity - 1)
        {}

        std::vector<Slot> slots;
        std::size_t mask;
        std::size_t count = 0;
    };

    struct NumericShard
    {
        std::atomic<const NumericTable *> table{nullptr};
        std::mutex write_mutex;
        // Superseded versions, kept so in-flight readers stay valid.
        std::vector<std::unique_ptr<const NumericTable>> retired;
    };

    struct NamedShard
    {
        mutable std::shared_mutex mutex;
        std::unordered_map<NamedKey, double, NamedKeyHash> entries;
    };

    static constexpr std::size_t kShards = 16;
    static constexpr std::size_t kInitialCapacity = 32;

    CpaCache();
    ~CpaCache();

    static NumericKey
    numericKey(const FabParams &fab, double nm)
    {
        NumericKey key;
        key.ci_fab = std::bit_cast<std::uint64_t>(fab.ci_fab.value());
        key.abatement = std::bit_cast<std::uint64_t>(fab.abatement);
        key.yield = std::bit_cast<std::uint64_t>(fab.yield);
        key.lookup = static_cast<std::uint64_t>(fab.lookup);
        key.nm = std::bit_cast<std::uint64_t>(nm);
        return key;
    }

    /** SplitMix64 finalizer: the mixer behind every hash here. */
    static std::uint64_t
    mix64(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ULL;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBULL;
        x ^= x >> 31;
        return x;
    }

    static std::uint64_t
    hashNumeric(const NumericKey &key)
    {
        // Independent multiplies (instruction-level parallel, unlike
        // a chained mixer) folded by one finalizer round: the hit
        // path runs this on every carbonPerArea() call.
        std::uint64_t h = key.ci_fab * 0x9E3779B97F4A7C15ULL;
        h ^= key.abatement * 0xC2B2AE3D27D4EB4FULL;
        h ^= key.yield * 0x165667B19E3779F9ULL;
        h ^= (key.lookup ^ key.nm) * 0x27D4EB2F165667C5ULL;
        return mix64(h);
    }

    const double *
    findNumeric(const NumericKey &key, std::uint64_t hash) const
    {
        const NumericShard &shard = numeric_shards_[hash % kShards];
        const NumericTable *table =
            shard.table.load(std::memory_order_acquire);
        std::size_t index = hash & table->mask;
        while (table->slots[index].used) {
            if (table->slots[index].key == key)
                return &table->slots[index].value;
            index = (index + 1) & table->mask;
        }
        return nullptr;
    }

    void storeNumeric(const NumericKey &key, std::uint64_t hash,
                      double value);

    const double *findNamed(const FabParams &fab,
                            std::string_view node_name) const;
    void storeNamed(const FabParams &fab, std::string_view node_name,
                    double value);
    /** Raw-key insert shared by storeNamed() and loadFromFile(). */
    void storeNamedKey(NamedKey key, double value);

    /** Serialize to JSON / write @p path; false on I/O failure. */
    config::JsonValue toJson() const;
    bool writeFile(const std::string &path) const;

    NumericShard numeric_shards_[kShards];
    NamedShard named_shards_[kShards];

    /** Registry-owned hit/miss counters (core.cpa_cache.*). */
    util::Counter &hits_;
    util::Counter &misses_;

    std::atomic<bool> enabled_{true};

    /** ACT_CPA_CACHE_FILE target, rewritten at destruction. */
    std::string persist_path_;
    /**
     * modelConfigFingerprint(), captured at construction when
     * persistence is on: the destructor must not touch other
     * function-local statics (they may already be destroyed).
     */
    std::string persist_fingerprint_;
};

} // namespace act::core

#endif // ACT_CORE_CPA_CACHE_H
