/**
 * @file
 * JSON (de)serialization for the ACT model parameters, mirroring the
 * config-file-driven workflow of the released tool. A scenario file
 * looks like:
 *
 *   {
 *     // fab side (Eq. 5)
 *     "fab": {"ci_fab_g_per_kwh": 447.5, "abatement": 0.97,
 *             "yield": 0.875, "lookup": "interpolate"},
 *     // use side (Eq. 2)
 *     "operational": {"ci_use_g_per_kwh": 300.0,
 *                      "utilization_effectiveness": 1.0},
 *     "lifetime_years": 3.0
 *   }
 */

#ifndef ACT_CORE_MODEL_CONFIG_H
#define ACT_CORE_MODEL_CONFIG_H

#include <string>

#include "config/json.h"
#include "core/fab_params.h"
#include "core/operational.h"
#include "util/units.h"

namespace act::core {

/** A complete model scenario: fab, use phase, and lifetime. */
struct Scenario
{
    FabParams fab;
    OperationalParams operational;
    util::Duration lifetime = util::years(3.0);
};

config::JsonValue toJson(const FabParams &params);
config::JsonValue toJson(const OperationalParams &params);
config::JsonValue toJson(const Scenario &scenario);

/** Parse; missing keys keep their defaults, bad values are fatal. */
FabParams fabParamsFromJson(const config::JsonValue &value);
OperationalParams operationalParamsFromJson(const config::JsonValue &value);
Scenario scenarioFromJson(const config::JsonValue &value);

/** Load a scenario config file (fatal on I/O or parse errors). */
Scenario loadScenario(const std::string &path);

/** Save a scenario config file. */
void saveScenario(const std::string &path, const Scenario &scenario);

/**
 * A 16-hex-digit fingerprint of the compiled-in model data the CPA
 * computation depends on: the Table 7 fab database (per-node EPA/GPA,
 * MPA), the default fab/use carbon intensities, and a format-version
 * salt. Serialized artifacts keyed on model outputs -- sweep plans,
 * shard partials, the persistent CPA cache file -- embed it, so an
 * artifact produced by a different data vintage is detected as stale
 * instead of silently replayed.
 */
std::string modelConfigFingerprint();

} // namespace act::core

#endif // ACT_CORE_MODEL_CONFIG_H
