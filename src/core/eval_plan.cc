#include "core/eval_plan.h"

#include <algorithm>

#include "data/carbon_intensity_db.h"
#include "data/fab_db.h"
#include "data/memory_db.h"
#include "util/interp.h"
#include "util/logging.h"
#include "util/simd_kernels.h"

namespace act::core {

namespace {

void
checkYield(double yield)
{
    if (!(yield > 0.0 && yield <= 1.0))
        util::fatal("fab yield must be in (0, 1], got ", yield);
}

void
checkAbatementRange(double abatement)
{
    if (!(abatement >= 0.90 && abatement <= 1.0)) {
        util::fatal("gaseous abatement fraction ", abatement,
                    " outside the characterized range [0.90, 1.0]");
    }
}

} // namespace

std::string_view
evalInputName(EvalInput input)
{
    switch (input) {
    case EvalInput::CiFab:
        return "ci_fab";
    case EvalInput::Epa:
        return "epa";
    case EvalInput::Gpa:
        return "gpa";
    case EvalInput::Mpa:
        return "mpa";
    case EvalInput::Yield:
        return "yield";
    case EvalInput::Abatement:
        return "abatement";
    }
    return "unknown";
}

void
EvalPlan::bind(std::span<const EvalInput> bindings)
{
    if (bindings.size() > kMaxInputs) {
        util::fatal("evaluation plan binds ", bindings.size(),
                    " inputs; at most ", kMaxInputs, " supported");
    }
    for (std::size_t i = 0; i < bindings.size(); ++i) {
        const EvalInput input = bindings[i];
        for (std::size_t j = 0; j < i; ++j) {
            if (bindings_[j] == input) {
                util::fatal("evaluation plan binds input '",
                            evalInputName(input), "' twice");
            }
        }
        if (input == EvalInput::Abatement) {
            if (!has_gpa_columns_) {
                util::fatal("cannot bind 'abatement' on a raw-term plan: "
                            "no resolved GPA columns to interpolate");
            }
            abatement_bound_ = true;
        }
        if ((input == EvalInput::Epa || input == EvalInput::Gpa) &&
            has_gpa_columns_) {
            util::fatal("cannot bind '", evalInputName(input),
                        "' on a node-resolved plan; its value comes from "
                        "the Table 7 curves");
        }
        bindings_[i] = input;
    }
    input_count_ = bindings.size();
    if (abatement_bound_ && has_gpa_columns_) {
        for (std::size_t i = 0; i < input_count_; ++i) {
            if (bindings_[i] == EvalInput::Gpa) {
                util::fatal(
                    "evaluation plan binds both 'gpa' and 'abatement'");
            }
        }
    }
}

EvalPlan
EvalPlan::forNode(const FabParams &fab, double nm,
                  std::span<const EvalInput> bindings)
{
    const auto &db = data::FabDatabase::instance();
    EvalPlan plan;
    plan.ci_fab_ = fab.ci_fab.value();
    plan.epa_ = db.epa(nm, fab.lookup).value();
    plan.gpa_ = db.gpa(nm, fab.abatement, fab.lookup).value();
    plan.mpa_ = db.mpa().value();
    plan.yield_ = fab.yield;
    plan.abatement_ = fab.abatement;
    const auto [at95, at99] = db.gpaColumns(nm, fab.lookup);
    plan.gpa95_ = at95;
    plan.gpa99_ = at99;
    plan.has_gpa_columns_ = true;
    plan.check_abatement_ = true;
    plan.bind(bindings);
    return plan;
}

EvalPlan
EvalPlan::forNodeNamed(const FabParams &fab, std::string_view node_label,
                       std::span<const EvalInput> bindings)
{
    const auto &db = data::FabDatabase::instance();
    const auto record = db.findByName(node_label);
    if (!record)
        util::fatal("unknown process node '", node_label, "'");
    EvalPlan plan;
    plan.ci_fab_ = fab.ci_fab.value();
    plan.epa_ = record->epa.value();
    plan.gpa95_ = record->gpa_abated_95.value();
    plan.gpa99_ = record->gpa_abated_99.value();
    plan.has_gpa_columns_ = true;
    // carbonPerAreaNamed() interpolates the row columns without the
    // curve path's range check; replay that exactly.
    plan.check_abatement_ = false;
    plan.mpa_ = db.mpa().value();
    plan.yield_ = fab.yield;
    plan.abatement_ = fab.abatement;
    const double t = (fab.abatement - 0.95) / (0.99 - 0.95);
    plan.gpa_ = std::max(0.0, util::lerp(plan.gpa95_, plan.gpa99_, t));
    plan.bind(bindings);
    return plan;
}

EvalPlan
EvalPlan::forRawCpa(const RawTerms &terms,
                    std::span<const EvalInput> bindings)
{
    EvalPlan plan;
    plan.ci_fab_ = terms.ci_fab;
    plan.epa_ = terms.epa;
    plan.gpa_ = terms.gpa;
    plan.mpa_ = terms.mpa;
    plan.yield_ = terms.yield;
    plan.bind(bindings);
    return plan;
}

double
EvalPlan::evaluateOne(const double *values) const
{
    double ci_fab = ci_fab_;
    double epa = epa_;
    double gpa = gpa_;
    double mpa = mpa_;
    double yield = yield_;
    double abatement = abatement_;
    for (std::size_t i = 0; i < input_count_; ++i) {
        const double value = values[i];
        switch (bindings_[i]) {
        case EvalInput::CiFab:
            ci_fab = value;
            break;
        case EvalInput::Epa:
            epa = value;
            break;
        case EvalInput::Gpa:
            gpa = value;
            break;
        case EvalInput::Mpa:
            mpa = value;
            break;
        case EvalInput::Yield:
            yield = value;
            break;
        case EvalInput::Abatement:
            abatement = value;
            break;
        }
    }
    if (abatement_bound_) {
        if (check_abatement_)
            checkAbatementRange(abatement);
        const double t = (abatement - 0.95) / (0.99 - 0.95);
        gpa = std::max(0.0, util::lerp(gpa95_, gpa99_, t));
    }
    checkYield(yield);
    return (ci_fab * epa + gpa + mpa) / yield;
}

void
EvalPlan::evaluateBatch(std::size_t n, const double *const *inputs,
                        double *outputs) const
{
    // Resolve each Eq. 5 term to (pointer, stride): a bound input
    // reads its SoA column (stride 1), an unbound term re-reads its
    // compiled baseline (stride 0). The per-sample loops below are
    // then branchless -- same arithmetic as evaluateOne(), expression
    // for expression.
    struct Term
    {
        const double *p;
        std::size_t stride;
    };
    Term ci{&ci_fab_, 0};
    Term epa{&epa_, 0};
    Term gpa{&gpa_, 0};
    Term mpa{&mpa_, 0};
    Term yield{&yield_, 0};
    Term abatement{&abatement_, 0};
    for (std::size_t i = 0; i < input_count_; ++i) {
        const Term bound{inputs[i], 1};
        switch (bindings_[i]) {
        case EvalInput::CiFab:
            ci = bound;
            break;
        case EvalInput::Epa:
            epa = bound;
            break;
        case EvalInput::Gpa:
            gpa = bound;
            break;
        case EvalInput::Mpa:
            mpa = bound;
            break;
        case EvalInput::Yield:
            yield = bound;
            break;
        case EvalInput::Abatement:
            abatement = bound;
            break;
        }
    }
    const bool recompute_gpa = abatement_bound_;

    // Validation pass, in sample order with evaluateOne()'s per-sample
    // check order (abatement before yield), hoisted so the compute
    // loop carries no fatal-path branches. Unbound terms are checked
    // once.
    const bool check_ab = recompute_gpa && check_abatement_;
    if (check_ab && abatement.stride == 0)
        checkAbatementRange(*abatement.p);
    if (yield.stride == 0)
        checkYield(*yield.p);
    if ((check_ab && abatement.stride != 0) || yield.stride != 0) {
        // Column scans run wide through the all_within kernel; only
        // when one reports a violation does the scalar loop re-run,
        // so the fatal diagnostic names the same first failure
        // (sample order, abatement before yield) as always.
        const auto &kt = util::simd::activeKernels();
        bool ok = true;
        if (check_ab && abatement.stride != 0)
            ok = kt.all_within(abatement.p, n, 0.90, 1.0, false);
        if (ok && yield.stride != 0)
            ok = kt.all_within(yield.p, n, 0.0, 1.0, true);
        if (!ok) {
            for (std::size_t s = 0; s < n; ++s) {
                if (check_ab && abatement.stride != 0)
                    checkAbatementRange(abatement.p[s]);
                if (yield.stride != 0)
                    checkYield(yield.p[s]);
            }
        }
    }

    // Compute pass: the Eq. 5 ratio kernel at the active SIMD
    // dispatch level (util/simd.h). Every level reproduces the scalar
    // kernel's expression shapes exactly -- same rounding, same bits
    // -- so the dispatch level never changes results (DESIGN.md §11).
    util::simd::RatioTerms terms;
    terms.ci = {ci.p, ci.stride != 0};
    terms.epa = {epa.p, epa.stride != 0};
    terms.gpa = {gpa.p, gpa.stride != 0};
    terms.mpa = {mpa.p, mpa.stride != 0};
    terms.yield = {yield.p, yield.stride != 0};
    terms.abatement = {abatement.p, abatement.stride != 0};
    terms.gpa95 = gpa95_;
    terms.gpa99 = gpa99_;
    terms.recompute_gpa = recompute_gpa;
    util::simd::activeKernels().eval_ratio(terms, n, outputs);
}

util::CarbonPerArea
EvalPlan::cpa() const
{
    checkYield(yield_);
    return util::gramsPerCm2((ci_fab_ * epa_ + gpa_ + mpa_) / yield_);
}

util::CarbonPerCapacity
EvalPlan::resolveTechnologyCps(std::string_view technology)
{
    return data::storageOrDie(technology).cps;
}

util::CarbonIntensity
EvalPlan::resolveRegionIntensity(std::string_view region)
{
    return data::regionIntensity(data::regionByName(region));
}

} // namespace act::core
