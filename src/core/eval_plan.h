/**
 * @file
 * Compiled evaluation plans for the DSE hot path: resolve a model
 * configuration *once* -- node label or feature size to the Table 7
 * EPA/GPA curve values and Table 8 MPA, memory technology to its
 * Table 9-11 CPS, grid region to its Table 6 carbon intensity, plus
 * the FabParams baselines -- into a dense plan of plain doubles, then
 * evaluate millions of samples against it with no string lookups, no
 * hashing, and no heap traffic per sample.
 *
 * The plan computes exactly the Eq. 5 arithmetic of
 * core::carbonPerArea[Named]():
 *
 *   CPA = (CI_fab * EPA + GPA(abatement) + MPA) / yield
 *
 * with the same operation order and the same range checks, so for any
 * input the compiled result is bit-identical to the string-keyed,
 * database-resolving path (which stays available as the test oracle).
 * When `Abatement` is a bound input, the plan keeps the two resolved
 * abatement columns and replays data::FabDatabase::gpa()'s
 * interpolation per sample; otherwise GPA folds to a constant at
 * build time.
 *
 * Batched evaluation takes structure-of-arrays input columns
 * (`inputs[i][s]` is bound input i of sample s) and fills a dense
 * output array -- the kernel shape dse::monteCarloBatch() and
 * dse::tornado() feed from reused buffers.
 */

#ifndef ACT_CORE_EVAL_PLAN_H
#define ACT_CORE_EVAL_PLAN_H

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

#include "core/fab_params.h"
#include "util/units.h"

namespace act::core {

/** Model inputs a compiled plan can bind to per-sample values. */
enum class EvalInput
{
    /** Fab carbon intensity, g CO2/kWh. */
    CiFab,
    /** Fab energy per area, kWh/cm2 (raw-term plans only). */
    Epa,
    /** Gas emissions per area, g CO2/cm2 (raw-term plans only). */
    Gpa,
    /** Raw material procurement intensity, g CO2/cm2. */
    Mpa,
    /** Fab yield in (0, 1]. */
    Yield,
    /** Gaseous abatement fraction (node-resolved plans only). */
    Abatement,
};

/** Display name of an input ("ci_fab", "yield", ...). */
std::string_view evalInputName(EvalInput input);

/**
 * One compiled Eq. 5 evaluation: every database lookup resolved at
 * build time, every per-sample evaluation pure arithmetic over a
 * handful of doubles. Copyable and cheap to pass by value; safe to
 * share read-only across threads.
 */
class EvalPlan
{
  public:
    /** Most bound inputs a plan supports (Eq. 5 has six terms). */
    static constexpr std::size_t kMaxInputs = 6;

    /**
     * Compile for a feature size: EPA and the two GPA abatement
     * columns resolve through the Table 7 scaling curves (honoring
     * fab.lookup), MPA through Table 8, baselines from @p fab.
     * Fatal outside [3, 28] nm, on a bad yield, or on a binding the
     * plan cannot honor (duplicate inputs, Epa/Gpa with node-resolved
     * curves, more than kMaxInputs).
     */
    static EvalPlan forNode(const FabParams &fab, double nm,
                            std::span<const EvalInput> bindings = {});

    /**
     * Compile for a named Table 7 row ("7nm-EUV"): EPA and the GPA
     * columns pin to the row, like carbonPerAreaNamed(). Fatal on
     * unknown labels.
     */
    static EvalPlan forNodeNamed(const FabParams &fab,
                                 std::string_view node_label,
                                 std::span<const EvalInput> bindings = {});

    /** Baseline terms for a raw-formula plan (no database). */
    struct RawTerms
    {
        double ci_fab = 0.0;
        double epa = 0.0;
        double gpa = 0.0;
        double mpa = 0.0;
        double yield = 1.0;
    };

    /**
     * Compile the raw Eq. 5 formula over caller-supplied baseline
     * terms -- the shape of the generic uncertainty studies, where
     * EPA/GPA/MPA are themselves uncertain inputs rather than
     * database-resolved constants. `Abatement` cannot be bound (there
     * are no columns to interpolate).
     */
    static EvalPlan forRawCpa(const RawTerms &terms,
                              std::span<const EvalInput> bindings = {});

    /** Number of bound inputs (the expected values[] length). */
    std::size_t inputCount() const { return input_count_; }

    /** The bound inputs, in values[] order. */
    std::span<const EvalInput> bindings() const
    {
        return {bindings_.data(), input_count_};
    }

    /**
     * Evaluate one sample: values[i] feeds binding i, unbound terms
     * keep their compiled baselines. Fatal on a yield outside (0, 1]
     * and -- for curve-resolved plans -- an abatement outside
     * [0.90, 1.0], mirroring the uncompiled path.
     */
    double
    evaluate(const double *values) const
    {
        return evaluateOne(values);
    }

    /**
     * Batched evaluation over structure-of-arrays columns:
     * outputs[s] = evaluate({inputs[0][s], ..., inputs[k-1][s]}) for
     * s in [0, n). One call per chunk replaces n closure invocations.
     */
    void evaluateBatch(std::size_t n, const double *const *inputs,
                       double *outputs) const;

    /** The compiled baseline CPA (no inputs perturbed). */
    util::CarbonPerArea cpa() const;

    /**
     * Resolve a memory/storage technology name to its carbon per
     * capacity once (Tables 9-11); bit-identical to the per-call
     * data::storageOrDie() lookup. Fatal on unknown names.
     */
    static util::CarbonPerCapacity
    resolveTechnologyCps(std::string_view technology);

    /**
     * Resolve a grid region name to its Table 6 carbon intensity
     * once; bit-identical to data::regionIntensity(). Fatal on
     * unknown names.
     */
    static util::CarbonIntensity
    resolveRegionIntensity(std::string_view region);

  private:
    EvalPlan() = default;

    void bind(std::span<const EvalInput> bindings);
    double evaluateOne(const double *values) const;

    // Resolved baselines: Eq. 5 terms in their natural units.
    double ci_fab_ = 0.0;
    double epa_ = 0.0;
    double gpa_ = 0.0;
    double mpa_ = 0.0;
    double yield_ = 1.0;
    double abatement_ = 0.0;

    // GPA abatement columns at the resolved node, when available.
    double gpa95_ = 0.0;
    double gpa99_ = 0.0;
    bool has_gpa_columns_ = false;
    /** Curve-resolved plans re-check the abatement range per sample
     *  (FabDatabase::gpa() does); named-row plans do not
     *  (carbonPerAreaNamed() interpolates unchecked). */
    bool check_abatement_ = false;
    /** Abatement is bound, so GPA recomputes per sample. */
    bool abatement_bound_ = false;

    std::array<EvalInput, kMaxInputs> bindings_{};
    std::size_t input_count_ = 0;
};

} // namespace act::core

#endif // ACT_CORE_EVAL_PLAN_H
