/**
 * @file
 * The generic hardware replacement-cycle model shared by the Fig. 14
 * mobile-fleet study and the server-refresh analysis: over a fixed
 * horizon H with replacement every L years, a fleet incurs
 *
 *   embodied(L)    = (H / L) * E_unit
 *   operational(L) = (H / L) * CI * E_annual * sum_{a=0}^{L-1} g^a
 *
 * where g > 1 is the annual energy-efficiency improvement of new
 * hardware (units keep their purchase-year efficiency while the
 * workload tracks the frontier, so relative energy grows g^age).
 */

#ifndef ACT_CORE_REPLACEMENT_H
#define ACT_CORE_REPLACEMENT_H

#include <cstddef>
#include <vector>

#include "core/operational.h"
#include "util/units.h"

namespace act::core {

/** Replacement-cycle inputs. */
struct ReplacementParams
{
    /** Embodied footprint of one hardware unit. */
    util::Mass embodied_per_unit{};
    /** Grid energy a brand-new unit draws per year of service. */
    util::Energy first_year_energy{};
    OperationalParams use{};
    /** Annual efficiency improvement factor of new hardware (> 1). */
    double annual_efficiency_improvement = 1.21;
    /** Evaluation horizon. */
    util::Duration horizon = util::years(10.0);
};

/** One evaluated replacement interval. */
struct ReplacementPoint
{
    double lifetime_years = 0.0;
    util::Mass embodied{};
    util::Mass operational{};

    util::Mass total() const { return embodied + operational; }
};

/** Evaluate one (possibly fractional) replacement interval; fatal for
 *  non-positive lifetimes or improvement factors <= 1. */
ReplacementPoint evaluateReplacement(const ReplacementParams &params,
                                     double lifetime_years);

/** Sweep integer replacement intervals 1..max_years. */
std::vector<ReplacementPoint>
replacementSweep(const ReplacementParams &params, int max_years = 10);

/** Index of the footprint-minimizing interval in a sweep. */
std::size_t
optimalReplacementIndex(const std::vector<ReplacementPoint> &sweep);

} // namespace act::core

#endif // ACT_CORE_REPLACEMENT_H
