#include "core/cpa_cache.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

#include "core/model_config.h"
#include "util/env.h"
#include "util/logging.h"

namespace act::core {

namespace {

constexpr const char *kCacheFormat = "act.cpa_cache.v1";

/**
 * Doubles (and the lookup flag) persist as 16-hex-digit bit patterns,
 * not decimal text: the cache contract is *exact* bitwise keys, and a
 * round-trip through the file must reproduce every bit or a warm
 * start could silently diverge from a cold one.
 */
std::string
hexU64(std::uint64_t bits)
{
    char buffer[17];
    std::snprintf(buffer, sizeof buffer, "%016llx",
                  static_cast<unsigned long long>(bits));
    return std::string(buffer);
}

std::uint64_t
u64Hex(const config::JsonValue &value)
{
    const std::string &text = value.asString();
    if (text.size() != 16)
        throw config::JsonTypeError("expected 16 hex digits, got \"" +
                                    text + "\"");
    std::uint64_t bits = 0;
    for (const char c : text) {
        bits <<= 4;
        if (c >= '0' && c <= '9')
            bits |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            bits |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw config::JsonTypeError(
                "invalid hex digit in \"" + text + "\"");
    }
    return bits;
}

} // namespace

CpaCache::CpaCache()
    : hits_(util::MetricsRegistry::instance().counter(
          "core.cpa_cache.hits")),
      misses_(util::MetricsRegistry::instance().counter(
          "core.cpa_cache.misses"))
{
    util::MetricsRegistry::instance().registerCallbackGauge(
        "core.cpa_cache.hit_rate_pct",
        [this] { return stats().hitRate() * 100.0; });
    for (NumericShard &shard : numeric_shards_)
        shard.table.store(new NumericTable(kInitialCapacity),
                          std::memory_order_release);
    if (!util::envBool("ACT_CPA_CACHE", true))
        enabled_.store(false, std::memory_order_relaxed);
    persist_path_ = util::envString("ACT_CPA_CACHE_FILE", "");
    if (!persist_path_.empty()) {
        // Captured now so the destructor never recomputes it: the
        // fingerprint walks other function-local statics (the fab
        // database) that may be gone by the time we are destroyed.
        persist_fingerprint_ = modelConfigFingerprint();
        loadFromFile(persist_path_);
    }
}

CpaCache::~CpaCache()
{
    if (!persist_path_.empty() &&
        enabled_.load(std::memory_order_relaxed)) {
        if (!writeFile(persist_path_))
            util::warn("cpa_cache: failed to write '", persist_path_,
                       "'; cached CPA entries were not persisted");
    }
    for (NumericShard &shard : numeric_shards_)
        delete shard.table.load(std::memory_order_acquire);
}

CpaCache &
CpaCache::instance()
{
    static CpaCache cache;
    return cache;
}

std::size_t
CpaCache::NamedKeyHash::operator()(const NamedKey &key) const
{
    std::uint64_t h = key.ci_fab * 0x9E3779B97F4A7C15ULL;
    h ^= key.abatement * 0xC2B2AE3D27D4EB4FULL;
    h ^= key.yield * 0x165667B19E3779F9ULL;
    h ^= key.lookup * 0x27D4EB2F165667C5ULL;
    h ^= std::hash<std::string>{}(key.name);
    return static_cast<std::size_t>(mix64(h));
}

void
CpaCache::storeNumeric(const NumericKey &key, std::uint64_t hash,
                       double value)
{
    NumericShard &shard = numeric_shards_[hash % kShards];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    const NumericTable *current =
        shard.table.load(std::memory_order_relaxed);

    // A racing writer may have inserted this key after our probe.
    {
        std::size_t index = hash & current->mask;
        while (current->slots[index].used) {
            if (current->slots[index].key == key)
                return;
            index = (index + 1) & current->mask;
        }
    }

    // Copy-on-write: rebuild at <= 50% load, insert, publish.
    const std::size_t capacity = (current->count + 1) * 2 >
                                         current->mask + 1
                                     ? (current->mask + 1) * 2
                                     : current->mask + 1;
    auto fresh = std::make_unique<NumericTable>(capacity);
    const auto insert = [&fresh](const NumericKey &k, double v) {
        std::size_t index = hashNumeric(k) & fresh->mask;
        while (fresh->slots[index].used)
            index = (index + 1) & fresh->mask;
        fresh->slots[index].key = k;
        fresh->slots[index].value = v;
        fresh->slots[index].used = true;
        ++fresh->count;
    };
    for (const NumericTable::Slot &slot : current->slots) {
        if (slot.used)
            insert(slot.key, slot.value);
    }
    insert(key, value);

    shard.table.store(fresh.release(), std::memory_order_release);
    shard.retired.emplace_back(current);
}

const double *
CpaCache::findNamed(const FabParams &fab,
                    std::string_view node_name) const
{
    NamedKey key;
    key.ci_fab = std::bit_cast<std::uint64_t>(fab.ci_fab.value());
    key.abatement = std::bit_cast<std::uint64_t>(fab.abatement);
    key.yield = std::bit_cast<std::uint64_t>(fab.yield);
    key.lookup = static_cast<std::uint64_t>(fab.lookup);
    key.name = std::string(node_name);

    const NamedShard &shard =
        named_shards_[NamedKeyHash{}(key) % kShards];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto found = shard.entries.find(key);
    return found != shard.entries.end() ? &found->second : nullptr;
}

void
CpaCache::storeNamed(const FabParams &fab, std::string_view node_name,
                     double value)
{
    NamedKey key;
    key.ci_fab = std::bit_cast<std::uint64_t>(fab.ci_fab.value());
    key.abatement = std::bit_cast<std::uint64_t>(fab.abatement);
    key.yield = std::bit_cast<std::uint64_t>(fab.yield);
    key.lookup = static_cast<std::uint64_t>(fab.lookup);
    key.name = std::string(node_name);
    storeNamedKey(std::move(key), value);
}

void
CpaCache::storeNamedKey(NamedKey key, double value)
{
    NamedShard &shard = named_shards_[NamedKeyHash{}(key) % kShards];
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.entries.emplace(std::move(key), value);
}

void
CpaCache::clear()
{
    for (NumericShard &shard : numeric_shards_) {
        std::lock_guard<std::mutex> lock(shard.write_mutex);
        const NumericTable *current =
            shard.table.load(std::memory_order_relaxed);
        shard.table.store(new NumericTable(kInitialCapacity),
                          std::memory_order_release);
        shard.retired.emplace_back(current);
    }
    for (NamedShard &shard : named_shards_) {
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        shard.entries.clear();
    }
}

config::JsonValue
CpaCache::toJson() const
{
    // Snapshot, then sort: shard partitioning and insertion order are
    // runtime accidents, and two processes that cached the same
    // entries must write byte-identical files.
    std::vector<std::pair<NumericKey, double>> numeric;
    for (const NumericShard &shard : numeric_shards_) {
        const NumericTable *table =
            shard.table.load(std::memory_order_acquire);
        for (const NumericTable::Slot &slot : table->slots) {
            if (slot.used)
                numeric.emplace_back(slot.key, slot.value);
        }
    }
    std::sort(numeric.begin(), numeric.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(a.first.ci_fab, a.first.abatement,
                                  a.first.yield, a.first.lookup,
                                  a.first.nm) <
                         std::tie(b.first.ci_fab, b.first.abatement,
                                  b.first.yield, b.first.lookup,
                                  b.first.nm);
              });

    std::vector<std::pair<NamedKey, double>> named;
    for (const NamedShard &shard : named_shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        for (const auto &[key, value] : shard.entries)
            named.emplace_back(key, value);
    }
    std::sort(named.begin(), named.end(),
              [](const auto &a, const auto &b) {
                  return std::tie(a.first.ci_fab, a.first.abatement,
                                  a.first.yield, a.first.lookup,
                                  a.first.name) <
                         std::tie(b.first.ci_fab, b.first.abatement,
                                  b.first.yield, b.first.lookup,
                                  b.first.name);
              });

    config::JsonArray numeric_json;
    numeric_json.reserve(numeric.size());
    for (const auto &[key, value] : numeric) {
        config::JsonObject entry;
        entry["ci_fab"] = hexU64(key.ci_fab);
        entry["abatement"] = hexU64(key.abatement);
        entry["yield"] = hexU64(key.yield);
        entry["lookup"] = hexU64(key.lookup);
        entry["nm"] = hexU64(key.nm);
        entry["value"] =
            hexU64(std::bit_cast<std::uint64_t>(value));
        numeric_json.emplace_back(std::move(entry));
    }
    config::JsonArray named_json;
    named_json.reserve(named.size());
    for (const auto &[key, value] : named) {
        config::JsonObject entry;
        entry["ci_fab"] = hexU64(key.ci_fab);
        entry["abatement"] = hexU64(key.abatement);
        entry["yield"] = hexU64(key.yield);
        entry["lookup"] = hexU64(key.lookup);
        entry["name"] = key.name;
        entry["value"] =
            hexU64(std::bit_cast<std::uint64_t>(value));
        named_json.emplace_back(std::move(entry));
    }

    config::JsonObject doc;
    doc["format"] = kCacheFormat;
    doc["fingerprint"] = persist_fingerprint_.empty()
                             ? modelConfigFingerprint()
                             : persist_fingerprint_;
    doc["numeric"] = std::move(numeric_json);
    doc["named"] = std::move(named_json);
    return config::JsonValue(std::move(doc));
}

bool
CpaCache::writeFile(const std::string &path) const
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out)
            return false;
        out << toJson().dump(2) << '\n';
        if (!out)
            return false;
    }
    // Atomic publish: readers (other shards of a sweep, later runs)
    // see either the old complete file or the new one, never a
    // partial write.
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

void
CpaCache::saveToFile(const std::string &path) const
{
    if (!writeFile(path))
        util::fatal("cpa_cache: cannot write cache file '", path, "'");
}

std::size_t
CpaCache::loadFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return 0; // Missing file: a silent cold start, not an error.
    std::ostringstream buffer;
    buffer << in.rdbuf();

    std::size_t loaded = 0;
    try {
        const config::JsonValue doc =
            config::JsonValue::parse(buffer.str());
        const std::string format = doc.stringOr("format", "");
        if (format != kCacheFormat) {
            util::warn("cpa_cache: '", path, "' has format '", format,
                       "', expected '", kCacheFormat,
                       "'; starting cold");
            return 0;
        }
        const std::string fingerprint =
            doc.stringOr("fingerprint", "");
        if (fingerprint != modelConfigFingerprint()) {
            util::warn("cpa_cache: '", path,
                       "' was written against model fingerprint ",
                       fingerprint, " but this build is ",
                       modelConfigFingerprint(),
                       "; ignoring stale cache");
            return 0;
        }
        for (const config::JsonValue &entry :
             doc.at("numeric").asArray()) {
            NumericKey key;
            key.ci_fab = u64Hex(entry.at("ci_fab"));
            key.abatement = u64Hex(entry.at("abatement"));
            key.yield = u64Hex(entry.at("yield"));
            key.lookup = u64Hex(entry.at("lookup"));
            key.nm = u64Hex(entry.at("nm"));
            const double value =
                std::bit_cast<double>(u64Hex(entry.at("value")));
            storeNumeric(key, hashNumeric(key), value);
            ++loaded;
        }
        for (const config::JsonValue &entry :
             doc.at("named").asArray()) {
            NamedKey key;
            key.ci_fab = u64Hex(entry.at("ci_fab"));
            key.abatement = u64Hex(entry.at("abatement"));
            key.yield = u64Hex(entry.at("yield"));
            key.lookup = u64Hex(entry.at("lookup"));
            key.name = entry.at("name").asString();
            const double value =
                std::bit_cast<double>(u64Hex(entry.at("value")));
            storeNamedKey(std::move(key), value);
            ++loaded;
        }
    } catch (const config::JsonParseError &error) {
        util::warn("cpa_cache: '", path, "' is corrupt (",
                   error.what(), "); starting cold");
        return 0;
    } catch (const config::JsonTypeError &error) {
        util::warn("cpa_cache: '", path, "' is malformed (",
                   error.what(), "); starting cold");
        return 0;
    }
    return loaded;
}

void
CpaCache::resetStats()
{
    hits_.reset();
    misses_.reset();
}

CpaCacheStats
CpaCache::stats() const
{
    CpaCacheStats stats;
    stats.hits = hits_.value();
    stats.misses = misses_.value();
    return stats;
}

std::size_t
CpaCache::size() const
{
    std::size_t total = 0;
    for (const NumericShard &shard : numeric_shards_) {
        total += shard.table.load(std::memory_order_acquire)->count;
    }
    for (const NamedShard &shard : named_shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

void
CpaCache::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

bool
CpaCache::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

} // namespace act::core
