#include "core/cpa_cache.h"

#include <cstdlib>
#include <cstring>

namespace act::core {

CpaCache::CpaCache()
    : hits_(util::MetricsRegistry::instance().counter(
          "core.cpa_cache.hits")),
      misses_(util::MetricsRegistry::instance().counter(
          "core.cpa_cache.misses"))
{
    util::MetricsRegistry::instance().registerCallbackGauge(
        "core.cpa_cache.hit_rate_pct",
        [this] { return stats().hitRate() * 100.0; });
    for (NumericShard &shard : numeric_shards_)
        shard.table.store(new NumericTable(kInitialCapacity),
                          std::memory_order_release);
    if (const char *env = std::getenv("ACT_CPA_CACHE")) {
        if (std::strcmp(env, "0") == 0)
            enabled_.store(false, std::memory_order_relaxed);
    }
}

CpaCache::~CpaCache()
{
    for (NumericShard &shard : numeric_shards_)
        delete shard.table.load(std::memory_order_acquire);
}

CpaCache &
CpaCache::instance()
{
    static CpaCache cache;
    return cache;
}

std::size_t
CpaCache::NamedKeyHash::operator()(const NamedKey &key) const
{
    std::uint64_t h = key.ci_fab * 0x9E3779B97F4A7C15ULL;
    h ^= key.abatement * 0xC2B2AE3D27D4EB4FULL;
    h ^= key.yield * 0x165667B19E3779F9ULL;
    h ^= key.lookup * 0x27D4EB2F165667C5ULL;
    h ^= std::hash<std::string>{}(key.name);
    return static_cast<std::size_t>(mix64(h));
}

void
CpaCache::storeNumeric(const NumericKey &key, std::uint64_t hash,
                       double value)
{
    NumericShard &shard = numeric_shards_[hash % kShards];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    const NumericTable *current =
        shard.table.load(std::memory_order_relaxed);

    // A racing writer may have inserted this key after our probe.
    {
        std::size_t index = hash & current->mask;
        while (current->slots[index].used) {
            if (current->slots[index].key == key)
                return;
            index = (index + 1) & current->mask;
        }
    }

    // Copy-on-write: rebuild at <= 50% load, insert, publish.
    const std::size_t capacity = (current->count + 1) * 2 >
                                         current->mask + 1
                                     ? (current->mask + 1) * 2
                                     : current->mask + 1;
    auto fresh = std::make_unique<NumericTable>(capacity);
    const auto insert = [&fresh](const NumericKey &k, double v) {
        std::size_t index = hashNumeric(k) & fresh->mask;
        while (fresh->slots[index].used)
            index = (index + 1) & fresh->mask;
        fresh->slots[index].key = k;
        fresh->slots[index].value = v;
        fresh->slots[index].used = true;
        ++fresh->count;
    };
    for (const NumericTable::Slot &slot : current->slots) {
        if (slot.used)
            insert(slot.key, slot.value);
    }
    insert(key, value);

    shard.table.store(fresh.release(), std::memory_order_release);
    shard.retired.emplace_back(current);
}

const double *
CpaCache::findNamed(const FabParams &fab,
                    std::string_view node_name) const
{
    NamedKey key;
    key.ci_fab = std::bit_cast<std::uint64_t>(fab.ci_fab.value());
    key.abatement = std::bit_cast<std::uint64_t>(fab.abatement);
    key.yield = std::bit_cast<std::uint64_t>(fab.yield);
    key.lookup = static_cast<std::uint64_t>(fab.lookup);
    key.name = std::string(node_name);

    const NamedShard &shard =
        named_shards_[NamedKeyHash{}(key) % kShards];
    std::shared_lock<std::shared_mutex> lock(shard.mutex);
    const auto found = shard.entries.find(key);
    return found != shard.entries.end() ? &found->second : nullptr;
}

void
CpaCache::storeNamed(const FabParams &fab, std::string_view node_name,
                     double value)
{
    NamedKey key;
    key.ci_fab = std::bit_cast<std::uint64_t>(fab.ci_fab.value());
    key.abatement = std::bit_cast<std::uint64_t>(fab.abatement);
    key.yield = std::bit_cast<std::uint64_t>(fab.yield);
    key.lookup = static_cast<std::uint64_t>(fab.lookup);
    key.name = std::string(node_name);

    NamedShard &shard = named_shards_[NamedKeyHash{}(key) % kShards];
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.entries.emplace(std::move(key), value);
}

void
CpaCache::clear()
{
    for (NumericShard &shard : numeric_shards_) {
        std::lock_guard<std::mutex> lock(shard.write_mutex);
        const NumericTable *current =
            shard.table.load(std::memory_order_relaxed);
        shard.table.store(new NumericTable(kInitialCapacity),
                          std::memory_order_release);
        shard.retired.emplace_back(current);
    }
    for (NamedShard &shard : named_shards_) {
        std::unique_lock<std::shared_mutex> lock(shard.mutex);
        shard.entries.clear();
    }
}

void
CpaCache::resetStats()
{
    hits_.reset();
    misses_.reset();
}

CpaCacheStats
CpaCache::stats() const
{
    CpaCacheStats stats;
    stats.hits = hits_.value();
    stats.misses = misses_.value();
    return stats;
}

std::size_t
CpaCache::size() const
{
    std::size_t total = 0;
    for (const NumericShard &shard : numeric_shards_) {
        total += shard.table.load(std::memory_order_acquire)->count;
    }
    for (const NamedShard &shard : named_shards_) {
        std::shared_lock<std::shared_mutex> lock(shard.mutex);
        total += shard.entries.size();
    }
    return total;
}

void
CpaCache::setEnabled(bool enabled)
{
    enabled_.store(enabled, std::memory_order_relaxed);
}

bool
CpaCache::enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

} // namespace act::core
