#include "core/scheduling.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace act::core {

namespace {

void
checkLoad(const DailyLoad &load)
{
    const double baseline_w = util::asWatts(load.baseline);
    if (!std::isfinite(baseline_w))
        util::fatal("baseline power must be finite, got ", baseline_w,
                    " W");
    if (baseline_w < 0.0)
        util::fatal("baseline power must be non-negative");
    const double energy_kwh =
        util::asKilowattHours(load.deferrable_energy);
    if (!std::isfinite(energy_kwh))
        util::fatal("deferrable energy must be finite, got ", energy_kwh,
                    " kWh");
    if (energy_kwh < 0.0)
        util::fatal("deferrable energy must be non-negative");
    const double capacity_w = util::asWatts(load.deferrable_capacity);
    if (!std::isfinite(capacity_w) || capacity_w < 0.0) {
        util::fatal("deferrable capacity must be a non-negative finite "
                    "power, got ", capacity_w, " W");
    }
    if (capacity_w == 0.0 && energy_kwh > 0.0) {
        util::fatal("deferrable capacity is zero but ", energy_kwh,
                    " kWh of deferrable energy must still be placed");
    }
    // Per-day check; scales 1:1 with the series span, so it also
    // bounds the tiled total against the tiled capacity.
    const util::Energy daily_capacity =
        load.deferrable_capacity * util::hours(24.0);
    if (load.deferrable_energy > daily_capacity) {
        util::fatal("deferrable energy (",
                    util::asKilowattHours(load.deferrable_energy),
                    " kWh) exceeds the daily deferrable capacity (",
                    util::asKilowattHours(daily_capacity), " kWh)");
    }
}

/** The per-day load tiled over the whole series span. */
util::Energy
tiledEnergy(const DailyLoad &load, const data::IntensitySeries &series)
{
    return load.deferrable_energy * (series.durationHours() / 24.0);
}

/** Greedily fill @p order (greenest first), each sample capped at
 *  capacity x step; identical arithmetic to the original 24-hour
 *  greedy so the legacy wrappers stay bit-identical. */
void
placeGreedy(std::vector<util::Energy> &placement, util::Energy remaining,
            util::Energy sample_capacity,
            const std::vector<std::size_t> &order)
{
    for (std::size_t sample : order) {
        if (util::asKilowattHours(remaining) <= 0.0)
            break;
        const util::Energy placed =
            std::min(remaining, sample_capacity);
        placement[sample] = placed;
        remaining -= placed;
    }
}

/** Sample indices of [begin, end) sorted greenest-first with a full
 *  (value, index) tie-break -- deterministic independent of the sort
 *  implementation. */
std::vector<std::size_t>
windowByIntensity(const data::IntensitySeries &series, std::size_t begin,
                  std::size_t end)
{
    std::vector<std::size_t> order(end - begin);
    std::iota(order.begin(), order.end(), begin);
    std::sort(order.begin(), order.end(),
              [&series](std::size_t a, std::size_t b) {
                  if (series.gramsAt(a) != series.gramsAt(b))
                      return series.gramsAt(a) < series.gramsAt(b);
                  return a < b;
              });
    return order;
}

void
placeDeadlineBounded(std::vector<util::Energy> &placement,
                     const DailyLoad &load,
                     const data::IntensitySeries &series,
                     std::size_t window)
{
    if (window == 0) {
        util::fatal("deadline-bounded scheduling needs a positive "
                    "deadline window (PolicySpec::deadline_samples)");
    }
    const std::size_t n = series.size();
    const util::Energy total = tiledEnergy(load, series);
    const util::Energy sample_capacity =
        load.deferrable_capacity * series.step();
    for (std::size_t begin = 0; begin < n; begin += window) {
        const std::size_t end = std::min(n, begin + window);
        // Work arriving in this window must finish inside it; each
        // window owes its length-proportional share of the total.
        util::Energy remaining =
            total * (static_cast<double>(end - begin) /
                     static_cast<double>(n));
        const auto order = windowByIntensity(series, begin, end);
        for (std::size_t sample : order) {
            if (util::asKilowattHours(remaining) <= 0.0)
                break;
            const util::Energy placed =
                std::min(remaining, sample_capacity);
            placement[sample] = placed;
            remaining -= placed;
        }
        // Rounding dust (the proportional share can exceed the window
        // capacity by an ulp): conserve energy in the dirtiest sample.
        if (util::asKilowattHours(remaining) > 0.0)
            placement[order.back()] += remaining;
    }
}

SeriesSchedule
finalize(const DailyLoad &load, const data::IntensitySeries &series,
         SeriesSchedule result)
{
    const util::Energy per_sample = load.baseline * series.step();
    result.baseline_footprint = util::Mass{};
    for (std::size_t s = 0; s < series.size(); ++s)
        result.baseline_footprint += series.at(s) * per_sample;
    result.deferrable_footprint = util::Mass{};
    for (std::size_t s = 0; s < series.size(); ++s)
        result.deferrable_footprint += series.at(s) * result.placement[s];
    return result;
}

} // namespace

PolicySpec
policyByName(std::string_view name)
{
    if (name == "uniform")
        return {DeferralPolicy::Uniform, 0};
    if (name == "greedy")
        return {DeferralPolicy::GreedyGreenest, 0};
    if (name == "deadline")
        return {DeferralPolicy::DeadlineBounded, 6};
    if (name == "migrate")
        return {DeferralPolicy::GreenestRegion, 0};
    util::fatal("unknown deferral policy '", name,
                "' (expected 'uniform', 'greedy', 'deadline', or "
                "'migrate')");
}

std::string_view
policyName(DeferralPolicy kind)
{
    switch (kind) {
    case DeferralPolicy::Uniform: return "uniform";
    case DeferralPolicy::GreedyGreenest: return "greedy";
    case DeferralPolicy::DeadlineBounded: return "deadline";
    case DeferralPolicy::GreenestRegion: return "migrate";
    }
    util::fatal("unknown deferral policy kind");
}

SeriesSchedule
schedule(const DailyLoad &load, const data::IntensitySeries &series,
         const PolicySpec &policy)
{
    checkLoad(load);
    const std::size_t n = series.size();
    SeriesSchedule result;
    result.placement.assign(n, util::Energy{});

    switch (policy.kind) {
    case DeferralPolicy::Uniform: {
        const util::Energy per_sample =
            tiledEnergy(load, series) / static_cast<double>(n);
        std::fill(result.placement.begin(), result.placement.end(),
                  per_sample);
        break;
    }
    case DeferralPolicy::GreedyGreenest:
        placeGreedy(result.placement, tiledEnergy(load, series),
                    load.deferrable_capacity * series.step(),
                    series.samplesByIntensity());
        break;
    case DeferralPolicy::DeadlineBounded:
        placeDeadlineBounded(result.placement, load, series,
                             policy.deadline_samples);
        break;
    case DeferralPolicy::GreenestRegion:
        util::fatal("the cross-region policy schedules via "
                    "scheduleAcrossRegions(), not schedule()");
    }
    return finalize(load, series, result);
}

MultiRegionSchedule
scheduleAcrossRegions(const DailyLoad &load,
                      const std::vector<data::IntensitySeries> &regions)
{
    if (regions.empty())
        util::fatal("cross-region scheduling needs at least one region");
    checkLoad(load);
    const std::size_t n = regions.front().size();
    const double step_hours = regions.front().stepHours();
    for (const data::IntensitySeries &series : regions) {
        if (series.size() != n || series.stepHours() != step_hours) {
            util::fatal("regional intensity series must share length "
                        "and step; got ", series.size(), " x ",
                        series.stepHours(), " h vs ", n, " x ",
                        step_hours, " h");
        }
    }

    MultiRegionSchedule result;
    result.placement.assign(regions.size(),
                            std::vector<util::Energy>(n, util::Energy{}));

    // Greenest slot across all regions first; ties break by
    // (region, sample) so the order is implementation-independent.
    std::vector<std::size_t> slots(regions.size() * n);
    std::iota(slots.begin(), slots.end(), 0u);
    const auto grams = [&regions, n](std::size_t slot) {
        return regions[slot / n].gramsAt(slot % n);
    };
    std::sort(slots.begin(), slots.end(),
              [&grams](std::size_t a, std::size_t b) {
                  if (grams(a) != grams(b))
                      return grams(a) < grams(b);
                  return a < b;
              });

    util::Energy remaining = tiledEnergy(load, regions.front());
    const util::Energy slot_capacity =
        load.deferrable_capacity * regions.front().step();
    for (std::size_t slot : slots) {
        if (util::asKilowattHours(remaining) <= 0.0)
            break;
        const util::Energy placed = std::min(remaining, slot_capacity);
        result.placement[slot / n][slot % n] = placed;
        remaining -= placed;
    }

    const data::IntensitySeries &home = regions.front();
    const util::Energy per_sample = load.baseline * home.step();
    for (std::size_t s = 0; s < n; ++s)
        result.baseline_footprint += home.at(s) * per_sample;
    for (std::size_t r = 0; r < regions.size(); ++r) {
        for (std::size_t s = 0; s < n; ++s) {
            result.deferrable_footprint +=
                regions[r].at(s) * result.placement[r][s];
        }
    }
    return result;
}

namespace {

ScheduleResult
toLegacy(const SeriesSchedule &schedule)
{
    ScheduleResult result;
    for (std::size_t h = 0; h < data::DiurnalProfile::kHours; ++h)
        result.placement[h] = schedule.placement[h];
    result.baseline_footprint = schedule.baseline_footprint;
    result.deferrable_footprint = schedule.deferrable_footprint;
    return result;
}

} // namespace

ScheduleResult
scheduleUniform(const DailyLoad &load,
                const data::DiurnalProfile &profile)
{
    return toLegacy(
        schedule(load, profile.series(), {DeferralPolicy::Uniform, 0}));
}

ScheduleResult
scheduleCarbonAware(const DailyLoad &load,
                    const data::DiurnalProfile &profile)
{
    return toLegacy(schedule(load, profile.series(),
                             {DeferralPolicy::GreedyGreenest, 0}));
}

double
carbonAwareSaving(const DailyLoad &load,
                  const data::DiurnalProfile &profile)
{
    const util::Mass uniform =
        scheduleUniform(load, profile).deferrable_footprint;
    const util::Mass aware =
        scheduleCarbonAware(load, profile).deferrable_footprint;
    if (util::asGrams(aware) <= 0.0)
        return 1.0;
    return util::asGrams(uniform) / util::asGrams(aware);
}

} // namespace act::core
