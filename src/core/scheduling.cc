#include "core/scheduling.h"

#include <algorithm>

#include "util/logging.h"

namespace act::core {

namespace {

constexpr std::size_t kHours = data::DiurnalProfile::kHours;

void
checkLoad(const DailyLoad &load)
{
    if (util::asWatts(load.baseline) < 0.0)
        util::fatal("baseline power must be non-negative");
    if (util::asKilowattHours(load.deferrable_energy) < 0.0)
        util::fatal("deferrable energy must be non-negative");
    const util::Energy daily_capacity =
        load.deferrable_capacity * util::hours(24.0);
    if (load.deferrable_energy > daily_capacity) {
        util::fatal("deferrable energy (",
                    util::asKilowattHours(load.deferrable_energy),
                    " kWh) exceeds the daily deferrable capacity (",
                    util::asKilowattHours(daily_capacity), " kWh)");
    }
}

util::Mass
baselineFootprint(const DailyLoad &load,
                  const data::DiurnalProfile &profile)
{
    util::Mass total{};
    const util::Energy hourly = load.baseline * util::hours(1.0);
    for (std::size_t h = 0; h < kHours; ++h)
        total += profile.at(h) * hourly;
    return total;
}

ScheduleResult
finalize(const DailyLoad &load, const data::DiurnalProfile &profile,
         ScheduleResult result)
{
    result.baseline_footprint = baselineFootprint(load, profile);
    result.deferrable_footprint = util::Mass{};
    for (std::size_t h = 0; h < kHours; ++h)
        result.deferrable_footprint += profile.at(h) * result.placement[h];
    return result;
}

} // namespace

ScheduleResult
scheduleUniform(const DailyLoad &load,
                const data::DiurnalProfile &profile)
{
    checkLoad(load);
    ScheduleResult result;
    const util::Energy per_hour =
        load.deferrable_energy / static_cast<double>(kHours);
    result.placement.fill(per_hour);
    return finalize(load, profile, result);
}

ScheduleResult
scheduleCarbonAware(const DailyLoad &load,
                    const data::DiurnalProfile &profile)
{
    checkLoad(load);
    ScheduleResult result;
    const util::Energy hour_capacity =
        load.deferrable_capacity * util::hours(1.0);

    util::Energy remaining = load.deferrable_energy;
    for (std::size_t hour : profile.hoursByIntensity()) {
        if (util::asKilowattHours(remaining) <= 0.0)
            break;
        const util::Energy placed =
            std::min(remaining, hour_capacity);
        result.placement[hour] = placed;
        remaining -= placed;
    }
    return finalize(load, profile, result);
}

double
carbonAwareSaving(const DailyLoad &load,
                  const data::DiurnalProfile &profile)
{
    const util::Mass uniform =
        scheduleUniform(load, profile).deferrable_footprint;
    const util::Mass aware =
        scheduleCarbonAware(load, profile).deferrable_footprint;
    if (util::asGrams(aware) <= 0.0)
        return 1.0;
    return util::asGrams(uniform) / util::asGrams(aware);
}

} // namespace act::core
