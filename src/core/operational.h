/**
 * @file
 * The operational half of the ACT model (Eq. 2):
 *
 *   OPCF = CI_use * Energy
 *
 * with the utilization-effectiveness factors of Fig. 5 (data-center PUE
 * or mobile charge/battery efficiency) applied as multipliers on the
 * energy drawn from the grid.
 */

#ifndef ACT_CORE_OPERATIONAL_H
#define ACT_CORE_OPERATIONAL_H

#include "data/carbon_intensity_db.h"
#include "util/units.h"

namespace act::core {

/** Use-phase parameters of Table 1 / Fig. 5. */
struct OperationalParams
{
    util::CarbonIntensity ci_use = data::defaultUseIntensity();
    /**
     * Utilization effectiveness: grid energy drawn per unit of energy
     * delivered to the hardware. Models data-center PUE (>= 1) or
     * mobile charger + battery efficiency losses (also >= 1 expressed
     * this way). 1.0 means ideal delivery.
     */
    double utilization_effectiveness = 1.0;

    static OperationalParams withIntensity(util::CarbonIntensity ci);
    static OperationalParams forRegion(data::Region region);
    static OperationalParams forSource(data::EnergySource source);
};

/** Eq. 2 over device-level energy consumption. */
util::Mass operationalFootprint(util::Energy energy,
                                const OperationalParams &params);

/** Eq. 2 for a fixed-power workload running for a duration. */
util::Mass operationalFootprint(util::Power power, util::Duration duration,
                                const OperationalParams &params);

} // namespace act::core

#endif // ACT_CORE_OPERATIONAL_H
