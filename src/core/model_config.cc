#include "core/model_config.h"

#include <bit>
#include <cstdint>
#include <cstdio>

#include "data/fab_db.h"
#include "util/logging.h"

namespace act::core {

using config::JsonObject;
using config::JsonValue;

JsonValue
toJson(const FabParams &params)
{
    JsonObject object;
    object["ci_fab_g_per_kwh"] = JsonValue(params.ci_fab.value());
    object["abatement"] = JsonValue(params.abatement);
    object["yield"] = JsonValue(params.yield);
    object["lookup"] =
        JsonValue(params.lookup == data::NodeLookup::Interpolate
                      ? "interpolate"
                      : "nearest");
    return JsonValue(std::move(object));
}

JsonValue
toJson(const OperationalParams &params)
{
    JsonObject object;
    object["ci_use_g_per_kwh"] = JsonValue(params.ci_use.value());
    object["utilization_effectiveness"] =
        JsonValue(params.utilization_effectiveness);
    return JsonValue(std::move(object));
}

JsonValue
toJson(const Scenario &scenario)
{
    JsonObject object;
    object["fab"] = toJson(scenario.fab);
    object["operational"] = toJson(scenario.operational);
    object["lifetime_years"] =
        JsonValue(util::asYears(scenario.lifetime));
    return JsonValue(std::move(object));
}

FabParams
fabParamsFromJson(const JsonValue &value)
{
    FabParams params;
    params.ci_fab = util::gramsPerKilowattHour(
        value.numberOr("ci_fab_g_per_kwh", params.ci_fab.value()));
    params.abatement = value.numberOr("abatement", params.abatement);
    params.yield = value.numberOr("yield", params.yield);
    const std::string lookup = value.stringOr("lookup", "interpolate");
    if (lookup == "interpolate") {
        params.lookup = data::NodeLookup::Interpolate;
    } else if (lookup == "nearest") {
        params.lookup = data::NodeLookup::NearestAnchor;
    } else {
        util::fatal("unknown node lookup policy '", lookup,
                    "' (expected 'interpolate' or 'nearest')");
    }
    return params;
}

OperationalParams
operationalParamsFromJson(const JsonValue &value)
{
    OperationalParams params;
    params.ci_use = util::gramsPerKilowattHour(
        value.numberOr("ci_use_g_per_kwh", params.ci_use.value()));
    params.utilization_effectiveness = value.numberOr(
        "utilization_effectiveness", params.utilization_effectiveness);
    return params;
}

Scenario
scenarioFromJson(const JsonValue &value)
{
    Scenario scenario;
    if (value.contains("fab"))
        scenario.fab = fabParamsFromJson(value.at("fab"));
    if (value.contains("operational")) {
        scenario.operational =
            operationalParamsFromJson(value.at("operational"));
    }
    scenario.lifetime = util::years(
        value.numberOr("lifetime_years", util::asYears(scenario.lifetime)));
    if (util::asYears(scenario.lifetime) <= 0.0)
        util::fatal("scenario lifetime must be positive");
    return scenario;
}

Scenario
loadScenario(const std::string &path)
{
    try {
        return scenarioFromJson(config::loadJsonFile(path));
    } catch (const config::JsonParseError &error) {
        util::fatal("failed to parse scenario '", path, "': ",
                    error.what());
    } catch (const config::JsonTypeError &error) {
        util::fatal("bad scenario '", path, "': ", error.what());
    }
}

void
saveScenario(const std::string &path, const Scenario &scenario)
{
    config::saveJsonFile(path, toJson(scenario));
}

namespace {

/** SplitMix64-style accumulation used for the data fingerprint. */
std::uint64_t
fingerprintMix(std::uint64_t hash, std::uint64_t value)
{
    hash ^= value + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
    hash ^= hash >> 30;
    hash *= 0xBF58476D1CE4E5B9ULL;
    hash ^= hash >> 27;
    return hash;
}

std::uint64_t
fingerprintMix(std::uint64_t hash, double value)
{
    return fingerprintMix(hash, std::bit_cast<std::uint64_t>(value));
}

std::uint64_t
fingerprintMix(std::uint64_t hash, const std::string &text)
{
    hash = fingerprintMix(hash, text.size());
    for (const char c : text)
        hash = fingerprintMix(hash, static_cast<std::uint64_t>(
                                        static_cast<unsigned char>(c)));
    return hash;
}

} // namespace

std::string
modelConfigFingerprint()
{
    static const std::string cached = [] {
        // Bump the salt whenever the CPA computation itself changes
        // in a way the data tables do not capture.
        std::uint64_t hash = 0xAC7'0001; // "ACT" format version 1
        const auto &fab_db = data::FabDatabase::instance();
        for (const data::FabNodeRecord &record : fab_db.records()) {
            hash = fingerprintMix(hash, record.name);
            hash = fingerprintMix(hash, record.nm);
            hash = fingerprintMix(hash, record.epa.value());
            hash = fingerprintMix(hash, record.gpa_abated_95.value());
            hash = fingerprintMix(hash, record.gpa_abated_99.value());
        }
        hash = fingerprintMix(hash, fab_db.mpa().value());
        hash = fingerprintMix(hash, data::defaultFabIntensity().value());
        hash = fingerprintMix(hash, data::defaultUseIntensity().value());
        char buffer[24];
        std::snprintf(buffer, sizeof(buffer), "%016llx",
                      static_cast<unsigned long long>(hash));
        return std::string(buffer);
    }();
    return cached;
}

} // namespace act::core
