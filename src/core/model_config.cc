#include "core/model_config.h"

#include "util/logging.h"

namespace act::core {

using config::JsonObject;
using config::JsonValue;

JsonValue
toJson(const FabParams &params)
{
    JsonObject object;
    object["ci_fab_g_per_kwh"] = JsonValue(params.ci_fab.value());
    object["abatement"] = JsonValue(params.abatement);
    object["yield"] = JsonValue(params.yield);
    object["lookup"] =
        JsonValue(params.lookup == data::NodeLookup::Interpolate
                      ? "interpolate"
                      : "nearest");
    return JsonValue(std::move(object));
}

JsonValue
toJson(const OperationalParams &params)
{
    JsonObject object;
    object["ci_use_g_per_kwh"] = JsonValue(params.ci_use.value());
    object["utilization_effectiveness"] =
        JsonValue(params.utilization_effectiveness);
    return JsonValue(std::move(object));
}

JsonValue
toJson(const Scenario &scenario)
{
    JsonObject object;
    object["fab"] = toJson(scenario.fab);
    object["operational"] = toJson(scenario.operational);
    object["lifetime_years"] =
        JsonValue(util::asYears(scenario.lifetime));
    return JsonValue(std::move(object));
}

FabParams
fabParamsFromJson(const JsonValue &value)
{
    FabParams params;
    params.ci_fab = util::gramsPerKilowattHour(
        value.numberOr("ci_fab_g_per_kwh", params.ci_fab.value()));
    params.abatement = value.numberOr("abatement", params.abatement);
    params.yield = value.numberOr("yield", params.yield);
    const std::string lookup = value.stringOr("lookup", "interpolate");
    if (lookup == "interpolate") {
        params.lookup = data::NodeLookup::Interpolate;
    } else if (lookup == "nearest") {
        params.lookup = data::NodeLookup::NearestAnchor;
    } else {
        util::fatal("unknown node lookup policy '", lookup,
                    "' (expected 'interpolate' or 'nearest')");
    }
    return params;
}

OperationalParams
operationalParamsFromJson(const JsonValue &value)
{
    OperationalParams params;
    params.ci_use = util::gramsPerKilowattHour(
        value.numberOr("ci_use_g_per_kwh", params.ci_use.value()));
    params.utilization_effectiveness = value.numberOr(
        "utilization_effectiveness", params.utilization_effectiveness);
    return params;
}

Scenario
scenarioFromJson(const JsonValue &value)
{
    Scenario scenario;
    if (value.contains("fab"))
        scenario.fab = fabParamsFromJson(value.at("fab"));
    if (value.contains("operational")) {
        scenario.operational =
            operationalParamsFromJson(value.at("operational"));
    }
    scenario.lifetime = util::years(
        value.numberOr("lifetime_years", util::asYears(scenario.lifetime)));
    if (util::asYears(scenario.lifetime) <= 0.0)
        util::fatal("scenario lifetime must be positive");
    return scenario;
}

Scenario
loadScenario(const std::string &path)
{
    try {
        return scenarioFromJson(config::loadJsonFile(path));
    } catch (const config::JsonParseError &error) {
        util::fatal("failed to parse scenario '", path, "': ",
                    error.what());
    } catch (const config::JsonTypeError &error) {
        util::fatal("bad scenario '", path, "': ", error.what());
    }
}

void
saveScenario(const std::string &path, const Scenario &scenario)
{
    config::saveJsonFile(path, toJson(scenario));
}

} // namespace act::core
