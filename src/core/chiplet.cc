#include "core/chiplet.h"

#include "core/embodied.h"
#include "util/logging.h"

namespace act::core {

ChipletPoint
evaluateChiplets(util::Area logic_area, int num_chiplets, double nm,
                 const FabParams &fab, const ChipletParams &params)
{
    if (num_chiplets < 1)
        util::fatal("chiplet count must be >= 1, got ", num_chiplets);
    if (util::asSquareCentimeters(logic_area) <= 0.0)
        util::fatal("logic area must be positive");

    ChipletPoint point;
    point.num_chiplets = num_chiplets;

    const double n = static_cast<double>(num_chiplets);
    const double interface_scale =
        1.0 + params.interface_overhead * (n - 1.0) / n;
    point.chiplet_area = logic_area * (interface_scale / n);
    point.chiplet_yield = dieYield(point.chiplet_area, params.defects);
    point.effective_silicon =
        effectiveAreaPerGoodDie(point.chiplet_area, params.defects) * n;

    // CPA without the yield divisor: the defect model replaces the
    // scalar yield term of Eq. 5, so evaluate at Y = 1 and charge the
    // effective (yielded) silicon area instead.
    FabParams perfect_yield = fab;
    perfect_yield.yield = 1.0;
    point.silicon_embodied =
        carbonPerArea(perfect_yield, nm) * point.effective_silicon;

    if (num_chiplets > 1 && params.interposer_area_factor > 0.0) {
        const util::Area interposer_area =
            logic_area * interface_scale * params.interposer_area_factor;
        point.interposer_embodied =
            carbonPerArea(perfect_yield, params.interposer_node_nm) *
            interposer_area;
    }

    // One package plus an assembly increment per extra chiplet.
    point.assembly_embodied =
        kPackagingFootprint +
        kPackagingFootprint *
            (params.assembly_overhead_fraction * (n - 1.0));
    return point;
}

std::vector<ChipletPoint>
chipletSweep(util::Area logic_area, double nm, const FabParams &fab,
             const ChipletParams &params, int max_chiplets)
{
    if (max_chiplets < 1)
        util::fatal("max chiplet count must be >= 1");
    std::vector<ChipletPoint> sweep;
    sweep.reserve(static_cast<std::size_t>(max_chiplets));
    for (int n = 1; n <= max_chiplets; ++n)
        sweep.push_back(
            evaluateChiplets(logic_area, n, nm, fab, params));
    return sweep;
}

std::size_t
optimalChipletCount(const std::vector<ChipletPoint> &sweep)
{
    if (sweep.empty())
        util::fatal("optimalChipletCount() on an empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].total() < sweep[best].total())
            best = i;
    }
    return best;
}

} // namespace act::core
