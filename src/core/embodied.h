/**
 * @file
 * The embodied-carbon half of the ACT model (Section 3.1):
 *
 *   ECF   = Nr * Kr + sum_r E_r                          (Eq. 3)
 *   E_SoC = Area * CPA
 *         = (1/Y) * (CI_fab * EPA + GPA + MPA) * Area    (Eq. 4)
 *   CPA   = (1/Y) * (CI_fab * EPA + GPA + MPA)           (Eq. 5)
 *   E_DRAM = CPS_DRAM * Capacity_DRAM                    (Eq. 6)
 *   E_HDD  = CPS_HDD  * Capacity_HDD                     (Eq. 7)
 *   E_SSD  = CPS_SSD  * Capacity_SSD                     (Eq. 8)
 *
 * The model covers direct fab impact only; secondary overheads (such as
 * building the fab or EUV machines) are excluded, so estimates are a
 * lower bound -- exactly as the paper states.
 */

#ifndef ACT_CORE_EMBODIED_H
#define ACT_CORE_EMBODIED_H

#include <string>
#include <vector>

#include "core/fab_params.h"
#include "data/device_db.h"
#include "data/memory_db.h"
#include "util/units.h"

namespace act::core {

/** Per-IC packaging footprint Kr = 0.15 kg CO2 (SPIL CSR report). */
constexpr util::Mass kPackagingFootprint = util::grams(150.0);

/**
 * Eq. 5: carbon per unit area manufactured for a logic die at feature
 * size @p nm under fab conditions @p fab. Fatal outside [3, 28] nm.
 * Results are memoized process-wide (see core/cpa_cache.h); a cache
 * hit is bitwise identical to recomputation.
 */
util::CarbonPerArea carbonPerArea(const FabParams &fab, double nm);

/**
 * CPA for a named Table 7 node label (resolving the EUV variants), at
 * the given fab conditions. Fatal on unknown labels. Memoized like
 * carbonPerArea().
 */
util::CarbonPerArea carbonPerAreaNamed(const FabParams &fab,
                                       std::string_view node_name);

/** Eq. 4: embodied carbon of a logic die. */
util::Mass logicEmbodied(util::Area area, double nm, const FabParams &fab);

/** Eqs. 6-8: embodied carbon of a memory/storage part. */
util::Mass storageEmbodied(util::Capacity capacity,
                           util::CarbonPerCapacity cps);

/** storageEmbodied() resolving the technology via the memory database. */
util::Mass storageEmbodied(util::Capacity capacity,
                           std::string_view technology);

/** Packaging term of Eq. 3 for @p package_count discrete ICs. */
util::Mass packagingEmbodied(int package_count);

/** The embodied footprint of one device IC plus its identification. */
struct ComponentFootprint
{
    std::string name;
    data::IcCategory category = data::IcCategory::OtherIc;
    util::Mass embodied{};
};

/** A full device embodied-footprint evaluation. */
struct DeviceFootprint
{
    /** Per-IC contributions, in BOM order. */
    std::vector<ComponentFootprint> components;
    /** Total packaging contribution (Nr * Kr). */
    util::Mass packaging{};
    /** Total number of discrete IC packages (Nr). */
    int package_count = 0;

    /** Sum of all components. */
    util::Mass componentTotal() const;
    /** Eq. 3: components plus packaging. */
    util::Mass total() const;
    /** Sum over components of one Fig. 4 category. */
    util::Mass categoryTotal(data::IcCategory category) const;
};

/**
 * Evaluates Eq. 3 over a device bill of materials: logic ICs via
 * Eq. 4/5, memory and storage via Eqs. 6-8, plus Nr * Kr packaging.
 */
class EmbodiedModel
{
  public:
    explicit EmbodiedModel(FabParams fab = FabParams{});

    const FabParams &fab() const { return fab_; }

    /** Embodied footprint of one IC (excluding packaging). */
    util::Mass icEmbodied(const data::IcComponent &ic) const;

    /** Eq. 3 over a whole device. */
    DeviceFootprint evaluate(const data::DeviceRecord &device) const;

  private:
    FabParams fab_;
};

} // namespace act::core

#endif // ACT_CORE_EMBODIED_H
