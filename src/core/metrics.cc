#include "core/metrics.h"

#include <array>

#include "util/logging.h"

namespace act::core {

namespace {

constexpr std::array<Metric, 6> kAllMetrics = {
    Metric::EDP, Metric::EDAP, Metric::CDP,
    Metric::CEP, Metric::C2EP, Metric::CE2P,
};

constexpr std::array<Metric, 4> kCarbonMetrics = {
    Metric::CDP, Metric::CEP, Metric::C2EP, Metric::CE2P,
};

} // namespace

std::span<const Metric>
allMetrics()
{
    return kAllMetrics;
}

std::span<const Metric>
carbonMetrics()
{
    return kCarbonMetrics;
}

std::string_view
metricName(Metric metric)
{
    switch (metric) {
      case Metric::EDP: return "EDP";
      case Metric::EDAP: return "EDAP";
      case Metric::CDP: return "CDP";
      case Metric::CEP: return "CEP";
      case Metric::C2EP: return "C2EP";
      case Metric::CE2P: return "CE2P";
    }
    util::panic("unknown Metric enumerator");
}

std::string_view
metricUseCase(Metric metric)
{
    switch (metric) {
      case Metric::EDP:
        return "Energy optimization (e.g., mobile)";
      case Metric::EDAP:
        return "Energy and cost optimization (e.g., mobile)";
      case Metric::CDP:
        return "Balance CO2 and perf. (e.g., sustainable data center)";
      case Metric::CEP:
        return "Balance CO2 and energy (e.g., sustainable mobile device)";
      case Metric::C2EP:
        return "Sustainable device dominated by embodied footprint";
      case Metric::CE2P:
        return "Sustainable device dominated by operational footprint";
    }
    util::panic("unknown Metric enumerator");
}

bool
isCarbonAware(Metric metric)
{
    for (Metric m : kCarbonMetrics) {
        if (m == metric)
            return true;
    }
    return false;
}

double
evaluateMetric(Metric metric, const DesignPoint &point)
{
    const double carbon = util::asGrams(point.embodied);
    const double energy = util::asKilowattHours(point.energy);
    const double delay = util::asSeconds(point.delay);
    const double area = util::asSquareCentimeters(point.area);

    switch (metric) {
      case Metric::EDP:
        return energy * delay;
      case Metric::EDAP:
        return energy * delay * area;
      case Metric::CDP:
        return carbon * delay;
      case Metric::CEP:
        return carbon * energy;
      case Metric::C2EP:
        return carbon * carbon * energy;
      case Metric::CE2P:
        return carbon * energy * energy;
    }
    util::panic("unknown Metric enumerator");
}

std::size_t
bestDesign(Metric metric, std::span<const DesignPoint> points)
{
    if (points.empty())
        util::fatal("bestDesign() over an empty design space");
    std::size_t best = 0;
    double best_value = evaluateMetric(metric, points[0]);
    for (std::size_t i = 1; i < points.size(); ++i) {
        const double value = evaluateMetric(metric, points[i]);
        if (value < best_value) {
            best_value = value;
            best = i;
        }
    }
    return best;
}

std::vector<double>
normalizedMetric(Metric metric, std::span<const DesignPoint> points,
                 std::size_t baseline_index)
{
    if (baseline_index >= points.size())
        util::fatal("normalizedMetric() baseline index out of range");
    const double baseline =
        evaluateMetric(metric, points[baseline_index]);
    if (baseline == 0.0)
        util::fatal("normalizedMetric() with a zero baseline value");
    std::vector<double> normalized;
    normalized.reserve(points.size());
    for (const auto &point : points)
        normalized.push_back(evaluateMetric(metric, point) / baseline);
    return normalized;
}

} // namespace act::core
