/**
 * @file
 * Fab-side model parameters of Table 1: the fab carbon intensity
 * (CI_fab), gaseous abatement, yield (Y), and node-lookup policy that
 * together determine the carbon-per-area (CPA) of Eq. 5.
 */

#ifndef ACT_CORE_FAB_PARAMS_H
#define ACT_CORE_FAB_PARAMS_H

#include "data/carbon_intensity_db.h"
#include "data/fab_db.h"
#include "util/units.h"

namespace act::core {

/**
 * Parameters describing the semiconductor fab manufacturing a die.
 * Defaults reproduce the paper's baseline: a fab on the Taiwan grid
 * with 25% renewable procurement, TSMC's 97% gaseous abatement, and
 * the released tool's 0.875 yield.
 */
struct FabParams
{
    util::CarbonIntensity ci_fab = data::defaultFabIntensity();
    double abatement = data::FabDatabase::kDefaultAbatement;
    double yield = data::FabDatabase::kDefaultYield;
    data::NodeLookup lookup = data::NodeLookup::Interpolate;

    /** Fab fully powered by the Taiwan grid (Fig. 6 upper bound). */
    static FabParams taiwanGrid();
    /** Fab fully powered by solar (Fig. 6 lower bound). */
    static FabParams renewable();
    /** Fab powered by an arbitrary carbon intensity. */
    static FabParams withIntensity(util::CarbonIntensity ci);
};

} // namespace act::core

#endif // ACT_CORE_FAB_PARAMS_H
