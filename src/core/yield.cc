#include "core/yield.h"

#include <cmath>

#include "util/logging.h"

namespace act::core {

std::string_view
yieldModelName(YieldModel model)
{
    switch (model) {
      case YieldModel::Poisson:
        return "Poisson";
      case YieldModel::Murphy:
        return "Murphy";
      case YieldModel::NegativeBinomial:
        return "negative binomial";
    }
    util::panic("unknown YieldModel enumerator");
}

double
dieYield(util::Area die_area, const DefectParams &defects)
{
    const double area_cm2 = util::asSquareCentimeters(die_area);
    if (area_cm2 <= 0.0)
        util::fatal("die area must be positive");
    if (defects.defect_density_per_cm2 <= 0.0)
        util::fatal("defect density must be positive");

    const double lambda = area_cm2 * defects.defect_density_per_cm2;
    switch (defects.model) {
      case YieldModel::Poisson:
        return std::exp(-lambda);
      case YieldModel::Murphy: {
        // (1 - exp(-x))/x cancels catastrophically as x -> 0 (the
        // numerator loses all significant bits around x ~ 2^-53 and
        // the quotient collapses to 0 instead of 1). expm1 computes
        // the series 1 - x/2 + x^2/6 - ... to full precision at
        // small x, so Y -> 1 smoothly as A*D0 -> 0.
        const double term = -std::expm1(-lambda) / lambda;
        return term * term;
      }
      case YieldModel::NegativeBinomial: {
        if (defects.clustering_alpha <= 0.0)
            util::fatal("clustering alpha must be positive");
        return std::pow(1.0 + lambda / defects.clustering_alpha,
                        -defects.clustering_alpha);
      }
    }
    util::panic("unknown YieldModel enumerator");
}

util::Area
effectiveAreaPerGoodDie(util::Area die_area, const DefectParams &defects)
{
    return die_area / dieYield(die_area, defects);
}

} // namespace act::core
