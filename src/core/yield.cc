#include "core/yield.h"

#include <cmath>

#include "util/logging.h"

namespace act::core {

std::string_view
yieldModelName(YieldModel model)
{
    switch (model) {
      case YieldModel::Poisson:
        return "Poisson";
      case YieldModel::Murphy:
        return "Murphy";
      case YieldModel::NegativeBinomial:
        return "negative binomial";
    }
    util::panic("unknown YieldModel enumerator");
}

double
dieYield(util::Area die_area, const DefectParams &defects)
{
    const double area_cm2 = util::asSquareCentimeters(die_area);
    if (area_cm2 <= 0.0)
        util::fatal("die area must be positive");
    if (defects.defect_density_per_cm2 <= 0.0)
        util::fatal("defect density must be positive");

    const double lambda = area_cm2 * defects.defect_density_per_cm2;
    switch (defects.model) {
      case YieldModel::Poisson:
        return std::exp(-lambda);
      case YieldModel::Murphy: {
        const double term = (1.0 - std::exp(-lambda)) / lambda;
        return term * term;
      }
      case YieldModel::NegativeBinomial: {
        if (defects.clustering_alpha <= 0.0)
            util::fatal("clustering alpha must be positive");
        return std::pow(1.0 + lambda / defects.clustering_alpha,
                        -defects.clustering_alpha);
      }
    }
    util::panic("unknown YieldModel enumerator");
}

util::Area
effectiveAreaPerGoodDie(util::Area die_area, const DefectParams &defects)
{
    return die_area / dieYield(die_area, defects);
}

} // namespace act::core
