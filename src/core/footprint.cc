#include "core/footprint.h"

#include "util/logging.h"
#include "util/metrics.h"

namespace act::core {

namespace detail {

util::Counter &
eq1Evals()
{
    static util::Counter &counter =
        util::MetricsRegistry::instance().counter("core.eq1.evals");
    return counter;
}

void
fatalExecutionExceedsLifetime(util::Duration execution_time,
                              util::Duration lifetime)
{
    util::fatal("execution time (", util::asSeconds(execution_time),
                " s) exceeds hardware lifetime (",
                util::asSeconds(lifetime), " s)");
}

} // namespace detail

double
CarbonFootprint::embodiedShare() const
{
    const double total_grams = util::asGrams(total());
    if (total_grams == 0.0)
        return 0.0;
    return util::asGrams(embodied_allocated) / total_grams;
}

CarbonFootprint
combineFootprint(util::Mass operational, util::Mass embodied_total,
                 util::Duration execution_time, util::Duration lifetime)
{
    detail::eq1Evals().add();
    if (util::asSeconds(lifetime) <= 0.0)
        util::fatal("hardware lifetime must be positive");
    if (util::asSeconds(execution_time) < 0.0)
        util::fatal("execution time must be non-negative");
    if (execution_time > lifetime) {
        util::fatal("execution time (", util::asSeconds(execution_time),
                    " s) exceeds hardware lifetime (",
                    util::asSeconds(lifetime), " s)");
    }

    CarbonFootprint footprint;
    footprint.operational = operational;
    footprint.embodied_allocated =
        embodied_total * (execution_time / lifetime);
    return footprint;
}

CarbonFootprint
lifetimeFootprint(util::Mass operational, util::Mass embodied_total)
{
    CarbonFootprint footprint;
    footprint.operational = operational;
    footprint.embodied_allocated = embodied_total;
    return footprint;
}

} // namespace act::core
