/**
 * @file
 * Carbon-aware load scheduling over diurnal carbon-intensity profiles
 * (an operational-side extension of Eq. 2, following the
 * carbon-aware-computing direction the paper cites [66]).
 *
 * A daily workload consists of an inflexible baseline draw plus a
 * deferrable batch component that can run in any hours. Scheduling
 * the batch into the greenest hours lowers OPCF without any hardware
 * change -- and shifts the embodied/operational balance that the
 * Section 6 provisioning decisions depend on.
 */

#ifndef ACT_CORE_SCHEDULING_H
#define ACT_CORE_SCHEDULING_H

#include <array>

#include "data/ci_profile.h"
#include "util/units.h"

namespace act::core {

/** A daily load description. */
struct DailyLoad
{
    /** Power drawn in every hour regardless of scheduling. */
    util::Power baseline{};
    /** Total deferrable energy that must run sometime each day. */
    util::Energy deferrable_energy{};
    /** Peak additional power the platform can dedicate to deferrable
     *  work in one hour (bounds how much can compress into the
     *  greenest hours). */
    util::Power deferrable_capacity{};
};

/** Result of evaluating one schedule. */
struct ScheduleResult
{
    /** Deferrable energy placed in each hour. */
    std::array<util::Energy, data::DiurnalProfile::kHours> placement{};
    util::Mass baseline_footprint{};
    util::Mass deferrable_footprint{};

    util::Mass total() const
    {
        return baseline_footprint + deferrable_footprint;
    }
};

/**
 * Spread the deferrable energy uniformly across all hours (the naive,
 * carbon-oblivious schedule). Fatal if the daily energy exceeds what
 * the capacity allows.
 */
ScheduleResult scheduleUniform(const DailyLoad &load,
                               const data::DiurnalProfile &profile);

/**
 * Greedily place deferrable energy into the greenest hours first,
 * saturating each hour's capacity before moving to the next.
 */
ScheduleResult scheduleCarbonAware(const DailyLoad &load,
                                   const data::DiurnalProfile &profile);

/** OPCF saving factor of carbon-aware over uniform scheduling. */
double carbonAwareSaving(const DailyLoad &load,
                         const data::DiurnalProfile &profile);

} // namespace act::core

#endif // ACT_CORE_SCHEDULING_H
