/**
 * @file
 * Carbon-aware load scheduling over carbon-intensity time series
 * (an operational-side extension of Eq. 2, following the
 * carbon-aware-computing direction the paper cites [66]).
 *
 * A daily workload consists of an inflexible baseline draw plus a
 * deferrable batch component that can run in any hours. Scheduling
 * the batch into the greenest hours lowers OPCF without any hardware
 * change -- and shifts the embodied/operational balance that the
 * Section 6 provisioning decisions depend on.
 *
 * Policies are pluggable (DeferralPolicy): uniform spread,
 * greedy-greenest, deadline-bounded windows, and cross-region
 * migration via scheduleAcrossRegions(). The legacy 24-hour entry
 * points (scheduleUniform / scheduleCarbonAware / carbonAwareSaving)
 * are thin wrappers over schedule() and remain bit-identical.
 */

#ifndef ACT_CORE_SCHEDULING_H
#define ACT_CORE_SCHEDULING_H

#include <array>
#include <string_view>
#include <vector>

#include "data/ci_profile.h"
#include "data/intensity_series.h"
#include "util/units.h"

namespace act::core {

/** A daily load description. */
struct DailyLoad
{
    /** Power drawn in every hour regardless of scheduling. */
    util::Power baseline{};
    /** Total deferrable energy that must run sometime each day. */
    util::Energy deferrable_energy{};
    /** Peak additional power the platform can dedicate to deferrable
     *  work in one hour (bounds how much can compress into the
     *  greenest hours). */
    util::Power deferrable_capacity{};
};

/** How deferrable energy is placed against the intensity series. */
enum class DeferralPolicy
{
    /** Spread evenly over all samples (carbon-oblivious). */
    Uniform,
    /** Fill the greenest samples first, anywhere in the series. */
    GreedyGreenest,
    /** Greedy, but only within consecutive windows of
     *  PolicySpec::deadline_samples samples -- work must finish by its
     *  window's end. window=1 degenerates to Uniform, window=size()
     *  to GreedyGreenest. */
    DeadlineBounded,
    /** Greedy over every (region, sample) slot; only meaningful via
     *  scheduleAcrossRegions(). */
    GreenestRegion,
};

/** A policy plus its parameters. */
struct PolicySpec
{
    DeferralPolicy kind = DeferralPolicy::Uniform;
    /** Window length for DeadlineBounded, in samples. */
    std::size_t deadline_samples = 0;
};

/** Parse "uniform" / "greedy" / "deadline" / "migrate"; fatal on
 *  anything else. "deadline" defaults to a 6-sample window. */
PolicySpec policyByName(std::string_view name);

/** Canonical name of a policy kind. */
std::string_view policyName(DeferralPolicy kind);

/** Result of scheduling a load against one intensity series. The
 *  per-day load is tiled over the series span (durationHours()/24
 *  days' worth of energy). */
struct SeriesSchedule
{
    /** Deferrable energy placed in each sample. */
    std::vector<util::Energy> placement;
    util::Mass baseline_footprint{};
    util::Mass deferrable_footprint{};

    util::Mass total() const
    {
        return baseline_footprint + deferrable_footprint;
    }
};

/**
 * Schedule the load against @p series under @p policy. Fatal on
 * malformed loads (negative / non-finite values, zero capacity with
 * nonzero energy, energy exceeding daily capacity) and on
 * DeferralPolicy::GreenestRegion (use scheduleAcrossRegions).
 */
SeriesSchedule schedule(const DailyLoad &load,
                        const data::IntensitySeries &series,
                        const PolicySpec &policy);

/** Result of cross-region scheduling: placement[region][sample]. The
 *  baseline load stays in the home region (regions[0]); deferrable
 *  energy may migrate to whichever region-sample slot is greenest. */
struct MultiRegionSchedule
{
    std::vector<std::vector<util::Energy>> placement;
    util::Mass baseline_footprint{};
    util::Mass deferrable_footprint{};

    util::Mass total() const
    {
        return baseline_footprint + deferrable_footprint;
    }
};

/**
 * The GreenestRegion policy: greedily place deferrable energy over
 * every (region, sample) slot, greenest first, each slot capped at
 * capacity x step. All series must share length and step; fatal
 * otherwise.
 */
MultiRegionSchedule
scheduleAcrossRegions(const DailyLoad &load,
                      const std::vector<data::IntensitySeries> &regions);

/** Result of evaluating one 24-hour schedule (legacy view). */
struct ScheduleResult
{
    /** Deferrable energy placed in each hour. */
    std::array<util::Energy, data::DiurnalProfile::kHours> placement{};
    util::Mass baseline_footprint{};
    util::Mass deferrable_footprint{};

    util::Mass total() const
    {
        return baseline_footprint + deferrable_footprint;
    }
};

/**
 * Spread the deferrable energy uniformly across all hours (the naive,
 * carbon-oblivious schedule). Fatal if the daily energy exceeds what
 * the capacity allows.
 */
ScheduleResult scheduleUniform(const DailyLoad &load,
                               const data::DiurnalProfile &profile);

/**
 * Greedily place deferrable energy into the greenest hours first,
 * saturating each hour's capacity before moving to the next.
 */
ScheduleResult scheduleCarbonAware(const DailyLoad &load,
                                   const data::DiurnalProfile &profile);

/** OPCF saving factor of carbon-aware over uniform scheduling. */
double carbonAwareSaving(const DailyLoad &load,
                         const data::DiurnalProfile &profile);

} // namespace act::core

#endif // ACT_CORE_SCHEDULING_H
