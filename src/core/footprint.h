/**
 * @file
 * Eq. 1, the top of the ACT model:
 *
 *   CF = OPCF + (T / LT) * ECF
 *
 * The embodied footprint is amortized over the hardware lifetime LT and
 * charged to an application in proportion to its execution time T.
 */

#ifndef ACT_CORE_FOOTPRINT_H
#define ACT_CORE_FOOTPRINT_H

#include "util/units.h"

namespace act::core {

/** The result of an Eq. 1 evaluation, keeping both terms visible. */
struct CarbonFootprint
{
    util::Mass operational{};
    /** The lifetime-allocated share (T/LT) of embodied emissions. */
    util::Mass embodied_allocated{};

    util::Mass total() const { return operational + embodied_allocated; }

    /** Fraction of the total owed to embodied emissions; 0 when the
     *  total is zero. */
    double embodiedShare() const;
};

/**
 * Eq. 1. @p execution_time is the application run time T; @p lifetime
 * is the hardware lifetime LT (the paper cites 3-5 years for servers
 * and 2-3 years for mobile). Fatal when LT <= 0 or T < 0; T may exceed
 * LT only if the caller models whole-lifetime usage (T == LT).
 */
CarbonFootprint combineFootprint(util::Mass operational,
                                 util::Mass embodied_total,
                                 util::Duration execution_time,
                                 util::Duration lifetime);

/** Whole-lifetime footprint: Eq. 1 with T = LT. */
CarbonFootprint lifetimeFootprint(util::Mass operational,
                                  util::Mass embodied_total);

} // namespace act::core

#endif // ACT_CORE_FOOTPRINT_H
