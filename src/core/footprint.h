/**
 * @file
 * Eq. 1, the top of the ACT model:
 *
 *   CF = OPCF + (T / LT) * ECF
 *
 * The embodied footprint is amortized over the hardware lifetime LT and
 * charged to an application in proportion to its execution time T.
 */

#ifndef ACT_CORE_FOOTPRINT_H
#define ACT_CORE_FOOTPRINT_H

#include "util/logging.h"
#include "util/metrics.h"
#include "util/units.h"

namespace act::core {

namespace detail {

/** The shared "core.eq1.evals" counter; combineFootprint() and
 *  Eq1Amortizer::combine() both count through it. */
util::Counter &eq1Evals();

/** Cold half of Eq1Amortizer's T <= LT check. */
[[noreturn]] void
fatalExecutionExceedsLifetime(util::Duration execution_time,
                              util::Duration lifetime);

} // namespace detail

/** The result of an Eq. 1 evaluation, keeping both terms visible. */
struct CarbonFootprint
{
    util::Mass operational{};
    /** The lifetime-allocated share (T/LT) of embodied emissions. */
    util::Mass embodied_allocated{};

    util::Mass total() const { return operational + embodied_allocated; }

    /** Fraction of the total owed to embodied emissions; 0 when the
     *  total is zero. */
    double embodiedShare() const;
};

/**
 * Eq. 1. @p execution_time is the application run time T; @p lifetime
 * is the hardware lifetime LT (the paper cites 3-5 years for servers
 * and 2-3 years for mobile). Fatal when LT <= 0 or T < 0; T may exceed
 * LT only if the caller models whole-lifetime usage (T == LT).
 */
CarbonFootprint combineFootprint(util::Mass operational,
                                 util::Mass embodied_total,
                                 util::Duration execution_time,
                                 util::Duration lifetime);

/** Whole-lifetime footprint: Eq. 1 with T = LT. */
CarbonFootprint lifetimeFootprint(util::Mass operational,
                                  util::Mass embodied_total);

/**
 * Batched Eq. 1 for hot loops that charge many executions against one
 * hardware lifetime (e.g. fleet replay, which evaluates it once per
 * job x scenario). The LT > 0 check runs once at construction;
 * combine() then evaluates combineFootprint()'s exact expression tree,
 * T-validation, and metrics count inline -- the two are
 * interchangeable call-for-call, including the fatal messages.
 */
class Eq1Amortizer
{
  public:
    explicit Eq1Amortizer(util::Duration lifetime) : lifetime_(lifetime)
    {
        if (util::asSeconds(lifetime) <= 0.0)
            util::fatal("hardware lifetime must be positive");
    }

    /** Eq. 1 with LT fixed; identical to combineFootprint(operational,
     *  embodied_total, execution_time, lifetime()). */
    CarbonFootprint
    combine(util::Mass operational, util::Mass embodied_total,
            util::Duration execution_time) const
    {
        evals_.add();
        if (util::asSeconds(execution_time) < 0.0)
            util::fatal("execution time must be non-negative");
        if (execution_time > lifetime_) {
            detail::fatalExecutionExceedsLifetime(execution_time,
                                                  lifetime_);
        }
        CarbonFootprint footprint;
        footprint.operational = operational;
        footprint.embodied_allocated =
            embodied_total * (execution_time / lifetime_);
        return footprint;
    }

    util::Duration lifetime() const { return lifetime_; }

  private:
    util::Duration lifetime_;
    /** Cached once so the hot path is Counter::add()'s inline
     *  relaxed load + store, with no registry lookup. */
    util::Counter &evals_ = detail::eq1Evals();
};

} // namespace act::core

#endif // ACT_CORE_FOOTPRINT_H
