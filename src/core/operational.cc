#include "core/operational.h"

#include "util/logging.h"
#include "util/metrics.h"

namespace act::core {

namespace {

util::Counter &g_eq2_evals =
    util::MetricsRegistry::instance().counter("core.eq2.evals");

} // namespace

OperationalParams
OperationalParams::withIntensity(util::CarbonIntensity ci)
{
    OperationalParams params;
    params.ci_use = ci;
    return params;
}

OperationalParams
OperationalParams::forRegion(data::Region region)
{
    return withIntensity(data::regionIntensity(region));
}

OperationalParams
OperationalParams::forSource(data::EnergySource source)
{
    return withIntensity(data::sourceIntensity(source));
}

util::Mass
operationalFootprint(util::Energy energy, const OperationalParams &params)
{
    g_eq2_evals.add();
    if (params.utilization_effectiveness < 1.0) {
        util::fatal("utilization effectiveness must be >= 1, got ",
                    params.utilization_effectiveness);
    }
    return params.ci_use * (energy * params.utilization_effectiveness);
}

util::Mass
operationalFootprint(util::Power power, util::Duration duration,
                     const OperationalParams &params)
{
    return operationalFootprint(power * duration, params);
}

} // namespace act::core
