/**
 * @file
 * Defect-density yield models. Table 1 treats yield Y as a free
 * parameter in (0, 1]; this module computes it from die area and a
 * process defect density using the classic models, which makes the
 * CPA of Eq. 5 area-dependent and enables the chiplet analysis that
 * the paper lists under the Reuse tenet (Fig. 1).
 *
 *   Poisson:           Y = exp(-A * D0)
 *   Murphy:            Y = ((1 - exp(-A * D0)) / (A * D0))^2
 *                      (computed via expm1 so the small-A*D0 limit
 *                      approaches 1 instead of cancelling to garbage)
 *   Negative binomial: Y = (1 + A * D0 / alpha)^(-alpha)
 *
 * with A the die area, D0 the defect density (defects/cm2), and alpha
 * the defect-clustering parameter.
 */

#ifndef ACT_CORE_YIELD_H
#define ACT_CORE_YIELD_H

#include <string_view>

#include "util/units.h"

namespace act::core {

/** Which classical yield formula to apply. */
enum class YieldModel
{
    Poisson,
    Murphy,
    NegativeBinomial,
};

std::string_view yieldModelName(YieldModel model);

/** Process defect characteristics. */
struct DefectParams
{
    /** Defect density in defects per cm2. Leading-edge logic processes
     *  run ~0.05-0.2 early in life and mature towards ~0.05. */
    double defect_density_per_cm2 = 0.1;
    /** Negative-binomial clustering parameter (typ. 2-5). */
    double clustering_alpha = 3.0;
    YieldModel model = YieldModel::NegativeBinomial;
};

/**
 * Die yield for a given area under the defect model; always in (0, 1].
 * Fatal for non-positive area or defect density, or alpha <= 0 with
 * the negative-binomial model.
 */
double dieYield(util::Area die_area, const DefectParams &defects);

/**
 * Effective silicon area manufactured per good die: A / Y(A). This is
 * the quantity Eq. 4 charges carbon for, so embodied carbon grows
 * super-linearly with monolithic die size.
 */
util::Area effectiveAreaPerGoodDie(util::Area die_area,
                                   const DefectParams &defects);

} // namespace act::core

#endif // ACT_CORE_YIELD_H
