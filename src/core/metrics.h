/**
 * @file
 * The carbon-aware optimization metrics of Section 3.2 / Table 2.
 *
 * Alongside the classic EDP and EDAP, ACT introduces four carbon
 * metrics over embodied carbon C, energy E, and delay D:
 *   CDP  = C * D        (sustainable data centers)
 *   CEP  = C * E        (sustainable mobile devices)
 *   C2EP = C^2 * E      (embodied-dominated devices)
 *   CE2P = C * E^2      (operational-dominated devices)
 */

#ifndef ACT_CORE_METRICS_H
#define ACT_CORE_METRICS_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace act::core {

/** All optimization metrics of Table 2. */
enum class Metric
{
    EDP,
    EDAP,
    CDP,
    CEP,
    C2EP,
    CE2P,
};

/** Every metric, in Table 2 order. */
std::span<const Metric> allMetrics();

/** Only the carbon-aware metrics introduced by ACT. */
std::span<const Metric> carbonMetrics();

std::string_view metricName(Metric metric);

/** Table 2 right column. */
std::string_view metricUseCase(Metric metric);

/** True for CDP/CEP/C2EP/CE2P. */
bool isCarbonAware(Metric metric);

/**
 * One hardware design's characteristics, the inputs every metric is
 * formed from. Delay is per unit of work (e.g. per inference); energy
 * is per the same unit of work; carbon is the embodied total.
 */
struct DesignPoint
{
    std::string name;
    util::Mass embodied{};
    util::Energy energy{};
    util::Duration delay{};
    util::Area area{};
};

/**
 * Evaluate a metric (lower is better). Values are products in base
 * units (g, kWh, s, cm2); they are only meaningful relative to other
 * designs under the same metric.
 */
double evaluateMetric(Metric metric, const DesignPoint &point);

/** Index into @p points of the design minimizing @p metric. */
std::size_t bestDesign(Metric metric, std::span<const DesignPoint> points);

/** Per-point metric values normalized to @p baseline_index. */
std::vector<double> normalizedMetric(Metric metric,
                                     std::span<const DesignPoint> points,
                                     std::size_t baseline_index);

} // namespace act::core

#endif // ACT_CORE_METRICS_H
