#include "core/replacement.h"

#include <cmath>

#include "util/logging.h"

namespace act::core {

ReplacementPoint
evaluateReplacement(const ReplacementParams &params,
                    double lifetime_years)
{
    if (lifetime_years <= 0.0)
        util::fatal("lifetime must be positive, got ", lifetime_years);
    const double g = params.annual_efficiency_improvement;
    if (g <= 1.0)
        util::fatal("annual efficiency improvement must exceed 1");

    const double horizon_years = util::asYears(params.horizon);
    const double units = horizon_years / lifetime_years;

    // Energy over one unit's life relative to its first year: whole
    // years plus the fractional tail.
    const double whole_years = std::floor(lifetime_years);
    double relative_energy = (std::pow(g, whole_years) - 1.0) / (g - 1.0);
    const double tail = lifetime_years - whole_years;
    if (tail > 0.0)
        relative_energy += tail * std::pow(g, whole_years);

    ReplacementPoint point;
    point.lifetime_years = lifetime_years;
    point.embodied = params.embodied_per_unit * units;
    point.operational = operationalFootprint(
        params.first_year_energy * (units * relative_energy),
        params.use);
    return point;
}

std::vector<ReplacementPoint>
replacementSweep(const ReplacementParams &params, int max_years)
{
    if (max_years < 1)
        util::fatal("replacement sweep needs max_years >= 1");
    std::vector<ReplacementPoint> sweep;
    sweep.reserve(static_cast<std::size_t>(max_years));
    for (int lifetime = 1; lifetime <= max_years; ++lifetime)
        sweep.push_back(evaluateReplacement(params, lifetime));
    return sweep;
}

std::size_t
optimalReplacementIndex(const std::vector<ReplacementPoint> &sweep)
{
    if (sweep.empty())
        util::fatal("optimalReplacementIndex() on an empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].total() < sweep[best].total())
            best = i;
    }
    return best;
}

} // namespace act::core
