#include "core/fab_params.h"

namespace act::core {

FabParams
FabParams::taiwanGrid()
{
    FabParams params;
    params.ci_fab = data::regionIntensity(data::Region::Taiwan);
    return params;
}

FabParams
FabParams::renewable()
{
    FabParams params;
    params.ci_fab = data::sourceIntensity(data::EnergySource::Solar);
    return params;
}

FabParams
FabParams::withIntensity(util::CarbonIntensity ci)
{
    FabParams params;
    params.ci_fab = ci;
    return params;
}

} // namespace act::core
