/**
 * @file
 * A self-contained JSON value type, parser, and serializer.
 *
 * The released ACT tool drives its model from configuration files; this
 * reproduction does the same without external dependencies. The parser
 * accepts standard JSON plus two conveniences common in config files:
 * '//' line comments and trailing commas.
 */

#ifndef ACT_CONFIG_JSON_H
#define ACT_CONFIG_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace act::config {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/** std::map keeps keys ordered so serialization is deterministic. */
using JsonObject = std::map<std::string, JsonValue>;

/** Thrown on malformed input, with 1-based line/column coordinates. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &message, int line, int column);

    int line() const { return line_; }
    int column() const { return column_; }

  private:
    int line_;
    int column_;
};

/** Thrown when a value is accessed as the wrong type or a key is absent. */
class JsonTypeError : public std::runtime_error
{
  public:
    explicit JsonTypeError(const std::string &message)
        : std::runtime_error(message)
    {}
};

/**
 * A JSON document node: null, bool, number (double), string, array, or
 * object. Accessors are checked and throw JsonTypeError on mismatch.
 */
class JsonValue
{
  public:
    JsonValue() : data_(nullptr) {}
    JsonValue(std::nullptr_t) : data_(nullptr) {}
    JsonValue(bool b) : data_(b) {}
    JsonValue(double d) : data_(d) {}
    JsonValue(int i) : data_(static_cast<double>(i)) {}
    JsonValue(const char *s) : data_(std::string(s)) {}
    JsonValue(std::string s) : data_(std::move(s)) {}
    JsonValue(JsonArray a) : data_(std::move(a)) {}
    JsonValue(JsonObject o) : data_(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(data_); }
    bool isBool() const { return std::holds_alternative<bool>(data_); }
    bool isNumber() const { return std::holds_alternative<double>(data_); }
    bool isString() const
    { return std::holds_alternative<std::string>(data_); }
    bool isArray() const { return std::holds_alternative<JsonArray>(data_); }
    bool isObject() const
    { return std::holds_alternative<JsonObject>(data_); }

    bool asBool() const;
    double asNumber() const;
    /** asNumber() narrowed; throws if not integral. */
    std::int64_t asInteger() const;
    const std::string &asString() const;
    const JsonArray &asArray() const;
    JsonArray &asArray();
    const JsonObject &asObject() const;
    JsonObject &asObject();

    /** True when this is an object containing @p key. */
    bool contains(const std::string &key) const;

    /** Checked object member access; throws when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Object member access with a fallback default. */
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Parse a complete document; trailing garbage is an error. */
    static JsonValue parse(std::string_view text);

  private:
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
                 JsonObject>
        data_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

/** Load and parse a JSON file; fatal on I/O failure. */
JsonValue loadJsonFile(const std::string &path);

/** Serialize @p value to @p path; fatal on I/O failure. */
void saveJsonFile(const std::string &path, const JsonValue &value,
                  int indent = 2);

} // namespace act::config

#endif // ACT_CONFIG_JSON_H
