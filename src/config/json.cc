#include "config/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace act::config {

JsonParseError::JsonParseError(const std::string &message, int line,
                               int column)
    : std::runtime_error(message + " at line " + std::to_string(line) +
                         ", column " + std::to_string(column)),
      line_(line), column_(column)
{}

namespace {

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        skipWhitespace();
        JsonValue value = parseValue();
        skipWhitespace();
        if (!atEnd())
            raise("trailing characters after JSON document");
        return value;
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int column_ = 1;

    bool atEnd() const { return pos_ >= text_.size(); }

    char
    peek() const
    {
        if (atEnd())
            raise("unexpected end of input");
        return text_[pos_];
    }

    char
    advance()
    {
        const char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    [[noreturn]] void
    raise(const std::string &message) const
    {
        throw JsonParseError(message, line_, column_);
    }

    void
    skipWhitespace()
    {
        while (!atEnd()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (!atEnd() && text_[pos_] != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    void
    expect(char c)
    {
        if (atEnd() || text_[pos_] != c)
            raise(std::string("expected '") + c + "'");
        advance();
    }

    bool
    consumeIf(char c)
    {
        if (!atEnd() && text_[pos_] == c) {
            advance();
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue(parseString());
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            parseLiteral("null");
            return JsonValue(nullptr);
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber();
            raise("unexpected character");
        }
    }

    void
    parseLiteral(std::string_view literal)
    {
        for (char expected : literal) {
            if (atEnd() || text_[pos_] != expected)
                raise(std::string("invalid literal, expected '") +
                      std::string(literal) + "'");
            advance();
        }
    }

    JsonValue
    parseBool()
    {
        if (peek() == 't') {
            parseLiteral("true");
            return JsonValue(true);
        }
        parseLiteral("false");
        return JsonValue(false);
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consumeIf('-')) {}
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                               text_[pos_]))) {
            advance();
        }
        if (consumeIf('.')) {
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_]))) {
                advance();
            }
        }
        if (!atEnd() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            advance();
            if (!atEnd() && (text_[pos_] == '+' || text_[pos_] == '-'))
                advance();
            while (!atEnd() && std::isdigit(static_cast<unsigned char>(
                                   text_[pos_]))) {
                advance();
            }
        }
        const std::string token(text_.substr(start, pos_ - start));
        try {
            std::size_t consumed = 0;
            const double value = std::stod(token, &consumed);
            if (consumed != token.size())
                raise("malformed number '" + token + "'");
            return JsonValue(value);
        } catch (const std::logic_error &) {
            raise("malformed number '" + token + "'");
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (atEnd())
                raise("unterminated string");
            const char c = advance();
            if (c == '"')
                return out;
            if (c == '\\') {
                const char escape = advance();
                switch (escape) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': out += parseUnicodeEscape(); break;
                  default: raise("invalid escape sequence");
                }
            } else {
                out += c;
            }
        }
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                raise("invalid \\u escape");
        }
        // Encode as UTF-8 (basic multilingual plane only; surrogate
        // pairs are not needed for ACT config files).
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonArray array;
        skipWhitespace();
        if (consumeIf(']'))
            return JsonValue(std::move(array));
        while (true) {
            array.push_back(parseValue());
            skipWhitespace();
            if (consumeIf(',')) {
                skipWhitespace();
                if (consumeIf(']'))  // trailing comma
                    return JsonValue(std::move(array));
                continue;
            }
            expect(']');
            return JsonValue(std::move(array));
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonObject object;
        skipWhitespace();
        if (consumeIf('}'))
            return JsonValue(std::move(object));
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            object[std::move(key)] = parseValue();
            skipWhitespace();
            if (consumeIf(',')) {
                skipWhitespace();
                if (consumeIf('}'))  // trailing comma
                    return JsonValue(std::move(object));
                continue;
            }
            expect('}');
            return JsonValue(std::move(object));
        }
    }
};

void
appendEscaped(std::string &out, const std::string &text)
{
    out += '"';
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double value)
{
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        out += buffer;
    } else {
        char buffer[40];
        std::snprintf(buffer, sizeof(buffer), "%.17g", value);
        out += buffer;
    }
}

} // namespace

bool
JsonValue::asBool() const
{
    if (!isBool())
        throw JsonTypeError("JSON value is not a boolean");
    return std::get<bool>(data_);
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        throw JsonTypeError("JSON value is not a number");
    return std::get<double>(data_);
}

std::int64_t
JsonValue::asInteger() const
{
    const double value = asNumber();
    if (value != std::floor(value))
        throw JsonTypeError("JSON number is not integral");
    return static_cast<std::int64_t>(value);
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        throw JsonTypeError("JSON value is not a string");
    return std::get<std::string>(data_);
}

const JsonArray &
JsonValue::asArray() const
{
    if (!isArray())
        throw JsonTypeError("JSON value is not an array");
    return std::get<JsonArray>(data_);
}

JsonArray &
JsonValue::asArray()
{
    if (!isArray())
        throw JsonTypeError("JSON value is not an array");
    return std::get<JsonArray>(data_);
}

const JsonObject &
JsonValue::asObject() const
{
    if (!isObject())
        throw JsonTypeError("JSON value is not an object");
    return std::get<JsonObject>(data_);
}

JsonObject &
JsonValue::asObject()
{
    if (!isObject())
        throw JsonTypeError("JSON value is not an object");
    return std::get<JsonObject>(data_);
}

bool
JsonValue::contains(const std::string &key) const
{
    return isObject() && asObject().count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonObject &object = asObject();
    const auto it = object.find(key);
    if (it == object.end())
        throw JsonTypeError("missing JSON key '" + key + "'");
    return it->second;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    return contains(key) ? at(key).asNumber() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    return contains(key) ? at(key).asBool() : fallback;
}

std::string
JsonValue::stringOr(const std::string &key, const std::string &fallback) const
{
    return contains(key) ? at(key).asString() : fallback;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string newline = indent > 0 ? "\n" : "";
    const std::string pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     (static_cast<std::size_t>(depth) + 1),
                                 ' ')
                   : "";
    const std::string close_pad =
        indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                     static_cast<std::size_t>(depth),
                                 ' ')
                   : "";

    if (isNull()) {
        out += "null";
    } else if (isBool()) {
        out += asBool() ? "true" : "false";
    } else if (isNumber()) {
        appendNumber(out, asNumber());
    } else if (isString()) {
        appendEscaped(out, asString());
    } else if (isArray()) {
        const JsonArray &array = asArray();
        if (array.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        for (std::size_t i = 0; i < array.size(); ++i) {
            if (i > 0)
                out += ',';
            out += newline + pad;
            array[i].dumpTo(out, indent, depth + 1);
        }
        out += newline + close_pad + ']';
    } else {
        const JsonObject &object = asObject();
        if (object.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto &[key, value] : object) {
            if (!first)
                out += ',';
            first = false;
            out += newline + pad;
            appendEscaped(out, key);
            out += indent > 0 ? ": " : ":";
            value.dumpTo(out, indent, depth + 1);
        }
        out += newline + close_pad + '}';
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

JsonValue
JsonValue::parse(std::string_view text)
{
    Parser parser(text);
    return parser.parseDocument();
}

JsonValue
loadJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open JSON file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return JsonValue::parse(buffer.str());
}

void
saveJsonFile(const std::string &path, const JsonValue &value, int indent)
{
    std::ofstream out(path);
    if (!out)
        util::fatal("cannot write JSON file '", path, "'");
    out << value.dump(indent) << '\n';
}

} // namespace act::config
