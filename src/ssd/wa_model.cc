#include "ssd/wa_model.h"

#include <algorithm>

#include "util/logging.h"

namespace act::ssd {

double
analyticalWriteAmplification(double over_provision)
{
    if (over_provision <= 0.0) {
        util::fatal("over-provisioning factor must be positive, got ",
                    over_provision);
    }
    return std::max(1.0, (1.0 + over_provision) / (2.0 * over_provision));
}

} // namespace act::ssd
