/**
 * @file
 * The SSD lifetime and over-provisioning study of Section 8 / Fig. 15.
 *
 * Lifetime follows Meza et al.'s field-failure model:
 *
 *   Lifetime (years) = PEC * (1 + PF)
 *                      / (365 * DWPD * WA(PF) * R_compress)
 *
 * where PEC is the NAND program/erase-cycle budget, PF the
 * over-provisioning factor, DWPD full-drive writes per day, WA the
 * write-amplification factor, and R_compress the compression rate.
 * Raising PF lowers WA and extends lifetime, but each extra spare
 * gigabyte carries embodied carbon (Eq. 8).
 */

#ifndef ACT_SSD_LIFETIME_H
#define ACT_SSD_LIFETIME_H

#include <cstddef>
#include <vector>

#include "data/memory_db.h"
#include "util/units.h"

namespace act::ssd {

/** Fixed reliability parameters (PEC, DWPD, R_compress per [56]). */
struct ReliabilityParams
{
    /** NAND program/erase-cycle budget (TLC-class). */
    double pec = 3000.0;
    /** Full physical-drive writes per day. */
    double dwpd = 1.3;
    /** Storage compression rate. */
    double r_compress = 1.0;
};

/** Meza et al. lifetime at over-provisioning factor @p pf. */
util::Duration ssdLifetime(double pf, const ReliabilityParams &params =
                                          ReliabilityParams{});

/** One point of the Fig. 15 sweep. */
struct OverProvisionPoint
{
    double pf = 0.0;
    double write_amplification = 0.0;
    double lifetime_years = 0.0;
    /** Devices consumed over the service period. */
    double devices = 0.0;
    /** Embodied carbon of all devices consumed over the service
     *  period (physical capacity includes the spare area). */
    util::Mass effective_embodied{};
};

/** Study configuration. */
struct ProvisioningStudyParams
{
    ReliabilityParams reliability{};
    /** User-visible capacity of one drive. */
    util::Capacity user_capacity = util::gigabytes(128.0);
    /** Carbon per gigabyte of the NAND technology. */
    util::CarbonPerCapacity cps = data::defaultSsd().cps;
    /** Service period the storage must cover. */
    util::Duration service_period = util::years(2.0);
    /** Whether devices are replaced in whole units (ceil) or the
     *  accounting amortizes fractionally. The paper's curves are
     *  smooth, so fractional is the default. */
    bool whole_devices = false;
};

/** Evaluate one over-provisioning factor. */
OverProvisionPoint evaluateOverProvision(
    double pf, const ProvisioningStudyParams &params);

/** Sweep PF over [lo, hi] with the given number of steps. */
std::vector<OverProvisionPoint>
overProvisionSweep(const ProvisioningStudyParams &params, double lo = 0.04,
                   double hi = 0.50, std::size_t steps = 47);

/** Index of the effective-embodied-minimizing point in a sweep. */
std::size_t optimalOverProvisionIndex(
    const std::vector<OverProvisionPoint> &sweep);

/**
 * The smallest PF whose lifetime covers the service period -- the
 * embodied-optimal reliability provisioning when devices are counted
 * in whole units (the paper's 16% for one ~2-year mobile life, 34% for
 * a 4-year second-life deployment).
 */
double minimumPfForService(const ProvisioningStudyParams &params,
                           double lo = 0.01, double hi = 0.60);

} // namespace act::ssd

#endif // ACT_SSD_LIFETIME_H
