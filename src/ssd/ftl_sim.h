/**
 * @file
 * A page-level trace-driven FTL simulator with greedy garbage
 * collection. The paper's recycling study (Section 8) rests on write
 * amplification as a function of over-provisioning; this simulator
 * provides an empirical WA measurement that validates the analytical
 * model in wa_model.h (tests bound their divergence).
 *
 * Design: a log-structured FTL over num_blocks x pages_per_block pages.
 * The logical space covers (1 - spare) of the physical pages. Writes go
 * to an active block; when the free-block pool drops below a threshold,
 * the block with the fewest valid pages is collected (its live pages
 * relocated) and erased.
 */

#ifndef ACT_SSD_FTL_SIM_H
#define ACT_SSD_FTL_SIM_H

#include <array>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace act::ssd {

/** Spatial write pattern issued by the host. */
enum class WritePattern
{
    /** Uniform random over the logical space. */
    Uniform,
    /** Two-class skew: a hot fraction of LBAs receives most writes
     *  (the classic 80/20-style model used in FTL analysis). */
    HotCold,
};

/** Simulator configuration. */
struct FtlConfig
{
    int num_blocks = 1024;
    int pages_per_block = 64;
    /** Over-provisioning factor: spare / user capacity. */
    double over_provision = 0.16;
    /** Number of user page writes to issue after preconditioning. */
    std::uint64_t user_writes = 4'000'000;
    /** Blocks kept in reserve before GC triggers. */
    int gc_threshold_blocks = 2;
    std::uint64_t seed = 42;

    WritePattern pattern = WritePattern::Uniform;
    /** HotCold: fraction of LBAs that are hot. */
    double hot_lba_fraction = 0.2;
    /** HotCold: fraction of writes hitting the hot LBAs. */
    double hot_write_fraction = 0.8;
    /** Route hot and cold writes to separate write frontiers
     *  (multi-stream), so blocks age uniformly within a stream and
     *  greedy GC finds colder victims. */
    bool separate_hot_cold = false;
};

/** Measured statistics. */
struct FtlStats
{
    std::uint64_t user_pages_written = 0;
    std::uint64_t physical_pages_written = 0;
    std::uint64_t gc_invocations = 0;
    std::uint64_t pages_relocated = 0;
    std::uint64_t erases = 0;

    /** physical / user page writes. */
    double writeAmplification() const;
    /** Mean program/erase cycles consumed per block. */
    double meanEraseCount(const FtlConfig &config) const;
};

/** The simulator. Deterministic for a fixed config (own xorshift RNG). */
class FtlSimulator
{
  public:
    explicit FtlSimulator(FtlConfig config);

    /**
     * Precondition (fill the logical space once, then write one full
     * drive's worth of random traffic) and run the measured phase.
     */
    FtlStats run();

    /** Logical pages exposed to the user. */
    std::uint64_t logicalPageCount() const { return logical_pages_; }

    /**
     * Structural invariant check over the FTL state after run():
     * page table and reverse map agree, per-block valid counts match,
     * and total valid pages equal the logical space. Used by tests.
     */
    bool checkConsistency() const;

  private:
    struct Block
    {
        int valid = 0;
        int next_page = 0;
        std::uint64_t erase_count = 0;
    };

    FtlConfig config_;
    std::uint64_t logical_pages_ = 0;

    std::vector<Block> blocks_;
    /** LBA -> physical page id (block * pages_per_block + page). */
    std::vector<std::int64_t> page_table_;
    /** physical page id -> LBA (or -1 when invalid/free). */
    std::vector<std::int64_t> reverse_table_;
    std::vector<int> free_blocks_;
    /** User-write frontiers: [0] = cold/default, [1] = hot stream. */
    std::array<int, 2> active_blocks_ = {-1, -1};
    /** Separate GC relocation frontiers (per stream), so collection
     *  never recurses into user allocation (which could re-collect
     *  the victim) and does not re-mix hot and cold data. */
    std::array<int, 2> gc_blocks_ = {-1, -1};

    util::Xorshift64Star rng_{42};
    FtlStats stats_;
    bool measuring_ = false;

    void reset();
    std::uint64_t nextLba();
    bool isHotLba(std::uint64_t lba) const;
    void writePage(std::uint64_t lba);
    /** Allocate the next user page on a stream, running GC as needed. */
    std::int64_t allocatePage(int stream);
    /** Allocate the next GC relocation page on a stream. */
    std::int64_t allocateGcPage(int stream);
    /** Stream for a user or relocated write of this LBA. */
    int streamFor(std::uint64_t lba) const;
    std::int64_t pageInBlock(int block);
    void collectOneBlock();
    int victimBlock() const;
};

} // namespace act::ssd

#endif // ACT_SSD_FTL_SIM_H
