#include "ssd/ftl_sim.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace act::ssd {

double
FtlStats::writeAmplification() const
{
    if (user_pages_written == 0)
        return 1.0;
    return static_cast<double>(physical_pages_written) /
           static_cast<double>(user_pages_written);
}

double
FtlStats::meanEraseCount(const FtlConfig &config) const
{
    return static_cast<double>(erases) / config.num_blocks;
}

FtlSimulator::FtlSimulator(FtlConfig config) : config_(config)
{
    if (config_.num_blocks < 8 || config_.pages_per_block < 1)
        util::fatal("FTL geometry too small");
    if (config_.over_provision <= 0.0 || config_.over_provision >= 1.0)
        util::fatal("over-provisioning factor must be in (0, 1), got ",
                    config_.over_provision);
    if (config_.gc_threshold_blocks < 1 ||
        config_.gc_threshold_blocks >= config_.num_blocks / 2) {
        util::fatal("bad GC threshold");
    }
    if (config_.pattern == WritePattern::HotCold) {
        if (!(config_.hot_lba_fraction > 0.0 &&
              config_.hot_lba_fraction < 1.0) ||
            !(config_.hot_write_fraction >= 0.0 &&
              config_.hot_write_fraction <= 1.0)) {
            util::fatal("bad hot/cold workload parameters");
        }
    }

    const std::uint64_t physical_pages =
        static_cast<std::uint64_t>(config_.num_blocks) *
        config_.pages_per_block;
    // user * (1 + op) = physical  =>  user = physical / (1 + op).
    logical_pages_ = static_cast<std::uint64_t>(std::floor(
        static_cast<double>(physical_pages) /
        (1.0 + config_.over_provision)));
    if (logical_pages_ == 0)
        util::fatal("no logical space left after over-provisioning");
}

void
FtlSimulator::reset()
{
    blocks_.assign(static_cast<std::size_t>(config_.num_blocks), Block{});
    page_table_.assign(logical_pages_, -1);
    reverse_table_.assign(static_cast<std::size_t>(config_.num_blocks) *
                              config_.pages_per_block,
                          -1);
    free_blocks_.clear();
    for (int b = config_.num_blocks - 1; b >= 0; --b)
        free_blocks_.push_back(b);
    active_blocks_ = {-1, -1};
    gc_blocks_ = {-1, -1};
    rng_ = util::Xorshift64Star(config_.seed);
    stats_ = FtlStats{};
    measuring_ = false;
}

std::int64_t
FtlSimulator::pageInBlock(int block_id)
{
    Block &block = blocks_[block_id];
    const std::int64_t page_id =
        static_cast<std::int64_t>(block_id) * config_.pages_per_block +
        block.next_page;
    ++block.next_page;
    return page_id;
}

std::int64_t
FtlSimulator::allocatePage(int stream)
{
    int &active = active_blocks_[static_cast<std::size_t>(stream)];
    if (active < 0 ||
        blocks_[active].next_page >= config_.pages_per_block) {
        while (static_cast<int>(free_blocks_.size()) <=
               config_.gc_threshold_blocks) {
            collectOneBlock();
        }
        active = free_blocks_.back();
        free_blocks_.pop_back();
    }
    return pageInBlock(active);
}

std::int64_t
FtlSimulator::allocateGcPage(int stream)
{
    int &gc_block = gc_blocks_[static_cast<std::size_t>(stream)];
    if (gc_block < 0 ||
        blocks_[gc_block].next_page >= config_.pages_per_block) {
        if (free_blocks_.empty())
            util::panic("FTL ran out of blocks during GC");
        gc_block = free_blocks_.back();
        free_blocks_.pop_back();
    }
    return pageInBlock(gc_block);
}

int
FtlSimulator::streamFor(std::uint64_t lba) const
{
    const bool separate = config_.separate_hot_cold &&
                          config_.pattern == WritePattern::HotCold;
    return (separate && isHotLba(lba)) ? 1 : 0;
}

int
FtlSimulator::victimBlock() const
{
    int victim = -1;
    int victim_valid = config_.pages_per_block + 1;
    for (int b = 0; b < config_.num_blocks; ++b) {
        const Block &block = blocks_[b];
        if (b == active_blocks_[0] || b == active_blocks_[1] ||
            b == gc_blocks_[0] || b == gc_blocks_[1]) {
            continue;
        }
        if (block.next_page < config_.pages_per_block)
            continue;  // not fully written; skip open/free blocks
        if (block.valid < victim_valid) {
            victim_valid = block.valid;
            victim = b;
        }
    }
    if (victim < 0)
        util::panic("FTL GC found no victim block");
    return victim;
}

void
FtlSimulator::collectOneBlock()
{
    const int victim = victimBlock();
    Block &block = blocks_[victim];
    ++stats_.gc_invocations;

    // Relocate live pages.
    const std::int64_t base =
        static_cast<std::int64_t>(victim) * config_.pages_per_block;
    for (int p = 0; p < config_.pages_per_block && block.valid > 0; ++p) {
        const std::int64_t lba = reverse_table_[base + p];
        if (lba < 0)
            continue;
        reverse_table_[base + p] = -1;
        --block.valid;

        const std::int64_t new_page =
            allocateGcPage(streamFor(static_cast<std::uint64_t>(lba)));
        page_table_[lba] = new_page;
        reverse_table_[new_page] = lba;
        ++blocks_[new_page / config_.pages_per_block].valid;
        if (measuring_) {
            ++stats_.physical_pages_written;
            ++stats_.pages_relocated;
        }
    }

    block.valid = 0;
    block.next_page = 0;
    ++block.erase_count;
    if (measuring_)
        ++stats_.erases;
    free_blocks_.push_back(victim);
}

bool
FtlSimulator::isHotLba(std::uint64_t lba) const
{
    // The hot set occupies the low end of the logical space.
    return static_cast<double>(lba) <
           config_.hot_lba_fraction *
               static_cast<double>(logical_pages_);
}

std::uint64_t
FtlSimulator::nextLba()
{
    if (config_.pattern == WritePattern::Uniform)
        return rng_.nextBelow(logical_pages_);

    const auto hot_pages = static_cast<std::uint64_t>(
        config_.hot_lba_fraction * static_cast<double>(logical_pages_));
    if (hot_pages == 0 || hot_pages >= logical_pages_)
        return rng_.nextBelow(logical_pages_);
    if (rng_.nextUnit() < config_.hot_write_fraction)
        return rng_.nextBelow(hot_pages);
    return hot_pages + rng_.nextBelow(logical_pages_ - hot_pages);
}

void
FtlSimulator::writePage(std::uint64_t lba)
{
    const std::int64_t old_page = page_table_[lba];
    if (old_page >= 0) {
        reverse_table_[old_page] = -1;
        --blocks_[old_page / config_.pages_per_block].valid;
    }
    const std::int64_t new_page = allocatePage(streamFor(lba));
    page_table_[lba] = new_page;
    reverse_table_[new_page] = lba;
    ++blocks_[new_page / config_.pages_per_block].valid;
    if (measuring_) {
        ++stats_.user_pages_written;
        ++stats_.physical_pages_written;
    }
}

bool
FtlSimulator::checkConsistency() const
{
    if (blocks_.empty())
        return false;  // run() has not executed yet

    // Every mapped LBA must point at a page that maps back to it.
    std::uint64_t mapped = 0;
    for (std::uint64_t lba = 0; lba < logical_pages_; ++lba) {
        const std::int64_t page = page_table_[lba];
        if (page < 0)
            continue;
        ++mapped;
        if (reverse_table_[page] != static_cast<std::int64_t>(lba))
            return false;
    }

    // Per-block valid counts match the reverse map, and the total
    // equals the mapped logical pages.
    std::uint64_t total_valid = 0;
    for (int b = 0; b < config_.num_blocks; ++b) {
        int valid = 0;
        const std::int64_t base =
            static_cast<std::int64_t>(b) * config_.pages_per_block;
        for (int page = 0; page < config_.pages_per_block; ++page) {
            if (reverse_table_[base + page] >= 0)
                ++valid;
        }
        if (valid != blocks_[b].valid)
            return false;
        total_valid += static_cast<std::uint64_t>(valid);
    }
    return total_valid == mapped;
}

FtlStats
FtlSimulator::run()
{
    reset();

    // Precondition: sequential fill, then one drive-write of
    // pattern-shaped traffic to reach steady state.
    for (std::uint64_t lba = 0; lba < logical_pages_; ++lba)
        writePage(lba);
    for (std::uint64_t i = 0; i < logical_pages_; ++i)
        writePage(nextLba());

    measuring_ = true;
    for (std::uint64_t i = 0; i < config_.user_writes; ++i)
        writePage(nextLba());

    return stats_;
}

} // namespace act::ssd
