#include "ssd/lifetime.h"

#include <cmath>

#include "ssd/wa_model.h"
#include "util/logging.h"

namespace act::ssd {

util::Duration
ssdLifetime(double pf, const ReliabilityParams &params)
{
    if (params.pec <= 0.0 || params.dwpd <= 0.0 ||
        params.r_compress <= 0.0) {
        util::fatal("reliability parameters must be positive");
    }
    const double wa = analyticalWriteAmplification(pf);
    const double years =
        params.pec * (1.0 + pf) /
        (365.0 * params.dwpd * wa * params.r_compress);
    return util::years(years);
}

OverProvisionPoint
evaluateOverProvision(double pf, const ProvisioningStudyParams &params)
{
    OverProvisionPoint point;
    point.pf = pf;
    point.write_amplification = analyticalWriteAmplification(pf);
    point.lifetime_years =
        util::asYears(ssdLifetime(pf, params.reliability));

    const double service_years = util::asYears(params.service_period);
    double devices = service_years / point.lifetime_years;
    if (params.whole_devices)
        devices = std::ceil(devices - 1e-9);
    devices = std::max(devices, 1.0);
    point.devices = devices;

    const util::Capacity physical_capacity =
        params.user_capacity * (1.0 + pf);
    point.effective_embodied =
        (params.cps * physical_capacity) * devices;
    return point;
}

std::vector<OverProvisionPoint>
overProvisionSweep(const ProvisioningStudyParams &params, double lo,
                   double hi, std::size_t steps)
{
    if (steps < 2 || lo <= 0.0 || hi <= lo)
        util::fatal("bad over-provisioning sweep range");
    std::vector<OverProvisionPoint> sweep;
    sweep.reserve(steps);
    const double delta = (hi - lo) / static_cast<double>(steps - 1);
    for (std::size_t i = 0; i < steps; ++i)
        sweep.push_back(evaluateOverProvision(
            lo + delta * static_cast<double>(i), params));
    return sweep;
}

std::size_t
optimalOverProvisionIndex(const std::vector<OverProvisionPoint> &sweep)
{
    if (sweep.empty())
        util::fatal("optimalOverProvisionIndex() on an empty sweep");
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        if (sweep[i].effective_embodied < sweep[best].effective_embodied)
            best = i;
    }
    return best;
}

double
minimumPfForService(const ProvisioningStudyParams &params, double lo,
                    double hi)
{
    const double service_years = util::asYears(params.service_period);
    if (util::asYears(ssdLifetime(hi, params.reliability)) <
        service_years) {
        util::fatal("even PF=", hi, " cannot cover a ", service_years,
                    "-year service period");
    }
    // Lifetime is monotonically increasing in PF; bisect.
    double low = lo;
    double high = hi;
    for (int i = 0; i < 60; ++i) {
        const double mid = 0.5 * (low + high);
        if (util::asYears(ssdLifetime(mid, params.reliability)) >=
            service_years) {
            high = mid;
        } else {
            low = mid;
        }
    }
    return high;
}

} // namespace act::ssd
