/**
 * @file
 * Analytical write-amplification model for SSDs under greedy garbage
 * collection and uniform random writes. With an over-provisioning
 * (spare) factor rho, the classic steady-state approximation is
 *
 *   WA(rho) = (1 + rho) / (2 * rho)
 *
 * (Hu et al. / Desnoyers-style analysis), clamped to >= 1. The
 * trace-driven FTL simulator in ftl_sim.h validates this curve.
 */

#ifndef ACT_SSD_WA_MODEL_H
#define ACT_SSD_WA_MODEL_H

namespace act::ssd {

/**
 * Steady-state write amplification at over-provisioning factor
 * @p over_provision (spare capacity as a fraction of user capacity).
 * Fatal when the factor is not positive.
 */
double analyticalWriteAmplification(double over_provision);

} // namespace act::ssd

#endif // ACT_SSD_WA_MODEL_H
