#include "dse/optimize.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace act::dse {

namespace {

void
checkSizes(std::span<const double> objective,
           std::span<const double> constraint)
{
    if (objective.size() != constraint.size())
        util::fatal("objective/constraint size mismatch");
    if (objective.empty())
        util::fatal("constrained selection over an empty design space");
}

} // namespace

std::optional<std::size_t>
minimizeSubjectToAtLeast(std::span<const double> objective,
                         std::span<const double> constraint, double minimum)
{
    checkSizes(objective, constraint);
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < objective.size(); ++i) {
        if (constraint[i] < minimum)
            continue;
        if (!best || objective[i] < objective[*best])
            best = i;
    }
    return best;
}

std::optional<std::size_t>
minimizeSubjectToAtMost(std::span<const double> objective,
                        std::span<const double> constraint, double maximum)
{
    checkSizes(objective, constraint);
    std::optional<std::size_t> best;
    for (std::size_t i = 0; i < objective.size(); ++i) {
        if (constraint[i] > maximum)
            continue;
        if (!best || objective[i] < objective[*best])
            best = i;
    }
    return best;
}

std::size_t
minimizeIndex(std::span<const double> objective)
{
    return util::argmin(objective);
}

std::size_t
maximizeIndex(std::span<const double> objective)
{
    return util::argmax(objective);
}

std::vector<double>
linearRange(double lo, double hi, std::size_t steps)
{
    if (steps < 2)
        util::fatal("linearRange() needs at least 2 steps");
    std::vector<double> values;
    values.reserve(steps);
    const double delta = (hi - lo) / static_cast<double>(steps - 1);
    for (std::size_t i = 0; i < steps; ++i)
        values.push_back(lo + delta * static_cast<double>(i));
    return values;
}

std::vector<double>
geometricRange(double lo, double hi, std::size_t steps)
{
    if (steps < 2)
        util::fatal("geometricRange() needs at least 2 steps");
    if (lo <= 0.0 || hi <= 0.0)
        util::fatal("geometricRange() requires positive bounds");
    std::vector<double> values;
    values.reserve(steps);
    const double ratio =
        std::pow(hi / lo, 1.0 / static_cast<double>(steps - 1));
    double value = lo;
    for (std::size_t i = 0; i < steps; ++i) {
        values.push_back(value);
        value *= ratio;
    }
    return values;
}

std::vector<int>
powersOfTwo(int lo, int hi)
{
    if (lo <= 0 || hi < lo)
        util::fatal("powersOfTwo() requires 0 < lo <= hi");
    const auto is_power = [](int v) { return (v & (v - 1)) == 0; };
    if (!is_power(lo) || !is_power(hi))
        util::fatal("powersOfTwo() bounds must be powers of two");
    std::vector<int> values;
    for (int v = lo; v <= hi; v *= 2)
        values.push_back(v);
    return values;
}

} // namespace act::dse
