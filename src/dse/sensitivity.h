/**
 * @file
 * One-at-a-time (tornado) sensitivity analysis over a model's named
 * parameters: perturb each parameter to its low/high bound while
 * holding the rest at baseline, and rank parameters by output swing.
 * Used to quantify which Table 1 inputs (CI_fab, EPA, GPA, MPA, yield)
 * dominate the CPA estimate -- the uncertainty question ACT's
 * follow-on work raises.
 */

#ifndef ACT_DSE_SENSITIVITY_H
#define ACT_DSE_SENSITIVITY_H

#include <functional>
#include <string>
#include <vector>

#include "core/eval_plan.h"

namespace act::dse {

/** One parameter's perturbation range. */
struct ParameterRange
{
    std::string name;
    double baseline = 0.0;
    double low = 0.0;
    double high = 0.0;
};

/** One row of a tornado diagram. */
struct TornadoEntry
{
    std::string name;
    /** Model output with the parameter at its low / high bound. */
    double output_low = 0.0;
    double output_high = 0.0;

    /** Total swing |high - low|. */
    double swing() const;
};

/**
 * Evaluate @p model over each parameter's bounds. The model receives
 * the full parameter vector (baselines with one entry perturbed), in
 * the order of @p parameters. Entries are returned sorted by
 * descending swing; fatal on an empty parameter list.
 */
std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const std::function<double(const std::vector<double> &)> &model);

/**
 * Compiled-plan overload: one plan (binding i <-> parameters[i]) is
 * resolved once and reused across all 2N spokes, which evaluate in a
 * single evaluateBatch() call instead of 2N closure invocations.
 * Where the plan computes what the closure computed, the entries are
 * bit-identical to the closure overload (kept as the test oracle).
 * Fatal when the plan's input count differs from the parameter count.
 */
std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const core::EvalPlan &plan);

} // namespace act::dse

#endif // ACT_DSE_SENSITIVITY_H
