/**
 * @file
 * Constrained selection primitives for the case studies:
 *  - QoS-driven design (Fig. 13 left): minimize embodied carbon subject
 *    to a minimum throughput,
 *  - resource-budget design (Fig. 13 right): minimize carbon subject to
 *    a maximum area,
 * plus sweep-range generators for the bench harness.
 */

#ifndef ACT_DSE_OPTIMIZE_H
#define ACT_DSE_OPTIMIZE_H

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace act::dse {

/**
 * Index minimizing @p objective among points whose @p constraint is at
 * least @p minimum; nullopt when no point qualifies. Spans must be
 * equally sized (fatal otherwise).
 */
std::optional<std::size_t>
minimizeSubjectToAtLeast(std::span<const double> objective,
                         std::span<const double> constraint,
                         double minimum);

/** As above but with the constraint bounded from above. */
std::optional<std::size_t>
minimizeSubjectToAtMost(std::span<const double> objective,
                        std::span<const double> constraint,
                        double maximum);

/** Unconstrained argmin / argmax helpers over the same span type. */
std::size_t minimizeIndex(std::span<const double> objective);
std::size_t maximizeIndex(std::span<const double> objective);

/** @p steps evenly spaced values from @p lo to @p hi inclusive. */
std::vector<double> linearRange(double lo, double hi, std::size_t steps);

/** @p steps log-evenly spaced values from @p lo to @p hi inclusive. */
std::vector<double> geometricRange(double lo, double hi,
                                   std::size_t steps);

/** Powers of two from @p lo to @p hi inclusive (both powers of two). */
std::vector<int> powersOfTwo(int lo, int hi);

} // namespace act::dse

#endif // ACT_DSE_OPTIMIZE_H
