/**
 * @file
 * Monte Carlo uncertainty propagation, complementing the tornado
 * analysis in sensitivity.h: sample the model inputs jointly from
 * per-parameter distributions and summarize the output distribution
 * (mean, standard deviation, percentiles).
 */

#ifndef ACT_DSE_MONTECARLO_H
#define ACT_DSE_MONTECARLO_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/parallel.h"
#include "util/random.h"

namespace act::dse {

/** Supported input distributions. */
enum class Distribution
{
    /** Uniform over [low, high]. */
    Uniform,
    /** Triangular over [low, high] with the mode at baseline. */
    Triangular,
};

/** One uncertain model input. */
struct UncertainParameter
{
    std::string name;
    Distribution distribution = Distribution::Uniform;
    double baseline = 0.0;
    double low = 0.0;
    double high = 0.0;
};

/** Output distribution summary. */
struct MonteCarloResult
{
    std::size_t samples = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double p5 = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Samples per independent RNG stream: the sweep is split into fixed
 * chunks of this many samples, and chunk c draws from the stream
 * seeded util::deriveSeed(seed, c). Chunk layout depends only on the
 * sample count, so the sampled distribution -- and every statistic
 * below -- is bit-identical for any thread count.
 */
inline constexpr std::size_t kMonteCarloChunk = 2048;

/**
 * One chunk's contribution: the raw outputs in sampling order plus
 * running sums. Partials merge in chunk order (mergePartial) and
 * serialize through sweep/domains.h for multi-process sharding.
 */
struct MonteCarloPartial
{
    std::vector<double> outputs;
    double sum = 0.0;
    double sum_squares = 0.0;
};

/** Fatal on an empty parameter list, < 100 samples, or bad ranges. */
void validateMonteCarloInputs(
    const std::vector<UncertainParameter> &parameters,
    std::size_t samples);

/**
 * Evaluate one chunk of the sweep: draw each sample's parameter
 * vector from @p rng (the chunk's derived stream) and run @p model.
 * Pure given (parameters, model, range, rng state) -- the shared
 * kernel of the in-process and sharded execution paths.
 */
MonteCarloPartial
monteCarloChunk(const std::vector<UncertainParameter> &parameters,
                const std::function<double(const std::vector<double> &)>
                    &model,
                util::IndexRange range, util::Xorshift64Star &rng);

/** Fold @p part into @p accumulator (chunk order required). */
MonteCarloPartial mergePartial(MonteCarloPartial accumulator,
                               MonteCarloPartial part);

/** Summarize the merged outputs of all chunks of a @p samples sweep. */
MonteCarloResult finalizeMonteCarlo(std::size_t samples,
                                    MonteCarloPartial merged);

/**
 * Run @p samples joint evaluations of @p model, sampling each input
 * from its distribution. Chunks execute on the util/parallel.h pool
 * (honoring ACT_THREADS / util::setThreadCount), and @p model must be
 * thread-safe. Deterministic for a fixed seed and independent of the
 * thread count via per-chunk derived RNG streams with ordered
 * reduction. Fatal on an empty parameter list, fewer than 100 samples,
 * or inverted ranges.
 */
MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples = 10'000, std::uint64_t seed = 42);

} // namespace act::dse

#endif // ACT_DSE_MONTECARLO_H
