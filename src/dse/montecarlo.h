/**
 * @file
 * Monte Carlo uncertainty propagation, complementing the tornado
 * analysis in sensitivity.h: sample the model inputs jointly from
 * per-parameter distributions and summarize the output distribution
 * (mean, standard deviation, percentiles).
 */

#ifndef ACT_DSE_MONTECARLO_H
#define ACT_DSE_MONTECARLO_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/eval_plan.h"
#include "util/parallel.h"
#include "util/random.h"

namespace act::dse {

/** Supported input distributions. */
enum class Distribution
{
    /** Uniform over [low, high]. */
    Uniform,
    /** Triangular over [low, high] with the mode at baseline. */
    Triangular,
};

/** One uncertain model input. */
struct UncertainParameter
{
    std::string name;
    Distribution distribution = Distribution::Uniform;
    double baseline = 0.0;
    double low = 0.0;
    double high = 0.0;
};

/** Output distribution summary. */
struct MonteCarloResult
{
    std::size_t samples = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double p5 = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/**
 * Samples per independent RNG stream: the sweep is split into fixed
 * chunks of this many samples, and chunk c draws from the stream
 * seeded util::deriveSeed(seed, c). Chunk layout depends only on the
 * sample count, so the sampled distribution -- and every statistic
 * below -- is bit-identical for any thread count.
 */
inline constexpr std::size_t kMonteCarloChunk = 2048;

/**
 * One chunk's contribution: the raw outputs in sampling order plus
 * running sums. Partials merge in chunk order (mergePartial) and
 * serialize through sweep/domains.h for multi-process sharding.
 */
struct MonteCarloPartial
{
    std::vector<double> outputs;
    double sum = 0.0;
    double sum_squares = 0.0;
};

/** Fatal on an empty parameter list, < 100 samples, or bad ranges. */
void validateMonteCarloInputs(
    const std::vector<UncertainParameter> &parameters,
    std::size_t samples);

/**
 * Evaluate one chunk of the sweep: draw each sample's parameter
 * vector from @p rng (the chunk's derived stream) and run @p model.
 * Pure given (parameters, model, range, rng state) -- the shared
 * kernel of the in-process and sharded execution paths.
 */
MonteCarloPartial
monteCarloChunk(const std::vector<UncertainParameter> &parameters,
                const std::function<double(const std::vector<double> &)>
                    &model,
                util::IndexRange range, util::Xorshift64Star &rng);

/** Fold @p part into @p accumulator (chunk order required). */
MonteCarloPartial mergePartial(MonteCarloPartial accumulator,
                               MonteCarloPartial part);

/** Summarize the merged outputs of all chunks of a @p samples sweep. */
MonteCarloResult finalizeMonteCarlo(std::size_t samples,
                                    MonteCarloPartial merged);

/**
 * Run @p samples joint evaluations of @p model, sampling each input
 * from its distribution. Chunks execute on the util/parallel.h pool
 * (honoring ACT_THREADS / util::setThreadCount), and @p model must be
 * thread-safe. Deterministic for a fixed seed and independent of the
 * thread count via per-chunk derived RNG streams with ordered
 * reduction. Fatal on an empty parameter list, fewer than 100 samples,
 * or inverted ranges.
 */
MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples = 10'000, std::uint64_t seed = 42);

/**
 * Batched model kernel: fill outputs[0, n) from n samples laid out as
 * structure-of-arrays columns (inputs[i][s] is parameter i's value for
 * sample s). One invocation replaces n scalar closure calls.
 */
using BatchModel = std::function<void(
    std::size_t n, const double *const *inputs, double *outputs)>;

/** Adapt a compiled plan (core/eval_plan.h) into a batch kernel. The
 *  plan is captured by value -- it is a few dozen bytes of POD. */
BatchModel batchModel(core::EvalPlan plan);

/**
 * Reusable structure-of-arrays scratch for batched chunks: one
 * contiguous column per parameter, grown once and reused, so
 * steady-state chunk evaluation's only allocation is the output
 * vector it hands back. Typically held thread_local by chunk
 * evaluators.
 */
class MonteCarloScratch
{
  public:
    /** Size for @p parameters columns of @p samples each. */
    void prepare(std::size_t parameters, std::size_t samples);

    /** Column i (valid after prepare()). */
    double *
    column(std::size_t i)
    {
        return values_.data() + i * samples_;
    }

    /** The SoA column-pointer table, as evaluateBatch() expects. */
    const double *const *
    columns() const
    {
        return columns_.data();
    }

    /** A reusable buffer of at least @p n doubles for the raw RNG
     *  unit stream (grown monotonically, like the columns). */
    double *
    unitScratch(std::size_t n)
    {
        if (units_.size() < n)
            units_.resize(n);
        return units_.data();
    }

  private:
    std::size_t samples_ = 0;
    std::vector<double> values_;
    std::vector<double> units_;
    std::vector<const double *> columns_;
};

/**
 * Batched counterpart of monteCarloChunk(): draws the chunk's samples
 * into @p scratch in the *same RNG consumption order* as the scalar
 * path (sample-major: all of sample s's parameters before sample
 * s+1's), then invokes @p model once. For any model where the batch
 * kernel computes what the scalar closure computes, the returned
 * partial is bit-identical to monteCarloChunk()'s.
 */
MonteCarloPartial
monteCarloBatchChunk(const std::vector<UncertainParameter> &parameters,
                     const BatchModel &model, util::IndexRange range,
                     util::Xorshift64Star &rng,
                     MonteCarloScratch &scratch);

/**
 * Fused chunk kernel for compiled plans: samples sub-blocks of the
 * chunk directly into SoA columns (multi-lane RNG fill + vectorized
 * inverse-CDF transforms) and evaluates each sub-block with
 * EvalPlan::evaluateBatch while the columns are still in L1, instead
 * of materializing the whole chunk and re-reading it. RNG consumption
 * order, sampled values, and outputs are bit-identical to
 * monteCarloChunk() / monteCarloBatchChunk() at every SIMD dispatch
 * level. The sweep domains route through this; it is the hottest loop
 * in the tree.
 */
MonteCarloPartial
monteCarloPlanChunk(const std::vector<UncertainParameter> &parameters,
                    const core::EvalPlan &plan, util::IndexRange range,
                    util::Xorshift64Star &rng,
                    MonteCarloScratch &scratch);

/**
 * monteCarlo() over a batch kernel: same chunk layout, same per-chunk
 * derived RNG streams, same ordered reduction -- results are
 * bit-identical to the scalar path for any thread or shard count --
 * but each chunk costs one kernel call instead of kMonteCarloChunk
 * std::function invocations and vector refills.
 */
MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const BatchModel &model, std::size_t samples = 10'000,
                std::uint64_t seed = 42);

/** Convenience overload: run the sweep against a compiled plan whose
 *  bindings line up with @p parameters (fatal on a count mismatch). */
MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const core::EvalPlan &plan,
                std::size_t samples = 10'000, std::uint64_t seed = 42);

} // namespace act::dse

#endif // ACT_DSE_MONTECARLO_H
