/**
 * @file
 * Pareto-frontier extraction for two- and three-objective design-space
 * exploration (all objectives minimized). Used by the case studies to
 * show which hardware configurations are jointly optimal in, e.g.,
 * (delay, embodied carbon) space.
 */

#ifndef ACT_DSE_PARETO_H
#define ACT_DSE_PARETO_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace act::dse {

/** A named point in a two-objective (minimize, minimize) space. */
struct Point2D
{
    std::string name;
    double x = 0.0;
    double y = 0.0;
};

/** A named point in a three-objective space. */
struct Point3D
{
    std::string name;
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
};

/** True when @p a dominates @p b (<= everywhere, < somewhere). */
bool dominates(const Point2D &a, const Point2D &b);
bool dominates(const Point3D &a, const Point3D &b);

/**
 * Indices of the non-dominated points, sorted by ascending x.
 * Duplicate points are all kept (none dominates the other).
 */
std::vector<std::size_t> paretoFrontier(std::span<const Point2D> points);
std::vector<std::size_t> paretoFrontier(std::span<const Point3D> points);

} // namespace act::dse

#endif // ACT_DSE_PARETO_H
