#include "dse/pareto.h"

#include <algorithm>

namespace act::dse {

bool
dominates(const Point2D &a, const Point2D &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

bool
dominates(const Point3D &a, const Point3D &b)
{
    return a.x <= b.x && a.y <= b.y && a.z <= b.z &&
           (a.x < b.x || a.y < b.y || a.z < b.z);
}

namespace {

template <typename PointT>
std::vector<std::size_t>
frontierImpl(std::span<const PointT> points)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < points.size(); ++j) {
            if (i != j && dominates(points[j], points[i])) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&points](std::size_t a, std::size_t b) {
                  return points[a].x < points[b].x;
              });
    return frontier;
}

} // namespace

std::vector<std::size_t>
paretoFrontier(std::span<const Point2D> points)
{
    return frontierImpl(points);
}

std::vector<std::size_t>
paretoFrontier(std::span<const Point3D> points)
{
    return frontierImpl(points);
}

} // namespace act::dse
