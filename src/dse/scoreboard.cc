#include "dse/scoreboard.h"

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/trace.h"

namespace act::dse {

Scoreboard::Scoreboard(std::vector<core::DesignPoint> designs,
                       std::size_t baseline_index)
    : designs_(std::move(designs))
{
    TRACE_SPAN("dse.scoreboard", "build");
    if (designs_.empty())
        util::fatal("Scoreboard over an empty design space");
    if (baseline_index >= designs_.size())
        util::fatal("Scoreboard baseline index out of range");

    // Metric columns are independent of each other; the sweep engine
    // fills pre-sized slots so column order stays Table 2 order.
    const auto metrics = core::allMetrics();
    columns_ = sweep::runSweepMap<MetricColumn>(
        sweep::SweepPlan::map("dse.scoreboard", metrics.size()),
        [&](std::size_t m) {
            const core::Metric metric = metrics[m];
            MetricColumn column;
            column.metric = metric;
            column.values.reserve(designs_.size());
            for (const auto &design : designs_) {
                column.values.push_back(
                    core::evaluateMetric(metric, design));
            }
            column.normalized = core::normalizedMetric(
                metric, designs_, baseline_index);
            column.best_index = core::bestDesign(metric, designs_);
            return column;
        });
}

const MetricColumn &
Scoreboard::column(core::Metric metric) const
{
    for (const auto &column : columns_) {
        if (column.metric == metric)
            return column;
    }
    util::panic("Scoreboard missing a metric column");
}

const std::string &
Scoreboard::winner(core::Metric metric) const
{
    return designs_[column(metric).best_index].name;
}

} // namespace act::dse
