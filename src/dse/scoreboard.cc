#include "dse/scoreboard.h"

#include "util/logging.h"

namespace act::dse {

Scoreboard::Scoreboard(std::vector<core::DesignPoint> designs,
                       std::size_t baseline_index)
    : designs_(std::move(designs))
{
    if (designs_.empty())
        util::fatal("Scoreboard over an empty design space");
    if (baseline_index >= designs_.size())
        util::fatal("Scoreboard baseline index out of range");

    for (core::Metric metric : core::allMetrics()) {
        MetricColumn column;
        column.metric = metric;
        column.values.reserve(designs_.size());
        for (const auto &design : designs_)
            column.values.push_back(core::evaluateMetric(metric, design));
        column.normalized =
            core::normalizedMetric(metric, designs_, baseline_index);
        column.best_index = core::bestDesign(metric, designs_);
        columns_.push_back(std::move(column));
    }
}

const MetricColumn &
Scoreboard::column(core::Metric metric) const
{
    for (const auto &column : columns_) {
        if (column.metric == metric)
            return column;
    }
    util::panic("Scoreboard missing a metric column");
}

const std::string &
Scoreboard::winner(core::Metric metric) const
{
    return designs_[column(metric).best_index].name;
}

} // namespace act::dse
