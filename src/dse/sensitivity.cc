#include "dse/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace act::dse {

double
TornadoEntry::swing() const
{
    return std::fabs(output_high - output_low);
}

std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const std::function<double(const std::vector<double> &)> &model)
{
    if (parameters.empty())
        util::fatal("tornado() needs at least one parameter");

    std::vector<double> baseline;
    baseline.reserve(parameters.size());
    for (const auto &parameter : parameters)
        baseline.push_back(parameter.baseline);

    std::vector<TornadoEntry> entries;
    entries.reserve(parameters.size());
    for (std::size_t i = 0; i < parameters.size(); ++i) {
        std::vector<double> values = baseline;
        TornadoEntry entry;
        entry.name = parameters[i].name;
        values[i] = parameters[i].low;
        entry.output_low = model(values);
        values[i] = parameters[i].high;
        entry.output_high = model(values);
        entries.push_back(std::move(entry));
    }

    std::sort(entries.begin(), entries.end(),
              [](const TornadoEntry &a, const TornadoEntry &b) {
                  return a.swing() > b.swing();
              });
    return entries;
}

} // namespace act::dse
