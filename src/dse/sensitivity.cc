#include "dse/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_tornado_evals =
    util::MetricsRegistry::instance().counter("dse.tornado.evals");

} // namespace

double
TornadoEntry::swing() const
{
    return std::fabs(output_high - output_low);
}

std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const std::function<double(const std::vector<double> &)> &model)
{
    TRACE_SPAN("dse.tornado", "tornado");
    if (parameters.empty())
        util::fatal("tornado() needs at least one parameter");
    g_tornado_evals.add(2 * parameters.size());

    std::vector<double> baseline;
    baseline.reserve(parameters.size());
    for (const auto &parameter : parameters)
        baseline.push_back(parameter.baseline);

    // Each parameter's low/high pair is independent; the sweep engine
    // fills pre-sized slots (choosing the chunk granularity itself),
    // then we rank. The pre-sort order is the parameter order
    // regardless of thread count, so ties rank identically in serial
    // and parallel runs.
    std::vector<TornadoEntry> entries =
        sweep::runSweepMap<TornadoEntry>(
            sweep::SweepPlan::map("dse.tornado", parameters.size()),
            [&](std::size_t i) {
                std::vector<double> values = baseline;
                TornadoEntry entry;
                entry.name = parameters[i].name;
                values[i] = parameters[i].low;
                entry.output_low = model(values);
                values[i] = parameters[i].high;
                entry.output_high = model(values);
                return entry;
            });

    std::stable_sort(entries.begin(), entries.end(),
                     [](const TornadoEntry &a, const TornadoEntry &b) {
                         return a.swing() > b.swing();
                     });
    return entries;
}

} // namespace act::dse
