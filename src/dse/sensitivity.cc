#include "dse/sensitivity.h"

#include <algorithm>
#include <cmath>

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_tornado_evals =
    util::MetricsRegistry::instance().counter("dse.tornado.evals");

} // namespace

double
TornadoEntry::swing() const
{
    return std::fabs(output_high - output_low);
}

std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const std::function<double(const std::vector<double> &)> &model)
{
    TRACE_SPAN("dse.tornado", "tornado");
    if (parameters.empty())
        util::fatal("tornado() needs at least one parameter");
    g_tornado_evals.add(2 * parameters.size());

    std::vector<double> baseline;
    baseline.reserve(parameters.size());
    for (const auto &parameter : parameters)
        baseline.push_back(parameter.baseline);

    // Each parameter's low/high pair is independent; the sweep engine
    // fills pre-sized slots (choosing the chunk granularity itself),
    // then we rank. The pre-sort order is the parameter order
    // regardless of thread count, so ties rank identically in serial
    // and parallel runs.
    std::vector<TornadoEntry> entries =
        sweep::runSweepMap<TornadoEntry>(
            sweep::SweepPlan::map("dse.tornado", parameters.size()),
            [&](std::size_t i) {
                std::vector<double> values = baseline;
                TornadoEntry entry;
                entry.name = parameters[i].name;
                values[i] = parameters[i].low;
                entry.output_low = model(values);
                values[i] = parameters[i].high;
                entry.output_high = model(values);
                return entry;
            });

    std::stable_sort(entries.begin(), entries.end(),
                     [](const TornadoEntry &a, const TornadoEntry &b) {
                         return a.swing() > b.swing();
                     });
    return entries;
}

std::vector<TornadoEntry>
tornado(const std::vector<ParameterRange> &parameters,
        const core::EvalPlan &plan)
{
    TRACE_SPAN("dse.tornado", "tornado_plan");
    if (parameters.empty())
        util::fatal("tornado() needs at least one parameter");
    if (plan.inputCount() != parameters.size()) {
        util::fatal("compiled plan binds ", plan.inputCount(),
                    " inputs but the tornado has ", parameters.size(),
                    " parameters");
    }
    g_tornado_evals.add(2 * parameters.size());

    // All 2N spokes as one SoA batch: column i is parameter i's
    // baseline replicated, perturbed only at its own two spokes
    // (2i = low, 2i + 1 = high). One kernel call evaluates the lot.
    const std::size_t width = parameters.size();
    const std::size_t spokes = 2 * width;
    std::vector<double> storage(width * spokes);
    std::vector<const double *> columns(width);
    for (std::size_t i = 0; i < width; ++i) {
        double *column = storage.data() + i * spokes;
        std::fill(column, column + spokes, parameters[i].baseline);
        column[2 * i] = parameters[i].low;
        column[2 * i + 1] = parameters[i].high;
        columns[i] = column;
    }
    std::vector<double> outputs(spokes);
    plan.evaluateBatch(spokes, columns.data(), outputs.data());

    std::vector<TornadoEntry> entries(width);
    for (std::size_t i = 0; i < width; ++i) {
        entries[i].name = parameters[i].name;
        entries[i].output_low = outputs[2 * i];
        entries[i].output_high = outputs[2 * i + 1];
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const TornadoEntry &a, const TornadoEntry &b) {
                         return a.swing() > b.swing();
                     });
    return entries;
}

} // namespace act::dse
