/**
 * @file
 * A metric scoreboard over a design space: for every Table 2 metric it
 * records each design's value, the normalized series (Fig. 8(d) style),
 * and the winning design. Shared by the Fig. 8, Fig. 9, and Fig. 12
 * harnesses.
 */

#ifndef ACT_DSE_SCOREBOARD_H
#define ACT_DSE_SCOREBOARD_H

#include <span>
#include <string>
#include <vector>

#include "core/metrics.h"

namespace act::dse {

/** Results for one metric over the whole design space. */
struct MetricColumn
{
    core::Metric metric;
    /** Raw metric value per design (paper's order of designs). */
    std::vector<double> values;
    /** Values normalized to the chosen baseline design. */
    std::vector<double> normalized;
    /** Index of the winning (minimum) design. */
    std::size_t best_index = 0;
};

/** Scoreboard over a fixed design space. */
class Scoreboard
{
  public:
    /**
     * @param designs the design space (copied).
     * @param baseline_index design each metric column is normalized to.
     */
    Scoreboard(std::vector<core::DesignPoint> designs,
               std::size_t baseline_index = 0);

    std::span<const core::DesignPoint> designs() const
    { return designs_; }

    /** Column for @p metric (computed at construction). */
    const MetricColumn &column(core::Metric metric) const;

    /** Name of the design winning @p metric. */
    const std::string &winner(core::Metric metric) const;

    /** All columns, in Table 2 metric order. */
    std::span<const MetricColumn> columns() const { return columns_; }

  private:
    std::vector<core::DesignPoint> designs_;
    std::vector<MetricColumn> columns_;
};

} // namespace act::dse

#endif // ACT_DSE_SCOREBOARD_H
