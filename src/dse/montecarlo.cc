#include "dse/montecarlo.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_runs =
    util::MetricsRegistry::instance().counter("dse.montecarlo.runs");
util::Counter &g_samples = util::MetricsRegistry::instance().counter(
    "dse.montecarlo.samples");

double
sampleParameter(const UncertainParameter &parameter,
                util::Xorshift64Star &rng)
{
    switch (parameter.distribution) {
      case Distribution::Uniform:
        return rng.nextUniform(parameter.low, parameter.high);
      case Distribution::Triangular: {
        // Inverse-CDF sampling for a triangular distribution with
        // mode c in [a, b].
        const double a = parameter.low;
        const double b = parameter.high;
        const double c = parameter.baseline;
        const double u = rng.nextUnit();
        const double pivot = (c - a) / (b - a);
        if (u < pivot)
            return a + std::sqrt(u * (b - a) * (c - a));
        return b - std::sqrt((1.0 - u) * (b - a) * (b - c));
      }
    }
    util::panic("unknown Distribution enumerator");
}

} // namespace

void
validateMonteCarloInputs(
    const std::vector<UncertainParameter> &parameters,
    std::size_t samples)
{
    if (parameters.empty())
        util::fatal("monteCarlo() needs at least one parameter");
    if (samples < 100)
        util::fatal("monteCarlo() needs at least 100 samples");
    for (const auto &parameter : parameters) {
        if (!(parameter.low <= parameter.baseline &&
              parameter.baseline <= parameter.high)) {
            util::fatal("parameter '", parameter.name,
                        "' needs low <= baseline <= high");
        }
        if (parameter.low >= parameter.high)
            util::fatal("parameter '", parameter.name,
                        "' has an empty range");
    }
}

MonteCarloPartial
monteCarloChunk(const std::vector<UncertainParameter> &parameters,
                const std::function<double(const std::vector<double> &)>
                    &model,
                util::IndexRange range, util::Xorshift64Star &rng)
{
    std::vector<double> values(parameters.size());
    MonteCarloPartial partial;
    partial.outputs.reserve(range.size());
    for (std::size_t s = range.begin; s < range.end; ++s) {
        for (std::size_t i = 0; i < parameters.size(); ++i)
            values[i] = sampleParameter(parameters[i], rng);
        const double output = model(values);
        partial.outputs.push_back(output);
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloPartial
mergePartial(MonteCarloPartial accumulator, MonteCarloPartial part)
{
    accumulator.outputs.insert(accumulator.outputs.end(),
                               part.outputs.begin(),
                               part.outputs.end());
    accumulator.sum += part.sum;
    accumulator.sum_squares += part.sum_squares;
    return accumulator;
}

MonteCarloResult
finalizeMonteCarlo(std::size_t samples, MonteCarloPartial merged)
{
    TRACE_SPAN("dse.montecarlo", "finalize");
    if (merged.outputs.size() != samples) {
        util::panic("Monte Carlo merge produced ",
                    merged.outputs.size(), " outputs for a ", samples,
                    "-sample sweep");
    }
    std::vector<double> outputs = std::move(merged.outputs);
    std::sort(outputs.begin(), outputs.end());
    const auto percentile = [&outputs](double p) {
        const double index =
            p * static_cast<double>(outputs.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(index);
        const std::size_t hi =
            std::min(lo + 1, outputs.size() - 1);
        const double t = index - static_cast<double>(lo);
        return outputs[lo] * (1.0 - t) + outputs[hi] * t;
    };

    MonteCarloResult result;
    result.samples = samples;
    result.mean = merged.sum / static_cast<double>(samples);
    const double variance =
        merged.sum_squares / static_cast<double>(samples) -
        result.mean * result.mean;
    result.stddev = std::sqrt(std::max(0.0, variance));
    result.p5 = percentile(0.05);
    result.p50 = percentile(0.50);
    result.p95 = percentile(0.95);
    result.min = outputs.front();
    result.max = outputs.back();
    return result;
}

MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples, std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarlo");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // The sweep engine owns chunking, per-chunk derived RNG streams,
    // and ordered reduction; the fixed grain keeps the chunk layout
    // (and therefore every statistic) thread-count independent.
    sweep::SweepPlan plan;
    plan.domain = "dse.montecarlo";
    plan.items = samples;
    plan.grain = kMonteCarloChunk;
    plan.seed = seed;
    MonteCarloPartial merged = sweep::runSweep(
        plan,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            return monteCarloChunk(parameters, model, range, rng);
        },
        [](MonteCarloPartial accumulator, MonteCarloPartial part) {
            return mergePartial(std::move(accumulator),
                                std::move(part));
        },
        MonteCarloPartial{});
    return finalizeMonteCarlo(samples, std::move(merged));
}

} // namespace act::dse
