#include "dse/montecarlo.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <utility>

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/simd_kernels.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_runs =
    util::MetricsRegistry::instance().counter("dse.montecarlo.runs");
util::Counter &g_samples = util::MetricsRegistry::instance().counter(
    "dse.montecarlo.samples");

double
sampleParameter(const UncertainParameter &parameter,
                util::Xorshift64Star &rng)
{
    switch (parameter.distribution) {
      case Distribution::Uniform:
        return rng.nextUniform(parameter.low, parameter.high);
      case Distribution::Triangular: {
        // Inverse-CDF sampling for a triangular distribution with
        // mode c in [a, b].
        const double a = parameter.low;
        const double b = parameter.high;
        const double c = parameter.baseline;
        const double u = rng.nextUnit();
        const double pivot = (c - a) / (b - a);
        if (u < pivot)
            return a + std::sqrt(u * (b - a) * (c - a));
        return b - std::sqrt((1.0 - u) * (b - a) * (b - c));
      }
    }
    util::panic("unknown Distribution enumerator");
}

/**
 * Per-parameter sampling constants hoisted out of the chunk loop and
 * lowered to the util/simd transform descriptors. The precomputed
 * differences keep the scalar path's exact expression shapes:
 * `u * ba * ca` associates as `(u * ba) * ca`, matching
 * `u * (b - a) * (c - a)` above, so every transformed value is
 * bit-identical to sampleParameter() on the same unit draw -- at
 * every SIMD dispatch level (the kernels are tested bitwise against
 * the scalar reference).
 */
struct ColumnSampler
{
    Distribution distribution = Distribution::Uniform;
    util::simd::UniformTransform uniform;
    util::simd::TriangularTransform triangular;

    ColumnSampler() = default;
    explicit ColumnSampler(const UncertainParameter &parameter)
        : distribution(parameter.distribution)
    {
        if (distribution == Distribution::Uniform) {
            uniform.a = parameter.low;
            uniform.ba = parameter.high - parameter.low;
            return;
        }
        triangular.a = parameter.low;
        triangular.b = parameter.high;
        triangular.ba = parameter.high - parameter.low;
        triangular.ca = parameter.baseline - parameter.low;
        triangular.bc = parameter.high - parameter.baseline;
        triangular.pivot = (parameter.baseline - parameter.low) /
                           (parameter.high - parameter.low);
    }

    /** Transform n unit draws (at @p stride doubles per sample) into
     *  the parameter's distribution. */
    void
    apply(const util::simd::KernelTable &kernels, const double *units,
          std::size_t stride, std::size_t n, double *out) const
    {
        if (distribution == Distribution::Uniform)
            kernels.transform_uniform(units, stride, n, uniform, out);
        else
            kernels.transform_triangular(units, stride, n, triangular,
                                         out);
    }
};

/** The compiled samplers of a sweep, on the stack for the usual
 *  handful of Eq. 5 inputs. */
class SamplerSet
{
  public:
    explicit SamplerSet(
        const std::vector<UncertainParameter> &parameters)
        : samplers_(stack_.data())
    {
        if (parameters.size() > stack_.size()) {
            heap_.resize(parameters.size());
            samplers_ = heap_.data();
        }
        for (std::size_t i = 0; i < parameters.size(); ++i)
            samplers_[i] = ColumnSampler(parameters[i]);
    }

    const ColumnSampler &
    operator[](std::size_t i) const
    {
        return samplers_[i];
    }

  private:
    std::array<ColumnSampler, 8> stack_;
    std::vector<ColumnSampler> heap_;
    ColumnSampler *samplers_;
};

/**
 * Samples per fused sub-block: small enough that the unit buffer, the
 * SoA columns, and the output slice of a typical-width sweep all stay
 * L1-resident between the fill, transform, and evaluate passes.
 */
constexpr std::size_t kFusedBlockSamples = 512;

constexpr std::uint64_t kSignBit = 0x8000000000000000ULL;

/**
 * Map a finite double to a uint64 whose unsigned order is the value
 * order (sign-magnitude to biased): positives set the sign bit,
 * negatives complement. The only refinement over operator< is that
 * -0.0 orders strictly before +0.0 (operator< calls them equal), so
 * for any multiset without a mixed-zero tie at a selected rank, the
 * k-th key is the k-th order statistic's exact bits.
 */
inline std::uint64_t
orderedKey(double value)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return (bits & kSignBit) ? ~bits : (bits | kSignBit);
}

/** Inverse of orderedKey(). */
inline double
orderedValue(std::uint64_t key)
{
    const std::uint64_t bits =
        (key & kSignBit) ? (key ^ kSignBit) : ~key;
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

constexpr int kRadixBits = 11;
constexpr std::size_t kRadixBuckets = std::size_t{1} << kRadixBits;
/** Buckets at or below this size are sorted outright. */
constexpr std::size_t kRadixSortThreshold = 2048;
/** finalizeMonteCarlo() asks for min, max, and three lo/hi rank
 *  pairs; resolveRanks() sizes its per-level scratch for that. */
constexpr std::size_t kMaxOrderStats = 8;

struct OrderStatQuery
{
    std::size_t rank; ///< in: global rank; rewritten while recursing
    double value;     ///< out: the rank-th smallest value
};

/**
 * Answer every query's order statistic over @p keys. MSD radix
 * bucketing, kRadixBits per level: histogram the current digit,
 * localize each rank into its bucket, gather only the buckets a
 * query landed in (one pass for all of them), recurse. Buckets that
 * go below the threshold are sorted outright. Heavily duplicated
 * inputs collapse into one bucket per level, which recurses in place
 * without copying; after the digit at shift 0 all keys in a bucket
 * are identical, so the shift < 0 base case is a plain index.
 *
 * Queries must be sorted by rank, with every rank < keys.size().
 * Destroys @p keys. Linear work per level, at most six levels, and
 * in practice (spread data, few queries) ~2 passes over the input --
 * against ~6 partitioning passes for successive std::nth_element
 * calls on the same ranks. The caller may pass the first level's
 * digit histogram (counted while building the keys) to skip one
 * full pass.
 */
void
resolveRanks(std::vector<std::uint64_t> &keys, OrderStatQuery *queries,
             std::size_t query_count, int shift,
             const std::uint32_t *precomputed_counts = nullptr)
{
    while (true) {
        if (query_count == 0)
            return;
        if (keys.size() <= kRadixSortThreshold || shift < 0) {
            std::sort(keys.begin(), keys.end());
            for (std::size_t i = 0; i < query_count; ++i)
                queries[i].value = orderedValue(keys[queries[i].rank]);
            return;
        }
        const std::size_t mask = kRadixBuckets - 1;
        std::uint32_t local_counts[kRadixBuckets];
        const std::uint32_t *counts = precomputed_counts;
        if (counts == nullptr) {
            std::memset(local_counts, 0, sizeof(local_counts));
            for (const std::uint64_t key : keys)
                ++local_counts[(key >> shift) & mask];
            counts = local_counts;
        }
        precomputed_counts = nullptr;
        const int next_shift =
            (shift == 0) ? -1
                         : (shift > kRadixBits ? shift - kRadixBits : 0);

        // Localize each query into its bucket, in one rank-ordered
        // walk across the histogram.
        struct Group
        {
            std::size_t bucket;
            OrderStatQuery *queries;
            std::size_t count;
        };
        Group groups[kMaxOrderStats];
        std::size_t group_count = 0;
        std::size_t cumulative = 0;
        std::size_t qi = 0;
        for (std::size_t b = 0; b < kRadixBuckets && qi < query_count;
             ++b) {
            const std::size_t size = counts[b];
            if (size == 0)
                continue;
            const std::size_t begin = qi;
            while (qi < query_count &&
                   queries[qi].rank < cumulative + size) {
                queries[qi].rank -= cumulative;
                ++qi;
            }
            if (qi > begin)
                groups[group_count++] = {b, queries + begin,
                                         qi - begin};
            cumulative += size;
        }

        if (group_count == 1 &&
            counts[groups[0].bucket] == keys.size()) {
            // Every key shares this digit: refine in place.
            queries = groups[0].queries;
            query_count = groups[0].count;
            shift = next_shift;
            continue;
        }

        // One gather pass for all buckets any query needs.
        std::int16_t bucket_group[kRadixBuckets];
        std::memset(bucket_group, -1, sizeof(bucket_group));
        std::vector<std::uint64_t> gathered[kMaxOrderStats];
        for (std::size_t g = 0; g < group_count; ++g) {
            bucket_group[groups[g].bucket] =
                static_cast<std::int16_t>(g);
            gathered[g].reserve(counts[groups[g].bucket]);
        }
        for (const std::uint64_t key : keys) {
            const std::int16_t g = bucket_group[(key >> shift) & mask];
            if (g >= 0)
                gathered[g].push_back(key);
        }
        for (std::size_t g = 0; g < group_count; ++g) {
            resolveRanks(gathered[g], groups[g].queries,
                         groups[g].count, next_shift);
        }
        return;
    }
}

/** The shared monteCarlo()/monteCarloBatch() sweep boilerplate: same
 *  domain, grain, and seed derivation for every execution path, so
 *  chunk layout -- and therefore every statistic -- matches across
 *  them by construction. */
template <typename ChunkFn>
MonteCarloResult
runMonteCarloSweep(std::size_t samples, std::uint64_t seed,
                   ChunkFn &&chunk)
{
    sweep::SweepPlan plan;
    plan.domain = "dse.montecarlo";
    plan.items = samples;
    plan.grain = kMonteCarloChunk;
    plan.seed = seed;
    MonteCarloPartial init;
    init.outputs.reserve(samples);
    MonteCarloPartial merged = sweep::runSweep(
        plan, std::forward<ChunkFn>(chunk),
        [](MonteCarloPartial accumulator, MonteCarloPartial part) {
            return mergePartial(std::move(accumulator),
                                std::move(part));
        },
        std::move(init));
    return finalizeMonteCarlo(samples, std::move(merged));
}

} // namespace

void
validateMonteCarloInputs(
    const std::vector<UncertainParameter> &parameters,
    std::size_t samples)
{
    if (parameters.empty())
        util::fatal("monteCarlo() needs at least one parameter");
    if (samples < 100)
        util::fatal("monteCarlo() needs at least 100 samples");
    for (const auto &parameter : parameters) {
        if (!(parameter.low <= parameter.baseline &&
              parameter.baseline <= parameter.high)) {
            util::fatal("parameter '", parameter.name,
                        "' needs low <= baseline <= high");
        }
        if (parameter.low >= parameter.high)
            util::fatal("parameter '", parameter.name,
                        "' has an empty range");
    }
}

MonteCarloPartial
monteCarloChunk(const std::vector<UncertainParameter> &parameters,
                const std::function<double(const std::vector<double> &)>
                    &model,
                util::IndexRange range, util::Xorshift64Star &rng)
{
    std::vector<double> values(parameters.size());
    MonteCarloPartial partial;
    partial.outputs.reserve(range.size());
    for (std::size_t s = range.begin; s < range.end; ++s) {
        for (std::size_t i = 0; i < parameters.size(); ++i)
            values[i] = sampleParameter(parameters[i], rng);
        const double output = model(values);
        partial.outputs.push_back(output);
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloPartial
mergePartial(MonteCarloPartial accumulator, MonteCarloPartial part)
{
    accumulator.outputs.insert(accumulator.outputs.end(),
                               part.outputs.begin(),
                               part.outputs.end());
    accumulator.sum += part.sum;
    accumulator.sum_squares += part.sum_squares;
    return accumulator;
}

MonteCarloResult
finalizeMonteCarlo(std::size_t samples, MonteCarloPartial merged)
{
    TRACE_SPAN("dse.montecarlo", "finalize");
    if (merged.outputs.size() != samples) {
        util::panic("Monte Carlo merge produced ",
                    merged.outputs.size(), " outputs for a ", samples,
                    "-sample sweep");
    }
    std::vector<double> outputs = std::move(merged.outputs);

    // All eight order statistics (min, max, and the three percentile
    // lo/hi pairs) come from one multi-rank radix selection over
    // order-preserving integer keys -- ~2 passes over the data where
    // successive nth_element calls cost ~6 partitioning passes. The
    // k-th key maps back to the sorted array's exact outputs[k] bits
    // (orderedKey() only refines operator< at a -0.0/+0.0 tie), and
    // the interpolation expression is unchanged, so every statistic
    // keeps its previous bits.
    struct Rank
    {
        std::size_t lo;
        std::size_t hi;
        double t;
    };
    const auto rankOf = [&outputs](double p) {
        const double index =
            p * static_cast<double>(outputs.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(index);
        const std::size_t hi = std::min(lo + 1, outputs.size() - 1);
        const double t = index - static_cast<double>(lo);
        return Rank{lo, hi, t};
    };
    const Rank ranks[3] = {rankOf(0.05), rankOf(0.50), rankOf(0.95)};

    std::vector<std::size_t> needed = {0, outputs.size() - 1};
    for (const Rank &rank : ranks) {
        needed.push_back(rank.lo);
        needed.push_back(rank.hi);
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()),
                 needed.end());

    // The key-build pass histograms the top TWO radix digits at once.
    // CPA outputs share sign and (usually) exponent, so the top digit
    // -- sign plus high exponent bits -- almost always lands in one
    // bucket; when it does, selection starts one level down with its
    // histogram already in hand, skipping a full pass over the keys.
    std::vector<std::uint64_t> keys(outputs.size());
    constexpr int kTopShift = 64 - kRadixBits;
    constexpr int kSecondShift = kTopShift - kRadixBits;
    std::uint32_t top_counts[kRadixBuckets] = {};
    std::uint32_t second_counts[kRadixBuckets] = {};
    for (std::size_t i = 0; i < outputs.size(); ++i) {
        const std::uint64_t key = orderedKey(outputs[i]);
        keys[i] = key;
        ++top_counts[key >> kTopShift];
        ++second_counts[(key >> kSecondShift) &
                        (kRadixBuckets - 1)];
    }
    const std::uint64_t first_top = keys.empty()
                                        ? 0
                                        : keys.front() >> kTopShift;
    const bool top_degenerate =
        top_counts[first_top] == keys.size();

    OrderStatQuery queries[kMaxOrderStats];
    for (std::size_t r = 0; r < needed.size(); ++r)
        queries[r] = {needed[r], 0.0};
    if (top_degenerate) {
        resolveRanks(keys, queries, needed.size(), kSecondShift,
                     second_counts);
    } else {
        resolveRanks(keys, queries, needed.size(), kTopShift,
                     top_counts);
    }

    const auto orderStat = [&](std::size_t k) {
        const auto it =
            std::lower_bound(needed.begin(), needed.end(), k);
        return queries[static_cast<std::size_t>(it - needed.begin())]
            .value;
    };
    const double min_value = orderStat(0);
    const double max_value = orderStat(outputs.size() - 1);
    const auto percentile = [&](const Rank &rank) {
        return orderStat(rank.lo) * (1.0 - rank.t) +
               orderStat(rank.hi) * rank.t;
    };

    MonteCarloResult result;
    result.samples = samples;
    result.mean = merged.sum / static_cast<double>(samples);
    const double variance =
        merged.sum_squares / static_cast<double>(samples) -
        result.mean * result.mean;
    result.stddev = std::sqrt(std::max(0.0, variance));
    result.p5 = percentile(ranks[0]);
    result.p50 = percentile(ranks[1]);
    result.p95 = percentile(ranks[2]);
    result.min = min_value;
    result.max = max_value;
    return result;
}

MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples, std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarlo");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // The sweep engine owns chunking, per-chunk derived RNG streams,
    // and ordered reduction; the fixed grain keeps the chunk layout
    // (and therefore every statistic) thread-count independent.
    return runMonteCarloSweep(
        samples, seed,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            return monteCarloChunk(parameters, model, range, rng);
        });
}

BatchModel
batchModel(core::EvalPlan plan)
{
    return [plan](std::size_t n, const double *const *inputs,
                  double *outputs) {
        plan.evaluateBatch(n, inputs, outputs);
    };
}

void
MonteCarloScratch::prepare(std::size_t parameters, std::size_t samples)
{
    samples_ = samples;
    values_.resize(parameters * samples);
    columns_.resize(parameters);
    for (std::size_t i = 0; i < parameters; ++i)
        columns_[i] = values_.data() + i * samples;
}

MonteCarloPartial
monteCarloBatchChunk(const std::vector<UncertainParameter> &parameters,
                     const BatchModel &model, util::IndexRange range,
                     util::Xorshift64Star &rng,
                     MonteCarloScratch &scratch)
{
    const std::size_t count = range.size();
    const std::size_t width = parameters.size();
    scratch.prepare(width, count);
    double *units = scratch.unitScratch(count * width);
    const SamplerSet samplers(parameters);
    const util::simd::KernelTable &kernels =
        util::simd::activeKernels();

    // Sample-major stream consumption, exactly like monteCarloChunk():
    // unit k of the fill feeds sample k / width, parameter k % width,
    // so sample s draws all its parameters before sample s+1 touches
    // the stream and the two paths consume identical RNG sequences.
    // Parameter i's units then sit at units[i + s * width], which the
    // transforms read at stride `width` while writing dense columns.
    util::XorshiftLanes lanes(rng);
    lanes.fillUnits(units, count * width);
    rng = lanes.scalar();
    for (std::size_t i = 0; i < width; ++i) {
        samplers[i].apply(kernels, units + i, width, count,
                          scratch.column(i));
    }

    // The kernel writes straight into the partial's output vector --
    // no bounce through scratch.
    MonteCarloPartial partial;
    partial.outputs.resize(count);
    model(count, scratch.columns(), partial.outputs.data());

    for (const double output : partial.outputs) {
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloPartial
monteCarloPlanChunk(const std::vector<UncertainParameter> &parameters,
                    const core::EvalPlan &plan, util::IndexRange range,
                    util::Xorshift64Star &rng,
                    MonteCarloScratch &scratch)
{
    const std::size_t count = range.size();
    const std::size_t width = parameters.size();
    // Block-sized scratch: each sub-block's units, columns, and
    // output slice stay cache-hot across the three fused passes.
    const std::size_t block =
        std::min<std::size_t>(count, kFusedBlockSamples);
    scratch.prepare(width, block);
    double *units = scratch.unitScratch(block * width);
    const SamplerSet samplers(parameters);
    const util::simd::KernelTable &kernels =
        util::simd::activeKernels();

    // Same sample-major stream consumption as monteCarloBatchChunk();
    // splitting the chunk into sub-blocks only changes *when* each
    // stream position is materialized, never which position feeds
    // which (sample, parameter) -- so outputs are bit-identical to
    // the unfused paths. evaluateBatch() runs its validation pass per
    // sub-block, which preserves first-failure semantics: validation
    // order is sample order, and a fatal() never returns.
    MonteCarloPartial partial;
    partial.outputs.resize(count);
    util::XorshiftLanes lanes(rng);
    for (std::size_t offset = 0; offset < count; offset += block) {
        const std::size_t n = std::min(block, count - offset);
        lanes.fillUnits(units, n * width);
        for (std::size_t i = 0; i < width; ++i) {
            samplers[i].apply(kernels, units + i, width, n,
                              scratch.column(i));
        }
        plan.evaluateBatch(n, scratch.columns(),
                           partial.outputs.data() + offset);
    }
    rng = lanes.scalar();

    for (const double output : partial.outputs) {
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const BatchModel &model, std::size_t samples,
                std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarloBatch");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // Identical plan to monteCarlo(): same domain, same grain, same
    // seed derivation -- only the per-chunk evaluation changes.
    return runMonteCarloSweep(
        samples, seed,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            thread_local MonteCarloScratch scratch;
            return monteCarloBatchChunk(parameters, model, range, rng,
                                        scratch);
        });
}

MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const core::EvalPlan &plan, std::size_t samples,
                std::uint64_t seed)
{
    if (plan.inputCount() != parameters.size()) {
        util::fatal("compiled plan binds ", plan.inputCount(),
                    " inputs but the sweep has ", parameters.size(),
                    " uncertain parameters");
    }
    TRACE_SPAN("dse.montecarlo", "monteCarloBatch");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // Compiled plans take the fused chunk kernel: sampling and
    // evaluation interleave per sub-block instead of materializing
    // whole-chunk columns first.
    return runMonteCarloSweep(
        samples, seed,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            thread_local MonteCarloScratch scratch;
            return monteCarloPlanChunk(parameters, plan, range, rng,
                                       scratch);
        });
}

} // namespace act::dse
