#include "dse/montecarlo.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <utility>

#include "sweep/engine.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_runs =
    util::MetricsRegistry::instance().counter("dse.montecarlo.runs");
util::Counter &g_samples = util::MetricsRegistry::instance().counter(
    "dse.montecarlo.samples");

double
sampleParameter(const UncertainParameter &parameter,
                util::Xorshift64Star &rng)
{
    switch (parameter.distribution) {
      case Distribution::Uniform:
        return rng.nextUniform(parameter.low, parameter.high);
      case Distribution::Triangular: {
        // Inverse-CDF sampling for a triangular distribution with
        // mode c in [a, b].
        const double a = parameter.low;
        const double b = parameter.high;
        const double c = parameter.baseline;
        const double u = rng.nextUnit();
        const double pivot = (c - a) / (b - a);
        if (u < pivot)
            return a + std::sqrt(u * (b - a) * (c - a));
        return b - std::sqrt((1.0 - u) * (b - a) * (b - c));
      }
    }
    util::panic("unknown Distribution enumerator");
}

/**
 * Per-parameter sampling constants hoisted out of the chunk loop. The
 * precomputed differences keep the scalar path's exact expression
 * shapes: `u * ba * ca` associates as `(u * ba) * ca`, matching
 * `u * (b - a) * (c - a)` above, so every drawn value is bit-identical
 * to sampleParameter() on the same RNG state.
 */
struct CompiledSampler
{
    Distribution distribution = Distribution::Uniform;
    double a = 0.0;
    double b = 0.0;
    double ba = 0.0;
    double ca = 0.0;
    double bc = 0.0;
    double pivot = 0.0;

    CompiledSampler() = default;
    explicit CompiledSampler(const UncertainParameter &parameter)
        : distribution(parameter.distribution), a(parameter.low),
          b(parameter.high), ba(parameter.high - parameter.low),
          ca(parameter.baseline - parameter.low),
          bc(parameter.high - parameter.baseline),
          pivot((parameter.baseline - parameter.low) /
                (parameter.high - parameter.low))
    {
    }

    double
    draw(util::Xorshift64Star &rng) const
    {
        if (distribution == Distribution::Uniform)
            return a + ba * rng.nextUnit();
        const double u = rng.nextUnit();
        if (u < pivot)
            return a + std::sqrt(u * ba * ca);
        return b - std::sqrt((1.0 - u) * ba * bc);
    }
};

} // namespace

void
validateMonteCarloInputs(
    const std::vector<UncertainParameter> &parameters,
    std::size_t samples)
{
    if (parameters.empty())
        util::fatal("monteCarlo() needs at least one parameter");
    if (samples < 100)
        util::fatal("monteCarlo() needs at least 100 samples");
    for (const auto &parameter : parameters) {
        if (!(parameter.low <= parameter.baseline &&
              parameter.baseline <= parameter.high)) {
            util::fatal("parameter '", parameter.name,
                        "' needs low <= baseline <= high");
        }
        if (parameter.low >= parameter.high)
            util::fatal("parameter '", parameter.name,
                        "' has an empty range");
    }
}

MonteCarloPartial
monteCarloChunk(const std::vector<UncertainParameter> &parameters,
                const std::function<double(const std::vector<double> &)>
                    &model,
                util::IndexRange range, util::Xorshift64Star &rng)
{
    std::vector<double> values(parameters.size());
    MonteCarloPartial partial;
    partial.outputs.reserve(range.size());
    for (std::size_t s = range.begin; s < range.end; ++s) {
        for (std::size_t i = 0; i < parameters.size(); ++i)
            values[i] = sampleParameter(parameters[i], rng);
        const double output = model(values);
        partial.outputs.push_back(output);
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloPartial
mergePartial(MonteCarloPartial accumulator, MonteCarloPartial part)
{
    accumulator.outputs.insert(accumulator.outputs.end(),
                               part.outputs.begin(),
                               part.outputs.end());
    accumulator.sum += part.sum;
    accumulator.sum_squares += part.sum_squares;
    return accumulator;
}

MonteCarloResult
finalizeMonteCarlo(std::size_t samples, MonteCarloPartial merged)
{
    TRACE_SPAN("dse.montecarlo", "finalize");
    if (merged.outputs.size() != samples) {
        util::panic("Monte Carlo merge produced ",
                    merged.outputs.size(), " outputs for a ", samples,
                    "-sample sweep");
    }
    std::vector<double> outputs = std::move(merged.outputs);

    // O(n) selection instead of a full sort: min/max scan first (the
    // array is still untouched), then successive nth_element calls
    // over ascending order-statistic ranks -- each pass partitions
    // [from, end) so later ranks select within the remaining suffix.
    // The selected k-th values are exactly the sorted array's
    // outputs[k], and the interpolation expression is unchanged, so
    // every statistic keeps its previous bits.
    const auto [min_it, max_it] =
        std::minmax_element(outputs.begin(), outputs.end());
    const double min_value = *min_it;
    const double max_value = *max_it;

    struct Rank
    {
        std::size_t lo;
        std::size_t hi;
        double t;
    };
    const auto rankOf = [&outputs](double p) {
        const double index =
            p * static_cast<double>(outputs.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(index);
        const std::size_t hi = std::min(lo + 1, outputs.size() - 1);
        const double t = index - static_cast<double>(lo);
        return Rank{lo, hi, t};
    };
    const Rank ranks[3] = {rankOf(0.05), rankOf(0.50), rankOf(0.95)};

    std::vector<std::size_t> needed;
    for (const Rank &rank : ranks) {
        needed.push_back(rank.lo);
        needed.push_back(rank.hi);
    }
    std::sort(needed.begin(), needed.end());
    needed.erase(std::unique(needed.begin(), needed.end()),
                 needed.end());
    std::vector<double> selected(needed.size());
    std::size_t from = 0;
    for (std::size_t r = 0; r < needed.size(); ++r) {
        const std::size_t k = needed[r];
        std::nth_element(outputs.begin() + from, outputs.begin() + k,
                         outputs.end());
        selected[r] = outputs[k];
        // Exclude position k from later passes: they may only permute
        // (from, end), so each captured order statistic stays put.
        from = k + 1;
    }
    const auto orderStat = [&](std::size_t k) {
        const auto it =
            std::lower_bound(needed.begin(), needed.end(), k);
        return selected[static_cast<std::size_t>(it -
                                                 needed.begin())];
    };
    const auto percentile = [&](const Rank &rank) {
        return orderStat(rank.lo) * (1.0 - rank.t) +
               orderStat(rank.hi) * rank.t;
    };

    MonteCarloResult result;
    result.samples = samples;
    result.mean = merged.sum / static_cast<double>(samples);
    const double variance =
        merged.sum_squares / static_cast<double>(samples) -
        result.mean * result.mean;
    result.stddev = std::sqrt(std::max(0.0, variance));
    result.p5 = percentile(ranks[0]);
    result.p50 = percentile(ranks[1]);
    result.p95 = percentile(ranks[2]);
    result.min = min_value;
    result.max = max_value;
    return result;
}

MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples, std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarlo");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // The sweep engine owns chunking, per-chunk derived RNG streams,
    // and ordered reduction; the fixed grain keeps the chunk layout
    // (and therefore every statistic) thread-count independent. The
    // accumulator is preallocated to the full sweep so the ordered
    // reduction appends without reallocating.
    sweep::SweepPlan plan;
    plan.domain = "dse.montecarlo";
    plan.items = samples;
    plan.grain = kMonteCarloChunk;
    plan.seed = seed;
    MonteCarloPartial init;
    init.outputs.reserve(samples);
    MonteCarloPartial merged = sweep::runSweep(
        plan,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            return monteCarloChunk(parameters, model, range, rng);
        },
        [](MonteCarloPartial accumulator, MonteCarloPartial part) {
            return mergePartial(std::move(accumulator),
                                std::move(part));
        },
        std::move(init));
    return finalizeMonteCarlo(samples, std::move(merged));
}

BatchModel
batchModel(core::EvalPlan plan)
{
    return [plan](std::size_t n, const double *const *inputs,
                  double *outputs) {
        plan.evaluateBatch(n, inputs, outputs);
    };
}

void
MonteCarloScratch::prepare(std::size_t parameters, std::size_t samples)
{
    samples_ = samples;
    values_.resize(parameters * samples);
    columns_.resize(parameters);
    for (std::size_t i = 0; i < parameters; ++i)
        columns_[i] = values_.data() + i * samples;
}

MonteCarloPartial
monteCarloBatchChunk(const std::vector<UncertainParameter> &parameters,
                     const BatchModel &model, util::IndexRange range,
                     util::Xorshift64Star &rng,
                     MonteCarloScratch &scratch)
{
    const std::size_t count = range.size();
    const std::size_t width = parameters.size();
    scratch.prepare(width, count);

    // One compiled sampler per parameter, on the stack for the usual
    // handful of Eq. 5 inputs.
    constexpr std::size_t kStackSamplers = 8;
    std::array<CompiledSampler, kStackSamplers> stack_samplers;
    std::vector<CompiledSampler> heap_samplers;
    CompiledSampler *samplers = stack_samplers.data();
    if (width > kStackSamplers) {
        heap_samplers.resize(width);
        samplers = heap_samplers.data();
    }
    for (std::size_t i = 0; i < width; ++i)
        samplers[i] = CompiledSampler(parameters[i]);

    std::array<double *, kStackSamplers> stack_columns;
    std::vector<double *> heap_columns;
    double **columns = stack_columns.data();
    if (width > kStackSamplers) {
        heap_columns.resize(width);
        columns = heap_columns.data();
    }
    for (std::size_t i = 0; i < width; ++i)
        columns[i] = scratch.column(i);

    // Sample-major fill: sample s draws all its parameters before
    // sample s+1 touches the stream, exactly like monteCarloChunk(),
    // so the two paths consume identical RNG sequences.
    for (std::size_t s = 0; s < count; ++s) {
        for (std::size_t i = 0; i < width; ++i)
            columns[i][s] = samplers[i].draw(rng);
    }

    // The kernel writes straight into the partial's output vector --
    // no bounce through scratch.
    MonteCarloPartial partial;
    partial.outputs.resize(count);
    model(count, scratch.columns(), partial.outputs.data());

    for (const double output : partial.outputs) {
        partial.sum += output;
        partial.sum_squares += output * output;
    }
    return partial;
}

MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const BatchModel &model, std::size_t samples,
                std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarloBatch");
    g_runs.add();
    g_samples.add(samples);
    validateMonteCarloInputs(parameters, samples);

    // Identical plan to monteCarlo(): same domain, same grain, same
    // seed derivation -- only the per-chunk evaluation changes.
    sweep::SweepPlan plan;
    plan.domain = "dse.montecarlo";
    plan.items = samples;
    plan.grain = kMonteCarloChunk;
    plan.seed = seed;
    MonteCarloPartial init;
    init.outputs.reserve(samples);
    MonteCarloPartial merged = sweep::runSweep(
        plan,
        [&](std::size_t, util::IndexRange range,
            util::Xorshift64Star &rng) {
            thread_local MonteCarloScratch scratch;
            return monteCarloBatchChunk(parameters, model, range, rng,
                                        scratch);
        },
        [](MonteCarloPartial accumulator, MonteCarloPartial part) {
            return mergePartial(std::move(accumulator),
                                std::move(part));
        },
        std::move(init));
    return finalizeMonteCarlo(samples, std::move(merged));
}

MonteCarloResult
monteCarloBatch(const std::vector<UncertainParameter> &parameters,
                const core::EvalPlan &plan, std::size_t samples,
                std::uint64_t seed)
{
    if (plan.inputCount() != parameters.size()) {
        util::fatal("compiled plan binds ", plan.inputCount(),
                    " inputs but the sweep has ", parameters.size(),
                    " uncertain parameters");
    }
    return monteCarloBatch(parameters, batchModel(plan), samples, seed);
}

} // namespace act::dse
