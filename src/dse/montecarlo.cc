#include "dse/montecarlo.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/trace.h"

namespace act::dse {

namespace {

util::Counter &g_runs =
    util::MetricsRegistry::instance().counter("dse.montecarlo.runs");
util::Counter &g_samples = util::MetricsRegistry::instance().counter(
    "dse.montecarlo.samples");

double
sampleParameter(const UncertainParameter &parameter,
                util::Xorshift64Star &rng)
{
    switch (parameter.distribution) {
      case Distribution::Uniform:
        return rng.nextUniform(parameter.low, parameter.high);
      case Distribution::Triangular: {
        // Inverse-CDF sampling for a triangular distribution with
        // mode c in [a, b].
        const double a = parameter.low;
        const double b = parameter.high;
        const double c = parameter.baseline;
        const double u = rng.nextUnit();
        const double pivot = (c - a) / (b - a);
        if (u < pivot)
            return a + std::sqrt(u * (b - a) * (c - a));
        return b - std::sqrt((1.0 - u) * (b - a) * (b - c));
      }
    }
    util::panic("unknown Distribution enumerator");
}

} // namespace

MonteCarloResult
monteCarlo(const std::vector<UncertainParameter> &parameters,
           const std::function<double(const std::vector<double> &)>
               &model,
           std::size_t samples, std::uint64_t seed)
{
    TRACE_SPAN("dse.montecarlo", "monteCarlo");
    g_runs.add();
    g_samples.add(samples);
    if (parameters.empty())
        util::fatal("monteCarlo() needs at least one parameter");
    if (samples < 100)
        util::fatal("monteCarlo() needs at least 100 samples");
    for (const auto &parameter : parameters) {
        if (!(parameter.low <= parameter.baseline &&
              parameter.baseline <= parameter.high)) {
            util::fatal("parameter '", parameter.name,
                        "' needs low <= baseline <= high");
        }
        if (parameter.low >= parameter.high)
            util::fatal("parameter '", parameter.name,
                        "' has an empty range");
    }

    // Fixed-size chunks, each drawing from its own derived RNG stream:
    // which samples land in which chunk -- and which stream produced
    // them -- depends only on (samples, seed), so any thread count
    // (including the serial fallback) yields bit-identical results.
    struct Partial
    {
        std::vector<double> outputs;
        double sum = 0.0;
        double sum_squares = 0.0;
    };
    const std::vector<util::IndexRange> chunks =
        util::staticChunks(0, samples, kMonteCarloChunk);
    std::vector<Partial> partials(chunks.size());
    util::runChunks(chunks, [&](std::size_t chunk,
                                util::IndexRange range) {
        util::Xorshift64Star rng(util::deriveSeed(seed, chunk));
        std::vector<double> values(parameters.size());
        Partial partial;
        partial.outputs.reserve(range.size());
        for (std::size_t s = range.begin; s < range.end; ++s) {
            for (std::size_t i = 0; i < parameters.size(); ++i)
                values[i] = sampleParameter(parameters[i], rng);
            const double output = model(values);
            partial.outputs.push_back(output);
            partial.sum += output;
            partial.sum_squares += output * output;
        }
        partials[chunk] = std::move(partial);
    });

    // Ordered reduction over the chunk-indexed partials.
    TRACE_SPAN("dse.montecarlo", "reduce");
    std::vector<double> outputs;
    outputs.reserve(samples);
    double sum = 0.0;
    double sum_squares = 0.0;
    for (Partial &partial : partials) {
        outputs.insert(outputs.end(), partial.outputs.begin(),
                       partial.outputs.end());
        sum += partial.sum;
        sum_squares += partial.sum_squares;
    }

    std::sort(outputs.begin(), outputs.end());
    const auto percentile = [&outputs](double p) {
        const double index =
            p * static_cast<double>(outputs.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(index);
        const std::size_t hi =
            std::min(lo + 1, outputs.size() - 1);
        const double t = index - static_cast<double>(lo);
        return outputs[lo] * (1.0 - t) + outputs[hi] * t;
    };

    MonteCarloResult result;
    result.samples = samples;
    result.mean = sum / static_cast<double>(samples);
    const double variance =
        sum_squares / static_cast<double>(samples) -
        result.mean * result.mean;
    result.stddev = std::sqrt(std::max(0.0, variance));
    result.p5 = percentile(0.05);
    result.p50 = percentile(0.50);
    result.p95 = percentile(0.95);
    result.min = outputs.front();
    result.max = outputs.back();
    return result;
}

} // namespace act::dse
