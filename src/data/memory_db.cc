#include "data/memory_db.h"

#include <array>

#include "util/logging.h"
#include "util/strings.h"

namespace act::data {

using util::gramsPerGigabyte;

namespace {

// Table 9: embodied carbon of DRAM (SK hynix sustainability reports;
// LPDDR4 comes from Apple's component-level product reports).
const std::array<StorageRecord, 8> kDramTable = {{
    {StorageClass::Dram, "50nm DDR3", gramsPerGigabyte(600.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "40nm DDR3", gramsPerGigabyte(315.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "30nm DDR3", gramsPerGigabyte(230.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "30nm LPDDR3", gramsPerGigabyte(201.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "20nm LPDDR3", gramsPerGigabyte(184.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "20nm LPDDR2", gramsPerGigabyte(159.0),
     Characterization::DeviceLevel},
    {StorageClass::Dram, "LPDDR4", gramsPerGigabyte(48.0),
     Characterization::ComponentLevel},
    {StorageClass::Dram, "10nm DDR4", gramsPerGigabyte(65.0),
     Characterization::DeviceLevel},
}};

// Table 10: embodied carbon of SSD storage.
const std::array<StorageRecord, 12> kSsdTable = {{
    {StorageClass::Ssd, "30nm NAND", gramsPerGigabyte(30.0),
     Characterization::DeviceLevel},
    {StorageClass::Ssd, "20nm NAND", gramsPerGigabyte(15.0),
     Characterization::DeviceLevel},
    {StorageClass::Ssd, "10nm NAND", gramsPerGigabyte(10.0),
     Characterization::DeviceLevel},
    {StorageClass::Ssd, "1z NAND TLC", gramsPerGigabyte(5.6),
     Characterization::DeviceLevel},
    {StorageClass::Ssd, "V3 NAND TLC", gramsPerGigabyte(6.3),
     Characterization::DeviceLevel},
    {StorageClass::Ssd, "Western Digital 2016", gramsPerGigabyte(24.4),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Western Digital 2017", gramsPerGigabyte(17.9),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Western Digital 2018", gramsPerGigabyte(12.5),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Western Digital 2019", gramsPerGigabyte(10.7),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Seagate Nytro 1551", gramsPerGigabyte(3.95),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Seagate Nytro 3530", gramsPerGigabyte(6.21),
     Characterization::ComponentLevel},
    {StorageClass::Ssd, "Seagate Nytro 3331", gramsPerGigabyte(16.92),
     Characterization::ComponentLevel},
}};

// Table 11: embodied carbon of Seagate HDD storage.
const std::array<StorageRecord, 10> kHddTable = {{
    {StorageClass::Hdd, "BarraCuda", gramsPerGigabyte(4.57),
     Characterization::ComponentLevel, StorageSegment::Consumer},
    {StorageClass::Hdd, "BarraCuda2", gramsPerGigabyte(10.32),
     Characterization::ComponentLevel, StorageSegment::Consumer},
    {StorageClass::Hdd, "BarraCuda Pro", gramsPerGigabyte(2.35),
     Characterization::ComponentLevel, StorageSegment::Consumer},
    {StorageClass::Hdd, "FireCuda", gramsPerGigabyte(5.1),
     Characterization::ComponentLevel, StorageSegment::Consumer},
    {StorageClass::Hdd, "FireCuda 2", gramsPerGigabyte(9.1),
     Characterization::ComponentLevel, StorageSegment::Consumer},
    {StorageClass::Hdd, "Exos2x14", gramsPerGigabyte(1.65),
     Characterization::ComponentLevel, StorageSegment::Enterprise},
    {StorageClass::Hdd, "Exosx12", gramsPerGigabyte(1.14),
     Characterization::ComponentLevel, StorageSegment::Enterprise},
    {StorageClass::Hdd, "Exosx16", gramsPerGigabyte(1.33),
     Characterization::ComponentLevel, StorageSegment::Enterprise},
    {StorageClass::Hdd, "Exos15e900", gramsPerGigabyte(20.5),
     Characterization::ComponentLevel, StorageSegment::Enterprise},
    {StorageClass::Hdd, "Exos10e2400", gramsPerGigabyte(10.3),
     Characterization::ComponentLevel, StorageSegment::Enterprise},
}};

} // namespace

std::span<const StorageRecord>
storageTable(StorageClass storage_class)
{
    switch (storage_class) {
      case StorageClass::Dram:
        return kDramTable;
      case StorageClass::Ssd:
        return kSsdTable;
      case StorageClass::Hdd:
        return kHddTable;
    }
    util::panic("unknown StorageClass enumerator");
}

std::optional<StorageRecord>
findStorage(std::string_view name)
{
    const std::string lowered = util::toLower(name);
    for (StorageClass cls :
         {StorageClass::Dram, StorageClass::Ssd, StorageClass::Hdd}) {
        for (const auto &record : storageTable(cls)) {
            if (util::toLower(record.name) == lowered)
                return record;
        }
    }
    return std::nullopt;
}

StorageRecord
storageOrDie(std::string_view name)
{
    auto record = findStorage(name);
    if (!record)
        util::fatal("unknown storage technology '", std::string(name), "'");
    return *record;
}

StorageRecord
defaultDram()
{
    return storageOrDie("LPDDR4");
}

StorageRecord
defaultSsd()
{
    return storageOrDie("V3 NAND TLC");
}

StorageRecord
defaultHdd()
{
    return storageOrDie("BarraCuda");
}

} // namespace act::data
