#include "data/carbon_intensity_db.h"

#include <array>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace act::data {

using util::CarbonIntensity;
using util::gramsPerKilowattHour;

namespace {

// Table 5: carbon efficiency of various energy sources.
const std::array<EnergySourceRecord, 9> kEnergySources = {{
    {EnergySource::Coal, "coal", gramsPerKilowattHour(820.0), 2.0},
    {EnergySource::Gas, "gas", gramsPerKilowattHour(490.0), 1.0},
    {EnergySource::Biomass, "biomass", gramsPerKilowattHour(230.0), 12.0},
    {EnergySource::Solar, "solar", gramsPerKilowattHour(41.0), 36.0},
    {EnergySource::Geothermal, "geothermal", gramsPerKilowattHour(38.0),
     72.0},
    {EnergySource::Hydropower, "hydropower", gramsPerKilowattHour(24.0),
     24.0},
    {EnergySource::Nuclear, "nuclear", gramsPerKilowattHour(12.0), 2.0},
    {EnergySource::Wind, "wind", gramsPerKilowattHour(11.0), 12.0},
    {EnergySource::CarbonFree, "carbon-free", gramsPerKilowattHour(0.0),
     0.0},
}};

// Table 6: global carbon efficiency to produce energy.
const std::array<RegionRecord, 9> kRegions = {{
    {Region::World, "world", gramsPerKilowattHour(301.0), "-"},
    {Region::India, "india", gramsPerKilowattHour(725.0), "coal/gas"},
    {Region::Australia, "australia", gramsPerKilowattHour(597.0), "coal"},
    {Region::Taiwan, "taiwan", gramsPerKilowattHour(583.0), "coal/gas"},
    {Region::Singapore, "singapore", gramsPerKilowattHour(495.0), "gas"},
    {Region::UnitedStates, "united states", gramsPerKilowattHour(380.0),
     "coal/gas"},
    {Region::Europe, "europe", gramsPerKilowattHour(295.0), "-"},
    {Region::Brazil, "brazil", gramsPerKilowattHour(82.0),
     "wind/hydropower"},
    {Region::Iceland, "iceland", gramsPerKilowattHour(28.0), "hydropower"},
}};

const EnergySourceRecord &
findSource(EnergySource source)
{
    for (const auto &record : kEnergySources) {
        if (record.source == source)
            return record;
    }
    util::panic("unknown EnergySource enumerator");
}

const RegionRecord &
findRegion(Region region)
{
    for (const auto &record : kRegions) {
        if (record.region == region)
            return record;
    }
    util::panic("unknown Region enumerator");
}

} // namespace

std::span<const EnergySourceRecord>
energySourceTable()
{
    return kEnergySources;
}

std::span<const RegionRecord>
regionTable()
{
    return kRegions;
}

CarbonIntensity
sourceIntensity(EnergySource source)
{
    return findSource(source).intensity;
}

CarbonIntensity
regionIntensity(Region region)
{
    return findRegion(region).intensity;
}

std::string_view
sourceName(EnergySource source)
{
    return findSource(source).name;
}

std::string_view
regionName(Region region)
{
    return findRegion(region).name;
}

EnergySource
sourceByName(std::string_view name)
{
    const std::string lowered = util::toLower(name);
    for (const auto &record : kEnergySources) {
        if (record.name == lowered)
            return record.source;
    }
    util::fatal("unknown energy source '", std::string(name), "'");
}

Region
regionByName(std::string_view name)
{
    const std::string lowered = util::toLower(name);
    for (const auto &record : kRegions) {
        if (record.name == lowered)
            return record.region;
    }
    util::fatal("unknown region '", std::string(name), "'");
}

CarbonIntensity
mixIntensity(std::span<const MixComponent> mix)
{
    if (mix.empty())
        util::fatal("mixIntensity() with an empty mix");
    double total_share = 0.0;
    double weighted = 0.0;
    for (const auto &component : mix) {
        if (component.share < 0.0)
            util::fatal("mixIntensity() with a negative share");
        total_share += component.share;
        weighted +=
            component.share * sourceIntensity(component.source).value();
    }
    if (std::fabs(total_share - 1.0) > 1e-9)
        util::fatal("mixIntensity() shares sum to ", total_share,
                    ", expected 1.0");
    return gramsPerKilowattHour(weighted);
}

CarbonIntensity
renewableBlend(CarbonIntensity base_grid, double renewable_share,
               EnergySource renewable)
{
    if (renewable_share < 0.0 || renewable_share > 1.0)
        util::fatal("renewable share must be in [0, 1], got ",
                    renewable_share);
    const double blended =
        (1.0 - renewable_share) * base_grid.value() +
        renewable_share * sourceIntensity(renewable).value();
    return gramsPerKilowattHour(blended);
}

CarbonIntensity
defaultFabIntensity()
{
    return renewableBlend(regionIntensity(Region::Taiwan), 0.25);
}

CarbonIntensity
defaultUseIntensity()
{
    // Section 6: "the average carbon intensity of the United States
    // (e.g., 300 g CO2 per kWh)".
    return gramsPerKilowattHour(300.0);
}

} // namespace act::data
