/**
 * @file
 * Device bill-of-materials and published-LCA reference data for the
 * platforms the paper analyzes: iPhone 3GS and iPhone 11 (Fig. 1),
 * iPhone 11 and iPad (Fig. 4), Fairphone 3 (Table 12, Fig. 16), and
 * Dell R740 (Table 12, Fig. 17).
 *
 * IC lists follow public teardowns (iFixit/TechInsights-style): the
 * main SoC plus the modem, RF, power-management, camera, display, and
 * miscellaneous logic that Fig. 4 groups as "Camera ICs" and
 * "Other ICs". Published LCA figures (Apple PERs, Fairphone 3 LCA,
 * Dell R740 LCA) are encoded as top-line reference data for the
 * ACT-vs-LCA comparisons.
 */

#ifndef ACT_DATA_DEVICE_DB_H
#define ACT_DATA_DEVICE_DB_H

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace act::data {

/** What an IC is, for embodied-model dispatch (Eq. 3 components). */
enum class IcKind
{
    Logic,  ///< processors, SoCs, analog/RF/PMIC logic dies
    Dram,
    Nand,
    Hdd,
};

/** Fig. 4 grouping for the per-IC breakdown. */
enum class IcCategory
{
    MainSoc,
    CameraIc,
    Dram,
    Flash,
    Hdd,
    OtherIc,
};

/** One IC on a platform. */
struct IcComponent
{
    std::string name;
    IcKind kind = IcKind::Logic;
    IcCategory category = IcCategory::OtherIc;

    /** Logic ICs: total die area and process node. */
    util::Area area{};
    double node_nm = 0.0;
    /** Logic ICs: named fab-node override (e.g. "7nm-EUV"); empty means
     *  interpolate from node_nm. */
    std::string fab_node_name;

    /** Memory/storage ICs: capacity and memory-database technology. */
    util::Capacity capacity{};
    std::string technology;

    /** Number of discrete packages (feeds the Nr x Kr packaging term). */
    int package_count = 1;
};

/** Published product-LCA top-line data. */
struct LcaProfile
{
    /** Whole-product life-cycle footprint. */
    util::Mass total{};
    double production_share = 0.0;
    double use_share = 0.0;
    double transport_share = 0.0;
    double eol_share = 0.0;
    /** Share of the production footprint attributable to ICs (the
     *  paper applies Apple's 44% fleet average, adjusted per device). */
    double ic_share_of_production = 0.44;

    /** Top-down IC footprint estimate (Fig. 4 "LCA-based top-down"). */
    util::Mass icEstimate() const;
    util::Mass productionFootprint() const;
    util::Mass useFootprint() const;
};

/** A labeled share of a published LCA breakdown (Figs. 16/17). */
struct BreakdownEntry
{
    std::string label;
    double share = 0.0;
};

/** One platform. */
struct DeviceRecord
{
    std::string name;
    int release_year = 0;
    std::vector<IcComponent> ics;
    LcaProfile lca;
    /** Published top-level component breakdown (empty if not used). */
    std::vector<BreakdownEntry> lca_breakdown;
};

/** The device database singleton. */
class DeviceDatabase
{
  public:
    static const DeviceDatabase &instance();

    std::span<const DeviceRecord> records() const;
    std::optional<DeviceRecord> findByName(std::string_view name) const;
    DeviceRecord byNameOrDie(std::string_view name) const;

  private:
    DeviceDatabase();
    std::vector<DeviceRecord> records_;
};

std::string_view icCategoryName(IcCategory category);

} // namespace act::data

#endif // ACT_DATA_DEVICE_DB_H
