#include "data/soc_db.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/stats.h"
#include "util/strings.h"

namespace act::data {

using util::Area;
using util::Capacity;
using util::gigabytes;
using util::Power;
using util::squareMillimeters;
using util::watts;

namespace {

constexpr std::array<MobileWorkload, kNumMobileWorkloads> kWorkloads = {
    MobileWorkload::Html5Rendering,
    MobileWorkload::AesEncryption,
    MobileWorkload::TextCompression,
    MobileWorkload::ImageCompression,
    MobileWorkload::FaceDetection,
    MobileWorkload::SpeechRecognition,
    MobileWorkload::ImageClassification,
};

constexpr std::array<std::string_view, kNumMobileWorkloads> kWorkloadNames = {
    "HTML5 rendering",
    "AES encryption",
    "text compression",
    "image compression",
    "face detection",
    "speech recognition",
    "image classification",
};

/**
 * Per-family workload flavor: relative strengths across the Geekbench
 * suite (crypto extensions boost AES; Hexagon-style DSPs boost image
 * classification on Snapdragon; Kirin NPUs boost it further). Factors
 * are renormalized to geometric mean 1 at construction, so a chipset's
 * aggregate score is exactly its calibrated aggregate.
 */
constexpr std::array<double, kNumMobileWorkloads> kExynosFlavor = {
    1.00, 1.10, 0.95, 1.00, 1.02, 0.95, 0.90};
constexpr std::array<double, kNumMobileWorkloads> kSnapdragonFlavor = {
    0.95, 1.30, 0.92, 1.00, 1.05, 0.95, 1.10};
constexpr std::array<double, kNumMobileWorkloads> kKirinFlavor = {
    0.98, 1.05, 0.96, 1.02, 1.00, 0.92, 1.25};

const std::array<double, kNumMobileWorkloads> &
familyFlavor(SocFamily family)
{
    switch (family) {
      case SocFamily::Exynos:
        return kExynosFlavor;
      case SocFamily::Snapdragon:
        return kSnapdragonFlavor;
      case SocFamily::Kirin:
        return kKirinFlavor;
    }
    util::panic("unknown SocFamily enumerator");
}

std::array<double, kNumMobileWorkloads>
workloadScores(SocFamily family, double aggregate)
{
    const auto &flavor = familyFlavor(family);
    const double flavor_geomean =
        util::geomean(std::span<const double>(flavor));
    std::array<double, kNumMobileWorkloads> scores{};
    for (std::size_t i = 0; i < kNumMobileWorkloads; ++i)
        scores[i] = aggregate * flavor[i] / flavor_geomean;
    return scores;
}

SocRecord
makeSoc(std::string name, SocFamily family, int year, double node_nm,
        double area_mm2, double dram_gb, std::string dram_technology,
        double tdp_watts, double aggregate_score)
{
    SocRecord record;
    record.name = std::move(name);
    record.family = family;
    record.release_year = year;
    record.node_nm = node_nm;
    record.die_area = squareMillimeters(area_mm2);
    record.dram_capacity = gigabytes(dram_gb);
    record.dram_technology = std::move(dram_technology);
    record.tdp = watts(tdp_watts);
    record.workload_scores = workloadScores(family, aggregate_score);
    return record;
}

} // namespace

std::span<const MobileWorkload>
allMobileWorkloads()
{
    return kWorkloads;
}

std::string_view
workloadName(MobileWorkload workload)
{
    return kWorkloadNames[static_cast<std::size_t>(workload)];
}

std::string_view
familyName(SocFamily family)
{
    switch (family) {
      case SocFamily::Exynos:
        return "Exynos";
      case SocFamily::Snapdragon:
        return "Snapdragon";
      case SocFamily::Kirin:
        return "Kirin";
    }
    util::panic("unknown SocFamily enumerator");
}

double
SocRecord::aggregateScore() const
{
    return util::geomean(std::span<const double>(workload_scores));
}

double
SocRecord::efficiencyScorePerWatt() const
{
    return aggregateScore() / util::asWatts(tdp);
}

SocDatabase::SocDatabase()
{
    using enum SocFamily;
    // Specs (node, die area, shipping DRAM, TDP) follow public
    // teardowns; aggregate scores are the calibrated synthetic
    // performance model (DESIGN.md substitution #1). DRAM technology is
    // assigned by manufacturing era per Table 9.
    records_ = {
        makeSoc("Exynos 9820", Exynos, 2019, 8.0, 127.0, 8.0, "LPDDR4",
                7.0, 2400.0),
        makeSoc("Exynos 9810", Exynos, 2018, 10.0, 118.0, 6.0, "LPDDR4",
                8.0, 2100.0),
        makeSoc("Exynos 8895", Exynos, 2017, 10.0, 105.0, 4.0, "LPDDR4",
                7.0, 1780.0),
        makeSoc("Exynos 7420", Exynos, 2015, 14.0, 78.0, 3.0,
                "20nm LPDDR3", 5.5, 1150.0),
        makeSoc("Snapdragon 865", Snapdragon, 2020, 7.0, 83.5, 8.0,
                "LPDDR4", 7.5, 3300.0),
        makeSoc("Snapdragon 855", Snapdragon, 2019, 7.0, 73.0, 6.0,
                "LPDDR4", 7.0, 2700.0),
        makeSoc("Snapdragon 845", Snapdragon, 2018, 10.0, 94.0, 6.0,
                "LPDDR4", 7.0, 2400.0),
        makeSoc("Snapdragon 835", Snapdragon, 2017, 10.0, 72.3, 4.0,
                "LPDDR4", 6.5, 1700.0),
        makeSoc("Snapdragon 820", Snapdragon, 2016, 14.0, 113.7, 4.0,
                "20nm LPDDR2", 6.5, 1380.0),
        makeSoc("Kirin 990", Kirin, 2019, 7.0, 113.3, 8.0, "LPDDR4", 6.0,
                3100.0),
        makeSoc("Kirin 980", Kirin, 2018, 7.0, 74.13, 6.0, "LPDDR4", 5.5,
                2600.0),
        makeSoc("Kirin 970", Kirin, 2017, 10.0, 96.72, 6.0, "LPDDR4", 7.0,
                1900.0),
        makeSoc("Kirin 960", Kirin, 2016, 16.0, 117.66, 4.0,
                "20nm LPDDR2", 6.5, 1500.0),
    };
}

const SocDatabase &
SocDatabase::instance()
{
    static const SocDatabase database;
    return database;
}

std::span<const SocRecord>
SocDatabase::records() const
{
    return records_;
}

std::optional<SocRecord>
SocDatabase::findByName(std::string_view name) const
{
    const std::string lowered = util::toLower(name);
    for (const auto &record : records_) {
        if (util::toLower(record.name) == lowered)
            return record;
    }
    return std::nullopt;
}

SocRecord
SocDatabase::byNameOrDie(std::string_view name) const
{
    auto record = findByName(name);
    if (!record)
        util::fatal("unknown SoC '", std::string(name), "'");
    return *record;
}

std::vector<SocRecord>
SocDatabase::familyByYear(SocFamily family) const
{
    std::vector<SocRecord> result;
    for (const auto &record : records_) {
        if (record.family == family)
            result.push_back(record);
    }
    std::sort(result.begin(), result.end(),
              [](const SocRecord &a, const SocRecord &b) {
                  return a.release_year < b.release_year;
              });
    return result;
}

} // namespace act::data
