/**
 * @file
 * JSON (de)serialization for device bills of materials, so users can
 * evaluate their own platforms without recompiling (mirroring the
 * released tool's config-file workflow). A device file looks like:
 *
 *   {
 *     "name": "my-phone",
 *     "release_year": 2024,
 *     "ics": [
 *       {"name": "SoC", "kind": "logic", "category": "main_soc",
 *        "area_mm2": 100, "node_nm": 5, "packages": 1},
 *       {"name": "DRAM", "kind": "dram", "category": "dram",
 *        "capacity_gb": 12, "technology": "LPDDR4"},
 *       {"name": "Flash", "kind": "nand", "category": "flash",
 *        "capacity_gb": 256, "technology": "1z NAND TLC"}
 *     ],
 *     "lca": {"total_kg": 60, "production_share": 0.8,
 *             "use_share": 0.15, "transport_share": 0.04,
 *             "eol_share": 0.01, "ic_share_of_production": 0.44}
 *   }
 */

#ifndef ACT_DATA_DEVICE_JSON_H
#define ACT_DATA_DEVICE_JSON_H

#include <string>

#include "config/json.h"
#include "data/device_db.h"

namespace act::data {

/** Parse a device from JSON; fatal on malformed or inconsistent
 *  definitions (unknown kinds/categories, missing fields, unknown
 *  storage technologies, out-of-range nodes). */
DeviceRecord deviceFromJson(const config::JsonValue &value);

/** Serialize a device to JSON (round-trips through deviceFromJson). */
config::JsonValue toJson(const DeviceRecord &device);

/** Load a device file; fatal on I/O or parse errors. */
DeviceRecord loadDeviceFile(const std::string &path);

/** Save a device file. */
void saveDeviceFile(const std::string &path, const DeviceRecord &device);

} // namespace act::data

#endif // ACT_DATA_DEVICE_JSON_H
