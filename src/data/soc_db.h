/**
 * @file
 * Mobile SoC specification database covering the thirteen chipsets of
 * Fig. 8 (Exynos 7420/8895/9810/9820, Snapdragon 820/835/845/855/865,
 * Kirin 960/970/980/990).
 *
 * Die area, process node, release year, and DRAM configuration are from
 * public teardowns. The paper sources performance from Geekbench 5
 * measurements averaged over ten in-the-wild devices per chipset; those
 * raw measurements are not redistributable, so this database carries a
 * synthetic per-workload score model calibrated to public
 * Geekbench-5-class aggregates and to the paper's reported conclusions
 * (metric-dependent optima in Fig. 8(d); the 1.21x mean annual energy
 * efficiency improvement of Fig. 14). See DESIGN.md, substitution #1.
 */

#ifndef ACT_DATA_SOC_DB_H
#define ACT_DATA_SOC_DB_H

#include <array>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace act::data {

/** SoC vendor families studied in Fig. 8. */
enum class SocFamily
{
    Exynos,
    Snapdragon,
    Kirin,
};

/** The seven Geekbench 5 mobile workloads used by the paper (Sec. 4.2). */
enum class MobileWorkload
{
    Html5Rendering,
    AesEncryption,
    TextCompression,
    ImageCompression,
    FaceDetection,
    SpeechRecognition,
    ImageClassification,
};

inline constexpr std::size_t kNumMobileWorkloads = 7;

/** All workloads, in a fixed iteration order. */
std::span<const MobileWorkload> allMobileWorkloads();

std::string_view workloadName(MobileWorkload workload);
std::string_view familyName(SocFamily family);

/** One mobile chipset. */
struct SocRecord
{
    std::string name;
    SocFamily family;
    int release_year;
    /** Logic process feature size in nm (e.g. 7, 8, 10, 14, 16). */
    double node_nm;
    util::Area die_area;
    /** Shipping DRAM capacity of the flagship configuration. */
    util::Capacity dram_capacity;
    /** DRAM technology name resolvable in the memory database; chosen
     *  by manufacturing era (Table 9 technologies). */
    std::string dram_technology;
    /** Thermal design power; the paper uses TDP as the power proxy. */
    util::Power tdp;
    /** Geekbench-5-style score per workload (higher is faster). */
    std::array<double, kNumMobileWorkloads> workload_scores;

    /** Geometric-mean score over all workloads ("aggregate mobile
     *  speed" in Fig. 8(a)). */
    double aggregateScore() const;

    /** Aggregate energy efficiency (score per watt), the quantity whose
     *  annual improvement Fig. 14 (left) reports. */
    double efficiencyScorePerWatt() const;
};

/** The SoC database singleton. */
class SocDatabase
{
  public:
    static const SocDatabase &instance();

    /** All chipsets, newest first within family (the paper's order). */
    std::span<const SocRecord> records() const;

    std::optional<SocRecord> findByName(std::string_view name) const;
    SocRecord byNameOrDie(std::string_view name) const;

    /** Chipsets of one family, oldest first (release-year order). */
    std::vector<SocRecord> familyByYear(SocFamily family) const;

  private:
    SocDatabase();
    std::vector<SocRecord> records_;
};

} // namespace act::data

#endif // ACT_DATA_SOC_DB_H
