/**
 * @file
 * Embodied carbon-per-capacity characterization for DRAM (Table 9),
 * NAND-flash SSDs (Table 10), and HDDs (Table 11), as plotted in Fig. 7.
 * Each record notes whether it comes from device-level fab
 * characterization (SK hynix; black bars in Fig. 7) or component-level
 * vendor analyses (Apple, Western Digital, Seagate; grey bars).
 */

#ifndef ACT_DATA_MEMORY_DB_H
#define ACT_DATA_MEMORY_DB_H

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "util/units.h"

namespace act::data {

/** Which storage family a record belongs to. */
enum class StorageClass
{
    Dram,
    Ssd,
    Hdd,
};

/** Provenance of a carbon-per-size figure (Fig. 7 black vs grey). */
enum class Characterization
{
    DeviceLevel,
    ComponentLevel,
};

/** Market segment for HDD rows (Table 11 middle column). */
enum class StorageSegment
{
    NotApplicable,
    Consumer,
    Enterprise,
};

/** One row of Tables 9-11. */
struct StorageRecord
{
    StorageClass storage_class;
    std::string name;
    util::CarbonPerCapacity cps;
    Characterization characterization;
    StorageSegment segment = StorageSegment::NotApplicable;
};

/** All rows for one storage class, in the paper's table order. */
std::span<const StorageRecord> storageTable(StorageClass storage_class);

/** Case-insensitive lookup across all three tables. */
std::optional<StorageRecord> findStorage(std::string_view name);

/** Like findStorage() but fatal when the name is unknown. */
StorageRecord storageOrDie(std::string_view name);

/**
 * Default technologies used when a case study does not pin a specific
 * part: modern mobile LPDDR4 DRAM, V3 TLC NAND, and a consumer
 * BarraCuda HDD.
 */
StorageRecord defaultDram();
StorageRecord defaultSsd();
StorageRecord defaultHdd();

} // namespace act::data

#endif // ACT_DATA_MEMORY_DB_H
