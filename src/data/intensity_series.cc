#include "data/intensity_series.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "data/carbon_intensity_db.h"
#include "util/logging.h"

namespace act::data {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMaxHourlyShare = 0.95;
constexpr std::size_t kHoursPerDay = 24;

/**
 * Solve for the scale k such that the mean over samples of
 * min(kMaxHourlyShare, k * weight[i]) equals @p target_share, then
 * return the per-sample shares. Monotone in k, so bisection suffices.
 */
std::vector<double>
solveShares(const std::vector<double> &weights, double target_share)
{
    std::vector<double> shares(weights.size(), 0.0);
    if (target_share <= 0.0)
        return shares;

    const auto mean_at = [&weights](double k) {
        double sum = 0.0;
        for (double w : weights)
            sum += std::min(kMaxHourlyShare, k * w);
        return sum / static_cast<double>(weights.size());
    };
    if (mean_at(1e6) < target_share) {
        util::fatal("renewable share ", target_share,
                    " is unreachable with this profile shape");
    }

    double lo = 0.0;
    double hi = 1e6;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mean_at(mid) < target_share)
            lo = mid;
        else
            hi = mid;
    }
    for (std::size_t i = 0; i < weights.size(); ++i)
        shares[i] = std::min(kMaxHourlyShare, hi * weights[i]);
    return shares;
}

void
checkShare(double share, double max_share)
{
    if (share < 0.0 || share > max_share) {
        util::fatal("renewable share must be in [0, ", max_share,
                    "], got ", share);
    }
}

std::vector<double>
blendDay(const std::vector<double> &weights, double target_share,
         double base, double renewable_ci)
{
    const std::vector<double> shares = solveShares(weights, target_share);
    std::vector<double> grams(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        grams[i] = (1.0 - shares[i]) * base + shares[i] * renewable_ci;
    return grams;
}

} // namespace

IntensitySeries
IntensitySeries::fromSamples(std::vector<double> grams_per_kwh,
                             double step_hours, std::string name)
{
    if (grams_per_kwh.empty())
        util::fatal("intensity series needs at least one sample");
    for (std::size_t i = 0; i < grams_per_kwh.size(); ++i) {
        if (!std::isfinite(grams_per_kwh[i]) || grams_per_kwh[i] < 0.0) {
            util::fatal("intensity series sample ", i,
                        " must be a non-negative finite g CO2/kWh, got ",
                        grams_per_kwh[i]);
        }
    }
    if (!(step_hours > 0.0) || !std::isfinite(step_hours))
        util::fatal("intensity series step must be positive hours, got ",
                    step_hours);
    IntensitySeries series;
    series.grams_per_kwh_ = std::move(grams_per_kwh);
    series.step_hours_ = step_hours;
    series.name_ = std::move(name);
    return series;
}

IntensitySeries
IntensitySeries::flat(util::CarbonIntensity average, std::size_t samples,
                      double step_hours)
{
    if (samples == 0)
        util::fatal("intensity series needs at least one sample");
    return fromSamples(std::vector<double>(samples, average.value()),
                       step_hours, "flat");
}

IntensitySeries
IntensitySeries::solarDay(util::CarbonIntensity base, double solar_share)
{
    // A day-only source cannot exceed ~0.44 daily-average share
    // without storage; cap at 0.4.
    checkShare(solar_share, 0.4);
    std::vector<double> weights(kHoursPerDay);
    for (std::size_t h = 0; h < kHoursPerDay; ++h) {
        const double t = static_cast<double>(h);
        weights[h] = (t >= 6.0 && t <= 18.0)
                         ? std::sin(kPi * (t - 6.0) / 12.0)
                         : 0.0;
    }
    return fromSamples(
        blendDay(weights, solar_share, base.value(),
                 sourceIntensity(EnergySource::Solar).value()),
        1.0, "solar");
}

IntensitySeries
IntensitySeries::windDay(util::CarbonIntensity base, double wind_share)
{
    checkShare(wind_share, 0.8);
    std::vector<double> weights(kHoursPerDay);
    for (std::size_t h = 0; h < kHoursPerDay; ++h) {
        // Wind availability often peaks overnight; keep it mild.
        weights[h] = 1.0 + 0.35 * std::cos(2.0 * kPi *
                                           (static_cast<double>(h) -
                                            3.0) /
                                           24.0);
    }
    return fromSamples(
        blendDay(weights, wind_share, base.value(),
                 sourceIntensity(EnergySource::Wind).value()),
        1.0, "wind");
}

IntensitySeries
IntensitySeries::seasonal(const IntensitySeries &day, std::size_t days,
                          double amplitude, double peak_day)
{
    if (days == 0)
        util::fatal("seasonal composition needs at least one day");
    if (!(amplitude >= 0.0 && amplitude < 1.0)) {
        util::fatal("seasonal amplitude must be in [0, 1), got ",
                    amplitude);
    }
    std::vector<double> grams;
    grams.reserve(day.size() * days);
    for (std::size_t d = 0; d < days; ++d) {
        const double factor =
            1.0 + amplitude * std::cos(2.0 * kPi *
                                       (static_cast<double>(d) -
                                        peak_day) /
                                       static_cast<double>(days));
        for (const double g : day.samples())
            grams.push_back(g * factor);
    }
    return fromSamples(std::move(grams), day.stepHours(),
                       day.name().empty() ? "seasonal"
                                          : day.name() + "+seasonal");
}

util::CarbonIntensity
IntensitySeries::average() const
{
    const double sum = std::accumulate(grams_per_kwh_.begin(),
                                       grams_per_kwh_.end(), 0.0);
    return util::gramsPerKilowattHour(
        sum / static_cast<double>(grams_per_kwh_.size()));
}

std::vector<std::size_t>
IntensitySeries::samplesByIntensity() const
{
    std::vector<std::size_t> order(grams_per_kwh_.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  return grams_per_kwh_[a] < grams_per_kwh_[b];
              });
    return order;
}

IntensitySeries
intensitySeriesFromJson(const config::JsonValue &value)
{
    if (!value.isObject())
        util::fatal("an intensity series must be a JSON object");
    const std::string name = value.stringOr("name", "");

    if (value.contains("samples_g_per_kwh")) {
        std::vector<double> grams;
        for (const config::JsonValue &sample :
             value.at("samples_g_per_kwh").asArray()) {
            grams.push_back(sample.asNumber());
        }
        return IntensitySeries::fromSamples(
            std::move(grams), value.numberOr("step_hours", 1.0), name);
    }

    if (!value.contains("profile")) {
        util::fatal("an intensity series needs either "
                    "'samples_g_per_kwh' or a generated 'profile'");
    }
    util::CarbonIntensity base;
    if (value.contains("region")) {
        base = regionIntensity(regionByName(value.at("region").asString()));
    } else if (value.contains("base_g_per_kwh")) {
        base = util::gramsPerKilowattHour(
            value.at("base_g_per_kwh").asNumber());
    } else {
        util::fatal("a generated intensity series needs a base grid: "
                    "'region' or 'base_g_per_kwh'");
    }

    const std::string profile = value.at("profile").asString();
    IntensitySeries day = [&] {
        if (profile == "flat")
            return IntensitySeries::flat(base);
        const double share = value.numberOr("share", 0.25);
        if (profile == "solar")
            return IntensitySeries::solarDay(base, share);
        if (profile == "wind")
            return IntensitySeries::windDay(base, share);
        util::fatal("unknown intensity profile '", profile,
                    "' (expected 'flat', 'solar', or 'wind')");
    }();

    const double days = value.numberOr("days", 1.0);
    if (days < 1.0 || days != std::floor(days))
        util::fatal("intensity series 'days' must be a positive "
                    "integer, got ", days);
    IntensitySeries series =
        days > 1.0 || value.contains("seasonal_amplitude")
            ? IntensitySeries::seasonal(
                  day, static_cast<std::size_t>(days),
                  value.numberOr("seasonal_amplitude", 0.0),
                  value.numberOr("seasonal_peak_day", 0.0))
            : std::move(day);
    if (!name.empty()) {
        return IntensitySeries::fromSamples(
            std::vector<double>(series.samples()), series.stepHours(),
            name);
    }
    return series;
}

config::JsonValue
toJson(const IntensitySeries &series)
{
    config::JsonObject object;
    if (!series.name().empty())
        object["name"] = config::JsonValue(series.name());
    object["step_hours"] = config::JsonValue(series.stepHours());
    config::JsonArray samples;
    samples.reserve(series.size());
    for (const double g : series.samples())
        samples.push_back(config::JsonValue(g));
    object["samples_g_per_kwh"] = config::JsonValue(std::move(samples));
    return config::JsonValue(std::move(object));
}

IntensitySeries
loadIntensitySeriesFile(const std::string &path)
{
    return intensitySeriesFromJson(config::loadJsonFile(path));
}

} // namespace act::data
