#include "data/ci_profile.h"

#include <utility>

#include "util/logging.h"

namespace act::data {

DiurnalProfile::DiurnalProfile(IntensitySeries series)
    : series_(std::move(series))
{
    if (series_.size() != kHours || series_.stepHours() != 1.0) {
        util::fatal("a diurnal profile is a 24-sample hourly view; got ",
                    series_.size(), " samples at ", series_.stepHours(),
                    " h steps");
    }
}

DiurnalProfile
DiurnalProfile::flat(util::CarbonIntensity average)
{
    return DiurnalProfile(IntensitySeries::flat(average));
}

DiurnalProfile
DiurnalProfile::solarGrid(util::CarbonIntensity base, double solar_share)
{
    return DiurnalProfile(IntensitySeries::solarDay(base, solar_share));
}

DiurnalProfile
DiurnalProfile::windGrid(util::CarbonIntensity base, double wind_share)
{
    return DiurnalProfile(IntensitySeries::windDay(base, wind_share));
}

util::CarbonIntensity
DiurnalProfile::at(std::size_t hour) const
{
    return series_.at(hour);
}

util::CarbonIntensity
DiurnalProfile::dailyAverage() const
{
    return series_.average();
}

std::array<std::size_t, DiurnalProfile::kHours>
DiurnalProfile::hoursByIntensity() const
{
    const std::vector<std::size_t> order = series_.samplesByIntensity();
    std::array<std::size_t, kHours> hours{};
    for (std::size_t i = 0; i < kHours; ++i)
        hours[i] = order[i];
    return hours;
}

} // namespace act::data
