#include "data/ci_profile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace act::data {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMaxHourlyShare = 0.95;

/**
 * Solve for the scale k such that mean over hours of
 * min(kMaxHourlyShare, k * weight[h]) equals @p target_share, then
 * return the per-hour shares. Monotone in k, so bisection suffices.
 */
std::array<double, DiurnalProfile::kHours>
solveShares(const std::array<double, DiurnalProfile::kHours> &weights,
            double target_share)
{
    std::array<double, DiurnalProfile::kHours> shares{};
    if (target_share <= 0.0)
        return shares;

    const auto mean_at = [&weights](double k) {
        double sum = 0.0;
        for (double w : weights)
            sum += std::min(kMaxHourlyShare, k * w);
        return sum / static_cast<double>(DiurnalProfile::kHours);
    };
    if (mean_at(1e6) < target_share) {
        util::fatal("renewable share ", target_share,
                    " is unreachable with this profile shape");
    }

    double lo = 0.0;
    double hi = 1e6;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (mean_at(mid) < target_share)
            lo = mid;
        else
            hi = mid;
    }
    for (std::size_t h = 0; h < DiurnalProfile::kHours; ++h)
        shares[h] = std::min(kMaxHourlyShare, hi * weights[h]);
    return shares;
}

void
checkShare(double share, double max_share)
{
    if (share < 0.0 || share > max_share) {
        util::fatal("renewable share must be in [0, ", max_share,
                    "], got ", share);
    }
}

} // namespace

DiurnalProfile
DiurnalProfile::flat(util::CarbonIntensity average)
{
    DiurnalProfile profile;
    profile.grams_per_kwh_.fill(average.value());
    return profile;
}

DiurnalProfile
DiurnalProfile::solarGrid(util::CarbonIntensity base, double solar_share)
{
    // A day-only source cannot exceed ~0.44 daily-average share
    // without storage; cap at 0.4.
    checkShare(solar_share, 0.4);
    std::array<double, kHours> weights{};
    for (std::size_t h = 0; h < kHours; ++h) {
        const double t = static_cast<double>(h);
        weights[h] = (t >= 6.0 && t <= 18.0)
                         ? std::sin(kPi * (t - 6.0) / 12.0)
                         : 0.0;
    }
    const auto shares = solveShares(weights, solar_share);
    const double solar_ci = sourceIntensity(EnergySource::Solar).value();

    DiurnalProfile profile;
    for (std::size_t h = 0; h < kHours; ++h) {
        profile.grams_per_kwh_[h] =
            (1.0 - shares[h]) * base.value() + shares[h] * solar_ci;
    }
    return profile;
}

DiurnalProfile
DiurnalProfile::windGrid(util::CarbonIntensity base, double wind_share)
{
    checkShare(wind_share, 0.8);
    std::array<double, kHours> weights{};
    for (std::size_t h = 0; h < kHours; ++h) {
        // Wind availability often peaks overnight; keep it mild.
        weights[h] = 1.0 + 0.35 * std::cos(2.0 * kPi *
                                           (static_cast<double>(h) -
                                            3.0) /
                                           24.0);
    }
    const auto shares = solveShares(weights, wind_share);
    const double wind_ci = sourceIntensity(EnergySource::Wind).value();

    DiurnalProfile profile;
    for (std::size_t h = 0; h < kHours; ++h) {
        profile.grams_per_kwh_[h] =
            (1.0 - shares[h]) * base.value() + shares[h] * wind_ci;
    }
    return profile;
}

util::CarbonIntensity
DiurnalProfile::at(std::size_t hour) const
{
    return util::gramsPerKilowattHour(grams_per_kwh_[hour % kHours]);
}

util::CarbonIntensity
DiurnalProfile::dailyAverage() const
{
    const double sum = std::accumulate(grams_per_kwh_.begin(),
                                       grams_per_kwh_.end(), 0.0);
    return util::gramsPerKilowattHour(sum /
                                      static_cast<double>(kHours));
}

std::array<std::size_t, DiurnalProfile::kHours>
DiurnalProfile::hoursByIntensity() const
{
    std::array<std::size_t, kHours> order{};
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  return grams_per_kwh_[a] < grams_per_kwh_[b];
              });
    return order;
}

} // namespace act::data
