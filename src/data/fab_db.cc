#include "data/fab_db.h"

#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include "util/interp.h"
#include "util/logging.h"
#include "util/strings.h"

namespace act::data {

using util::CarbonPerArea;
using util::EnergyPerArea;
using util::gramsPerCm2;
using util::kilowattHoursPerCm2;
using util::PiecewiseLinear;

namespace {

// Table 7: embodied carbon parameters, EPA and GPA, for application
// processor manufacturing (imec IEDM'20 device-level characterization).
const std::array<FabNodeRecord, 9> kFabNodes = {{
    {"28nm", 28.0, kilowattHoursPerCm2(0.90), gramsPerCm2(175.0),
     gramsPerCm2(100.0)},
    {"20nm", 20.0, kilowattHoursPerCm2(1.2), gramsPerCm2(190.0),
     gramsPerCm2(110.0)},
    {"14nm", 14.0, kilowattHoursPerCm2(1.2), gramsPerCm2(200.0),
     gramsPerCm2(125.0)},
    {"10nm", 10.0, kilowattHoursPerCm2(1.475), gramsPerCm2(240.0),
     gramsPerCm2(150.0)},
    {"7nm", 7.0, kilowattHoursPerCm2(1.52), gramsPerCm2(350.0),
     gramsPerCm2(200.0)},
    {"7nm-EUV", 7.0, kilowattHoursPerCm2(2.15), gramsPerCm2(350.0),
     gramsPerCm2(200.0)},
    {"7nm-EUV-DP", 7.0, kilowattHoursPerCm2(2.15), gramsPerCm2(350.0),
     gramsPerCm2(200.0)},
    {"5nm", 5.0, kilowattHoursPerCm2(2.75), gramsPerCm2(430.0),
     gramsPerCm2(225.0)},
    {"3nm", 3.0, kilowattHoursPerCm2(2.75), gramsPerCm2(470.0),
     gramsPerCm2(275.0)},
}};

// Table 8: embodied carbon of raw material procurement (LCA-derived).
constexpr double kMpaGramsPerCm2 = 500.0;

/**
 * Distinct-x anchors for interpolation. Where Table 7 lists several 7 nm
 * lithography variants, the non-EUV row is used for the continuous
 * scaling curve (the variants remain addressable by name).
 */
struct CurveAnchor
{
    double nm;
    double epa;
    double gpa95;
    double gpa99;
};

const std::array<CurveAnchor, 7> kCurveAnchors = {{
    {3.0, 2.75, 470.0, 275.0},
    {5.0, 2.75, 430.0, 225.0},
    {7.0, 1.52, 350.0, 200.0},
    {10.0, 1.475, 240.0, 150.0},
    {14.0, 1.2, 200.0, 125.0},
    {20.0, 1.2, 190.0, 110.0},
    {28.0, 0.90, 175.0, 100.0},
}};

std::vector<std::pair<double, double>>
anchorSeries(double CurveAnchor::*member)
{
    std::vector<std::pair<double, double>> points;
    points.reserve(kCurveAnchors.size());
    for (const auto &anchor : kCurveAnchors)
        points.emplace_back(anchor.nm, anchor.*member);
    return points;
}

const CurveAnchor &
nearestAnchor(double nm)
{
    const CurveAnchor *best = &kCurveAnchors.front();
    double best_distance = std::fabs(std::log(nm) - std::log(best->nm));
    for (const auto &anchor : kCurveAnchors) {
        const double distance =
            std::fabs(std::log(nm) - std::log(anchor.nm));
        if (distance < best_distance) {
            best_distance = distance;
            best = &anchor;
        }
    }
    return *best;
}

void
checkNodeRange(double nm)
{
    if (!(nm >= FabDatabase::kMinNode && nm <= FabDatabase::kMaxNode)) {
        util::fatal("process node ", nm, " nm outside the modeled range [",
                    FabDatabase::kMinNode, ", ", FabDatabase::kMaxNode,
                    "] nm");
    }
}

void
checkAbatement(double abatement)
{
    if (!(abatement >= 0.90 && abatement <= 1.0)) {
        util::fatal("gaseous abatement fraction ", abatement,
                    " outside the characterized range [0.90, 1.0]");
    }
}

} // namespace

struct FabDatabase::Curves
{
    PiecewiseLinear epa{anchorSeries(&CurveAnchor::epa), /*log_x=*/true};
    PiecewiseLinear gpa95{anchorSeries(&CurveAnchor::gpa95),
                          /*log_x=*/true};
    PiecewiseLinear gpa99{anchorSeries(&CurveAnchor::gpa99),
                          /*log_x=*/true};
};

FabDatabase::FabDatabase() = default;

const FabDatabase &
FabDatabase::instance()
{
    static const FabDatabase database;
    return database;
}

const FabDatabase::Curves &
FabDatabase::curves() const
{
    static const Curves curves;
    return curves;
}

std::span<const FabNodeRecord>
FabDatabase::records() const
{
    return kFabNodes;
}

std::optional<FabNodeRecord>
FabDatabase::findByName(std::string_view name) const
{
    const std::string lowered = util::toLower(name);
    for (const auto &record : kFabNodes) {
        if (util::toLower(record.name) == lowered)
            return record;
    }
    return std::nullopt;
}

EnergyPerArea
FabDatabase::epa(double nm, NodeLookup lookup) const
{
    checkNodeRange(nm);
    if (lookup == NodeLookup::NearestAnchor)
        return kilowattHoursPerCm2(nearestAnchor(nm).epa);
    return kilowattHoursPerCm2(curves().epa.at(nm));
}

std::pair<double, double>
FabDatabase::gpaColumns(double nm, NodeLookup lookup) const
{
    checkNodeRange(nm);
    if (lookup == NodeLookup::NearestAnchor) {
        const CurveAnchor &anchor = nearestAnchor(nm);
        return {anchor.gpa95, anchor.gpa99};
    }
    return {curves().gpa95.at(nm), curves().gpa99.at(nm)};
}

CarbonPerArea
FabDatabase::gpa(double nm, double abatement, NodeLookup lookup) const
{
    checkAbatement(abatement);
    const auto [at95, at99] = gpaColumns(nm, lookup);

    // Linear in the abatement fraction through the two characterized
    // columns; fractions outside [0.95, 0.99] extrapolate on the same
    // slope (validated to [0.90, 1.0]); emissions never go negative.
    const double t = (abatement - 0.95) / (0.99 - 0.95);
    const double value = std::max(0.0, util::lerp(at95, at99, t));
    return gramsPerCm2(value);
}

CarbonPerArea
FabDatabase::mpa() const
{
    return gramsPerCm2(kMpaGramsPerCm2);
}

} // namespace act::data
