#include "data/device_db.h"

#include "util/logging.h"
#include "util/strings.h"

namespace act::data {

using util::gigabytes;
using util::kilograms;
using util::Mass;
using util::squareMillimeters;

Mass
LcaProfile::icEstimate() const
{
    return productionFootprint() * ic_share_of_production;
}

Mass
LcaProfile::productionFootprint() const
{
    return total * production_share;
}

Mass
LcaProfile::useFootprint() const
{
    return total * use_share;
}

std::string_view
icCategoryName(IcCategory category)
{
    switch (category) {
      case IcCategory::MainSoc:
        return "Main SoC";
      case IcCategory::CameraIc:
        return "Camera ICs";
      case IcCategory::Dram:
        return "DRAM";
      case IcCategory::Flash:
        return "Flash";
      case IcCategory::Hdd:
        return "HDD";
      case IcCategory::OtherIc:
        return "Other ICs";
    }
    util::panic("unknown IcCategory enumerator");
}

namespace {

IcComponent
logicIc(std::string name, IcCategory category, double area_mm2,
        double node_nm, int packages = 1, std::string fab_node_name = "")
{
    IcComponent ic;
    ic.name = std::move(name);
    ic.kind = IcKind::Logic;
    ic.category = category;
    ic.area = squareMillimeters(area_mm2);
    ic.node_nm = node_nm;
    ic.fab_node_name = std::move(fab_node_name);
    ic.package_count = packages;
    return ic;
}

IcComponent
memoryIc(std::string name, IcKind kind, IcCategory category, double gb,
         std::string technology, int packages = 1)
{
    IcComponent ic;
    ic.name = std::move(name);
    ic.kind = kind;
    ic.category = category;
    ic.capacity = gigabytes(gb);
    ic.technology = std::move(technology);
    ic.package_count = packages;
    return ic;
}

DeviceRecord
makeIphone11()
{
    DeviceRecord device;
    device.name = "iPhone 11";
    device.release_year = 2019;
    device.ics = {
        logicIc("A13 Bionic SoC", IcCategory::MainSoc, 98.5, 7.0, 1,
                "7nm-EUV"),
        logicIc("Cellular modem", IcCategory::OtherIc, 70.0, 14.0),
        logicIc("Camera sensors + ISP", IcCategory::CameraIc, 110.0, 28.0,
                3),
        logicIc("RF transceiver + front-end", IcCategory::OtherIc, 150.0,
                28.0, 3),
        logicIc("Power management ICs", IcCategory::OtherIc, 120.0, 28.0,
                4),
        logicIc("WiFi/BT combo", IcCategory::OtherIc, 50.0, 28.0),
        logicIc("U1 ultra-wideband", IcCategory::OtherIc, 25.0, 16.0),
        logicIc("Audio codec + amplifiers", IcCategory::OtherIc, 60.0,
                28.0, 3),
        logicIc("Display driver + touch", IcCategory::OtherIc, 80.0, 28.0,
                2),
        logicIc("NFC + secure element", IcCategory::OtherIc, 40.0, 28.0,
                2),
        logicIc("Miscellaneous logic", IcCategory::OtherIc, 150.0, 28.0,
                4),
        memoryIc("LPDDR4X DRAM", IcKind::Dram, IcCategory::Dram, 4.0,
                 "LPDDR4"),
        memoryIc("NAND flash", IcKind::Nand, IcCategory::Flash, 64.0,
                 "10nm NAND"),
    };
    // Apple iPhone 11 Product Environmental Report (Sept 2019): 72 kg
    // life-cycle total; 79% production, 17% use, remainder transport and
    // end-of-life. The IC share of production is tuned to the paper's
    // quoted 23 kg top-down estimate.
    device.lca = {kilograms(72.0), 0.79, 0.17, 0.03, 0.01, 0.405};
    return device;
}

DeviceRecord
makeIpad()
{
    DeviceRecord device;
    device.name = "iPad";
    device.release_year = 2019;
    device.ics = {
        logicIc("A10 Fusion SoC", IcCategory::MainSoc, 125.0, 16.0),
        logicIc("Display drivers", IcCategory::OtherIc, 150.0, 28.0, 3),
        logicIc("Camera sensors + ISP", IcCategory::CameraIc, 60.0, 28.0,
                2),
        logicIc("RF + WiFi/BT", IcCategory::OtherIc, 120.0, 28.0, 3),
        logicIc("Power management ICs", IcCategory::OtherIc, 140.0, 28.0,
                4),
        logicIc("Audio codec + amplifiers", IcCategory::OtherIc, 80.0,
                28.0, 2),
        logicIc("Touch controllers", IcCategory::OtherIc, 100.0, 28.0, 2),
        logicIc("Miscellaneous logic", IcCategory::OtherIc, 600.0, 28.0,
                6),
        memoryIc("LPDDR4 DRAM", IcKind::Dram, IcCategory::Dram, 3.0,
                 "LPDDR4"),
        memoryIc("NAND flash", IcKind::Nand, IcCategory::Flash, 32.0,
                 "10nm NAND"),
    };
    // Apple iPad PER (Sept 2019) top-line, tuned so the 44% fleet
    // average reproduces the paper's 28 kg top-down estimate.
    device.lca = {kilograms(80.0), 0.795, 0.16, 0.035, 0.01, 0.44};
    return device;
}

DeviceRecord
makeIphone3gs()
{
    DeviceRecord device;
    device.name = "iPhone 3GS";
    device.release_year = 2009;
    // Fig. 1 uses only the published life-cycle shares; the 65 nm-era
    // silicon predates the ACT fab characterization range, so no
    // bottom-up IC list is modeled.
    device.lca = {kilograms(55.0), 0.45, 0.49, 0.04, 0.02, 0.44};
    return device;
}

DeviceRecord
makeFairphone3()
{
    DeviceRecord device;
    device.name = "Fairphone 3";
    device.release_year = 2019;
    device.ics = {
        logicIc("Snapdragon 632 CPU", IcCategory::MainSoc, 70.0, 14.0),
        logicIc("Other ICs", IcCategory::OtherIc, 470.0, 14.0, 12),
        memoryIc("LPDDR4 DRAM", IcKind::Dram, IcCategory::Dram, 4.0,
                 "10nm DDR4"),
        memoryIc("NAND flash", IcKind::Nand, IcCategory::Flash, 64.0,
                 "V3 NAND TLC"),
    };
    // Fairphone 3 LCA (Proske et al. 2020).
    device.lca = {kilograms(39.5), 0.72, 0.12, 0.11, 0.05, 0.70};
    device.lca_breakdown = {
        {"core module", 0.42},   {"display", 0.12},
        {"camera", 0.06},        {"battery", 0.04},
        {"top module", 0.05},    {"bottom module", 0.04},
        {"product packaging", 0.03}, {"transport & other", 0.24},
    };
    return device;
}

DeviceRecord
makeDellR740()
{
    DeviceRecord device;
    device.name = "Dell R740";
    device.release_year = 2019;
    device.ics = {
        logicIc("2x Xeon CPU", IcCategory::MainSoc, 2.0 * 694.0, 14.0, 2),
        logicIc("Mainboard ICs (PCH/NIC/BMC)", IcCategory::OtherIc, 300.0,
                28.0, 6),
        memoryIc("12x 32GB DDR4 DIMMs", IcKind::Dram, IcCategory::Dram,
                 384.0, "10nm DDR4", 12),
        memoryIc("8x 3.84TB SSD NAND", IcKind::Nand, IcCategory::Flash,
                 30720.0, "10nm NAND", 8),
    };
    // Dell R740 LCA (Busa et al. 2019) top-line; ICs dominate the
    // embodied footprint (~80%, Section A.3).
    device.lca = {kilograms(7730.0), 0.50, 0.47, 0.02, 0.01, 0.80};
    device.lca_breakdown = {
        {"SSD", 0.53},      {"mainboard", 0.17}, {"chassis", 0.07},
        {"PWB", 0.05},      {"PSU", 0.04},       {"fans", 0.02},
        {"transport", 0.04}, {"other", 0.08},
    };
    return device;
}

} // namespace

DeviceDatabase::DeviceDatabase()
{
    records_ = {
        makeIphone3gs(),
        makeIphone11(),
        makeIpad(),
        makeFairphone3(),
        makeDellR740(),
    };
}

const DeviceDatabase &
DeviceDatabase::instance()
{
    static const DeviceDatabase database;
    return database;
}

std::span<const DeviceRecord>
DeviceDatabase::records() const
{
    return records_;
}

std::optional<DeviceRecord>
DeviceDatabase::findByName(std::string_view name) const
{
    const std::string lowered = util::toLower(name);
    for (const auto &record : records_) {
        if (util::toLower(record.name) == lowered)
            return record;
    }
    return std::nullopt;
}

DeviceRecord
DeviceDatabase::byNameOrDie(std::string_view name) const
{
    auto record = findByName(name);
    if (!record)
        util::fatal("unknown device '", std::string(name), "'");
    return *record;
}

} // namespace act::data
