#include "data/device_json.h"

#include <array>
#include <utility>

#include "data/fab_db.h"
#include "data/memory_db.h"
#include "util/logging.h"

namespace act::data {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

namespace {

constexpr std::array<std::pair<IcKind, const char *>, 4> kKindNames = {{
    {IcKind::Logic, "logic"},
    {IcKind::Dram, "dram"},
    {IcKind::Nand, "nand"},
    {IcKind::Hdd, "hdd"},
}};

constexpr std::array<std::pair<IcCategory, const char *>, 6>
    kCategoryNames = {{
        {IcCategory::MainSoc, "main_soc"},
        {IcCategory::CameraIc, "camera"},
        {IcCategory::Dram, "dram"},
        {IcCategory::Flash, "flash"},
        {IcCategory::Hdd, "hdd"},
        {IcCategory::OtherIc, "other"},
    }};

IcKind
kindFromString(const std::string &name)
{
    for (const auto &[kind, label] : kKindNames) {
        if (name == label)
            return kind;
    }
    util::fatal("unknown IC kind '", name,
                "' (expected logic/dram/nand/hdd)");
}

const char *
kindToString(IcKind kind)
{
    for (const auto &[candidate, label] : kKindNames) {
        if (candidate == kind)
            return label;
    }
    util::panic("unknown IcKind enumerator");
}

IcCategory
categoryFromString(const std::string &name)
{
    for (const auto &[category, label] : kCategoryNames) {
        if (name == label)
            return category;
    }
    util::fatal("unknown IC category '", name, "'");
}

const char *
categoryToString(IcCategory category)
{
    for (const auto &[candidate, label] : kCategoryNames) {
        if (candidate == category)
            return label;
    }
    util::panic("unknown IcCategory enumerator");
}

IcComponent
icFromJson(const JsonValue &value)
{
    IcComponent ic;
    ic.name = value.at("name").asString();
    ic.kind = kindFromString(value.at("kind").asString());
    ic.category =
        categoryFromString(value.stringOr("category", "other"));
    ic.package_count =
        static_cast<int>(value.numberOr("packages", 1.0));
    if (ic.package_count < 1)
        util::fatal("IC '", ic.name, "' has a non-positive package "
                    "count");

    if (ic.kind == IcKind::Logic) {
        if (!value.contains("area_mm2") || !value.contains("node_nm"))
            util::fatal("logic IC '", ic.name,
                        "' needs area_mm2 and node_nm");
        ic.area = util::squareMillimeters(value.at("area_mm2").asNumber());
        ic.node_nm = value.at("node_nm").asNumber();
        ic.fab_node_name = value.stringOr("fab_node", "");
        if (util::asSquareMillimeters(ic.area) <= 0.0)
            util::fatal("logic IC '", ic.name, "' has non-positive "
                        "area");
        if (ic.fab_node_name.empty() &&
            (ic.node_nm < FabDatabase::kMinNode ||
             ic.node_nm > FabDatabase::kMaxNode)) {
            util::fatal("logic IC '", ic.name, "' node ", ic.node_nm,
                        " nm outside the modeled [3, 28] nm range");
        }
        if (!ic.fab_node_name.empty() &&
            !FabDatabase::instance().findByName(ic.fab_node_name)) {
            util::fatal("logic IC '", ic.name, "' names unknown fab "
                        "node '", ic.fab_node_name, "'");
        }
    } else {
        if (!value.contains("capacity_gb") ||
            !value.contains("technology")) {
            util::fatal("storage IC '", ic.name,
                        "' needs capacity_gb and technology");
        }
        ic.capacity =
            util::gigabytes(value.at("capacity_gb").asNumber());
        ic.technology = value.at("technology").asString();
        if (util::asGigabytes(ic.capacity) <= 0.0)
            util::fatal("storage IC '", ic.name,
                        "' has non-positive capacity");
        if (!findStorage(ic.technology)) {
            util::fatal("storage IC '", ic.name,
                        "' names unknown technology '", ic.technology,
                        "'");
        }
    }
    return ic;
}

JsonValue
toJson(const IcComponent &ic)
{
    JsonObject object;
    object["name"] = JsonValue(ic.name);
    object["kind"] = JsonValue(kindToString(ic.kind));
    object["category"] = JsonValue(categoryToString(ic.category));
    object["packages"] = JsonValue(ic.package_count);
    if (ic.kind == IcKind::Logic) {
        object["area_mm2"] =
            JsonValue(util::asSquareMillimeters(ic.area));
        object["node_nm"] = JsonValue(ic.node_nm);
        if (!ic.fab_node_name.empty())
            object["fab_node"] = JsonValue(ic.fab_node_name);
    } else {
        object["capacity_gb"] =
            JsonValue(util::asGigabytes(ic.capacity));
        object["technology"] = JsonValue(ic.technology);
    }
    return JsonValue(std::move(object));
}

LcaProfile
lcaFromJson(const JsonValue &value)
{
    LcaProfile lca;
    lca.total = util::kilograms(value.numberOr("total_kg", 0.0));
    lca.production_share = value.numberOr("production_share", 0.0);
    lca.use_share = value.numberOr("use_share", 0.0);
    lca.transport_share = value.numberOr("transport_share", 0.0);
    lca.eol_share = value.numberOr("eol_share", 0.0);
    lca.ic_share_of_production =
        value.numberOr("ic_share_of_production", 0.44);
    return lca;
}

} // namespace

DeviceRecord
deviceFromJson(const JsonValue &value)
{
    DeviceRecord device;
    device.name = value.at("name").asString();
    device.release_year =
        static_cast<int>(value.numberOr("release_year", 0.0));
    if (value.contains("ics")) {
        for (const auto &ic : value.at("ics").asArray())
            device.ics.push_back(icFromJson(ic));
    }
    if (value.contains("lca"))
        device.lca = lcaFromJson(value.at("lca"));
    return device;
}

JsonValue
toJson(const DeviceRecord &device)
{
    JsonObject object;
    object["name"] = JsonValue(device.name);
    object["release_year"] = JsonValue(device.release_year);
    JsonArray ics;
    for (const auto &ic : device.ics)
        ics.push_back(toJson(ic));
    object["ics"] = JsonValue(std::move(ics));

    JsonObject lca;
    lca["total_kg"] = JsonValue(util::asKilograms(device.lca.total));
    lca["production_share"] = JsonValue(device.lca.production_share);
    lca["use_share"] = JsonValue(device.lca.use_share);
    lca["transport_share"] = JsonValue(device.lca.transport_share);
    lca["eol_share"] = JsonValue(device.lca.eol_share);
    lca["ic_share_of_production"] =
        JsonValue(device.lca.ic_share_of_production);
    object["lca"] = JsonValue(std::move(lca));
    return JsonValue(std::move(object));
}

DeviceRecord
loadDeviceFile(const std::string &path)
{
    try {
        return deviceFromJson(config::loadJsonFile(path));
    } catch (const config::JsonParseError &error) {
        util::fatal("failed to parse device file '", path, "': ",
                    error.what());
    } catch (const config::JsonTypeError &error) {
        util::fatal("bad device file '", path, "': ", error.what());
    }
}

void
saveDeviceFile(const std::string &path, const DeviceRecord &device)
{
    config::saveJsonFile(path, toJson(device));
}

} // namespace act::data
