/**
 * @file
 * Operational carbon intensities from the paper's Appendix A.1:
 * per-energy-source intensities (Table 5) and per-region grid averages
 * (Table 6), plus mixing helpers used to model partially renewable fabs
 * and grids.
 */

#ifndef ACT_DATA_CARBON_INTENSITY_DB_H
#define ACT_DATA_CARBON_INTENSITY_DB_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.h"

namespace act::data {

/** Energy generation sources of Table 5. */
enum class EnergySource
{
    Coal,
    Gas,
    Biomass,
    Solar,
    Geothermal,
    Hydropower,
    Nuclear,
    Wind,
    /** An idealized zero-emission source, used for the paper's
     *  "carbon free" sweep endpoints in Fig. 10. */
    CarbonFree,
};

/** Geographic grid averages of Table 6. */
enum class Region
{
    World,
    India,
    Australia,
    Taiwan,
    Singapore,
    UnitedStates,
    Europe,
    Brazil,
    Iceland,
};

/** One Table 5 row. */
struct EnergySourceRecord
{
    EnergySource source;
    std::string name;
    util::CarbonIntensity intensity;
    /** Energy-payback time in months (Table 5, right column). */
    double payback_months;
};

/** One Table 6 row. */
struct RegionRecord
{
    Region region;
    std::string name;
    util::CarbonIntensity intensity;
    std::string dominant_source;
};

/** A (source, share) component of an energy mix; shares must sum to 1. */
struct MixComponent
{
    EnergySource source;
    double share;
};

/** All Table 5 rows, in the paper's order. */
std::span<const EnergySourceRecord> energySourceTable();

/** All Table 6 rows, in the paper's order. */
std::span<const RegionRecord> regionTable();

/** Carbon intensity of a single source; fatal on unknown enum. */
util::CarbonIntensity sourceIntensity(EnergySource source);

/** Grid intensity of a region. */
util::CarbonIntensity regionIntensity(Region region);

/** Display names. */
std::string_view sourceName(EnergySource source);
std::string_view regionName(Region region);

/** Lookup by (case-insensitive) name; fatal on unknown names. */
EnergySource sourceByName(std::string_view name);
Region regionByName(std::string_view name);

/** Share-weighted mix intensity; fatal unless shares sum to ~1. */
util::CarbonIntensity mixIntensity(std::span<const MixComponent> mix);

/**
 * Blend a base grid with a renewable share: the paper's default fab runs
 * on the Taiwan grid with 25% renewable (solar) energy procurement.
 */
util::CarbonIntensity renewableBlend(util::CarbonIntensity base_grid,
                                     double renewable_share,
                                     EnergySource renewable =
                                         EnergySource::Solar);

/**
 * The paper's default fab carbon intensity: Taiwan power grid blended
 * with 25% renewable procurement (Section 3.1, Fig. 6 solid line).
 */
util::CarbonIntensity defaultFabIntensity();

/**
 * The paper's default use-phase carbon intensity: the US grid average
 * used throughout Section 6 (300 g CO2/kWh per the paper's text; note
 * Table 6 lists the US average as 380 g CO2/kWh -- the case studies use
 * the rounded 300 figure, so both are exposed).
 */
util::CarbonIntensity defaultUseIntensity();

} // namespace act::data

#endif // ACT_DATA_CARBON_INTENSITY_DB_H
