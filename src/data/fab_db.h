/**
 * @file
 * Semiconductor fab characterization from the paper's Appendix A.2:
 * per-node fab energy (EPA) and fab gas emissions (GPA) for application
 * processor manufacturing (Table 7, sourced from imec's IEDM'20 DTCO
 * study), raw-material procurement intensity (MPA, Table 8), and default
 * yield. Nodes between table anchors are interpolated log-linearly in
 * feature size; nearest-anchor lookup is kept for the ablation study.
 */

#ifndef ACT_DATA_FAB_DB_H
#define ACT_DATA_FAB_DB_H

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "util/units.h"

namespace act::data {

/** One Table 7 row. */
struct FabNodeRecord
{
    /** Paper's row label, e.g. "28nm", "7nm-EUV-DP". */
    std::string name;
    /** Feature size in nanometers. */
    double nm;
    /** Fab energy per unit area manufactured. */
    util::EnergyPerArea epa;
    /** Gas/chemical emissions per area at 95% abatement. */
    util::CarbonPerArea gpa_abated_95;
    /** Gas/chemical emissions per area at 99% abatement. */
    util::CarbonPerArea gpa_abated_99;
};

/** Interpolation behaviour selector (ablation: Fig. 6 --ablation). */
enum class NodeLookup
{
    Interpolate,
    NearestAnchor,
};

/**
 * The fab database. Immutable singleton over the Appendix data; all
 * queries are by feature size in nanometers within [3, 28].
 */
class FabDatabase
{
  public:
    static const FabDatabase &instance();

    /** All Table 7 rows in paper order (including the EUV variants). */
    std::span<const FabNodeRecord> records() const;

    /** Row by label ("7nm-EUV"); nullopt when absent. */
    std::optional<FabNodeRecord> findByName(std::string_view name) const;

    /** Fab energy per area at a node; fatal outside [3, 28] nm. */
    util::EnergyPerArea
    epa(double nm, NodeLookup lookup = NodeLookup::Interpolate) const;

    /**
     * Gas emissions per area at a node and gaseous-abatement fraction.
     * Table 7 anchors 95% and 99% abatement; intermediate fractions
     * interpolate between the columns and fractions below 95% linearly
     * extrapolate towards the unabated emission level (abatement a
     * removes a fraction a of the raw gas GWP).
     */
    util::CarbonPerArea
    gpa(double nm, double abatement = kDefaultAbatement,
        NodeLookup lookup = NodeLookup::Interpolate) const;

    /**
     * The two characterized abatement columns (95%, 99%) resolved at a
     * node, in g CO2/cm2 -- the per-node constants gpa() interpolates
     * between. Exposed so a compiled evaluation plan
     * (core/eval_plan.h) can resolve the node once and replay the
     * abatement interpolation per sample with bit-identical results.
     */
    std::pair<double, double>
    gpaColumns(double nm,
               NodeLookup lookup = NodeLookup::Interpolate) const;

    /** Raw material procurement intensity (Table 8): 500 g CO2/cm2. */
    util::CarbonPerArea mpa() const;

    /** Default fab yield used by the paper's released tool. */
    double defaultYield() const { return kDefaultYield; }

    /** TSMC's reported gaseous abatement (Fig. 6 annotation). */
    static constexpr double kDefaultAbatement = 0.97;
    static constexpr double kDefaultYield = 0.875;

    /** Valid feature-size query range. */
    static constexpr double kMinNode = 3.0;
    static constexpr double kMaxNode = 28.0;

  private:
    FabDatabase();

    struct Curves;
    const Curves &curves() const;
};

} // namespace act::data

#endif // ACT_DATA_FAB_DB_H
