/**
 * @file
 * Diurnal carbon-intensity profiles. Appendix A.1 notes that "while
 * these are average values, carbon intensity can fluctuate over time";
 * this module models that fluctuation with 24-hour profiles shaped by
 * the renewable mix (solar peaks mid-day, wind is flatter), enabling
 * the carbon-aware scheduling extension in core/scheduling.h.
 *
 * DiurnalProfile is a thin 24-sample view over the general
 * data::IntensitySeries substrate; callers that need arbitrary
 * length/resolution (seasonal years, measured traces) should use
 * IntensitySeries directly.
 */

#ifndef ACT_DATA_CI_PROFILE_H
#define ACT_DATA_CI_PROFILE_H

#include <array>
#include <cstddef>

#include "data/carbon_intensity_db.h"
#include "data/intensity_series.h"
#include "util/units.h"

namespace act::data {

/** Hourly carbon intensity over one day. */
class DiurnalProfile
{
  public:
    static constexpr std::size_t kHours = 24;

    /** A flat profile at a region's average intensity. */
    static DiurnalProfile flat(util::CarbonIntensity average);

    /**
     * A grid whose renewable share is solar: intensity dips towards
     * the solar window (10:00-16:00) and rises at night. The daily
     * *average* equals blend(base, solar_share), so comparisons
     * against the static model are apples-to-apples.
     *
     * @param base fossil-grid intensity.
     * @param solar_share daily-average solar fraction in [0, 0.4]
     *        (a day-only source cannot exceed ~0.44 without storage).
     */
    static DiurnalProfile solarGrid(util::CarbonIntensity base,
                                    double solar_share);

    /**
     * A wind-heavy grid: milder, night-leaning dips (wind often peaks
     * overnight); daily average equals blend(base, wind_share).
     */
    static DiurnalProfile windGrid(util::CarbonIntensity base,
                                   double wind_share);

    /** Intensity during hour [h, h+1); h taken modulo 24. */
    util::CarbonIntensity at(std::size_t hour) const;

    /** Daily average intensity. */
    util::CarbonIntensity dailyAverage() const;

    /** Hour indices sorted from greenest to dirtiest. */
    std::array<std::size_t, kHours> hoursByIntensity() const;

    /** The underlying one-day series (24 samples, 1 h step). */
    const IntensitySeries &series() const { return series_; }

  private:
    explicit DiurnalProfile(IntensitySeries series);

    IntensitySeries series_;
};

} // namespace act::data

#endif // ACT_DATA_CI_PROFILE_H
