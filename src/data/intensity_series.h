/**
 * @file
 * Time-series grid carbon intensity: the general substrate under the
 * diurnal profiles of ci_profile.h. ACT's Eq. 2 treats CI_use as a
 * constant; Appendix A.1 notes real grids fluctuate. An
 * IntensitySeries models that fluctuation at arbitrary length and
 * resolution -- one day at hourly steps, a seasonal x diurnal year of
 * 8760 samples, or measured traces loaded from JSON -- and is what the
 * carbon-aware scheduling policies (core/scheduling.h) and the fleet
 * replayer (fleet/replay.h) consume.
 *
 * Series are cyclic: at(i) wraps modulo size(), so a one-day series
 * also serves as an infinite repeating day.
 *
 * JSON forms (config parser, '//' comments and trailing commas OK):
 *
 *   { "name": "trace", "step_hours": 1,
 *     "samples_g_per_kwh": [583, 570, ...] }          // explicit
 *
 *   { "name": "us-solar", "profile": "solar",          // generated
 *     "region": "United States",                       //  (or
 *     "share": 0.3,                                    //  "base_g_per_kwh")
 *     "days": 365,
 *     "seasonal_amplitude": 0.15,
 *     "seasonal_peak_day": 0 }
 */

#ifndef ACT_DATA_INTENSITY_SERIES_H
#define ACT_DATA_INTENSITY_SERIES_H

#include <cstddef>
#include <string>
#include <vector>

#include "config/json.h"
#include "util/units.h"

namespace act::data {

/** A cyclic carbon-intensity time series at a fixed sample step. */
class IntensitySeries
{
  public:
    /** Wrap explicit samples (g CO2/kWh); fatal on empty, negative,
     *  or non-finite samples, or a non-positive step. */
    static IntensitySeries fromSamples(std::vector<double> grams_per_kwh,
                                       double step_hours = 1.0,
                                       std::string name = "");

    /** A flat series at a constant intensity. */
    static IntensitySeries flat(util::CarbonIntensity average,
                                std::size_t samples = 24,
                                double step_hours = 1.0);

    /**
     * One 24-hour day of a grid whose renewable share is solar:
     * intensity dips towards the solar window (10:00-16:00) and rises
     * at night. The daily *average* equals blend(base, solar_share).
     * @p solar_share is the daily-average solar fraction in [0, 0.4]
     * (a day-only source cannot exceed ~0.44 without storage).
     */
    static IntensitySeries solarDay(util::CarbonIntensity base,
                                    double solar_share);

    /** One 24-hour day of a wind-heavy grid: milder, night-leaning
     *  dips; daily average equals blend(base, wind_share). */
    static IntensitySeries windDay(util::CarbonIntensity base,
                                   double wind_share);

    /**
     * Seasonal composition: tile @p day over @p days days, scaling day
     * d's samples by 1 + amplitude * cos(2*pi * (d - peak_day) / days)
     * -- @p peak_day is the dirtiest day of the cycle (day 0 = the
     * series start; for a solar grid, northern mid-winter). The cycle
     * length is the series itself, so the result stays seamlessly
     * cyclic. Fatal unless 0 <= amplitude < 1.
     */
    static IntensitySeries seasonal(const IntensitySeries &day,
                                    std::size_t days, double amplitude,
                                    double peak_day = 0.0);

    /** Intensity during sample [i, i+1); i taken modulo size(). */
    util::CarbonIntensity
    at(std::size_t sample) const
    {
        return util::gramsPerKilowattHour(
            grams_per_kwh_[sample % grams_per_kwh_.size()]);
    }

    /** Raw magnitude of at(), for hot loops. */
    double
    gramsAt(std::size_t sample) const
    {
        return grams_per_kwh_[sample % grams_per_kwh_.size()];
    }

    std::size_t size() const { return grams_per_kwh_.size(); }

    /** Sample step, in hours. */
    double stepHours() const { return step_hours_; }

    util::Duration step() const { return util::hours(step_hours_); }

    /** Total span of one cycle. */
    util::Duration
    duration() const
    {
        return util::hours(durationHours());
    }

    double
    durationHours() const
    {
        return static_cast<double>(grams_per_kwh_.size()) * step_hours_;
    }

    const std::string &name() const { return name_; }

    /** Raw samples (g CO2/kWh), one cycle. */
    const std::vector<double> &samples() const { return grams_per_kwh_; }

    /** Average intensity over one cycle. */
    util::CarbonIntensity average() const;

    /** Sample indices sorted from greenest to dirtiest. */
    std::vector<std::size_t> samplesByIntensity() const;

  private:
    IntensitySeries() = default;

    std::vector<double> grams_per_kwh_;
    double step_hours_ = 1.0;
    std::string name_;
};

/**
 * Parse a series from either JSON form (see the file comment). The
 * generated form takes "profile" of "flat", "solar", or "wind", a base
 * grid as "region" (Table 6 name) or "base_g_per_kwh", a renewable
 * "share" for solar/wind, and optional "days" / "seasonal_amplitude" /
 * "seasonal_peak_day" to tile the day into a seasonal series. Fatal on
 * malformed input.
 */
IntensitySeries intensitySeriesFromJson(const config::JsonValue &value);

/** Serialize in the explicit-samples form (bit-exact round-trip). */
config::JsonValue toJson(const IntensitySeries &series);

/** Load a series from a JSON file; fatal on I/O or schema errors. */
IntensitySeries loadIntensitySeriesFile(const std::string &path);

} // namespace act::data

#endif // ACT_DATA_INTENSITY_SERIES_H
