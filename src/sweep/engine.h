/**
 * @file
 * The unified sweep engine: every design-space sweep in the repo --
 * Monte Carlo sampling, tornado sensitivity, scoreboard columns, the
 * mobile and accelerator design spaces -- runs through one driver that
 * owns chunking, per-chunk RNG streams, instrumentation, and ordered
 * reduction. Call sites supply only a plan and an evaluator; the
 * engine supplies the determinism contract:
 *
 *  - Chunk layout is a pure function of the plan (see plan.h), so
 *    results are bit-identical for any thread count.
 *  - Chunk c draws from the RNG stream util::deriveSeed(plan.seed, c),
 *    so which thread runs a chunk never changes what it samples.
 *  - Reduction folds chunk results in chunk order on the caller.
 *
 * The same layout drives multi-process sharding: `runShardedSweep`
 * evaluates one shard's contiguous chunk slice into JSON payloads,
 * `toJson`/`shardResultFromJson` move partials between processes, and
 * `mergeShards` recombines them -- rejecting overlapping, missing, or
 * mismatched partials -- into a result document byte-identical to a
 * single-process `fullSweepResult` run.
 */

#ifndef ACT_SWEEP_ENGINE_H
#define ACT_SWEEP_ENGINE_H

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "config/json.h"
#include "sweep/plan.h"
#include "util/parallel.h"
#include "util/random.h"

namespace act::sweep {

namespace detail {

/**
 * Run @p body over @p chunks on the shared pool with the sweep's trace
 * span and metrics counters. @p body receives *global* chunk indices
 * (local position + @p chunk_offset), which also seed the RNG streams,
 * so a shard's chunk 0 is not the sweep's chunk 0.
 */
void runPlanChunks(
    const SweepPlan &plan, const std::vector<util::IndexRange> &chunks,
    std::size_t chunk_offset,
    const std::function<void(std::size_t, util::IndexRange)> &body);

/**
 * Grain for per-item map sweeps when the plan leaves it automatic:
 * aims at a few chunks per worker for dynamic load balancing without
 * per-item pool ticket traffic. Thread-count aware -- legal only
 * because a map sweep's output is independent of the chunk layout.
 */
std::size_t mapGrain(std::size_t items);

} // namespace detail

/**
 * Evaluate every chunk of @p plan: @p evaluator(chunk, range, rng) ->
 * Chunk, returning the per-chunk results in chunk order. The RNG is
 * pre-seeded with the chunk's derived stream.
 */
template <typename Evaluator>
auto
runSweepChunks(const SweepPlan &plan, Evaluator &&evaluator)
{
    using Chunk = std::decay_t<std::invoke_result_t<
        Evaluator &, std::size_t, util::IndexRange,
        util::Xorshift64Star &>>;
    const std::vector<util::IndexRange> chunks = planChunks(plan);
    std::vector<Chunk> partials(chunks.size());
    detail::runPlanChunks(
        plan, chunks, 0,
        [&](std::size_t chunk, util::IndexRange range) {
            util::Xorshift64Star rng(
                util::deriveSeed(plan.seed, chunk));
            partials[chunk] = evaluator(chunk, range, rng);
        });
    return partials;
}

/**
 * Deterministic sweep with ordered reduction: evaluate every chunk,
 * then fold the chunk results in chunk order on the calling thread:
 *
 *   acc = reduce(reduce(init, chunk0), chunk1) ...
 *
 * Chunk layout and stream seeds come from the plan alone, so the
 * result is bit-identical for every thread count.
 */
template <typename Accumulator, typename Evaluator, typename Reducer>
Accumulator
runSweep(const SweepPlan &plan, Evaluator &&evaluator, Reducer &&reduce,
         Accumulator init = Accumulator{})
{
    auto partials = runSweepChunks(plan, evaluator);
    Accumulator accumulator = std::move(init);
    for (auto &partial : partials)
        accumulator = reduce(std::move(accumulator), std::move(partial));
    return accumulator;
}

/**
 * Per-item map sweep: result[i] = @p evaluator(i) for i in
 * [0, plan.items), each item filling its own pre-sized slot. Because
 * the output is independent of the chunk layout, an automatic grain
 * may adapt to the thread count (detail::mapGrain) -- call sites no
 * longer pick per-call granularity constants.
 */
template <typename T, typename Evaluator>
std::vector<T>
runSweepMap(const SweepPlan &plan, Evaluator &&evaluator)
{
    std::vector<T> out(plan.items);
    const std::size_t grain =
        plan.grain != 0 ? plan.grain : detail::mapGrain(plan.items);
    const std::vector<util::IndexRange> chunks =
        util::staticChunks(0, plan.items, grain);
    detail::runPlanChunks(
        plan, chunks, 0,
        [&](std::size_t, util::IndexRange range) {
            for (std::size_t i = range.begin; i < range.end; ++i)
                out[i] = evaluator(i);
        });
    return out;
}

/** Chunk evaluator for the serializable (sharded) path. */
using JsonChunkEvaluator = std::function<config::JsonValue(
    std::size_t chunk, util::IndexRange range,
    util::Xorshift64Star &rng)>;

/** One shard's ordered partial results. */
struct ShardResult
{
    SweepPlan plan;
    ShardSpec shard;
    /** Global index of the first owned chunk. */
    std::size_t chunk_begin = 0;
    /** Payloads for chunks [chunk_begin, chunk_begin + size()). */
    std::vector<config::JsonValue> chunks;
    /**
     * Optional telemetry: an act.metrics.v1 document (obs/metrics_doc)
     * riding along in the partial file, or null. Telemetry never
     * touches the result path -- mergeShards() strips it, so the
     * merged document stays byte-identical whether or not shards
     * carried metrics.
     */
    config::JsonValue metrics;
};

/** Observability knobs for a shard run; defaults disable everything. */
struct ShardRunOptions
{
    /** Heartbeat sidecar path (act.heartbeat.v1); empty disables. */
    std::string heartbeat_path;
    /** Minimum seconds between heartbeat writes. */
    double heartbeat_interval_s = 1.0;
};

/**
 * Evaluate the slice of @p plan owned by @p shard (chunks still run in
 * parallel on the pool within the shard). Fatal when the plan has no
 * items or the shard spec is invalid. With a heartbeat path in
 * @p options, progress is published per chunk through a time-gated
 * obs::HeartbeatWriter -- purely observational, the payloads are
 * bit-identical either way.
 */
ShardResult runShardedSweep(const SweepPlan &plan,
                            const ShardSpec &shard,
                            const JsonChunkEvaluator &evaluator,
                            const ShardRunOptions &options);

ShardResult runShardedSweep(const SweepPlan &plan,
                            const ShardSpec &shard,
                            const JsonChunkEvaluator &evaluator);

/** Partial-result file document ("act.sweep.partial.v1"). */
config::JsonValue toJson(const ShardResult &result);
ShardResult shardResultFromJson(const config::JsonValue &value);

/**
 * Recombine partials into the canonical result document. Fatal when
 * shards disagree on the plan or shard count, repeat a shard index,
 * overlap, or fail to cover every chunk -- a partial set that merges
 * is guaranteed bit-identical to the single-process run.
 */
config::JsonValue mergeShards(const std::vector<ShardResult> &shards);

/**
 * Single-process reference run: evaluate every chunk and return the
 * canonical result document ("act.sweep.result.v1", payloads in chunk
 * order) that mergeShards() reproduces byte-for-byte.
 */
config::JsonValue fullSweepResult(const SweepPlan &plan,
                                  const JsonChunkEvaluator &evaluator);

} // namespace act::sweep

#endif // ACT_SWEEP_ENGINE_H
