#include "sweep/domains.h"

#include <memory>
#include <sstream>
#include <utility>

#include "core/embodied.h"
#include "core/model_config.h"
#include "data/soc_db.h"
#include "mobile/platform.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/units.h"

namespace act::sweep {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

namespace {

/**
 * Stamp (or verify) the model-config fingerprint. Every shard runs
 * this, so shards built from different data vintages fail here rather
 * than merging into a silently inconsistent result.
 */
void
resolveFingerprint(SweepPlan &plan)
{
    const std::string current = core::modelConfigFingerprint();
    if (plan.fingerprint.empty()) {
        plan.fingerprint = current;
    } else if (plan.fingerprint != current) {
        util::fatal("sweep plan fingerprint ", plan.fingerprint,
                    " does not match this build's model data (",
                    current, ") -- the plan is stale; clear its "
                    "'fingerprint' field to re-author it");
    }
}

// ---------------------------------------------------------------------
// cpa_montecarlo: Eq. 5 CPA uncertainty at a fixed node.
// ---------------------------------------------------------------------

/** How a sampled value lands in FabParams. */
enum class FabField
{
    CiFab,
    Yield,
    Abatement,
};

struct CpaMonteCarloConfig
{
    double node_nm = 0.0;
    core::FabParams base_fab;
    std::vector<dse::UncertainParameter> parameters;
    std::vector<FabField> fields;
};

CpaMonteCarloConfig
parseCpaMonteCarloConfig(const SweepPlan &plan)
{
    if (!plan.config.isObject())
        util::fatal("cpa_montecarlo plan needs a 'config' object");
    CpaMonteCarloConfig parsed;
    parsed.node_nm = plan.config.numberOr("node_nm", 0.0);
    if (parsed.node_nm <= 0.0)
        util::fatal("cpa_montecarlo config needs a positive 'node_nm'");
    if (plan.config.contains("fab")) {
        parsed.base_fab =
            core::fabParamsFromJson(plan.config.at("fab"));
    }
    if (!plan.config.contains("parameters"))
        util::fatal("cpa_montecarlo config needs a 'parameters' array");
    for (const JsonValue &entry :
         plan.config.at("parameters").asArray()) {
        dse::UncertainParameter parameter;
        parameter.name = entry.at("name").asString();
        const std::string distribution =
            entry.stringOr("distribution", "uniform");
        if (distribution == "uniform") {
            parameter.distribution = dse::Distribution::Uniform;
        } else if (distribution == "triangular") {
            parameter.distribution = dse::Distribution::Triangular;
        } else {
            util::fatal("unknown distribution '", distribution,
                        "' (expected 'uniform' or 'triangular')");
        }
        parameter.low = entry.at("low").asNumber();
        parameter.high = entry.at("high").asNumber();
        parameter.baseline = entry.numberOr(
            "baseline", (parameter.low + parameter.high) / 2.0);

        FabField field;
        if (parameter.name == "ci_fab_g_per_kwh") {
            field = FabField::CiFab;
        } else if (parameter.name == "yield") {
            field = FabField::Yield;
        } else if (parameter.name == "abatement") {
            field = FabField::Abatement;
        } else {
            util::fatal("unknown cpa_montecarlo parameter '",
                        parameter.name, "' (expected "
                        "'ci_fab_g_per_kwh', 'yield', or 'abatement')");
        }
        parsed.parameters.push_back(std::move(parameter));
        parsed.fields.push_back(field);
    }
    return parsed;
}

std::function<double(const std::vector<double> &)>
cpaModel(const CpaMonteCarloConfig &config)
{
    return [config](const std::vector<double> &values) {
        core::FabParams fab = config.base_fab;
        for (std::size_t i = 0; i < values.size(); ++i) {
            switch (config.fields[i]) {
              case FabField::CiFab:
                fab.ci_fab = util::gramsPerKilowattHour(values[i]);
                break;
              case FabField::Yield:
                fab.yield = values[i];
                break;
              case FabField::Abatement:
                fab.abatement = values[i];
                break;
            }
        }
        return core::carbonPerArea(fab, config.node_nm).value();
    };
}

void
prepareCpaMonteCarlo(SweepPlan &plan)
{
    if (plan.items == 0)
        plan.items = 10'000;
    if (plan.grain == 0)
        plan.grain = dse::kMonteCarloChunk;
    const CpaMonteCarloConfig config = parseCpaMonteCarloConfig(plan);
    dse::validateMonteCarloInputs(config.parameters, plan.items);
    resolveFingerprint(plan);
}

JsonChunkEvaluator
cpaMonteCarloEvaluator(const SweepPlan &plan)
{
    // Parsed once; shared read-only by every concurrent chunk.
    auto config = std::make_shared<const CpaMonteCarloConfig>(
        parseCpaMonteCarloConfig(plan));
    auto model = cpaModel(*config);
    return [config, model](std::size_t, util::IndexRange range,
                           util::Xorshift64Star &rng) {
        return toJson(dse::monteCarloChunk(config->parameters, model,
                                           range, rng));
    };
}

std::string
summarizeCpaMonteCarlo(const SweepPlan &plan, const JsonArray &results)
{
    const dse::MonteCarloResult result =
        monteCarloResultFromPayloads(plan.items, results);
    std::ostringstream out;
    out << "CPA Monte Carlo, " << result.samples << " samples: mean "
        << util::formatSig(result.mean, 4) << " g CO2/cm2, stddev "
        << util::formatSig(result.stddev, 3) << ", p5/p50/p95 "
        << util::formatSig(result.p5, 4) << " / "
        << util::formatSig(result.p50, 4) << " / "
        << util::formatSig(result.p95, 4) << "\n";
    return out.str();
}

// ---------------------------------------------------------------------
// mobile: the Fig. 8 SoC design space.
// ---------------------------------------------------------------------

core::FabParams
mobileFab(const SweepPlan &plan)
{
    if (plan.config.isObject() && plan.config.contains("fab"))
        return core::fabParamsFromJson(plan.config.at("fab"));
    return core::FabParams{};
}

void
prepareMobile(SweepPlan &plan)
{
    const std::size_t socs =
        data::SocDatabase::instance().records().size();
    if (plan.items == 0)
        plan.items = socs;
    else if (plan.items != socs)
        util::fatal("mobile sweep plan pins ", plan.items,
                    " items but the SoC database has ", socs);
    mobileFab(plan); // validate any fab override now, on every shard
    resolveFingerprint(plan);
}

JsonValue
designPointToJson(const core::DesignPoint &point)
{
    JsonObject object;
    object["name"] = JsonValue(point.name);
    object["embodied_kg"] =
        JsonValue(util::asKilograms(point.embodied));
    object["energy_j"] = JsonValue(util::asJoules(point.energy));
    object["delay_s"] = JsonValue(util::asSeconds(point.delay));
    object["area_mm2"] =
        JsonValue(util::asSquareMillimeters(point.area));
    return JsonValue(std::move(object));
}

JsonChunkEvaluator
mobileEvaluator(const SweepPlan &plan)
{
    const core::FabParams fab = mobileFab(plan);
    return [fab](std::size_t, util::IndexRange range,
                 util::Xorshift64Star &) {
        const auto records = data::SocDatabase::instance().records();
        JsonArray points;
        points.reserve(range.size());
        for (std::size_t i = range.begin; i < range.end; ++i) {
            points.push_back(designPointToJson(
                mobile::designPoint(records[i], fab)));
        }
        return JsonValue(std::move(points));
    };
}

std::string
summarizeMobile(const SweepPlan &, const JsonArray &results)
{
    std::size_t count = 0;
    std::string best_name;
    double best_kg = 0.0;
    for (const JsonValue &chunk : results) {
        for (const JsonValue &point : chunk.asArray()) {
            const double kg = point.at("embodied_kg").asNumber();
            if (count == 0 || kg < best_kg) {
                best_kg = kg;
                best_name = point.at("name").asString();
            }
            ++count;
        }
    }
    std::ostringstream out;
    out << "mobile design space, " << count
        << " SoCs: minimum embodied " << util::formatSig(best_kg, 3)
        << " kg CO2 (" << best_name << ")\n";
    return out.str();
}

constexpr Domain kDomains[] = {
    {"cpa_montecarlo", prepareCpaMonteCarlo, cpaMonteCarloEvaluator,
     summarizeCpaMonteCarlo},
    {"mobile", prepareMobile, mobileEvaluator, summarizeMobile},
};

} // namespace

const Domain &
findDomain(std::string_view name)
{
    for (const Domain &domain : kDomains) {
        if (domain.name == name)
            return domain;
    }
    std::string known;
    for (const std::string_view known_name : domainNames()) {
        if (!known.empty())
            known += ", ";
        known += known_name;
    }
    util::fatal("unknown sweep domain '", std::string(name),
                "' (known: ", known, ")");
}

std::vector<std::string_view>
domainNames()
{
    std::vector<std::string_view> names;
    for (const Domain &domain : kDomains)
        names.push_back(domain.name);
    return names;
}

JsonValue
toJson(const dse::MonteCarloPartial &partial)
{
    JsonObject object;
    JsonArray outputs;
    outputs.reserve(partial.outputs.size());
    for (const double output : partial.outputs)
        outputs.push_back(JsonValue(output));
    object["outputs"] = JsonValue(std::move(outputs));
    object["sum"] = JsonValue(partial.sum);
    object["sum_squares"] = JsonValue(partial.sum_squares);
    return JsonValue(std::move(object));
}

dse::MonteCarloPartial
monteCarloPartialFromJson(const JsonValue &value)
{
    dse::MonteCarloPartial partial;
    const JsonArray &outputs = value.at("outputs").asArray();
    partial.outputs.reserve(outputs.size());
    for (const JsonValue &output : outputs)
        partial.outputs.push_back(output.asNumber());
    partial.sum = value.at("sum").asNumber();
    partial.sum_squares = value.at("sum_squares").asNumber();
    return partial;
}

dse::MonteCarloResult
monteCarloResultFromPayloads(std::size_t samples,
                             const JsonArray &results)
{
    dse::MonteCarloPartial merged;
    merged.outputs.reserve(samples);
    for (const JsonValue &payload : results) {
        merged = dse::mergePartial(std::move(merged),
                                   monteCarloPartialFromJson(payload));
    }
    return dse::finalizeMonteCarlo(samples, std::move(merged));
}

} // namespace act::sweep
