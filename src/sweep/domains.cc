#include "sweep/domains.h"

#include <memory>
#include <sstream>
#include <utility>

#include "accel/design_space.h"
#include "core/embodied.h"
#include "core/eval_plan.h"
#include "core/model_config.h"
#include "data/soc_db.h"
#include "fleet/replay.h"
#include "mobile/platform.h"
#include "pkg/package.h"
#include "pkg/pkg_plan.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/units.h"

namespace act::sweep {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

namespace {

/**
 * Stamp (or verify) the model-config fingerprint. Every shard runs
 * this, so shards built from different data vintages fail here rather
 * than merging into a silently inconsistent result.
 */
void
resolveFingerprint(SweepPlan &plan)
{
    const std::string current = core::modelConfigFingerprint();
    if (plan.fingerprint.empty()) {
        plan.fingerprint = current;
    } else if (plan.fingerprint != current) {
        util::fatal("sweep plan fingerprint ", plan.fingerprint,
                    " does not match this build's model data (",
                    current, ") -- the plan is stale; clear its "
                    "'fingerprint' field to re-author it");
    }
}

// ---------------------------------------------------------------------
// cpa_montecarlo: Eq. 5 CPA uncertainty at a fixed node.
// ---------------------------------------------------------------------

/** How a sampled value lands in FabParams. */
enum class FabField
{
    CiFab,
    Yield,
    Abatement,
};

struct CpaMonteCarloConfig
{
    double node_nm = 0.0;
    core::FabParams base_fab;
    std::vector<dse::UncertainParameter> parameters;
    std::vector<FabField> fields;
};

CpaMonteCarloConfig
parseCpaMonteCarloConfig(const SweepPlan &plan)
{
    if (!plan.config.isObject())
        util::fatal("cpa_montecarlo plan needs a 'config' object");
    CpaMonteCarloConfig parsed;
    parsed.node_nm = plan.config.numberOr("node_nm", 0.0);
    if (parsed.node_nm <= 0.0)
        util::fatal("cpa_montecarlo config needs a positive 'node_nm'");
    if (plan.config.contains("fab")) {
        parsed.base_fab =
            core::fabParamsFromJson(plan.config.at("fab"));
    }
    if (!plan.config.contains("parameters"))
        util::fatal("cpa_montecarlo config needs a 'parameters' array");
    for (const JsonValue &entry :
         plan.config.at("parameters").asArray()) {
        dse::UncertainParameter parameter;
        parameter.name = entry.at("name").asString();
        const std::string distribution =
            entry.stringOr("distribution", "uniform");
        if (distribution == "uniform") {
            parameter.distribution = dse::Distribution::Uniform;
        } else if (distribution == "triangular") {
            parameter.distribution = dse::Distribution::Triangular;
        } else {
            util::fatal("unknown distribution '", distribution,
                        "' (expected 'uniform' or 'triangular')");
        }
        parameter.low = entry.at("low").asNumber();
        parameter.high = entry.at("high").asNumber();
        parameter.baseline = entry.numberOr(
            "baseline", (parameter.low + parameter.high) / 2.0);

        FabField field;
        if (parameter.name == "ci_fab_g_per_kwh") {
            field = FabField::CiFab;
        } else if (parameter.name == "yield") {
            field = FabField::Yield;
        } else if (parameter.name == "abatement") {
            field = FabField::Abatement;
        } else {
            util::fatal("unknown cpa_montecarlo parameter '",
                        parameter.name, "' (expected "
                        "'ci_fab_g_per_kwh', 'yield', or 'abatement')");
        }
        parsed.parameters.push_back(std::move(parameter));
        parsed.fields.push_back(field);
    }
    return parsed;
}

std::function<double(const std::vector<double> &)>
cpaModel(const CpaMonteCarloConfig &config)
{
    return [config](const std::vector<double> &values) {
        core::FabParams fab = config.base_fab;
        for (std::size_t i = 0; i < values.size(); ++i) {
            switch (config.fields[i]) {
              case FabField::CiFab:
                fab.ci_fab = util::gramsPerKilowattHour(values[i]);
                break;
              case FabField::Yield:
                fab.yield = values[i];
                break;
              case FabField::Abatement:
                fab.abatement = values[i];
                break;
            }
        }
        return core::carbonPerArea(fab, config.node_nm).value();
    };
}

/** Compile the config into the equivalent Eq. 5 plan: binding i feeds
 *  the same FabParams field cpaModel() mutates for parameter i. */
core::EvalPlan
cpaPlan(const CpaMonteCarloConfig &config)
{
    std::vector<core::EvalInput> bindings;
    bindings.reserve(config.fields.size());
    for (const FabField field : config.fields) {
        switch (field) {
          case FabField::CiFab:
            bindings.push_back(core::EvalInput::CiFab);
            break;
          case FabField::Yield:
            bindings.push_back(core::EvalInput::Yield);
            break;
          case FabField::Abatement:
            bindings.push_back(core::EvalInput::Abatement);
            break;
        }
    }
    return core::EvalPlan::forNode(config.base_fab, config.node_nm,
                                   bindings);
}

void
prepareCpaMonteCarlo(SweepPlan &plan)
{
    if (plan.items == 0)
        plan.items = 10'000;
    if (plan.grain == 0)
        plan.grain = dse::kMonteCarloChunk;
    const CpaMonteCarloConfig config = parseCpaMonteCarloConfig(plan);
    dse::validateMonteCarloInputs(config.parameters, plan.items);
    resolveFingerprint(plan);
}

JsonChunkEvaluator
cpaMonteCarloEvaluator(const SweepPlan &plan)
{
    // Parsed and compiled once; shared read-only by every concurrent
    // chunk. Chunks run the fused plan kernel (sample + evaluate per
    // cache-resident sub-block) over a reused thread-local SoA
    // scratch -- same RNG consumption order as the scalar path at
    // every SIMD dispatch level, so partials (and merged results)
    // keep their bits.
    auto config = std::make_shared<const CpaMonteCarloConfig>(
        parseCpaMonteCarloConfig(plan));
    const core::EvalPlan compiled = cpaPlan(*config);
    return [config, compiled](std::size_t, util::IndexRange range,
                              util::Xorshift64Star &rng) {
        thread_local dse::MonteCarloScratch scratch;
        return toJson(dse::monteCarloPlanChunk(
            config->parameters, compiled, range, rng, scratch));
    };
}

std::string
summarizeCpaMonteCarlo(const SweepPlan &plan, const JsonArray &results)
{
    const dse::MonteCarloResult result =
        monteCarloResultFromPayloads(plan.items, results);
    std::ostringstream out;
    out << "CPA Monte Carlo, " << result.samples << " samples: mean "
        << util::formatSig(result.mean, 4) << " g CO2/cm2, stddev "
        << util::formatSig(result.stddev, 3) << ", p5/p50/p95 "
        << util::formatSig(result.p5, 4) << " / "
        << util::formatSig(result.p50, 4) << " / "
        << util::formatSig(result.p95, 4) << "\n";
    return out.str();
}

// ---------------------------------------------------------------------
// mobile: the Fig. 8 SoC design space.
// ---------------------------------------------------------------------

core::FabParams
mobileFab(const SweepPlan &plan)
{
    if (plan.config.isObject() && plan.config.contains("fab"))
        return core::fabParamsFromJson(plan.config.at("fab"));
    return core::FabParams{};
}

void
prepareMobile(SweepPlan &plan)
{
    const std::size_t socs =
        data::SocDatabase::instance().records().size();
    if (plan.items == 0)
        plan.items = socs;
    else if (plan.items != socs)
        util::fatal("mobile sweep plan pins ", plan.items,
                    " items but the SoC database has ", socs);
    mobileFab(plan); // validate any fab override now, on every shard
    resolveFingerprint(plan);
}

JsonValue
designPointToJson(const core::DesignPoint &point)
{
    JsonObject object;
    object["name"] = JsonValue(point.name);
    object["embodied_kg"] =
        JsonValue(util::asKilograms(point.embodied));
    object["energy_j"] = JsonValue(util::asJoules(point.energy));
    object["delay_s"] = JsonValue(util::asSeconds(point.delay));
    object["area_mm2"] =
        JsonValue(util::asSquareMillimeters(point.area));
    return JsonValue(std::move(object));
}

JsonChunkEvaluator
mobileEvaluator(const SweepPlan &plan)
{
    // Per-SoC constants (node CPA, DRAM CPS, aggregate score) resolve
    // once here; chunks share them read-only. The compiled design
    // points are bit-identical to mobile::designPoint().
    const core::FabParams fab = mobileFab(plan);
    auto compiled =
        std::make_shared<const std::vector<mobile::CompiledPlatform>>(
            mobile::compileMobilePlatforms(fab));
    return [compiled](std::size_t, util::IndexRange range,
                      util::Xorshift64Star &) {
        JsonArray points;
        points.reserve(range.size());
        for (std::size_t i = range.begin; i < range.end; ++i) {
            points.push_back(
                designPointToJson((*compiled)[i].designPoint()));
        }
        return JsonValue(std::move(points));
    };
}

std::string
summarizeMobile(const SweepPlan &, const JsonArray &results)
{
    std::size_t count = 0;
    std::string best_name;
    double best_kg = 0.0;
    for (const JsonValue &chunk : results) {
        for (const JsonValue &point : chunk.asArray()) {
            const double kg = point.at("embodied_kg").asNumber();
            if (count == 0 || kg < best_kg) {
                best_kg = kg;
                best_name = point.at("name").asString();
            }
            ++count;
        }
    }
    std::ostringstream out;
    out << "mobile design space, " << count
        << " SoCs: minimum embodied " << util::formatSig(best_kg, 3)
        << " kg CO2 (" << best_name << ")\n";
    return out.str();
}

// ---------------------------------------------------------------------
// accel: the Fig. 12 NPU design-space walk, node x MAC count.
// ---------------------------------------------------------------------

struct AccelConfig
{
    std::vector<double> nodes;
    core::FabParams fab;
};

AccelConfig
parseAccelConfig(const SweepPlan &plan)
{
    AccelConfig parsed;
    if (plan.config.isObject() && plan.config.contains("nodes")) {
        for (const JsonValue &node :
             plan.config.at("nodes").asArray()) {
            parsed.nodes.push_back(node.asNumber());
        }
    } else {
        // The Fig. 13 (right) node walk, newest last.
        parsed.nodes = {28.0, 20.0, 16.0, 10.0, 7.0, 5.0, 3.0};
    }
    if (parsed.nodes.empty())
        util::fatal("accel sweep config has an empty 'nodes' array");
    for (const double node : parsed.nodes) {
        if (!(node >= 3.0 && node <= 28.0)) {
            util::fatal("accel sweep node ", node,
                        " nm outside the modeled range [3, 28] nm");
        }
    }
    if (plan.config.isObject() && plan.config.contains("fab"))
        parsed.fab = core::fabParamsFromJson(plan.config.at("fab"));
    return parsed;
}

void
prepareAccel(SweepPlan &plan)
{
    const AccelConfig config = parseAccelConfig(plan);
    const std::size_t items =
        config.nodes.size() * accel::macSweep().size();
    if (plan.items == 0)
        plan.items = items;
    else if (plan.items != items)
        util::fatal("accel sweep plan pins ", plan.items,
                    " items but the config spans ", items,
                    " (nodes x MAC configurations)");
    resolveFingerprint(plan);
}

JsonChunkEvaluator
accelEvaluator(const SweepPlan &plan)
{
    auto config =
        std::make_shared<const AccelConfig>(parseAccelConfig(plan));
    // Eq. 5 depends only on (fab, node): compile one plan per node up
    // front so chunk evaluation is pure arithmetic.
    auto cpas = std::make_shared<std::vector<util::CarbonPerArea>>();
    cpas->reserve(config->nodes.size());
    for (const double node : config->nodes) {
        cpas->push_back(
            core::EvalPlan::forNode(config->fab, node).cpa());
    }
    auto model = std::make_shared<const accel::NpuModel>();
    return [config, cpas, model](std::size_t, util::IndexRange range,
                                 util::Xorshift64Star &) {
        const std::vector<int> macs = accel::macSweep();
        const accel::Network &network =
            accel::referenceVisionNetwork();
        JsonArray points;
        points.reserve(range.size());
        for (std::size_t k = range.begin; k < range.end; ++k) {
            const std::size_t node_index = k / macs.size();
            const std::size_t mac_index = k % macs.size();
            const accel::NpuConfig npu_config{
                macs[mac_index], config->nodes[node_index]};
            const accel::NpuEvaluation evaluation =
                model->evaluate(network, npu_config);
            JsonObject point;
            point["node_nm"] = JsonValue(npu_config.node_nm);
            point["macs"] =
                JsonValue(static_cast<double>(npu_config.mac_count));
            point["embodied_g"] = JsonValue(util::asGrams(
                (*cpas)[node_index] * evaluation.area));
            point["energy_per_frame_j"] =
                JsonValue(util::asJoules(evaluation.energy_per_frame));
            point["latency_s"] =
                JsonValue(util::asSeconds(evaluation.latency));
            point["fps"] = JsonValue(evaluation.frames_per_second);
            point["area_mm2"] = JsonValue(
                util::asSquareMillimeters(evaluation.area));
            point["utilization"] = JsonValue(evaluation.utilization);
            points.push_back(JsonValue(std::move(point)));
        }
        return JsonValue(std::move(points));
    };
}

std::string
summarizeAccel(const SweepPlan &, const JsonArray &results)
{
    std::size_t count = 0;
    double best_g = 0.0;
    double best_node = 0.0;
    double best_macs = 0.0;
    for (const JsonValue &chunk : results) {
        for (const JsonValue &point : chunk.asArray()) {
            const double grams = point.at("embodied_g").asNumber();
            if (count == 0 || grams < best_g) {
                best_g = grams;
                best_node = point.at("node_nm").asNumber();
                best_macs = point.at("macs").asNumber();
            }
            ++count;
        }
    }
    std::ostringstream out;
    out << "NPU design space, " << count
        << " configurations: minimum embodied "
        << util::formatSig(best_g, 3) << " g CO2 ("
        << static_cast<int>(best_macs) << " MACs @ "
        << util::formatSig(best_node, 3) << " nm)\n";
    return out.str();
}

// ---------------------------------------------------------------------
// chiplet: packaging-style x die-count walk over the pkg layer.
// ---------------------------------------------------------------------

struct ChipletSweepConfig
{
    double logic_area_mm2 = 0.0;
    double node_nm = 7.0;
    int max_chiplets = 8;
    /** Die-to-die interface area tax, growing with the cut count. */
    double interface_overhead = 0.10;
    core::DefectParams defects;
    core::FabParams fab;
    std::vector<pkg::PackagingStyle> styles;
    /** Optional fab-CI scenario column, bound as EvalInput::CiFab so
     *  chunks run the batched package kernel. */
    std::vector<double> ci_fab_g_per_kwh;
    /** Flattened (style, die count) grid, in item order. */
    std::vector<std::pair<pkg::PackagingStyle, int>> points;
};

ChipletSweepConfig
parseChipletConfig(const SweepPlan &plan)
{
    if (!plan.config.isObject())
        util::fatal("chiplet plan needs a 'config' object");
    ChipletSweepConfig parsed;
    parsed.logic_area_mm2 =
        plan.config.numberOr("logic_area_mm2", 0.0);
    if (parsed.logic_area_mm2 <= 0.0)
        util::fatal(
            "chiplet config needs a positive 'logic_area_mm2'");
    parsed.node_nm = plan.config.numberOr("node_nm", 7.0);
    parsed.max_chiplets = static_cast<int>(
        plan.config.numberOr("max_chiplets", 8.0));
    if (parsed.max_chiplets < 1)
        util::fatal("chiplet config 'max_chiplets' must be >= 1");
    parsed.interface_overhead =
        plan.config.numberOr("interface_overhead", 0.10);
    if (parsed.interface_overhead < 0.0)
        util::fatal(
            "chiplet config 'interface_overhead' must be >= 0");
    if (plan.config.contains("defect_density_per_cm2")) {
        parsed.defects.defect_density_per_cm2 =
            plan.config.at("defect_density_per_cm2").asNumber();
    }
    if (plan.config.contains("fab"))
        parsed.fab = core::fabParamsFromJson(plan.config.at("fab"));
    if (plan.config.contains("styles")) {
        for (const JsonValue &style :
             plan.config.at("styles").asArray()) {
            parsed.styles.push_back(
                pkg::packagingStyleByName(style.asString()));
        }
        if (parsed.styles.empty())
            util::fatal("chiplet config has an empty 'styles' array");
    } else {
        parsed.styles.assign(std::begin(pkg::kPackagingStyles),
                             std::end(pkg::kPackagingStyles));
    }
    if (plan.config.contains("ci_fab_g_per_kwh")) {
        for (const JsonValue &value :
             plan.config.at("ci_fab_g_per_kwh").asArray()) {
            parsed.ci_fab_g_per_kwh.push_back(value.asNumber());
        }
    }
    // Monolithic only admits one die; multi-die styles walk the cut
    // counts 2..max so the grid never repeats the monolithic point.
    for (const pkg::PackagingStyle style : parsed.styles) {
        if (style == pkg::PackagingStyle::Monolithic) {
            parsed.points.emplace_back(style, 1);
        } else {
            for (int n = 2; n <= parsed.max_chiplets; ++n)
                parsed.points.emplace_back(style, n);
        }
    }
    if (parsed.points.empty()) {
        util::fatal("chiplet config spans no grid points (multi-die "
                    "styles need 'max_chiplets' >= 2)");
    }
    return parsed;
}

/** The pkg spec for one grid point: the logic area cut into n dies
 *  plus the per-cut interface tax, under the style's defaults. */
pkg::PackageSpec
chipletSweepSpec(const ChipletSweepConfig &config,
                 pkg::PackagingStyle style, int num_dies)
{
    pkg::PackageSpec spec = pkg::PackageSpec::forStyle(style);
    const double n = static_cast<double>(num_dies);
    const double scale =
        1.0 + config.interface_overhead * (n - 1.0) / n;
    pkg::ChipletSpec die;
    die.name = "die";
    die.area = util::squareMillimeters(config.logic_area_mm2) *
               (scale / n);
    die.node_nm = config.node_nm;
    die.defects = config.defects;
    die.count = num_dies;
    spec.chiplets.push_back(die);
    return spec;
}

void
prepareChiplet(SweepPlan &plan)
{
    const ChipletSweepConfig config = parseChipletConfig(plan);
    if (plan.items == 0)
        plan.items = config.points.size();
    else if (plan.items != config.points.size())
        util::fatal("chiplet sweep plan pins ", plan.items,
                    " items but the config spans ",
                    config.points.size(), " (styles x die counts)");
    resolveFingerprint(plan);
}

JsonChunkEvaluator
chipletEvaluator(const SweepPlan &plan)
{
    // The grid is small, so specs and compiled plans resolve once
    // here; chunks share them read-only. The scalar fields come from
    // the evaluatePackage() oracle and the scenario column from the
    // compiled batch kernel -- bit-identical by the pkg_plan contract,
    // so shards merge byte-identically to a single-process run.
    auto config = std::make_shared<const ChipletSweepConfig>(
        parseChipletConfig(plan));
    std::vector<core::EvalInput> bindings;
    if (!config->ci_fab_g_per_kwh.empty())
        bindings.push_back(core::EvalInput::CiFab);
    auto specs = std::make_shared<std::vector<pkg::PackageSpec>>();
    auto plans = std::make_shared<std::vector<pkg::PackagePlan>>();
    specs->reserve(config->points.size());
    plans->reserve(config->points.size());
    for (const auto &[style, count] : config->points) {
        specs->push_back(chipletSweepSpec(*config, style, count));
        plans->push_back(pkg::PackagePlan::compile(
            specs->back(), config->fab, bindings));
    }
    return [config, specs, plans](std::size_t, util::IndexRange range,
                                  util::Xorshift64Star &) {
        JsonArray points;
        points.reserve(range.size());
        for (std::size_t k = range.begin; k < range.end; ++k) {
            const auto &[style, count] = config->points[k];
            const pkg::PackageResult result =
                pkg::evaluatePackage((*specs)[k], config->fab);
            JsonObject point;
            point["style"] = JsonValue(
                std::string(pkg::packagingStyleName(style)));
            point["num_dies"] =
                JsonValue(static_cast<double>(count));
            point["total_g"] =
                JsonValue(util::asGrams(result.total));
            point["silicon_g"] =
                JsonValue(util::asGrams(result.silicon_embodied));
            point["substrate_g"] =
                JsonValue(util::asGrams(result.substrate_embodied));
            point["assembly_g"] =
                JsonValue(util::asGrams(result.assembly_embodied));
            point["min_die_yield"] = JsonValue(result.min_die_yield);
            point["package_yield"] = JsonValue(result.package_yield);
            if (!config->ci_fab_g_per_kwh.empty()) {
                const std::size_t n =
                    config->ci_fab_g_per_kwh.size();
                std::vector<double> outputs(n);
                std::vector<double> scratch(n);
                const double *columns[1] = {
                    config->ci_fab_g_per_kwh.data()};
                (*plans)[k].evaluateBatch(n, columns, outputs.data(),
                                          scratch.data());
                JsonArray totals;
                totals.reserve(n);
                for (const double grams : outputs)
                    totals.push_back(JsonValue(grams));
                point["ci_fab_totals_g"] =
                    JsonValue(std::move(totals));
            }
            points.push_back(JsonValue(std::move(point)));
        }
        return JsonValue(std::move(points));
    };
}

std::string
summarizeChiplet(const SweepPlan &, const JsonArray &results)
{
    std::size_t count = 0;
    double best_g = 0.0;
    std::string best_style;
    int best_dies = 0;
    for (const JsonValue &chunk : results) {
        for (const JsonValue &point : chunk.asArray()) {
            const double grams = point.at("total_g").asNumber();
            if (count == 0 || grams < best_g) {
                best_g = grams;
                best_style = point.at("style").asString();
                best_dies = static_cast<int>(
                    point.at("num_dies").asNumber());
            }
            ++count;
        }
    }
    std::ostringstream out;
    out << "chiplet packaging sweep, " << count
        << " packages: minimum embodied " << util::formatSig(best_g, 4)
        << " g CO2 (" << best_style << ", " << best_dies << " "
        << (best_dies == 1 ? "die" : "dies") << ")\n";
    return out.str();
}

// ---------------------------------------------------------------------
// fleet: trace-driven job replay over regional intensity series.
// ---------------------------------------------------------------------

constexpr std::size_t kFleetDefaultJobs = 100000;
/** Pinned (not thread-adaptive): the per-chunk accumulator sums make
 *  the chunk layout observable in the last ulp, so the grain must be
 *  a pure function of the plan. */
constexpr std::size_t kFleetDefaultGrain = 8192;

void
prepareFleet(SweepPlan &plan)
{
    // Parse eagerly so every shard rejects a bad config up front.
    (void)fleet::fleetSetupFromJson(plan.config, plan.seed);
    if (plan.items == 0)
        plan.items = kFleetDefaultJobs;
    if (plan.grain == 0)
        plan.grain = kFleetDefaultGrain;
    resolveFingerprint(plan);
}

JsonChunkEvaluator
fleetEvaluator(const SweepPlan &plan)
{
    auto setup = std::make_shared<const fleet::FleetSetup>(
        fleet::fleetSetupFromJson(plan.config, plan.seed));
    return [setup](std::size_t, util::IndexRange range,
                   util::Xorshift64Star &) {
        // Jobs seed their own deriveSeed(seed, index) streams, so the
        // engine's per-chunk RNG goes unused: a job's placement is a
        // pure function of its index, independent of which chunk,
        // thread, or shard replays it.
        const std::vector<fleet::FleetAccumulator> accumulators =
            fleet::replayJobs(*setup, range);
        JsonArray payload;
        payload.reserve(accumulators.size());
        for (const fleet::FleetAccumulator &accumulator : accumulators)
            payload.push_back(toJson(accumulator));
        return JsonValue(std::move(payload));
    };
}

std::string
summarizeFleet(const SweepPlan &plan, const JsonArray &results)
{
    const fleet::FleetSetup setup =
        fleet::fleetSetupFromJson(plan.config, plan.seed);
    const std::vector<fleet::FleetAccumulator> totals =
        fleetResultFromPayloads(plan, results);
    std::ostringstream out;
    out << "fleet replay, "
        << (totals.empty() ? 0 : totals.front().jobs) << " jobs x "
        << totals.size() << " scenarios:\n";
    for (std::size_t s = 0; s < totals.size(); ++s) {
        const fleet::FleetAccumulator &acc = totals[s];
        const double total_g = acc.operational_g + acc.embodied_g;
        const double saving = acc.operational_g > 0.0
                                  ? acc.baseline_g / acc.operational_g
                                  : 1.0;
        out << "  " << setup.scenarios[s].label << ": "
            << util::formatSig(total_g / 1000.0, 4) << " kg CO2 ("
            << util::formatSig(acc.operational_g / 1000.0, 4)
            << " op + "
            << util::formatSig(acc.embodied_g / 1000.0, 4)
            << " embodied), saving " << util::formatSig(saving, 4)
            << "x, deferred " << acc.deferred << ", migrated "
            << acc.migrated << "\n";
    }
    return out.str();
}

constexpr Domain kDomains[] = {
    {"cpa_montecarlo",
     "Eq. 5 CPA uncertainty at a fixed node (Monte Carlo)",
     prepareCpaMonteCarlo, cpaMonteCarloEvaluator,
     summarizeCpaMonteCarlo},
    {"mobile", "the Fig. 8 mobile-SoC design space, one item per SoC",
     prepareMobile, mobileEvaluator, summarizeMobile},
    {"accel", "the Fig. 12 NPU design-space walk, node x MAC count",
     prepareAccel, accelEvaluator, summarizeAccel},
    {"chiplet",
     "packaging style x die count over compiled pkg::PackagePlan",
     prepareChiplet, chipletEvaluator, summarizeChiplet},
    {"fleet",
     "trace-driven job replay over regional intensity series",
     prepareFleet, fleetEvaluator, summarizeFleet},
};

} // namespace

std::function<double(const std::vector<double> &)>
cpaMonteCarloScalarModel(const SweepPlan &plan)
{
    return cpaModel(parseCpaMonteCarloConfig(plan));
}

std::vector<dse::UncertainParameter>
cpaMonteCarloParameters(const SweepPlan &plan)
{
    return parseCpaMonteCarloConfig(plan).parameters;
}

std::vector<fleet::FleetAccumulator>
fleetResultFromPayloads(const SweepPlan &plan,
                        const config::JsonArray &results)
{
    const fleet::FleetSetup setup =
        fleet::fleetSetupFromJson(plan.config, plan.seed);
    std::vector<fleet::FleetAccumulator> totals(setup.scenarios.size());
    for (const JsonValue &chunk : results) {
        const JsonArray &payload = chunk.asArray();
        if (payload.size() != totals.size()) {
            util::fatal("fleet chunk payload carries ", payload.size(),
                        " scenarios but the plan's grid has ",
                        totals.size());
        }
        for (std::size_t s = 0; s < totals.size(); ++s)
            totals[s].add(fleet::fleetAccumulatorFromJson(payload[s]));
    }
    return totals;
}

const Domain &
findDomain(std::string_view name)
{
    for (const Domain &domain : kDomains) {
        if (domain.name == name)
            return domain;
    }
    std::string known;
    for (const std::string_view known_name : domainNames()) {
        if (!known.empty())
            known += ", ";
        known += known_name;
    }
    util::fatal("unknown sweep domain '", std::string(name),
                "' (known: ", known,
                "; run 'act sweep --list-domains' for details)");
}

std::vector<std::string_view>
domainNames()
{
    std::vector<std::string_view> names;
    for (const Domain &domain : kDomains)
        names.push_back(domain.name);
    return names;
}

std::span<const Domain>
allDomains()
{
    return kDomains;
}

JsonValue
toJson(const dse::MonteCarloPartial &partial)
{
    JsonObject object;
    JsonArray outputs;
    outputs.reserve(partial.outputs.size());
    for (const double output : partial.outputs)
        outputs.push_back(JsonValue(output));
    object["outputs"] = JsonValue(std::move(outputs));
    object["sum"] = JsonValue(partial.sum);
    object["sum_squares"] = JsonValue(partial.sum_squares);
    return JsonValue(std::move(object));
}

dse::MonteCarloPartial
monteCarloPartialFromJson(const JsonValue &value)
{
    dse::MonteCarloPartial partial;
    const JsonArray &outputs = value.at("outputs").asArray();
    partial.outputs.reserve(outputs.size());
    for (const JsonValue &output : outputs)
        partial.outputs.push_back(output.asNumber());
    partial.sum = value.at("sum").asNumber();
    partial.sum_squares = value.at("sum_squares").asNumber();
    return partial;
}

dse::MonteCarloResult
monteCarloResultFromPayloads(std::size_t samples,
                             const JsonArray &results)
{
    dse::MonteCarloPartial merged;
    merged.outputs.reserve(samples);
    for (const JsonValue &payload : results) {
        merged = dse::mergePartial(std::move(merged),
                                   monteCarloPartialFromJson(payload));
    }
    return dse::finalizeMonteCarlo(samples, std::move(merged));
}

} // namespace act::sweep
