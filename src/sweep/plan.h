/**
 * @file
 * The serializable description of one design-space sweep.
 *
 * A `SweepPlan` pins everything that determines a sweep's chunk layout
 * and random streams: the domain name (which evaluator runs), the
 * index-space size, the chunk granularity, the base seed, and a
 * model-config fingerprint that ties the plan to the compiled-in data
 * tables. Because the chunk layout is a pure function of the plan --
 * never of the thread count or host -- a plan can be executed whole,
 * or split across processes with a `ShardSpec`, and the recombined
 * result is bit-identical either way (see engine.h).
 *
 * Plans round-trip through the in-repo `config` JSON parser:
 *
 *   {
 *     "domain": "cpa_montecarlo",   // registered sweep domain
 *     "items": 10000,               // index-space size (0 = domain default)
 *     "grain": 2048,                // chunk granularity (0 = automatic)
 *     "seed": 42,                   // base seed for per-chunk RNG streams
 *     "fingerprint": "",            // model-config fingerprint ("" = fill in)
 *     "config": { ... }             // domain-specific parameters
 *   }
 */

#ifndef ACT_SWEEP_PLAN_H
#define ACT_SWEEP_PLAN_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "config/json.h"
#include "util/parallel.h"

namespace act::sweep {

/** Serializable description of one sweep over [0, items). */
struct SweepPlan
{
    /** Registered evaluator name (e.g. "cpa_montecarlo", "mobile"). */
    std::string domain;
    /** Index-space size; 0 lets the domain fill in its natural size. */
    std::size_t items = 0;
    /**
     * Chunk granularity. 0 selects an automatic grain: thread-count
     * *independent* (a function of `items` only) wherever the chunk
     * layout can affect the result -- seeded chunk evaluation and any
     * serialized/sharded execution -- and thread-count *aware* for
     * pure per-item maps, where each item fills its own slot and the
     * layout is unobservable in the output.
     */
    std::size_t grain = 0;
    /** Base seed; chunk c draws from util::deriveSeed(seed, c). */
    std::uint64_t seed = 42;
    /**
     * core::modelConfigFingerprint() at authoring time; empty means
     * "fill in at execution". Shards refuse to merge across different
     * fingerprints, and stale plans are rejected instead of silently
     * producing different numbers.
     */
    std::string fingerprint;
    /** Domain-specific parameters, opaque to the engine. */
    config::JsonValue config;

    /** Convenience constructor for in-process per-item map sweeps. */
    static SweepPlan map(std::string domain, std::size_t items);
};

/**
 * The deterministic chunk layout of @p plan:
 * util::staticChunks(0, items, grain), whose automatic grain depends
 * only on the item count. Every shard of a plan computes this
 * identically, whatever its thread count.
 */
std::vector<util::IndexRange> planChunks(const SweepPlan &plan);

config::JsonValue toJson(const SweepPlan &plan);

/** Parse a plan; `domain` is required, everything else defaults. */
SweepPlan sweepPlanFromJson(const config::JsonValue &value);

/**
 * A deterministic slice of a plan's chunks: shard i of N owns the
 * contiguous chunk range [floor(C*i/N), floor(C*(i+1)/N)).
 */
struct ShardSpec
{
    std::size_t shard_count = 1;
    std::size_t shard_index = 0;
};

/** Fatal unless 1 <= shard_count and shard_index < shard_count. */
void validateShard(const ShardSpec &shard);

/** Global chunk range owned by @p shard out of @p chunk_count. */
util::IndexRange shardChunkRange(std::size_t chunk_count,
                                 const ShardSpec &shard);

} // namespace act::sweep

#endif // ACT_SWEEP_PLAN_H
