/**
 * @file
 * Registered sweep domains: the named evaluators `act sweep` can run
 * from a serialized SweepPlan, plus the JSON codecs that move their
 * chunk payloads between processes.
 *
 *  - "cpa_montecarlo": Monte Carlo uncertainty propagation of the
 *    Eq. 5 carbon-per-area model over uncertain fab parameters
 *    (ci_fab_g_per_kwh / yield / abatement), at a fixed node. Chunks
 *    run the compiled batch kernel (core/eval_plan.h +
 *    dse::monteCarloBatchChunk); the sharded result is bit-identical
 *    to an in-process dse::monteCarlo() call over the scalar closure
 *    with the same inputs.
 *  - "mobile": the Fig. 8 mobile-SoC design space; one item per SoC
 *    record, payloads carry the evaluated design points (per-SoC
 *    constants resolved once via mobile::compileMobilePlatforms).
 *  - "accel": the Fig. 12 NPU design-space walk, node x MAC-count;
 *    one item per (node, MAC) pair, Eq. 5 compiled once per node.
 *  - "chiplet": the packaging design space over the pkg layer; one
 *    item per (packaging style, die count) grid point, each evaluated
 *    through a compiled pkg::PackagePlan. An optional fab-CI scenario
 *    column runs the batched package kernel per item.
 *  - "fleet": trace-driven fleet replay; one item per job of a
 *    deterministic seeded stream, evaluated against every scenario of
 *    a policy x region x churn grid over regional IntensitySeries.
 *    Payloads carry per-scenario FleetAccumulators that reduce in
 *    chunk order (fleet/replay.h).
 *
 * Domains are separate from the engine so the engine stays free of
 * model dependencies (engine: util + config only; domains: dse,
 * mobile, accel, pkg, core).
 */

#ifndef ACT_SWEEP_DOMAINS_H
#define ACT_SWEEP_DOMAINS_H

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dse/montecarlo.h"
#include "fleet/replay.h"
#include "sweep/engine.h"

namespace act::sweep {

/** One named sweep evaluator the CLI can execute from a plan file. */
struct Domain
{
    std::string_view name;
    /** One-line summary for `act sweep --list-domains`. */
    std::string_view description;
    /**
     * Resolve a loaded plan for execution: fill a zero item count and
     * an automatic grain with the domain's defaults, validate the
     * domain config, and stamp (or check) the model-config
     * fingerprint. Fatal when the plan was authored against different
     * model data -- every shard of a sweep must resolve identically.
     */
    void (*prepare)(SweepPlan &plan);
    /** Chunk evaluator bound to the (prepared) plan's config. */
    JsonChunkEvaluator (*evaluator)(const SweepPlan &plan);
    /** Human summary of a merged result document's payload array. */
    std::string (*summarize)(const SweepPlan &plan,
                             const config::JsonArray &results);
};

/** Look up a registered domain; fatal with the known names on miss. */
const Domain &findDomain(std::string_view name);

/** Registered domain names, for help text and error messages. */
std::vector<std::string_view> domainNames();

/** All registered domains, for `act sweep --list-domains`. */
std::span<const Domain> allDomains();

/**
 * The scalar-closure equivalent of the cpa_montecarlo batch kernel
 * (FabParams mutation + core::carbonPerArea per sample), plus the
 * parsed uncertain parameters -- the oracle pair tests run through
 * dse::monteCarlo() to check the domain's batch path bitwise.
 */
std::function<double(const std::vector<double> &)>
cpaMonteCarloScalarModel(const SweepPlan &plan);
std::vector<dse::UncertainParameter>
cpaMonteCarloParameters(const SweepPlan &plan);

/** Chunk payload codec for Monte Carlo partials (bit-exact doubles). */
config::JsonValue toJson(const dse::MonteCarloPartial &partial);
dse::MonteCarloPartial
monteCarloPartialFromJson(const config::JsonValue &value);

/**
 * Reassemble a merged result document's payload array into the final
 * Monte Carlo summary (equivalent to running dse::monteCarlo whole).
 */
dse::MonteCarloResult
monteCarloResultFromPayloads(std::size_t samples,
                             const config::JsonArray &results);

/**
 * Fold a fleet result document's chunk payloads, in order, into the
 * final per-scenario accumulators (index-aligned with the scenario
 * grid of the plan's config). Fatal when a chunk payload disagrees
 * with the grid size.
 */
std::vector<fleet::FleetAccumulator>
fleetResultFromPayloads(const SweepPlan &plan,
                        const config::JsonArray &results);

} // namespace act::sweep

#endif // ACT_SWEEP_DOMAINS_H
