#include "sweep/plan.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace act::sweep {

using config::JsonObject;
using config::JsonValue;

SweepPlan
SweepPlan::map(std::string domain, std::size_t items)
{
    SweepPlan plan;
    plan.domain = std::move(domain);
    plan.items = items;
    return plan;
}

std::vector<util::IndexRange>
planChunks(const SweepPlan &plan)
{
    // staticChunks' automatic grain is a function of the range size
    // only, so the layout is reproducible across shards and hosts.
    return util::staticChunks(0, plan.items, plan.grain);
}

namespace {

/**
 * Seeds are 64-bit but JSON numbers are doubles, exact only up to
 * 2^53. Integral seeds in that range serialize as numbers; larger
 * ones as decimal strings, and the parser accepts both.
 */
JsonValue
seedToJson(std::uint64_t seed)
{
    constexpr std::uint64_t kExactDoubleMax = 1ull << 53;
    if (seed <= kExactDoubleMax)
        return JsonValue(static_cast<double>(seed));
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, seed);
    return JsonValue(std::string(buffer));
}

std::uint64_t
seedFromJson(const JsonValue &value)
{
    if (value.isString()) {
        const std::string &text = value.asString();
        char *tail = nullptr;
        const unsigned long long parsed =
            std::strtoull(text.c_str(), &tail, 10);
        if (tail == text.c_str() || *tail != '\0')
            util::fatal("sweep plan seed '", text,
                        "' is not an unsigned integer");
        return parsed;
    }
    const std::int64_t seed = value.asInteger();
    if (seed < 0)
        util::fatal("sweep plan seed must be non-negative, got ", seed);
    return static_cast<std::uint64_t>(seed);
}

std::size_t
sizeField(const JsonValue &value, const std::string &key,
          std::size_t fallback)
{
    if (!value.contains(key))
        return fallback;
    const std::int64_t parsed = value.at(key).asInteger();
    if (parsed < 0)
        util::fatal("sweep plan '", key, "' must be non-negative, got ",
                    parsed);
    return static_cast<std::size_t>(parsed);
}

} // namespace

JsonValue
toJson(const SweepPlan &plan)
{
    JsonObject object;
    object["domain"] = JsonValue(plan.domain);
    object["items"] = JsonValue(static_cast<double>(plan.items));
    object["grain"] = JsonValue(static_cast<double>(plan.grain));
    object["seed"] = seedToJson(plan.seed);
    object["fingerprint"] = JsonValue(plan.fingerprint);
    object["config"] = plan.config;
    return JsonValue(std::move(object));
}

SweepPlan
sweepPlanFromJson(const JsonValue &value)
{
    SweepPlan plan;
    if (!value.contains("domain"))
        util::fatal("sweep plan needs a 'domain' key");
    plan.domain = value.at("domain").asString();
    if (plan.domain.empty())
        util::fatal("sweep plan 'domain' must not be empty");
    plan.items = sizeField(value, "items", 0);
    plan.grain = sizeField(value, "grain", 0);
    if (value.contains("seed"))
        plan.seed = seedFromJson(value.at("seed"));
    plan.fingerprint = value.stringOr("fingerprint", "");
    if (value.contains("config"))
        plan.config = value.at("config");
    return plan;
}

void
validateShard(const ShardSpec &shard)
{
    if (shard.shard_count < 1)
        util::fatal("shard count must be at least 1, got ",
                    shard.shard_count);
    if (shard.shard_index >= shard.shard_count)
        util::fatal("shard index ", shard.shard_index,
                    " out of range for ", shard.shard_count, " shards");
}

util::IndexRange
shardChunkRange(std::size_t chunk_count, const ShardSpec &shard)
{
    validateShard(shard);
    // Contiguous slices: shard i of N owns [floor(C*i/N),
    // floor(C*(i+1)/N)), which partitions the chunks exactly.
    const std::size_t begin =
        chunk_count * shard.shard_index / shard.shard_count;
    const std::size_t end =
        chunk_count * (shard.shard_index + 1) / shard.shard_count;
    return {begin, end};
}

} // namespace act::sweep
