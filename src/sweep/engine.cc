#include "sweep/engine.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "obs/heartbeat.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace act::sweep {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

namespace {

constexpr const char *kPartialFormat = "act.sweep.partial.v1";
constexpr const char *kResultFormat = "act.sweep.result.v1";

struct SweepInstruments
{
    util::Counter &runs =
        util::MetricsRegistry::instance().counter("sweep.runs");
    util::Counter &items =
        util::MetricsRegistry::instance().counter("sweep.items");
    util::Counter &chunks =
        util::MetricsRegistry::instance().counter("sweep.chunks");
};

SweepInstruments &
sweepInstruments()
{
    static SweepInstruments *instruments = new SweepInstruments;
    return *instruments;
}

} // namespace

namespace detail {

void
runPlanChunks(
    const SweepPlan &plan, const std::vector<util::IndexRange> &chunks,
    std::size_t chunk_offset,
    const std::function<void(std::size_t, util::IndexRange)> &body)
{
    util::TraceSpan span("sweep", plan.domain);
    SweepInstruments &instruments = sweepInstruments();
    instruments.runs.add();
    instruments.chunks.add(chunks.size());
    for (const util::IndexRange &chunk : chunks)
        instruments.items.add(chunk.size());
    util::runChunks(chunks,
                    [&](std::size_t local, util::IndexRange range) {
                        body(chunk_offset + local, range);
                    });
}

std::size_t
mapGrain(std::size_t items)
{
    // A few chunks per worker keeps dynamic load balancing while
    // bounding pool ticket traffic; tiny sweeps degrade gracefully to
    // one item per chunk.
    constexpr std::size_t kChunksPerWorker = 4;
    return std::max<std::size_t>(
        1, items / (kChunksPerWorker * util::threadCount()));
}

} // namespace detail

namespace {

/** Per-run heartbeat state: shared counters plus the gated writer. */
struct HeartbeatState
{
    obs::HeartbeatWriter writer;
    obs::Heartbeat base;
    std::atomic<std::uint64_t> items_done{0};
    std::atomic<std::size_t> chunks_done{0};

    HeartbeatState(const ShardRunOptions &options,
                   obs::Heartbeat base_in)
        : writer(options.heartbeat_path, options.heartbeat_interval_s),
          base(std::move(base_in))
    {}

    void
    publish(bool force, bool done)
    {
        obs::Heartbeat heartbeat = base;
        heartbeat.items_done =
            items_done.load(std::memory_order_relaxed);
        heartbeat.chunks_done =
            chunks_done.load(std::memory_order_relaxed);
        heartbeat.update_wall_s = obs::wallClockSeconds();
        const double elapsed =
            heartbeat.update_wall_s - heartbeat.start_wall_s;
        heartbeat.items_per_sec =
            elapsed > 0.0
                ? static_cast<double>(heartbeat.items_done) / elapsed
                : 0.0;
        heartbeat.rss_mb = obs::processRssMb();
        heartbeat.done = done;
        writer.beat(heartbeat, force);
    }
};

} // namespace

ShardResult
runShardedSweep(const SweepPlan &plan, const ShardSpec &shard,
                const JsonChunkEvaluator &evaluator,
                const ShardRunOptions &options)
{
    if (plan.items == 0)
        util::fatal("sweep plan '", plan.domain, "' has no items");
    const std::vector<util::IndexRange> chunks = planChunks(plan);
    const util::IndexRange owned =
        shardChunkRange(chunks.size(), shard);

    ShardResult result;
    result.plan = plan;
    result.shard = shard;
    result.chunk_begin = owned.begin;
    result.chunks.resize(owned.size());

    const std::vector<util::IndexRange> owned_chunks(
        chunks.begin() + static_cast<std::ptrdiff_t>(owned.begin),
        chunks.begin() + static_cast<std::ptrdiff_t>(owned.end));

    std::unique_ptr<HeartbeatState> heartbeat;
    if (!options.heartbeat_path.empty()) {
        obs::Heartbeat base;
        base.domain = plan.domain;
        base.shard_index = shard.shard_index;
        base.shard_count = shard.shard_count;
        for (const util::IndexRange &chunk : owned_chunks)
            base.items_total += chunk.size();
        base.chunks_total = owned_chunks.size();
        base.start_wall_s = obs::wallClockSeconds();
        heartbeat =
            std::make_unique<HeartbeatState>(options, std::move(base));
        heartbeat->publish(/*force=*/true, /*done=*/false);
    }

    detail::runPlanChunks(
        plan, owned_chunks, owned.begin,
        [&](std::size_t chunk, util::IndexRange range) {
            // Streams derive from the *global* chunk index, so a
            // shard samples exactly what the full run would.
            util::Xorshift64Star rng(
                util::deriveSeed(plan.seed, chunk));
            result.chunks[chunk - owned.begin] =
                evaluator(chunk, range, rng);
            if (heartbeat != nullptr) {
                heartbeat->items_done.fetch_add(
                    range.size(), std::memory_order_relaxed);
                heartbeat->chunks_done.fetch_add(
                    1, std::memory_order_relaxed);
                heartbeat->publish(/*force=*/false, /*done=*/false);
            }
        });
    if (heartbeat != nullptr)
        heartbeat->publish(/*force=*/true, /*done=*/true);
    return result;
}

ShardResult
runShardedSweep(const SweepPlan &plan, const ShardSpec &shard,
                const JsonChunkEvaluator &evaluator)
{
    return runShardedSweep(plan, shard, evaluator, ShardRunOptions{});
}

JsonValue
toJson(const ShardResult &result)
{
    JsonObject object;
    object["format"] = JsonValue(kPartialFormat);
    object["plan"] = toJson(result.plan);
    object["shard_count"] =
        JsonValue(static_cast<double>(result.shard.shard_count));
    object["shard_index"] =
        JsonValue(static_cast<double>(result.shard.shard_index));
    object["chunk_begin"] =
        JsonValue(static_cast<double>(result.chunk_begin));
    object["chunks"] = JsonValue(JsonArray(result.chunks));
    if (!result.metrics.isNull())
        object["metrics"] = result.metrics;
    return JsonValue(std::move(object));
}

ShardResult
shardResultFromJson(const JsonValue &value)
{
    const std::string format = value.stringOr("format", "");
    if (format != kPartialFormat)
        util::fatal("not a sweep partial file (format '", format,
                    "', expected '", kPartialFormat, "')");
    ShardResult result;
    result.plan = sweepPlanFromJson(value.at("plan"));
    result.shard.shard_count = static_cast<std::size_t>(
        value.at("shard_count").asInteger());
    result.shard.shard_index = static_cast<std::size_t>(
        value.at("shard_index").asInteger());
    validateShard(result.shard);
    result.chunk_begin = static_cast<std::size_t>(
        value.at("chunk_begin").asInteger());
    result.chunks = value.at("chunks").asArray();
    if (value.contains("metrics"))
        result.metrics = value.at("metrics");
    return result;
}

namespace {

/** The canonical result document both execution paths emit. */
JsonValue
resultDocument(const SweepPlan &plan, JsonArray payloads)
{
    JsonObject object;
    object["format"] = JsonValue(kResultFormat);
    object["plan"] = toJson(plan);
    object["results"] = JsonValue(std::move(payloads));
    return JsonValue(std::move(object));
}

} // namespace

JsonValue
mergeShards(const std::vector<ShardResult> &shards)
{
    if (shards.empty())
        util::fatal("mergeShards() needs at least one partial");

    const SweepPlan &plan = shards.front().plan;
    const std::string plan_dump = toJson(plan).dump();
    const std::size_t shard_count = shards.front().shard.shard_count;
    const std::size_t chunk_count = planChunks(plan).size();

    if (shards.size() != shard_count) {
        util::fatal("merge expects ", shard_count, " partials (from "
                    "--shards ", shard_count, "), got ", shards.size());
    }

    std::vector<const ShardResult *> by_index(shard_count, nullptr);
    for (const ShardResult &shard : shards) {
        if (toJson(shard.plan).dump() != plan_dump) {
            util::fatal("cannot merge partials from different sweep "
                        "plans (domain/items/grain/seed/fingerprint "
                        "must all match)");
        }
        if (shard.shard.shard_count != shard_count)
            util::fatal("cannot merge partials with different shard "
                        "counts (", shard.shard.shard_count, " vs ",
                        shard_count, ")");
        const std::size_t index = shard.shard.shard_index;
        if (by_index[index] != nullptr)
            util::fatal("duplicate partial for shard ", index,
                        " -- refusing to merge overlapping results");
        by_index[index] = &shard;
    }

    JsonArray payloads;
    payloads.reserve(chunk_count);
    std::size_t next_chunk = 0;
    for (std::size_t index = 0; index < shard_count; ++index) {
        const ShardResult &shard = *by_index[index];
        const util::IndexRange owned =
            shardChunkRange(chunk_count, shard.shard);
        if (shard.chunk_begin != owned.begin ||
            shard.chunks.size() != owned.size()) {
            util::fatal("partial for shard ", index, " covers chunks [",
                        shard.chunk_begin, ", ",
                        shard.chunk_begin + shard.chunks.size(),
                        ") but the plan assigns [", owned.begin, ", ",
                        owned.end, ")");
        }
        if (owned.begin != next_chunk)
            util::panic("shard chunk ranges do not tile the sweep");
        next_chunk = owned.end;
        payloads.insert(payloads.end(), shard.chunks.begin(),
                        shard.chunks.end());
    }
    if (next_chunk != chunk_count)
        util::panic("merged shards cover ", next_chunk, " of ",
                    chunk_count, " chunks");
    return resultDocument(plan, std::move(payloads));
}

JsonValue
fullSweepResult(const SweepPlan &plan,
                const JsonChunkEvaluator &evaluator)
{
    if (plan.items == 0)
        util::fatal("sweep plan '", plan.domain, "' has no items");
    JsonArray payloads(planChunks(plan).size());
    const std::vector<util::IndexRange> chunks = planChunks(plan);
    detail::runPlanChunks(
        plan, chunks, 0,
        [&](std::size_t chunk, util::IndexRange range) {
            util::Xorshift64Star rng(
                util::deriveSeed(plan.seed, chunk));
            payloads[chunk] = evaluator(chunk, range, rng);
        });
    return resultDocument(plan, std::move(payloads));
}

} // namespace act::sweep
