/**
 * @file
 * Shared scaffolding for the bench harness: every table/figure binary
 * announces itself, prints its series through util::Table /
 * util::renderBarChart, and reports "paper vs measured" claim lines in
 * a uniform format that EXPERIMENTS.md mirrors.
 */

#ifndef ACT_REPORT_EXPERIMENT_H
#define ACT_REPORT_EXPERIMENT_H

#include <string>
#include <string_view>

#include "util/trace.h"

namespace act::report {

/** Command-line options shared by all bench binaries. */
struct Options
{
    /** Dump machine-readable CSV after the human-readable output. */
    bool csv = false;
    /** Run any ablation variant the binary defines. */
    bool ablation = false;
    /** Print the metrics-registry table at the end of the run. */
    bool metrics = false;
    /** Chrome trace-event output file ("" = tracing off). */
    std::string trace_file;
};

/**
 * Parse --csv / --ablation / --metrics / --trace <file>; unknown flags
 * are fatal. --metrics enables the registry (util::setMetricsEnabled)
 * and --trace starts recording (util::setTraceFile) as side effects,
 * mirroring the ACT_METRICS / ACT_TRACE environment variables.
 */
Options parseOptions(int argc, char **argv);

/** One experiment's console reporter. */
class Experiment
{
  public:
    /**
     * @param id paper artifact id, e.g. "Figure 12".
     * @param title short description.
     */
    Experiment(std::string id, std::string title);

    /**
     * Ends the per-figure trace span, prints the end-of-run metrics
     * table when metrics are enabled, and flushes the trace file.
     */
    ~Experiment();

    /** Print a section sub-header. */
    void section(std::string_view name) const;

    /** Report a paper-claimed value against the measured one. */
    void claim(std::string_view label, std::string_view paper,
               std::string_view measured) const;
    void claim(std::string_view label, double paper, double measured,
               int significant_digits = 3) const;

    /** Free-form note line. */
    void note(std::string_view text) const;

  private:
    std::string id_;
    /** Spans the whole figure/table run ("bench" category). */
    util::TraceSpan span_;
};

} // namespace act::report

#endif // ACT_REPORT_EXPERIMENT_H
