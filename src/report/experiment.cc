#include "report/experiment.h"

#include <cstring>
#include <iostream>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"

namespace act::report {

Options
parseOptions(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) {
            options.csv = true;
        } else if (std::strcmp(argv[i], "--ablation") == 0) {
            options.ablation = true;
        } else if (std::strcmp(argv[i], "--metrics") == 0) {
            options.metrics = true;
            util::setMetricsEnabled(true);
        } else if (std::strcmp(argv[i], "--trace") == 0) {
            if (i + 1 >= argc)
                util::fatal("--trace needs a file path");
            options.trace_file = argv[++i];
            util::setTraceFile(options.trace_file);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0]
                      << " [--csv] [--ablation] [--metrics]"
                         " [--trace <file>]\n";
            std::exit(0);
        } else {
            util::fatal("unknown option '", argv[i],
                        "' (supported: --csv, --ablation, --metrics, "
                        "--trace <file>, --help)");
        }
    }
    return options;
}

Experiment::Experiment(std::string id, std::string title)
    : id_(std::move(id)), span_("bench", id_)
{
    std::cout << "=== " << id_ << ": " << title << " ===\n";
}

Experiment::~Experiment()
{
    span_.finish();
    if (util::metricsEnabled()) {
        std::cout << "\n--- metrics (" << id_ << ") ---\n"
                  << util::MetricsRegistry::instance().renderTable();
    }
    util::flushTrace();
}

void
Experiment::section(std::string_view name) const
{
    std::cout << "\n--- " << name << " ---\n";
}

void
Experiment::claim(std::string_view label, std::string_view paper,
                  std::string_view measured) const
{
    std::cout << "[claim] " << label << ": paper=" << paper
              << " measured=" << measured << '\n';
}

void
Experiment::claim(std::string_view label, double paper, double measured,
                  int significant_digits) const
{
    claim(label, util::formatSig(paper, significant_digits),
          util::formatSig(measured, significant_digits));
}

void
Experiment::note(std::string_view text) const
{
    std::cout << "[note] " << text << '\n';
}

} // namespace act::report
