#include "server/datacenter.h"

#include "data/device_db.h"
#include "util/logging.h"

namespace act::server {

namespace {

void
checkDatacenter(const DatacenterParams &dc)
{
    if (dc.pue < 1.0)
        util::fatal("PUE must be >= 1, got ", dc.pue);
    if (!(dc.utilization >= 0.0 && dc.utilization <= 1.0))
        util::fatal("utilization must be in [0, 1], got ",
                    dc.utilization);
    if (util::asYears(dc.lifetime) <= 0.0)
        util::fatal("server lifetime must be positive");
}

core::OperationalParams
gridWithPue(const DatacenterParams &dc)
{
    core::OperationalParams use = dc.grid;
    use.utilization_effectiveness *= dc.pue;
    return use;
}

} // namespace

ServerPlatform
dellR740Platform(const core::FabParams &fab)
{
    const core::EmbodiedModel model(fab);
    const auto device =
        data::DeviceDatabase::instance().byNameOrDie("Dell R740");

    ServerPlatform platform;
    platform.name = device.name;
    platform.embodied = model.evaluate(device).total();
    platform.idle_power = util::watts(120.0);
    platform.peak_power = util::watts(500.0);
    platform.performance = 1.0;
    return platform;
}

util::Power
powerAtUtilization(const ServerPlatform &platform, double utilization)
{
    if (!(utilization >= 0.0 && utilization <= 1.0))
        util::fatal("utilization must be in [0, 1], got ", utilization);
    return platform.idle_power +
           (platform.peak_power - platform.idle_power) * utilization;
}

core::CarbonFootprint
annualFootprint(const ServerPlatform &platform,
                const DatacenterParams &dc)
{
    checkDatacenter(dc);
    const util::Energy annual_energy =
        powerAtUtilization(platform, dc.utilization) * util::years(1.0);
    return core::combineFootprint(
        core::operationalFootprint(annual_energy, gridWithPue(dc)),
        platform.embodied, util::years(1.0), dc.lifetime);
}

core::CarbonFootprint
jobFootprint(const ServerPlatform &platform, const DatacenterParams &dc,
             util::Duration duration)
{
    checkDatacenter(dc);
    const util::Energy job_energy =
        powerAtUtilization(platform, 1.0) * duration;
    return core::combineFootprint(
        core::operationalFootprint(job_energy, gridWithPue(dc)),
        platform.embodied, duration, dc.lifetime);
}

core::DesignPoint
serverDesignPoint(const ServerPlatform &platform,
                  const DatacenterParams &dc)
{
    checkDatacenter(dc);
    core::DesignPoint point;
    point.name = platform.name;
    point.embodied = platform.embodied;
    point.energy =
        powerAtUtilization(platform, dc.utilization) * util::years(1.0);
    point.delay = util::seconds(1.0 / platform.performance);
    return point;
}

std::vector<core::ReplacementPoint>
refreshSweep(const ServerPlatform &platform, const DatacenterParams &dc,
             double annual_efficiency_improvement,
             util::Duration horizon)
{
    checkDatacenter(dc);
    core::ReplacementParams params;
    params.embodied_per_unit = platform.embodied;
    params.first_year_energy =
        powerAtUtilization(platform, dc.utilization) * util::years(1.0);
    params.use = gridWithPue(dc);
    params.annual_efficiency_improvement =
        annual_efficiency_improvement;
    params.horizon = horizon;
    return core::replacementSweep(
        params, static_cast<int>(util::asYears(horizon)));
}

} // namespace act::server
