#include "server/storage_tier.h"

#include <algorithm>

#include "util/logging.h"

namespace act::server {

StorageTier
enterpriseHddTier()
{
    // Exos-class 16 TB helium drive: ~10 W active / 5.5 W idle,
    // ~250 MB/s sustained per spindle.
    StorageTier tier;
    tier.name = "enterprise HDD (Exosx16-class)";
    tier.cps = data::storageOrDie("Exosx16").cps;
    tier.active_power_per_tb = util::watts(10.0 / 16.0);
    tier.idle_power_per_tb = util::watts(5.5 / 16.0);
    tier.throughput_mbps_per_tb = 250.0 / 16.0;
    return tier;
}

StorageTier
datacenterSsdTier()
{
    // 7.68 TB TLC NVMe: ~15 W active / 5 W idle, ~3 GB/s sustained.
    StorageTier tier;
    tier.name = "datacenter SSD (1z TLC)";
    tier.cps = data::storageOrDie("1z NAND TLC").cps;
    tier.active_power_per_tb = util::watts(15.0 / 7.68);
    tier.idle_power_per_tb = util::watts(5.0 / 7.68);
    tier.throughput_mbps_per_tb = 3000.0 / 7.68;
    return tier;
}

util::Capacity
provisionedCapacity(const StorageTier &tier, const StorageDemand &demand)
{
    if (util::asGigabytes(demand.capacity) <= 0.0)
        util::fatal("storage demand needs a positive capacity");
    if (demand.throughput_mbps < 0.0)
        util::fatal("throughput demand must be non-negative");
    if (tier.throughput_mbps_per_tb <= 0.0)
        util::fatal("tier '", tier.name,
                    "' has no throughput density");

    const double for_throughput_tb =
        demand.throughput_mbps / tier.throughput_mbps_per_tb;
    return util::gigabytes(
        std::max(util::asGigabytes(demand.capacity),
                 for_throughput_tb * 1000.0));
}

core::CarbonFootprint
tierFootprint(const StorageTier &tier, const StorageDemand &demand,
              util::Duration lifetime,
              const core::OperationalParams &use)
{
    if (!(demand.duty >= 0.0 && demand.duty <= 1.0))
        util::fatal("duty must be in [0, 1], got ", demand.duty);

    const util::Capacity provisioned =
        provisionedCapacity(tier, demand);
    const double tb = util::asGigabytes(provisioned) / 1000.0;
    const util::Power average_power =
        (tier.active_power_per_tb * demand.duty +
         tier.idle_power_per_tb * (1.0 - demand.duty)) *
        tb;

    return core::lifetimeFootprint(
        core::operationalFootprint(average_power * lifetime, use),
        tier.cps * provisioned);
}

std::optional<double>
throughputCrossover(const StorageTier &incumbent,
                    const StorageTier &challenger,
                    const StorageDemand &base_demand,
                    util::Duration lifetime,
                    const core::OperationalParams &use, double max_mbps)
{
    const auto advantage = [&](double mbps) {
        StorageDemand demand = base_demand;
        demand.throughput_mbps = mbps;
        const double incumbent_total = util::asGrams(
            tierFootprint(incumbent, demand, lifetime, use).total());
        const double challenger_total = util::asGrams(
            tierFootprint(challenger, demand, lifetime, use).total());
        return challenger_total - incumbent_total;
    };

    if (advantage(0.0) <= 0.0)
        return 0.0;  // the challenger already wins at zero throughput
    if (advantage(max_mbps) > 0.0)
        return std::nullopt;

    double lo = 0.0;
    double hi = max_mbps;
    for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (advantage(mid) > 0.0)
            lo = mid;
        else
            hi = mid;
    }
    return hi;
}

} // namespace act::server
