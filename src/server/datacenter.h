/**
 * @file
 * Data-center server carbon accounting -- the CDP use case of Table 2
 * ("balance CO2 and performance, e.g. sustainable data center").
 *
 * A server platform couples an embodied footprint (evaluated over its
 * bill of materials with the Eq. 3-8 models) with a linear
 * utilization-to-power model; the data center adds PUE and a grid.
 * On top of that the module provides per-job carbon attribution and a
 * server-refresh analysis via the shared replacement-cycle model.
 */

#ifndef ACT_SERVER_DATACENTER_H
#define ACT_SERVER_DATACENTER_H

#include <string>
#include <vector>

#include "core/embodied.h"
#include "core/footprint.h"
#include "core/metrics.h"
#include "core/replacement.h"

namespace act::server {

/** One server platform. */
struct ServerPlatform
{
    std::string name;
    /** Embodied footprint of the server's ICs (Eq. 3). */
    util::Mass embodied{};
    /** Wall power when idle and at full load. */
    util::Power idle_power{};
    util::Power peak_power{};
    /** Relative throughput at full load (1.0 = reference). */
    double performance = 1.0;
};

/** Data-center environment. */
struct DatacenterParams
{
    core::OperationalParams grid{};
    /** Power usage effectiveness; folds into Eq. 2 as the
     *  utilization-effectiveness multiplier. */
    double pue = 1.2;
    /** Fleet-average server utilization. */
    double utilization = 0.5;
    /** Server service life (the paper cites 3-5 years). */
    util::Duration lifetime = util::years(4.0);
};

/**
 * A Dell R740-class reference server: embodied footprint from the
 * device database BOM under the given fab conditions, with a
 * typical dual-socket power envelope.
 */
ServerPlatform dellR740Platform(const core::FabParams &fab);

/** Wall power at a fleet utilization (linear idle..peak model). */
util::Power powerAtUtilization(const ServerPlatform &platform,
                               double utilization);

/** Eq. 1 over one year of service (embodied amortized by LT). */
core::CarbonFootprint annualFootprint(const ServerPlatform &platform,
                                      const DatacenterParams &dc);

/**
 * Carbon attributed to a job occupying the whole server for
 * @p duration at full load: operational energy plus the embodied
 * share of Eq. 1.
 */
core::CarbonFootprint jobFootprint(const ServerPlatform &platform,
                                   const DatacenterParams &dc,
                                   util::Duration duration);

/**
 * CDP-style design point for a server: delay is the reciprocal of
 * relative performance, energy is annual grid energy, carbon is the
 * embodied footprint.
 */
core::DesignPoint serverDesignPoint(const ServerPlatform &platform,
                                    const DatacenterParams &dc);

/**
 * Server-refresh analysis: sweep replacement intervals under an
 * annual perf/W improvement for new server generations. Server
 * efficiency has improved far more slowly post-Dennard than mobile
 * (the paper's [55] reports ~5x compute efficiency over a decade,
 * i.e. ~1.17x/year at the start of that period and flattening since);
 * the default models a conservative 1.12x/year.
 */
std::vector<core::ReplacementPoint>
refreshSweep(const ServerPlatform &platform, const DatacenterParams &dc,
             double annual_efficiency_improvement = 1.12,
             util::Duration horizon = util::years(12.0));

} // namespace act::server

#endif // ACT_SERVER_DATACENTER_H
