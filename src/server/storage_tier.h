/**
 * @file
 * Storage-tier carbon comparison. Fig. 7 shows enterprise HDDs carry
 * far less embodied carbon per byte than NAND -- but disks serve so
 * little throughput per terabyte that performance-hungry tiers must
 * over-provision capacity to reach their IOPS/bandwidth targets,
 * inflating both embodied and operational carbon. This module
 * evaluates the end-to-end Eq. 1 trade-off and locates the throughput
 * demand at which flash overtakes disk.
 */

#ifndef ACT_SERVER_STORAGE_TIER_H
#define ACT_SERVER_STORAGE_TIER_H

#include <optional>
#include <string>

#include "core/footprint.h"
#include "core/operational.h"
#include "data/memory_db.h"

namespace act::server {

/** One storage technology tier. */
struct StorageTier
{
    std::string name;
    /** Embodied carbon per gigabyte (Tables 9-11). */
    util::CarbonPerCapacity cps{};
    /** Wall power per terabyte, active and idle. */
    util::Power active_power_per_tb{};
    util::Power idle_power_per_tb{};
    /** Sustained throughput a terabyte of this tier can serve. */
    double throughput_mbps_per_tb = 0.0;
};

/** An enterprise nearline HDD tier (Exos-class helium 3.5"). */
StorageTier enterpriseHddTier();

/** A datacenter TLC NAND tier. */
StorageTier datacenterSsdTier();

/** What the deployment must deliver. */
struct StorageDemand
{
    /** User data that must be stored. */
    util::Capacity capacity{};
    /** Sustained aggregate throughput required. */
    double throughput_mbps = 0.0;
    /** Fraction of time the tier is actively serving I/O. */
    double duty = 0.3;
};

/**
 * Capacity that must be provisioned: the max of the data size and the
 * capacity needed to reach the throughput target.
 */
util::Capacity provisionedCapacity(const StorageTier &tier,
                                   const StorageDemand &demand);

/**
 * Whole-life footprint of meeting @p demand on @p tier over
 * @p lifetime under grid @p use. Embodied is charged in full (the
 * tier exists for the whole service life).
 */
core::CarbonFootprint
tierFootprint(const StorageTier &tier, const StorageDemand &demand,
              util::Duration lifetime,
              const core::OperationalParams &use);

/**
 * The throughput demand (MB/s) at which @p challenger's whole-life
 * footprint drops below @p incumbent's, holding capacity and duty
 * fixed; nullopt when no crossover exists below @p max_mbps.
 */
std::optional<double>
throughputCrossover(const StorageTier &incumbent,
                    const StorageTier &challenger,
                    const StorageDemand &base_demand,
                    util::Duration lifetime,
                    const core::OperationalParams &use,
                    double max_mbps = 1.0e6);

} // namespace act::server

#endif // ACT_SERVER_STORAGE_TIER_H
