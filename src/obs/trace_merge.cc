#include "obs/trace_merge.h"

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace act::obs {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

namespace {

/** The wall-clock position (µs since Unix epoch) of a trace file's
 *  timestamp origin, read from its trace_epoch metadata event; 0 when
 *  the file predates epoch stamping. */
std::uint64_t
traceEpochOf(const JsonValue &trace, const std::string &name)
{
    for (const JsonValue &event : trace.at("traceEvents").asArray()) {
        if (!event.isObject())
            continue;
        if (event.stringOr("name", "") != "trace_epoch")
            continue;
        if (!event.contains("args"))
            continue;
        const double epoch =
            event.at("args").numberOr("wall_epoch_us", 0.0);
        return static_cast<std::uint64_t>(epoch);
    }
    util::warn("trace '", name,
               "' has no trace_epoch metadata; aligning its start "
               "with the earliest trace");
    return 0;
}

std::string
basenameOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

JsonValue
metadataEvent(const std::string &name, int pid, JsonObject args)
{
    JsonObject event;
    event["name"] = JsonValue(name);
    event["cat"] = JsonValue("__metadata");
    event["ph"] = JsonValue("M");
    event["pid"] = JsonValue(pid);
    event["tid"] = JsonValue(0);
    event["ts"] = JsonValue(0);
    event["args"] = JsonValue(std::move(args));
    return JsonValue(std::move(event));
}

} // namespace

JsonValue
mergeTraceDocs(const std::vector<JsonValue> &traces,
               const std::vector<std::string> &names)
{
    if (traces.size() != names.size())
        util::panic("mergeTraceDocs: ", traces.size(), " traces but ",
                    names.size(), " names");

    std::vector<std::uint64_t> epochs;
    epochs.reserve(traces.size());
    for (std::size_t i = 0; i < traces.size(); ++i) {
        if (!traces[i].isObject() ||
            !traces[i].contains("traceEvents") ||
            !traces[i].at("traceEvents").isArray()) {
            util::fatal("'", names[i],
                        "' is not a Chrome trace document "
                        "(no traceEvents array)");
        }
        epochs.push_back(traceEpochOf(traces[i], names[i]));
    }
    const std::uint64_t min_epoch =
        epochs.empty()
            ? 0
            : *std::min_element(epochs.begin(), epochs.end());

    JsonArray merged;
    JsonObject epoch_args;
    epoch_args["wall_epoch_us"] =
        JsonValue(static_cast<double>(min_epoch));
    merged.push_back(
        metadataEvent("trace_epoch", 1, std::move(epoch_args)));

    for (std::size_t i = 0; i < traces.size(); ++i) {
        const int pid = static_cast<int>(i) + 1;
        JsonObject name_args;
        name_args["name"] = JsonValue(basenameOf(names[i]));
        merged.push_back(
            metadataEvent("process_name", pid, std::move(name_args)));

        // Epochs are close together in practice (shards of one run),
        // so the µs delta stays well inside double precision.
        const double delta_us =
            static_cast<double>(epochs[i] - min_epoch);
        for (const JsonValue &event :
             traces[i].at("traceEvents").asArray()) {
            if (!event.isObject())
                continue;
            // Per-file epoch anchors are consumed by the alignment;
            // the merged file carries a single fresh one.
            if (event.stringOr("name", "") == "trace_epoch")
                continue;
            JsonObject remapped = event.asObject();
            remapped["pid"] = JsonValue(pid);
            remapped["ts"] = JsonValue(
                event.numberOr("ts", 0.0) + delta_us);
            merged.push_back(JsonValue(std::move(remapped)));
        }
    }

    JsonObject doc;
    doc["displayTimeUnit"] = JsonValue("ns");
    doc["traceEvents"] = JsonValue(std::move(merged));
    return JsonValue(std::move(doc));
}

void
mergeTraceFiles(const std::string &out_path,
                const std::vector<std::string> &trace_paths)
{
    std::vector<JsonValue> traces;
    std::vector<std::string> names;
    traces.reserve(trace_paths.size());
    for (const std::string &path : trace_paths) {
        traces.push_back(config::loadJsonFile(path));
        names.push_back(path);
    }
    config::saveJsonFile(out_path, mergeTraceDocs(traces, names));
}

} // namespace act::obs
