#include "obs/metrics_doc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

namespace act::obs {

using config::JsonArray;
using config::JsonObject;
using config::JsonValue;

const char *const kMetricsFormat = "act.metrics.v1";

namespace {

/** Numeric rendering for exposition output: integers stay integral,
 *  everything else gets enough digits to be faithful. */
std::string
formatNumber(double value)
{
    char buffer[64];
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.10g", value);
    }
    return buffer;
}

/** Prometheus metric name: `act_` prefix, [a-zA-Z0-9_:] body. */
std::string
promName(const std::string &name)
{
    std::string out = "act_";
    for (const char c : name) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' ||
                          c == ':';
        out += keep ? c : '_';
    }
    return out;
}

const JsonObject &
requireObject(const JsonValue &doc, const char *key)
{
    static const JsonObject empty;
    if (!doc.contains(key))
        return empty;
    const JsonValue &value = doc.at(key);
    if (!value.isObject())
        util::fatal("metrics document field '", key,
                    "' must be an object");
    return value.asObject();
}

std::vector<double>
numberArray(const JsonValue &value, const std::string &context)
{
    if (!value.isArray())
        util::fatal("metrics document ", context, " must be an array");
    std::vector<double> out;
    out.reserve(value.asArray().size());
    for (const JsonValue &entry : value.asArray()) {
        if (!entry.isNumber())
            util::fatal("metrics document ", context,
                        " must contain only numbers");
        out.push_back(entry.asNumber());
    }
    return out;
}

/** Working form of one histogram while merging. */
struct HistogramAccumulator
{
    std::vector<double> bounds;
    std::vector<double> counts;
    double count = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
};

JsonValue
histogramToJson(const HistogramAccumulator &histogram)
{
    JsonObject object;
    JsonArray bounds;
    bounds.reserve(histogram.bounds.size());
    for (const double bound : histogram.bounds)
        bounds.emplace_back(bound);
    JsonArray counts;
    counts.reserve(histogram.counts.size());
    for (const double count : histogram.counts)
        counts.emplace_back(count);
    object["bounds"] = JsonValue(std::move(bounds));
    object["counts"] = JsonValue(std::move(counts));
    object["count"] = JsonValue(histogram.count);
    object["sum"] = JsonValue(histogram.sum);
    object["min"] = JsonValue(histogram.min);
    object["max"] = JsonValue(histogram.max);
    return JsonValue(std::move(object));
}

JsonValue
gaugeToJson(const std::vector<double> &values)
{
    JsonObject object;
    JsonArray list;
    list.reserve(values.size());
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    double sum = 0.0;
    for (const double value : values) {
        list.emplace_back(value);
        min = std::min(min, value);
        max = std::max(max, value);
        sum += value;
    }
    object["values"] = JsonValue(std::move(list));
    if (!values.empty()) {
        object["min"] = JsonValue(min);
        object["max"] = JsonValue(max);
        object["mean"] =
            JsonValue(sum / static_cast<double>(values.size()));
    }
    return JsonValue(std::move(object));
}

} // namespace

JsonValue
metricsToJson(const util::MetricsSnapshot &snapshot)
{
    JsonObject counters;
    for (const auto &[name, value] : snapshot.counters)
        counters[name] = JsonValue(static_cast<double>(value));

    JsonObject gauges;
    for (const auto &[name, value] : snapshot.gauges)
        gauges[name] = gaugeToJson({value});

    JsonObject histograms;
    for (const util::HistogramSnapshot &histogram :
         snapshot.histograms) {
        HistogramAccumulator accumulator;
        for (const auto &[bound, count] : histogram.buckets) {
            // The last bucket's bound is +infinity, which JSON cannot
            // carry; the overflow bucket is implied by counts having
            // one more entry than bounds.
            if (std::isfinite(bound))
                accumulator.bounds.push_back(bound);
            accumulator.counts.push_back(static_cast<double>(count));
        }
        accumulator.count = static_cast<double>(histogram.count);
        accumulator.sum = histogram.sum;
        accumulator.min = histogram.min;
        accumulator.max = histogram.max;
        histograms[histogram.name] = histogramToJson(accumulator);
    }

    JsonObject document;
    document["format"] = JsonValue(kMetricsFormat);
    document["counters"] = JsonValue(std::move(counters));
    document["gauges"] = JsonValue(std::move(gauges));
    document["histograms"] = JsonValue(std::move(histograms));
    return JsonValue(std::move(document));
}

const JsonValue &
validateMetricsDoc(const JsonValue &doc)
{
    if (!doc.isObject())
        util::fatal("metrics document must be a JSON object");
    const std::string format = doc.stringOr("format", "");
    if (format != kMetricsFormat)
        util::fatal("not a metrics document (format '", format,
                    "', expected '", kMetricsFormat, "')");
    for (const auto &[name, value] : requireObject(doc, "counters")) {
        if (!value.isNumber() || value.asNumber() < 0.0)
            util::fatal("metrics counter '", name,
                        "' must be a non-negative number");
    }
    for (const auto &[name, value] : requireObject(doc, "gauges")) {
        if (!value.isObject())
            util::fatal("metrics gauge '", name,
                        "' must be an object");
        numberArray(value.at("values"), "gauge '" + name + "' values");
    }
    for (const auto &[name, value] : requireObject(doc, "histograms")) {
        if (!value.isObject())
            util::fatal("metrics histogram '", name,
                        "' must be an object");
        const std::vector<double> bounds =
            numberArray(value.at("bounds"),
                        "histogram '" + name + "' bounds");
        if (!std::is_sorted(bounds.begin(), bounds.end()))
            util::fatal("metrics histogram '", name,
                        "' bounds must be ascending");
        const std::vector<double> counts =
            numberArray(value.at("counts"),
                        "histogram '" + name + "' counts");
        if (counts.size() != bounds.size() + 1)
            util::fatal("metrics histogram '", name, "' needs ",
                        bounds.size() + 1, " bucket counts (bounds + "
                        "overflow), got ", counts.size());
        for (const char *field : {"count", "sum", "min", "max"}) {
            if (!value.contains(field) || !value.at(field).isNumber())
                util::fatal("metrics histogram '", name,
                            "' is missing numeric field '", field,
                            "'");
        }
    }
    return doc;
}

JsonValue
mergeMetricsDocs(const std::vector<JsonValue> &docs)
{
    std::map<std::string, double> counters;
    std::map<std::string, std::vector<double>> gauges;
    std::map<std::string, HistogramAccumulator> histograms;

    for (const JsonValue &doc : docs) {
        validateMetricsDoc(doc);
        for (const auto &[name, value] : requireObject(doc, "counters"))
            counters[name] += value.asNumber();
        for (const auto &[name, value] : requireObject(doc, "gauges")) {
            const std::vector<double> values =
                numberArray(value.at("values"),
                            "gauge '" + name + "' values");
            auto &merged = gauges[name];
            merged.insert(merged.end(), values.begin(), values.end());
        }
        for (const auto &[name, value] :
             requireObject(doc, "histograms")) {
            const std::vector<double> bounds =
                numberArray(value.at("bounds"),
                            "histogram '" + name + "' bounds");
            const std::vector<double> counts =
                numberArray(value.at("counts"),
                            "histogram '" + name + "' counts");
            const double count = value.at("count").asNumber();
            auto found = histograms.find(name);
            if (found == histograms.end()) {
                HistogramAccumulator accumulator;
                accumulator.bounds = bounds;
                accumulator.counts = counts;
                accumulator.count = count;
                accumulator.sum = value.at("sum").asNumber();
                accumulator.min = value.at("min").asNumber();
                accumulator.max = value.at("max").asNumber();
                histograms.emplace(name, std::move(accumulator));
                continue;
            }
            HistogramAccumulator &merged = found->second;
            // Bucket-wise merging is only meaningful when every shard
            // used the same ladder; refuse to misbin rather than
            // produce quietly wrong quantiles.
            if (merged.bounds != bounds)
                util::fatal("cannot merge metrics: histogram '", name,
                            "' has incompatible bucket bounds across "
                            "snapshots");
            for (std::size_t i = 0; i < counts.size(); ++i)
                merged.counts[i] += counts[i];
            if (count > 0.0) {
                if (merged.count == 0.0) {
                    merged.min = value.at("min").asNumber();
                    merged.max = value.at("max").asNumber();
                } else {
                    merged.min = std::min(merged.min,
                                          value.at("min").asNumber());
                    merged.max = std::max(merged.max,
                                          value.at("max").asNumber());
                }
            }
            merged.count += count;
            merged.sum += value.at("sum").asNumber();
        }
    }

    JsonObject counters_json;
    for (const auto &[name, value] : counters)
        counters_json[name] = JsonValue(value);
    JsonObject gauges_json;
    for (const auto &[name, values] : gauges)
        gauges_json[name] = gaugeToJson(values);
    JsonObject histograms_json;
    for (const auto &[name, histogram] : histograms)
        histograms_json[name] = histogramToJson(histogram);

    JsonObject document;
    document["format"] = JsonValue(kMetricsFormat);
    document["counters"] = JsonValue(std::move(counters_json));
    document["gauges"] = JsonValue(std::move(gauges_json));
    document["histograms"] = JsonValue(std::move(histograms_json));
    return JsonValue(std::move(document));
}

std::string
renderPrometheus(const JsonValue &doc)
{
    validateMetricsDoc(doc);
    std::string out;

    for (const auto &[name, value] : requireObject(doc, "counters")) {
        const std::string metric = promName(name);
        out += "# TYPE " + metric + " counter\n";
        out += metric + " " + formatNumber(value.asNumber()) + "\n";
    }

    for (const auto &[name, value] : requireObject(doc, "gauges")) {
        const std::vector<double> values =
            numberArray(value.at("values"), "gauge values");
        const std::string metric = promName(name);
        out += "# TYPE " + metric + " gauge\n";
        if (values.size() == 1) {
            out += metric + " " + formatNumber(values[0]) + "\n";
        } else {
            for (std::size_t i = 0; i < values.size(); ++i) {
                out += metric + "{shard=\"" + std::to_string(i) +
                       "\"} " + formatNumber(values[i]) + "\n";
            }
        }
    }

    for (const auto &[name, value] : requireObject(doc, "histograms")) {
        const std::vector<double> bounds =
            numberArray(value.at("bounds"), "histogram bounds");
        const std::vector<double> counts =
            numberArray(value.at("counts"), "histogram counts");
        const std::string metric = promName(name);
        out += "# TYPE " + metric + " histogram\n";
        double cumulative = 0.0;
        for (std::size_t i = 0; i < counts.size(); ++i) {
            cumulative += counts[i];
            const std::string le = i < bounds.size()
                                       ? formatNumber(bounds[i])
                                       : std::string("+Inf");
            out += metric + "_bucket{le=\"" + le + "\"} " +
                   formatNumber(cumulative) + "\n";
        }
        out += metric + "_sum " +
               formatNumber(value.at("sum").asNumber()) + "\n";
        out += metric + "_count " +
               formatNumber(value.at("count").asNumber()) + "\n";
    }
    return out;
}

std::string
renderMetricsDocTable(const JsonValue &doc)
{
    validateMetricsDoc(doc);
    util::Table table(
        {"Metric", "Type", "Count", "Mean", "Min", "Max"});
    for (const auto &[name, value] : requireObject(doc, "counters")) {
        table.addRow({name, "counter",
                      formatNumber(value.asNumber()), "", "", ""});
    }
    for (const auto &[name, value] : requireObject(doc, "gauges")) {
        const std::vector<double> values =
            numberArray(value.at("values"), "gauge values");
        table.addRow(
            {name, "gauge", std::to_string(values.size()),
             util::formatSig(value.numberOr("mean", 0.0), 4),
             util::formatSig(value.numberOr("min", 0.0), 4),
             util::formatSig(value.numberOr("max", 0.0), 4)});
    }
    for (const auto &[name, value] : requireObject(doc, "histograms")) {
        const double count = value.at("count").asNumber();
        const double mean =
            count > 0.0 ? value.at("sum").asNumber() / count : 0.0;
        table.addRow({name, "histogram", formatNumber(count),
                      util::formatSig(mean, 4),
                      util::formatSig(value.at("min").asNumber(), 4),
                      util::formatSig(value.at("max").asNumber(), 4)});
    }
    return table.render();
}

} // namespace act::obs
