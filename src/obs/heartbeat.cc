#include "obs/heartbeat.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace act::obs {

using config::JsonObject;
using config::JsonValue;

const char *const kHeartbeatFormat = "act.heartbeat.v1";
const char *const kHeartbeatSuffix = ".heartbeat.json";

JsonValue
toJson(const Heartbeat &heartbeat)
{
    JsonObject object;
    object["format"] = JsonValue(kHeartbeatFormat);
    object["domain"] = JsonValue(heartbeat.domain);
    object["shard_index"] =
        JsonValue(static_cast<double>(heartbeat.shard_index));
    object["shard_count"] =
        JsonValue(static_cast<double>(heartbeat.shard_count));
    object["items_done"] =
        JsonValue(static_cast<double>(heartbeat.items_done));
    object["items_total"] =
        JsonValue(static_cast<double>(heartbeat.items_total));
    object["chunks_done"] =
        JsonValue(static_cast<double>(heartbeat.chunks_done));
    object["chunks_total"] =
        JsonValue(static_cast<double>(heartbeat.chunks_total));
    object["items_per_sec"] = JsonValue(heartbeat.items_per_sec);
    object["rss_mb"] = JsonValue(heartbeat.rss_mb);
    object["start_wall_s"] = JsonValue(heartbeat.start_wall_s);
    object["update_wall_s"] = JsonValue(heartbeat.update_wall_s);
    object["done"] = JsonValue(heartbeat.done);
    return JsonValue(std::move(object));
}

Heartbeat
heartbeatFromJson(const JsonValue &value)
{
    const std::string format = value.stringOr("format", "");
    if (format != kHeartbeatFormat)
        util::fatal("not a heartbeat document (format '", format,
                    "', expected '", kHeartbeatFormat, "')");
    Heartbeat heartbeat;
    heartbeat.domain = value.stringOr("domain", "");
    heartbeat.shard_index = static_cast<std::size_t>(
        value.numberOr("shard_index", 0.0));
    heartbeat.shard_count = static_cast<std::size_t>(
        value.numberOr("shard_count", 1.0));
    heartbeat.items_done = static_cast<std::uint64_t>(
        value.numberOr("items_done", 0.0));
    heartbeat.items_total = static_cast<std::uint64_t>(
        value.numberOr("items_total", 0.0));
    heartbeat.chunks_done = static_cast<std::size_t>(
        value.numberOr("chunks_done", 0.0));
    heartbeat.chunks_total = static_cast<std::size_t>(
        value.numberOr("chunks_total", 0.0));
    heartbeat.items_per_sec = value.numberOr("items_per_sec", 0.0);
    heartbeat.rss_mb = value.numberOr("rss_mb", 0.0);
    heartbeat.start_wall_s = value.numberOr("start_wall_s", 0.0);
    heartbeat.update_wall_s = value.numberOr("update_wall_s", 0.0);
    heartbeat.done = value.boolOr("done", false);
    return heartbeat;
}

double
wallClockSeconds()
{
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::system_clock::now()
                       .time_since_epoch())
                   .count()) /
           1e6;
}

double
processRssMb()
{
#if defined(__linux__)
    // /proc/self/statm: size resident shared text lib data dt (pages).
    std::ifstream statm("/proc/self/statm");
    if (!statm)
        return 0.0;
    long long size_pages = 0;
    long long resident_pages = 0;
    statm >> size_pages >> resident_pages;
    if (!statm)
        return 0.0;
    const long page_bytes = sysconf(_SC_PAGESIZE);
    if (page_bytes <= 0)
        return 0.0;
    return static_cast<double>(resident_pages) *
           static_cast<double>(page_bytes) / (1024.0 * 1024.0);
#else
    return 0.0;
#endif
}

std::string
heartbeatPathFor(const std::string &partial_path)
{
    const std::string json_suffix = ".json";
    if (partial_path.size() > json_suffix.size() &&
        partial_path.compare(partial_path.size() - json_suffix.size(),
                             json_suffix.size(), json_suffix) == 0) {
        return partial_path.substr(0, partial_path.size() -
                                          json_suffix.size()) +
               kHeartbeatSuffix;
    }
    return partial_path + kHeartbeatSuffix;
}

namespace {

std::uint64_t
steadyNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_s)
    : path_(std::move(path)),
      interval_ns_(static_cast<std::uint64_t>(
          std::max(0.0, interval_s) * 1e9))
{}

void
HeartbeatWriter::beat(const Heartbeat &heartbeat, bool force)
{
    const std::uint64_t now = steadyNowNs();
    if (!force &&
        now - last_write_ns_.load(std::memory_order_relaxed) <
            interval_ns_) {
        return;
    }
    // One writer at a time; a contended non-forced beat just skips --
    // another thread is already writing a fresher document.
    std::unique_lock<std::mutex> lock(write_mutex_, std::defer_lock);
    if (force) {
        lock.lock();
    } else if (!lock.try_lock()) {
        return;
    }
    if (!force &&
        now - last_write_ns_.load(std::memory_order_relaxed) <
            interval_ns_) {
        return; // another thread wrote while we waited
    }
    // Atomic temp + rename: a reader never sees a torn document. A
    // failed write warns and keeps the sweep running -- heartbeats are
    // telemetry, never load-bearing.
    const std::string temp = path_ + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out) {
            util::warn("cannot write heartbeat file '", temp, "'");
            return;
        }
        out << toJson(heartbeat).dump(2) << '\n';
        if (!out) {
            util::warn("short write to heartbeat file '", temp, "'");
            return;
        }
    }
    if (std::rename(temp.c_str(), path_.c_str()) != 0) {
        std::remove(temp.c_str());
        util::warn("cannot rename heartbeat file into place at '",
                   path_, "'");
        return;
    }
    last_write_ns_.store(steadyNowNs(), std::memory_order_relaxed);
}

std::vector<std::pair<std::string, Heartbeat>>
loadHeartbeatDirectory(const std::string &directory)
{
    namespace fs = std::filesystem;
    std::error_code error;
    fs::directory_iterator it(directory, error);
    if (error)
        util::fatal("cannot read directory '", directory, "': ",
                    error.message());

    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : it) {
        const std::string name = entry.path().filename().string();
        const std::string suffix = kHeartbeatSuffix;
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            paths.push_back(entry.path().string());
        }
    }
    std::sort(paths.begin(), paths.end());

    std::vector<std::pair<std::string, Heartbeat>> heartbeats;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            util::warn("skipping unreadable heartbeat file '", path,
                       "'");
            continue;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        try {
            const JsonValue doc =
                JsonValue::parse(buffer.str());
            if (doc.stringOr("format", "") != kHeartbeatFormat) {
                util::warn("skipping '", path,
                           "': not an act.heartbeat.v1 document");
                continue;
            }
            heartbeats.emplace_back(path, heartbeatFromJson(doc));
        } catch (const config::JsonParseError &parse_error) {
            util::warn("skipping unparseable heartbeat file '", path,
                       "': ", parse_error.what());
        }
    }
    return heartbeats;
}

namespace {

std::string
progressBar(double fraction, int width)
{
    const double clamped = std::clamp(fraction, 0.0, 1.0);
    const int filled =
        static_cast<int>(clamped * static_cast<double>(width) + 0.5);
    std::string bar = "[";
    for (int i = 0; i < width; ++i)
        bar += i < filled ? '#' : '.';
    bar += "] " + util::formatFixed(clamped * 100.0, 1) + "%";
    return bar;
}

/** Median of an unsorted (copied) sample; 0 when empty. */
double
median(std::vector<double> values)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const std::size_t mid = values.size() / 2;
    if (values.size() % 2 == 1)
        return values[mid];
    return 0.5 * (values[mid - 1] + values[mid]);
}

} // namespace

std::string
renderFleetTable(
    const std::vector<std::pair<std::string, Heartbeat>> &heartbeats,
    double now_wall_s, double stale_after_s)
{
    enum class State { Running, Done, Dead, Straggler };

    std::vector<State> states(heartbeats.size(), State::Running);
    std::vector<double> live_fractions;
    for (std::size_t i = 0; i < heartbeats.size(); ++i) {
        const Heartbeat &heartbeat = heartbeats[i].second;
        if (heartbeat.done) {
            states[i] = State::Done;
        } else if (now_wall_s - heartbeat.update_wall_s >
                   stale_after_s) {
            states[i] = State::Dead;
        } else {
            live_fractions.push_back(heartbeat.fractionDone());
        }
    }
    // A live shard far behind its peers is a straggler: less than
    // half the live median progress (needs at least two live shards
    // for "behind the others" to mean anything).
    const double live_median = median(live_fractions);
    if (live_fractions.size() >= 2) {
        for (std::size_t i = 0; i < heartbeats.size(); ++i) {
            if (states[i] == State::Running &&
                heartbeats[i].second.fractionDone() <
                    0.5 * live_median) {
                states[i] = State::Straggler;
            }
        }
    }

    util::Table table({"Shard", "Progress", "Items", "Rate/s", "ETA",
                       "RSS MB", "Age", "State"});
    std::uint64_t total_done = 0;
    std::uint64_t total_items = 0;
    std::size_t done_count = 0;
    std::size_t dead_count = 0;
    for (std::size_t i = 0; i < heartbeats.size(); ++i) {
        const Heartbeat &heartbeat = heartbeats[i].second;
        total_done += heartbeat.items_done;
        total_items += heartbeat.items_total;

        std::string eta = "-";
        if (!heartbeat.done && heartbeat.items_per_sec > 0.0 &&
            states[i] != State::Dead) {
            const double remaining = static_cast<double>(
                heartbeat.items_total - std::min(heartbeat.items_done,
                                                 heartbeat.items_total));
            eta = util::formatFixed(remaining / heartbeat.items_per_sec,
                                    1) +
                  "s";
        }
        std::string state;
        switch (states[i]) {
          case State::Running:
            state = "running";
            break;
          case State::Done:
            state = "done";
            ++done_count;
            break;
          case State::Dead:
            state = "DEAD";
            ++dead_count;
            break;
          case State::Straggler:
            state = "straggler";
            break;
        }
        table.addRow(
            {std::to_string(heartbeat.shard_index) + "/" +
                 std::to_string(heartbeat.shard_count),
             progressBar(heartbeat.fractionDone(), 10),
             std::to_string(heartbeat.items_done) + "/" +
                 std::to_string(heartbeat.items_total),
             heartbeat.items_per_sec > 0.0
                 ? util::formatSig(heartbeat.items_per_sec, 4)
                 : "-",
             eta, util::formatFixed(heartbeat.rss_mb, 1),
             util::formatFixed(
                 std::max(0.0, now_wall_s - heartbeat.update_wall_s),
                 1) +
                 "s",
             state});
    }

    std::string out = table.render();
    const double fleet_fraction =
        total_items == 0 ? 0.0
                         : static_cast<double>(total_done) /
                               static_cast<double>(total_items);
    out += "fleet: " + std::to_string(total_done) + "/" +
           std::to_string(total_items) + " items (" +
           util::formatFixed(fleet_fraction * 100.0, 1) + "%), " +
           std::to_string(done_count) + " done, " +
           std::to_string(heartbeats.size() - done_count - dead_count) +
           " live, " + std::to_string(dead_count) + " dead\n";
    return out;
}

} // namespace act::obs
