/**
 * @file
 * Serializable, mergeable metrics snapshots: the `act.metrics.v1` JSON
 * document. A document captures one process's `util::MetricsRegistry`
 * snapshot in a form that survives process boundaries -- counters,
 * gauges, and histograms with explicit bucket bounds plus their
 * always-live sum/count/min/max -- so a sharded sweep's telemetry can
 * be aggregated exactly like its results are (see sweep/engine.h).
 *
 * Document shape (all maps are name-keyed objects, so serialization
 * is deterministic via the config JSON writer's ordered maps):
 *
 *   {
 *     "format": "act.metrics.v1",
 *     "counters":   { "sweep.items": 10000, ... },
 *     "gauges":     { "pool.util": {"values": [0.5, 0.7],
 *                                   "min": 0.5, "max": 0.7,
 *                                   "mean": 0.6}, ... },
 *     "histograms": { "parallel.chunk_us": {
 *                       "bounds": [1, 2, 5, ...],   // finite uppers
 *                       "counts": [3, 0, 1, ...],   // bounds + overflow
 *                       "count": 4, "sum": 18.25,
 *                       "min": 0.5, "max": 9.75 }, ... }
 *   }
 *
 * Merge semantics (mergeMetricsDocs): counters sum; histograms merge
 * bucket-wise after an exact bounds-compatibility check (mismatched
 * ladders are fatal, never silently misbinned); gauges keep every
 * per-shard value and recompute min/max/mean. Merging one document is
 * the identity, so single- and multi-process paths share one schema.
 */

#ifndef ACT_OBS_METRICS_DOC_H
#define ACT_OBS_METRICS_DOC_H

#include <string>
#include <vector>

#include "config/json.h"
#include "util/metrics.h"

namespace act::obs {

/** The "format" field every act.metrics.v1 document carries. */
extern const char *const kMetricsFormat;

/** Serialize one process's snapshot as an act.metrics.v1 document. */
config::JsonValue metricsToJson(const util::MetricsSnapshot &snapshot);

/**
 * Validate the schema of @p doc (format tag, counters/gauges/histogram
 * shapes, counts arrays sized bounds + 1). Fatal on violation; returns
 * the document so call sites can validate-and-use in one expression.
 */
const config::JsonValue &validateMetricsDoc(const config::JsonValue &doc);

/**
 * Merge act.metrics.v1 documents into one: counters sum, histogram
 * buckets and statistics combine, gauge value lists concatenate in
 * input order. Fatal when a document is malformed or two histograms
 * with the same name disagree on bucket bounds. An empty input vector
 * yields an empty (but valid) document.
 */
config::JsonValue
mergeMetricsDocs(const std::vector<config::JsonValue> &docs);

/**
 * Render a document in the Prometheus text exposition format
 * (version 0.0.4): metric names are prefixed with `act_` and
 * sanitized, counters/gauges map to their native types, histograms
 * emit cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
 * Multi-shard gauge values carry a `shard` label.
 */
std::string renderPrometheus(const config::JsonValue &doc);

/** ASCII table (util/table) of a document, for `act merge` output. */
std::string renderMetricsDocTable(const config::JsonValue &doc);

} // namespace act::obs

#endif // ACT_OBS_METRICS_DOC_H
