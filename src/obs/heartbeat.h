/**
 * @file
 * Shard heartbeats: the `act.heartbeat.v1` sidecar document a running
 * sweep shard writes periodically so an operator (or `act status`) can
 * watch a multi-process fleet without touching the result path.
 *
 *   {
 *     "format": "act.heartbeat.v1",
 *     "domain": "cpa_montecarlo",
 *     "shard_index": 1, "shard_count": 3,
 *     "items_done": 4096, "items_total": 10000,
 *     "chunks_done": 2, "chunks_total": 5,
 *     "items_per_sec": 81920.0,
 *     "rss_mb": 24.6,
 *     "start_wall_s": 1754640000.5,    // Unix seconds
 *     "update_wall_s": 1754640012.25,
 *     "done": false
 *   }
 *
 * Overhead contract: the writer is time-gated (default once per
 * second) and entirely off the hot path -- progress updates are one
 * relaxed atomic add per *chunk*, the interval check is one steady-
 * clock read, and the file write (atomic temp + rename, so a reader
 * never sees a torn document) happens on at most one thread at a time
 * and at most once per interval. A shard that crashes simply stops
 * updating; `act status` flags the stale file instead of hanging.
 */

#ifndef ACT_OBS_HEARTBEAT_H
#define ACT_OBS_HEARTBEAT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "config/json.h"

namespace act::obs {

/** The "format" field every act.heartbeat.v1 document carries. */
extern const char *const kHeartbeatFormat;

/** Suffix heartbeat sidecar files use, so directories can be
 *  scanned for them (`act status <dir>`). */
extern const char *const kHeartbeatSuffix;

/** One shard's progress report. */
struct Heartbeat
{
    std::string domain;
    std::size_t shard_index = 0;
    std::size_t shard_count = 1;
    std::uint64_t items_done = 0;
    std::uint64_t items_total = 0;
    std::size_t chunks_done = 0;
    std::size_t chunks_total = 0;
    double items_per_sec = 0.0;
    double rss_mb = 0.0;
    /** Unix wall-clock seconds of the shard's start / this update. */
    double start_wall_s = 0.0;
    double update_wall_s = 0.0;
    bool done = false;

    double
    fractionDone() const
    {
        return items_total == 0
                   ? 0.0
                   : static_cast<double>(items_done) /
                         static_cast<double>(items_total);
    }
};

config::JsonValue toJson(const Heartbeat &heartbeat);
Heartbeat heartbeatFromJson(const config::JsonValue &value);

/** Unix wall-clock time in seconds (sub-second resolution). */
double wallClockSeconds();

/** This process's resident set size in MB; 0 when unavailable. */
double processRssMb();

/** The sidecar path for a partial-result path: `x.json` ->
 *  `x.heartbeat.json`, anything else gets the suffix appended. */
std::string heartbeatPathFor(const std::string &partial_path);

/**
 * Time-gated atomic writer for one shard's heartbeat file. Thread-
 * safe: any worker may call beat(); writes are serialized and
 * throttled to the configured interval (forced writes skip the gate,
 * for the initial and final documents).
 */
class HeartbeatWriter
{
  public:
    HeartbeatWriter(std::string path, double interval_s);

    /** Write @p heartbeat if the interval elapsed (or @p force). */
    void beat(const Heartbeat &heartbeat, bool force = false);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::uint64_t interval_ns_;
    /** Steady-clock ns timestamp of the last write; the gate. */
    std::atomic<std::uint64_t> last_write_ns_{0};
    std::mutex write_mutex_;
};

/**
 * Load every `*.heartbeat.json` under @p directory (non-recursive),
 * sorted by filename; unparseable files warn and are skipped. Fatal
 * when the directory cannot be read.
 */
std::vector<std::pair<std::string, Heartbeat>>
loadHeartbeatDirectory(const std::string &directory);

/**
 * Render the fleet table `act status` prints: one row per shard with
 * a progress bar, rate, ETA, memory, heartbeat age, and state. State
 * is `done` when the shard finished, `DEAD` when the last update is
 * older than @p stale_after_s, `straggler` when a live shard's
 * progress falls below half the live median, else `running`.
 * @p now_wall_s is a parameter (not the clock) so renders are
 * reproducible in tests.
 */
std::string renderFleetTable(
    const std::vector<std::pair<std::string, Heartbeat>> &heartbeats,
    double now_wall_s, double stale_after_s);

} // namespace act::obs

#endif // ACT_OBS_HEARTBEAT_H
