/**
 * @file
 * Cross-process trace assembly: merge the Chrome-trace JSON files a
 * sharded sweep's processes wrote (via ACT_TRACE) into one
 * Perfetto-loadable timeline.
 *
 * Each input file's timestamps are steady-clock offsets from that
 * process's trace epoch; the `trace_epoch` metadata event (see
 * util/trace.cc) records where the epoch sits on the wall clock. The
 * merger aligns files by shifting every timestamp by the file's epoch
 * delta against the earliest epoch, remaps each file onto its own pid
 * (input order, 1-based) so thread ids never collide across processes,
 * and labels each pid with a `process_name` metadata event carrying
 * the source file's basename.
 */

#ifndef ACT_OBS_TRACE_MERGE_H
#define ACT_OBS_TRACE_MERGE_H

#include <string>
#include <vector>

#include "config/json.h"

namespace act::obs {

/**
 * Merge parsed trace documents into one. @p names labels each pid
 * (parallel to @p traces; typically source basenames). A document
 * missing its `trace_epoch` metadata warns and is aligned with delta
 * zero. Fatal when a document is not a Chrome trace object.
 */
config::JsonValue
mergeTraceDocs(const std::vector<config::JsonValue> &traces,
               const std::vector<std::string> &names);

/** Load @p trace_paths, merge, and write the result to @p out_path. */
void mergeTraceFiles(const std::string &out_path,
                     const std::vector<std::string> &trace_paths);

} // namespace act::obs

#endif // ACT_OBS_TRACE_MERGE_H
