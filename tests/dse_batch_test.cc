/**
 * @file
 * Tests for the batched Monte Carlo / tornado paths: the compiled
 * batch kernel must be *bit-identical* to the scalar closure path --
 * every statistic, at every thread count and shard count. The scalar
 * path stays in the tree precisely to serve as this oracle.
 */

#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/embodied.h"
#include "core/eval_plan.h"
#include "core/fab_params.h"
#include "dse/montecarlo.h"
#include "dse/sensitivity.h"
#include "sweep/domains.h"
#include "sweep/engine.h"
#include "sweep/plan.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/units.h"

namespace act::dse {
namespace {

class DseBatchTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        util::setThreadCount(0);
        util::setSimdLevel(util::detectedSimdLevel());
    }
};

void
expectSameResult(const MonteCarloResult &batched,
                 const MonteCarloResult &scalar)
{
    EXPECT_EQ(batched.samples, scalar.samples);
    EXPECT_EQ(batched.mean, scalar.mean);
    EXPECT_EQ(batched.stddev, scalar.stddev);
    EXPECT_EQ(batched.p5, scalar.p5);
    EXPECT_EQ(batched.p50, scalar.p50);
    EXPECT_EQ(batched.p95, scalar.p95);
    EXPECT_EQ(batched.min, scalar.min);
    EXPECT_EQ(batched.max, scalar.max);
}

/** The Table 1 fab uncertainties at a fixed node. */
std::vector<UncertainParameter>
nodeParameters()
{
    return {
        {"ci_fab", Distribution::Uniform, 365.0, 30.0, 700.0},
        {"yield", Distribution::Triangular, 0.875, 0.8, 0.95},
        {"abatement", Distribution::Uniform, 0.95, 0.9, 1.0},
    };
}

TEST_F(DseBatchTest, NodePlanMatchesScalarClosureAcrossThreadCounts)
{
    const std::vector<UncertainParameter> parameters =
        nodeParameters();
    const auto closure = [](const std::vector<double> &values) {
        core::FabParams fab;
        fab.ci_fab = util::gramsPerKilowattHour(values[0]);
        fab.yield = values[1];
        fab.abatement = values[2];
        return core::carbonPerArea(fab, 7.0).value();
    };
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);

    // 10k samples = 5 chunks: enough to exercise chunk boundaries and
    // the partial-merge order at several pool widths.
    util::setThreadCount(1);
    const MonteCarloResult reference =
        monteCarlo(parameters, closure, 10'000, 42);
    for (const std::size_t threads : {1u, 2u, 7u}) {
        util::setThreadCount(threads);
        expectSameResult(monteCarloBatch(parameters, plan, 10'000, 42),
                         reference);
        // The scalar path itself must also be thread-count invariant.
        expectSameResult(monteCarlo(parameters, closure, 10'000, 42),
                         reference);
    }
}

TEST_F(DseBatchTest, EveryDispatchLevelMatchesScalarOracle)
{
    // The batch == scalar matrix under each forced SIMD level: the
    // dispatch level must never change a statistic, at any thread
    // count (DESIGN.md §11). The scalar oracle runs at the scalar
    // level so it cannot share vector kernels with the path under
    // test.
    const std::vector<UncertainParameter> parameters =
        nodeParameters();
    const auto closure = [](const std::vector<double> &values) {
        core::FabParams fab;
        fab.ci_fab = util::gramsPerKilowattHour(values[0]);
        fab.yield = values[1];
        fab.abatement = values[2];
        return core::carbonPerArea(fab, 7.0).value();
    };
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);

    util::setThreadCount(1);
    util::setSimdLevel(util::SimdLevel::Scalar);
    const MonteCarloResult reference =
        monteCarlo(parameters, closure, 10'000, 42);

    for (const auto level : {util::SimdLevel::Scalar,
                             util::SimdLevel::Sse2,
                             util::SimdLevel::Avx2}) {
        if (!util::simdLevelAvailable(level))
            continue;
        util::setSimdLevel(level);
        for (const std::size_t threads : {1u, 2u, 7u}) {
            util::setThreadCount(threads);
            expectSameResult(
                monteCarloBatch(parameters, plan, 10'000, 42),
                reference);
        }
    }
}

TEST_F(DseBatchTest, RawPlanMatchesScalarFormula)
{
    // The generic five-term Eq. 5 uncertainty study (all terms
    // sampled, nothing database-resolved).
    const std::vector<UncertainParameter> parameters = {
        {"ci_fab", Distribution::Triangular, 447.5, 41.0, 583.0},
        {"epa", Distribution::Triangular, 1.52, 1.52 * 0.8,
         1.52 * 1.2},
        {"gpa", Distribution::Uniform, 275.0, 200.0, 350.0},
        {"mpa", Distribution::Uniform, 500.0, 400.0, 600.0},
        {"yield", Distribution::Triangular, 0.875, 0.6, 0.95},
    };
    const auto closure = [](const std::vector<double> &v) {
        return (v[0] * v[1] + v[2] + v[3]) / v[4];
    };
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Epa,
        core::EvalInput::Gpa, core::EvalInput::Mpa,
        core::EvalInput::Yield};
    const core::EvalPlan plan = core::EvalPlan::forRawCpa(
        {447.5, 1.52, 275.0, 500.0, 0.875}, bindings);

    expectSameResult(monteCarloBatch(parameters, plan, 10'000, 7),
                     monteCarlo(parameters, closure, 10'000, 7));
}

TEST_F(DseBatchTest, BatchModelAdapterMatchesGenericBatchPath)
{
    // monteCarloBatch over an arbitrary BatchModel (not a plan):
    // the batch driver itself is model-agnostic.
    const std::vector<UncertainParameter> parameters = {
        {"a", Distribution::Uniform, 0.5, 0.0, 1.0},
        {"b", Distribution::Triangular, 0.25, 0.0, 1.0},
    };
    const auto closure = [](const std::vector<double> &v) {
        return v[0] * 3.0 + v[1];
    };
    const BatchModel batch = [](std::size_t n,
                                const double *const *inputs,
                                double *outputs) {
        for (std::size_t s = 0; s < n; ++s)
            outputs[s] = inputs[0][s] * 3.0 + inputs[1][s];
    };
    expectSameResult(monteCarloBatch(parameters, batch, 4'096, 13),
                     monteCarlo(parameters, closure, 4'096, 13));
}

TEST_F(DseBatchTest, ShardedDomainMatchesScalarOracle)
{
    // The cpa_montecarlo domain runs the compiled batch kernel; a
    // sharded multi-process sweep, merged, must agree bit-for-bit
    // with dse::monteCarlo over the exported scalar oracle.
    const std::string text = R"({
        "domain": "cpa_montecarlo",
        "items": 10000,
        "seed": 42,
        "config": {
            "node_nm": 7,
            "parameters": [
                {"name": "ci_fab_g_per_kwh", "distribution": "uniform",
                 "low": 30, "high": 700},
                {"name": "yield", "distribution": "triangular",
                 "low": 0.8, "baseline": 0.875, "high": 0.95},
                {"name": "abatement", "distribution": "uniform",
                 "low": 0.9, "high": 1.0}
            ]
        }
    })";
    sweep::SweepPlan plan = sweep::sweepPlanFromJson(
        config::JsonValue::parse(text));
    const sweep::Domain &domain = sweep::findDomain(plan.domain);
    domain.prepare(plan);

    util::setThreadCount(1);
    const MonteCarloResult reference = monteCarlo(
        sweep::cpaMonteCarloParameters(plan),
        sweep::cpaMonteCarloScalarModel(plan), plan.items, plan.seed);

    for (const std::size_t threads : {1u, 2u, 7u}) {
        util::setThreadCount(threads);
        for (const std::size_t shards : {1u, 3u}) {
            std::vector<sweep::ShardResult> partials;
            for (std::size_t i = 0; i < shards; ++i) {
                partials.push_back(sweep::runShardedSweep(
                    plan, {shards, i}, domain.evaluator(plan)));
            }
            const config::JsonValue merged =
                sweep::mergeShards(partials);
            expectSameResult(
                sweep::monteCarloResultFromPayloads(
                    plan.items, merged.at("results").asArray()),
                reference);
        }
    }
}

TEST_F(DseBatchTest, TornadoPlanOverloadMatchesClosure)
{
    const std::vector<ParameterRange> ranges = {
        {"ci_fab", 365.0, 30.0, 700.0},
        {"yield", 0.875, 0.8, 0.95},
        {"abatement", 0.95, 0.9, 1.0},
    };
    const auto closure = [](const std::vector<double> &values) {
        core::FabParams fab;
        fab.ci_fab = util::gramsPerKilowattHour(values[0]);
        fab.yield = values[1];
        fab.abatement = values[2];
        return core::carbonPerArea(fab, 14.0).value();
    };
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab, core::EvalInput::Yield,
        core::EvalInput::Abatement};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 14.0, bindings);

    const auto expected = tornado(ranges, closure);
    const auto batched = tornado(ranges, plan);
    ASSERT_EQ(batched.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(batched[i].name, expected[i].name) << i;
        EXPECT_EQ(batched[i].output_low, expected[i].output_low) << i;
        EXPECT_EQ(batched[i].output_high, expected[i].output_high)
            << i;
    }
}

TEST_F(DseBatchTest, MismatchedPlanInputCountIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const core::FabParams fab;
    const std::vector<core::EvalInput> bindings = {
        core::EvalInput::CiFab};
    const core::EvalPlan plan =
        core::EvalPlan::forNode(fab, 7.0, bindings);
    const std::vector<UncertainParameter> two = {
        {"ci_fab", Distribution::Uniform, 365.0, 30.0, 700.0},
        {"yield", Distribution::Triangular, 0.875, 0.8, 0.95},
    };
    EXPECT_EXIT(monteCarloBatch(two, plan, 1'000, 1),
                ::testing::ExitedWithCode(1), "");
    const std::vector<ParameterRange> ranges = {
        {"ci_fab", 365.0, 30.0, 700.0},
        {"yield", 0.875, 0.8, 0.95},
    };
    EXPECT_EXIT(tornado(ranges, plan), ::testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace act::dse
