/**
 * @file
 * Heartbeat tests: the act.heartbeat.v1 codec round-trips, the writer
 * is interval-gated and atomic, directory scanning finds and sorts
 * sidecars (skipping garbage), and the `act status` fleet table
 * renders a golden layout from canned heartbeats (time is passed in,
 * so the render is reproducible).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "config/json.h"
#include "obs/heartbeat.h"

namespace {

using namespace act;

class HeartbeatTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        directory_ = "obs_heartbeat_test_dir";
        std::filesystem::remove_all(directory_);
        std::filesystem::create_directory(directory_);
    }

    void TearDown() override { std::filesystem::remove_all(directory_); }

    std::string
    path(const std::string &name) const
    {
        return directory_ + "/" + name;
    }

    std::string directory_;
};

obs::Heartbeat
sampleHeartbeat()
{
    obs::Heartbeat heartbeat;
    heartbeat.domain = "cpa_montecarlo";
    heartbeat.shard_index = 1;
    heartbeat.shard_count = 3;
    heartbeat.items_done = 4096;
    heartbeat.items_total = 10000;
    heartbeat.chunks_done = 2;
    heartbeat.chunks_total = 5;
    heartbeat.items_per_sec = 81920.0;
    heartbeat.rss_mb = 24.5;
    heartbeat.start_wall_s = 1000.0;
    heartbeat.update_wall_s = 1012.5;
    heartbeat.done = false;
    return heartbeat;
}

TEST_F(HeartbeatTest, JsonRoundTrip)
{
    const obs::Heartbeat heartbeat = sampleHeartbeat();
    const obs::Heartbeat parsed =
        obs::heartbeatFromJson(obs::toJson(heartbeat));
    EXPECT_EQ(parsed.domain, heartbeat.domain);
    EXPECT_EQ(parsed.shard_index, heartbeat.shard_index);
    EXPECT_EQ(parsed.shard_count, heartbeat.shard_count);
    EXPECT_EQ(parsed.items_done, heartbeat.items_done);
    EXPECT_EQ(parsed.items_total, heartbeat.items_total);
    EXPECT_EQ(parsed.chunks_done, heartbeat.chunks_done);
    EXPECT_EQ(parsed.chunks_total, heartbeat.chunks_total);
    EXPECT_EQ(parsed.items_per_sec, heartbeat.items_per_sec);
    EXPECT_EQ(parsed.rss_mb, heartbeat.rss_mb);
    EXPECT_EQ(parsed.start_wall_s, heartbeat.start_wall_s);
    EXPECT_EQ(parsed.update_wall_s, heartbeat.update_wall_s);
    EXPECT_EQ(parsed.done, heartbeat.done);
    EXPECT_DOUBLE_EQ(parsed.fractionDone(), 0.4096);
}

TEST_F(HeartbeatTest, RejectsWrongFormat)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        obs::heartbeatFromJson(config::JsonValue::parse("{}")),
        ::testing::ExitedWithCode(1), "not a heartbeat document");
}

TEST_F(HeartbeatTest, PathDerivation)
{
    EXPECT_EQ(obs::heartbeatPathFor("out/part0.json"),
              "out/part0.heartbeat.json");
    EXPECT_EQ(obs::heartbeatPathFor("partial"),
              "partial.heartbeat.json");
}

TEST_F(HeartbeatTest, WriterGatesOnIntervalAndForcedWritesLand)
{
    const std::string file = path("shard.heartbeat.json");
    // An hour-long interval: only forced writes can land.
    obs::HeartbeatWriter writer(file, 3600.0);

    obs::Heartbeat heartbeat = sampleHeartbeat();
    writer.beat(heartbeat, /*force=*/true);
    obs::Heartbeat read = obs::heartbeatFromJson(
        config::loadJsonFile(file));
    EXPECT_EQ(read.items_done, 4096u);

    // Gated: this update must not reach the file.
    heartbeat.items_done = 9999;
    writer.beat(heartbeat);
    read = obs::heartbeatFromJson(config::loadJsonFile(file));
    EXPECT_EQ(read.items_done, 4096u);

    // Forced final write skips the gate.
    heartbeat.done = true;
    writer.beat(heartbeat, /*force=*/true);
    read = obs::heartbeatFromJson(config::loadJsonFile(file));
    EXPECT_EQ(read.items_done, 9999u);
    EXPECT_TRUE(read.done);

    // The temp file never survives a completed write.
    EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(HeartbeatTest, DirectoryScanSortsAndSkipsGarbage)
{
    obs::Heartbeat heartbeat = sampleHeartbeat();
    heartbeat.shard_index = 1;
    obs::HeartbeatWriter(path("b.heartbeat.json"), 0.0)
        .beat(heartbeat, true);
    heartbeat.shard_index = 0;
    obs::HeartbeatWriter(path("a.heartbeat.json"), 0.0)
        .beat(heartbeat, true);

    // Non-heartbeat and unparseable files must be ignored.
    std::ofstream(path("result.json")) << "{\"format\": \"other\"}\n";
    std::ofstream(path("junk.heartbeat.json")) << "not json{";

    const auto heartbeats = obs::loadHeartbeatDirectory(directory_);
    ASSERT_EQ(heartbeats.size(), 2u);
    EXPECT_EQ(heartbeats[0].second.shard_index, 0u);
    EXPECT_EQ(heartbeats[1].second.shard_index, 1u);
}

TEST_F(HeartbeatTest, ProcessRssIsAvailableOnLinux)
{
#if defined(__linux__)
    EXPECT_GT(obs::processRssMb(), 0.0);
#else
    GTEST_SKIP() << "no /proc on this platform";
#endif
}

TEST_F(HeartbeatTest, FleetTableGoldenRender)
{
    // Four canned shards at now=1020, stale-after 15s: a finished
    // shard, a healthy runner, a straggler (progress below half the
    // live median), and a dead one (last update 100s ago).
    std::vector<std::pair<std::string, obs::Heartbeat>> fleet;

    obs::Heartbeat done;
    done.domain = "cpa_montecarlo";
    done.shard_index = 0;
    done.shard_count = 4;
    done.items_done = done.items_total = 2500;
    done.chunks_done = done.chunks_total = 3;
    done.items_per_sec = 250.0;
    done.rss_mb = 20.0;
    done.start_wall_s = 1000.0;
    done.update_wall_s = 1010.0;
    done.done = true;
    fleet.emplace_back("s0.heartbeat.json", done);

    obs::Heartbeat running = done;
    running.shard_index = 1;
    running.items_done = 2000;
    running.chunks_done = 2;
    running.update_wall_s = 1019.0;
    running.done = false;
    fleet.emplace_back("s1.heartbeat.json", running);

    obs::Heartbeat straggler = running;
    straggler.shard_index = 2;
    straggler.items_done = 250;
    straggler.chunks_done = 1;
    straggler.items_per_sec = 12.5;
    straggler.update_wall_s = 1018.0;
    fleet.emplace_back("s2.heartbeat.json", straggler);

    obs::Heartbeat dead = running;
    dead.shard_index = 3;
    dead.items_done = 500;
    dead.update_wall_s = 920.0;
    fleet.emplace_back("s3.heartbeat.json", dead);

    const std::string rendered =
        obs::renderFleetTable(fleet, 1020.0, 15.0);

    // Reproducible because the clock is a parameter: assert the
    // rendered states and the fleet summary line.
    EXPECT_NE(rendered.find("done"), std::string::npos);
    EXPECT_NE(rendered.find("running"), std::string::npos);
    EXPECT_NE(rendered.find("straggler"), std::string::npos);
    EXPECT_NE(rendered.find("DEAD"), std::string::npos);
    EXPECT_NE(rendered.find("[##########] 100.0%"), std::string::npos);
    EXPECT_NE(rendered.find("[########..] 80.0%"), std::string::npos);
    EXPECT_NE(rendered.find("[#.........] 10.0%"), std::string::npos);
    EXPECT_NE(rendered.find("2500/2500"), std::string::npos);
    // ETA for the healthy runner: 500 items at 250/s.
    EXPECT_NE(rendered.find("2.0s"), std::string::npos);
    EXPECT_NE(
        rendered.find("fleet: 5250/10000 items (52.5%), 1 done, "
                      "2 live, 1 dead"),
        std::string::npos);

    // The same fleet rendered twice is byte-identical.
    EXPECT_EQ(rendered, obs::renderFleetTable(fleet, 1020.0, 15.0));
}

} // namespace
