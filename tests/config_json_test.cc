/** @file Unit tests for the JSON parser, accessors, and serializer. */

#include <gtest/gtest.h>

#include "config/json.h"

namespace act::config {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-17").asNumber(), -17.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("6.02e23").asNumber(), 6.02e23);
    EXPECT_DOUBLE_EQ(JsonValue::parse("1E-3").asNumber(), 1e-3);
    EXPECT_EQ(JsonValue::parse("\"hello\"").asString(), "hello");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(JsonValue::parse(R"("a\nb\tc")").asString(), "a\nb\tc");
    EXPECT_EQ(JsonValue::parse(R"("say \"hi\"")").asString(),
              "say \"hi\"");
    EXPECT_EQ(JsonValue::parse(R"("back\\slash")").asString(),
              "back\\slash");
    EXPECT_EQ(JsonValue::parse(R"("A")").asString(), "A");
    EXPECT_EQ(JsonValue::parse(R"("é")").asString(), "\xc3\xa9");
}

TEST(JsonParse, ArraysAndObjects)
{
    const JsonValue doc = JsonValue::parse(
        R"({"a": [1, 2, 3], "b": {"c": true}, "d": "x"})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.at("a").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(doc.at("a").asArray()[1].asNumber(), 2.0);
    EXPECT_TRUE(doc.at("b").at("c").asBool());
    EXPECT_EQ(doc.at("d").asString(), "x");
}

TEST(JsonParse, CommentsAndTrailingCommas)
{
    const JsonValue doc = JsonValue::parse(R"(
        {
            // the fab side
            "yield": 0.875,  // TSMC-like
            "nodes": [7, 10, 14,],
        }
    )");
    EXPECT_DOUBLE_EQ(doc.at("yield").asNumber(), 0.875);
    EXPECT_EQ(doc.at("nodes").asArray().size(), 3u);
}

TEST(JsonParse, EmptyContainers)
{
    EXPECT_TRUE(JsonValue::parse("[]").asArray().empty());
    EXPECT_TRUE(JsonValue::parse("{}").asObject().empty());
}

TEST(JsonParse, ErrorsCarryLocation)
{
    try {
        JsonValue::parse("{\n  \"a\": }");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &error) {
        EXPECT_EQ(error.line(), 2);
        EXPECT_GT(error.column(), 1);
    }
}

TEST(JsonParse, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parse(""), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("[1 2]"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("tru"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("1 trailing"), JsonParseError);
    EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW(JsonValue::parse(R"("\q")"), JsonParseError);
}

TEST(JsonAccess, TypeErrorsThrow)
{
    const JsonValue doc = JsonValue::parse(R"({"n": 1.5})");
    EXPECT_THROW(doc.at("n").asString(), JsonTypeError);
    EXPECT_THROW(doc.at("n").asBool(), JsonTypeError);
    EXPECT_THROW(doc.at("missing"), JsonTypeError);
    EXPECT_THROW(doc.asArray(), JsonTypeError);
    EXPECT_THROW(doc.at("n").asInteger(), JsonTypeError);
}

TEST(JsonAccess, AsIntegerAcceptsIntegralNumbers)
{
    EXPECT_EQ(JsonValue::parse("42").asInteger(), 42);
    EXPECT_EQ(JsonValue::parse("-7").asInteger(), -7);
}

TEST(JsonAccess, DefaultingAccessors)
{
    const JsonValue doc = JsonValue::parse(
        R"({"x": 2.5, "flag": true, "name": "act"})");
    EXPECT_DOUBLE_EQ(doc.numberOr("x", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(doc.numberOr("y", 9.0), 9.0);
    EXPECT_TRUE(doc.boolOr("flag", false));
    EXPECT_FALSE(doc.boolOr("other", false));
    EXPECT_EQ(doc.stringOr("name", ""), "act");
    EXPECT_EQ(doc.stringOr("nope", "dflt"), "dflt");
}

TEST(JsonDump, RoundTripsStructure)
{
    const std::string source =
        R"({"a":[1,2.5,"s",true,null],"b":{"c":[{"d":1}]},"e":-0.125})";
    const JsonValue doc = JsonValue::parse(source);
    const JsonValue reparsed = JsonValue::parse(doc.dump());
    EXPECT_EQ(reparsed.dump(), doc.dump());
    EXPECT_DOUBLE_EQ(reparsed.at("e").asNumber(), -0.125);
    EXPECT_TRUE(reparsed.at("a").asArray()[4].isNull());
}

TEST(JsonDump, PrettyPrintIndents)
{
    const JsonValue doc = JsonValue::parse(R"({"a": [1], "b": 2})");
    const std::string pretty = doc.dump(2);
    EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
    // Compact dump has no whitespace.
    EXPECT_EQ(doc.dump().find('\n'), std::string::npos);
}

TEST(JsonDump, EscapesStrings)
{
    JsonObject object;
    object["k"] = JsonValue("line\nbreak \"q\"");
    const std::string out = JsonValue(std::move(object)).dump();
    EXPECT_NE(out.find(R"(\n)"), std::string::npos);
    EXPECT_NE(out.find(R"(\")"), std::string::npos);
    // And it round-trips.
    EXPECT_EQ(JsonValue::parse(out).at("k").asString(),
              "line\nbreak \"q\"");
}

TEST(JsonDump, IntegersPrintWithoutDecimals)
{
    EXPECT_EQ(JsonValue(42.0).dump(), "42");
    EXPECT_EQ(JsonValue(2.5).dump(), "2.5");
}

TEST(JsonFile, SaveAndLoad)
{
    const std::string path = ::testing::TempDir() + "/act_json_test.json";
    JsonObject object;
    object["value"] = JsonValue(0.875);
    saveJsonFile(path, JsonValue(std::move(object)));
    const JsonValue loaded = loadJsonFile(path);
    EXPECT_DOUBLE_EQ(loaded.at("value").asNumber(), 0.875);
}

TEST(JsonFile, MissingFileIsFatal)
{
    EXPECT_EXIT(loadJsonFile("/nonexistent/act.json"),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::config
