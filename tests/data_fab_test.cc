/** @file Tests for the Table 7/8 fab database and node interpolation. */

#include <gtest/gtest.h>

#include "data/fab_db.h"

namespace act::data {
namespace {

const FabDatabase &db = FabDatabase::instance();

TEST(Table7, ExactEpaAnchors)
{
    EXPECT_DOUBLE_EQ(db.epa(28.0).value(), 0.90);
    EXPECT_DOUBLE_EQ(db.epa(20.0).value(), 1.2);
    EXPECT_DOUBLE_EQ(db.epa(14.0).value(), 1.2);
    EXPECT_DOUBLE_EQ(db.epa(10.0).value(), 1.475);
    EXPECT_DOUBLE_EQ(db.epa(7.0).value(), 1.52);
    EXPECT_DOUBLE_EQ(db.epa(5.0).value(), 2.75);
    EXPECT_DOUBLE_EQ(db.epa(3.0).value(), 2.75);
}

TEST(Table7, ExactGpaAnchorsAtCharacterizedAbatements)
{
    EXPECT_DOUBLE_EQ(db.gpa(28.0, 0.95).value(), 175.0);
    EXPECT_DOUBLE_EQ(db.gpa(28.0, 0.99).value(), 100.0);
    EXPECT_DOUBLE_EQ(db.gpa(7.0, 0.95).value(), 350.0);
    EXPECT_DOUBLE_EQ(db.gpa(7.0, 0.99).value(), 200.0);
    EXPECT_DOUBLE_EQ(db.gpa(3.0, 0.95).value(), 470.0);
    EXPECT_DOUBLE_EQ(db.gpa(3.0, 0.99).value(), 275.0);
}

TEST(Table7, DefaultAbatementIsBetweenColumns)
{
    // 97% abatement (TSMC) is midway between the 95/99 columns.
    EXPECT_DOUBLE_EQ(db.gpa(28.0).value(), (175.0 + 100.0) / 2.0);
    EXPECT_DOUBLE_EQ(db.gpa(10.0).value(), (240.0 + 150.0) / 2.0);
}

TEST(Table7, NamedEuvVariants)
{
    const auto euv = db.findByName("7nm-EUV");
    ASSERT_TRUE(euv.has_value());
    EXPECT_DOUBLE_EQ(euv->epa.value(), 2.15);
    EXPECT_DOUBLE_EQ(euv->nm, 7.0);
    const auto euv_dp = db.findByName("7nm-euv-dp");
    ASSERT_TRUE(euv_dp.has_value());
    EXPECT_DOUBLE_EQ(euv_dp->epa.value(), 2.15);
    EXPECT_FALSE(db.findByName("9nm").has_value());
}

TEST(Table7, RecordListMatchesPaperRowCount)
{
    EXPECT_EQ(db.records().size(), 9u);
}

TEST(Table8, RawMaterialIntensity)
{
    EXPECT_DOUBLE_EQ(db.mpa().value(), 500.0);
}

TEST(FabDb, InterpolationBetweenAnchors)
{
    // 16 nm sits between the 14 nm and 20 nm anchors: EPA is flat 1.2
    // there, GPA between 190-200 (95% column).
    EXPECT_DOUBLE_EQ(db.epa(16.0).value(), 1.2);
    const double gpa95_16 = db.gpa(16.0, 0.95).value();
    EXPECT_GT(gpa95_16, 190.0);
    EXPECT_LT(gpa95_16, 200.0);
    // 8 nm sits between 10 and 7 nm.
    const double epa8 = db.epa(8.0).value();
    EXPECT_GT(epa8, 1.475);
    EXPECT_LT(epa8, 1.52);
}

TEST(FabDb, NearestAnchorLookup)
{
    EXPECT_DOUBLE_EQ(db.epa(16.0, NodeLookup::NearestAnchor).value(),
                     1.2);  // 14 nm anchor (log-nearest)
    EXPECT_DOUBLE_EQ(db.epa(8.0, NodeLookup::NearestAnchor).value(),
                     1.52);  // 7 nm anchor
    EXPECT_DOUBLE_EQ(db.epa(26.0, NodeLookup::NearestAnchor).value(),
                     0.90);  // 28 nm anchor
}

TEST(FabDb, OutOfRangeNodesAreFatal)
{
    EXPECT_EXIT(db.epa(2.0), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(db.epa(45.0), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(db.gpa(0.0), ::testing::ExitedWithCode(1), "");
}

TEST(FabDb, OutOfRangeAbatementIsFatal)
{
    EXPECT_EXIT(db.gpa(10.0, 0.5), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(db.gpa(10.0, 1.01), ::testing::ExitedWithCode(1), "");
}

TEST(FabDb, HigherAbatementNeverIncreasesEmissions)
{
    for (double nm : {3.0, 5.0, 7.0, 10.0, 14.0, 20.0, 28.0}) {
        EXPECT_GE(db.gpa(nm, 0.95).value(), db.gpa(nm, 0.97).value());
        EXPECT_GE(db.gpa(nm, 0.97).value(), db.gpa(nm, 0.99).value());
        EXPECT_GE(db.gpa(nm, 0.99).value(), db.gpa(nm, 1.0).value());
        EXPECT_GE(db.gpa(nm, 1.0).value(), 0.0);
    }
}

/** Property: EPA and GPA grow monotonically towards newer nodes. */
class NodeSweep : public ::testing::TestWithParam<double> {};

TEST_P(NodeSweep, NewerNodesNeverCheaper)
{
    const double nm = GetParam();
    const double finer = nm - 0.5;
    if (finer < FabDatabase::kMinNode)
        return;
    EXPECT_GE(db.epa(finer).value(), db.epa(nm).value() - 1e-12);
    EXPECT_GE(db.gpa(finer).value(), db.gpa(nm).value() - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NodeSweep,
                         ::testing::Values(3.5, 4.0, 5.0, 6.0, 7.0, 8.0,
                                           10.0, 12.0, 14.0, 16.0, 20.0,
                                           22.0, 28.0));

} // namespace
} // namespace act::data
