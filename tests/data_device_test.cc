/** @file Tests for the device BOM database (Figs. 1/4/16/17, Table 12). */

#include <gtest/gtest.h>

#include "data/device_db.h"

namespace act::data {
namespace {

const DeviceDatabase &db = DeviceDatabase::instance();

TEST(DeviceDb, HasAllStudiedPlatforms)
{
    for (const char *name : {"iPhone 3GS", "iPhone 11", "iPad",
                             "Fairphone 3", "Dell R740"}) {
        EXPECT_TRUE(db.findByName(name).has_value()) << name;
    }
    EXPECT_FALSE(db.findByName("Pixel 4").has_value());
    EXPECT_EXIT(db.byNameOrDie("Pixel 4"), ::testing::ExitedWithCode(1),
                "");
}

TEST(DeviceDb, Figure1LifeCycleShares)
{
    const DeviceRecord iphone3 = db.byNameOrDie("iPhone 3GS");
    EXPECT_DOUBLE_EQ(iphone3.lca.production_share, 0.45);
    EXPECT_DOUBLE_EQ(iphone3.lca.use_share, 0.49);

    const DeviceRecord iphone11 = db.byNameOrDie("iPhone 11");
    EXPECT_DOUBLE_EQ(iphone11.lca.production_share, 0.79);
    EXPECT_DOUBLE_EQ(iphone11.lca.use_share, 0.17);
}

TEST(DeviceDb, Figure4TopDownIcEstimates)
{
    // The paper's LCA-based top-down estimates: 23 kg (iPhone 11) and
    // 28 kg (iPad).
    EXPECT_NEAR(util::asKilograms(
                    db.byNameOrDie("iPhone 11").lca.icEstimate()),
                23.0, 0.2);
    EXPECT_NEAR(util::asKilograms(db.byNameOrDie("iPad").lca.icEstimate()),
                28.0, 0.2);
}

/** Every device's LCA shares form a distribution. */
class DeviceShares : public ::testing::TestWithParam<std::string> {};

TEST_P(DeviceShares, SharesSumToOne)
{
    const DeviceRecord device = db.byNameOrDie(GetParam());
    const double sum = device.lca.production_share +
                       device.lca.use_share +
                       device.lca.transport_share + device.lca.eol_share;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_GT(util::asKilograms(device.lca.total), 0.0);
}

TEST_P(DeviceShares, DerivedFootprintsConsistent)
{
    const DeviceRecord device = db.byNameOrDie(GetParam());
    EXPECT_NEAR(util::asGrams(device.lca.productionFootprint()),
                util::asGrams(device.lca.total) *
                    device.lca.production_share,
                1e-6);
    EXPECT_LE(util::asGrams(device.lca.icEstimate()),
              util::asGrams(device.lca.productionFootprint()));
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceShares,
                         ::testing::Values("iPhone 3GS", "iPhone 11",
                                           "iPad", "Fairphone 3",
                                           "Dell R740"));

TEST(DeviceDb, BomComponentsAreWellFormed)
{
    for (const auto &device : db.records()) {
        for (const auto &ic : device.ics) {
            EXPECT_FALSE(ic.name.empty());
            EXPECT_GE(ic.package_count, 1);
            if (ic.kind == IcKind::Logic) {
                EXPECT_GT(util::asSquareMillimeters(ic.area), 0.0);
                EXPECT_GE(ic.node_nm, 3.0);
                EXPECT_LE(ic.node_nm, 28.0);
            } else {
                EXPECT_GT(util::asGigabytes(ic.capacity), 0.0);
                EXPECT_FALSE(ic.technology.empty());
            }
        }
    }
}

TEST(DeviceDb, Iphone3HasNoBomOlderNodesOutOfModelRange)
{
    EXPECT_TRUE(db.byNameOrDie("iPhone 3GS").ics.empty());
    EXPECT_FALSE(db.byNameOrDie("iPhone 11").ics.empty());
}

TEST(DeviceDb, BreakdownsSumToOneWherePresent)
{
    for (const char *name : {"Fairphone 3", "Dell R740"}) {
        const DeviceRecord device = db.byNameOrDie(name);
        ASSERT_FALSE(device.lca_breakdown.empty()) << name;
        double sum = 0.0;
        for (const auto &entry : device.lca_breakdown)
            sum += entry.share;
        EXPECT_NEAR(sum, 1.0, 1e-9) << name;
    }
}

TEST(DeviceDb, DellR740SsdDominatesPublishedBreakdown)
{
    // Fig. 17: SSDs are the largest slice of the R740 LCA.
    const DeviceRecord dell = db.byNameOrDie("Dell R740");
    double ssd_share = 0.0;
    double max_other = 0.0;
    for (const auto &entry : dell.lca_breakdown) {
        if (entry.label == "SSD")
            ssd_share = entry.share;
        else
            max_other = std::max(max_other, entry.share);
    }
    EXPECT_GT(ssd_share, max_other);
}

TEST(DeviceDb, CategoryNames)
{
    EXPECT_EQ(icCategoryName(IcCategory::MainSoc), "Main SoC");
    EXPECT_EQ(icCategoryName(IcCategory::CameraIc), "Camera ICs");
    EXPECT_EQ(icCategoryName(IcCategory::Dram), "DRAM");
    EXPECT_EQ(icCategoryName(IcCategory::Flash), "Flash");
    EXPECT_EQ(icCategoryName(IcCategory::OtherIc), "Other ICs");
}

} // namespace
} // namespace act::data
