/** @file Tests for the mobile SoC database backing Figs. 8 and 14. */

#include <gtest/gtest.h>

#include "data/soc_db.h"
#include "util/stats.h"

namespace act::data {
namespace {

const SocDatabase &db = SocDatabase::instance();

TEST(SocDb, HasAllThirteenChipsets)
{
    EXPECT_EQ(db.records().size(), 13u);
    for (const char *name :
         {"Exynos 9820", "Exynos 9810", "Exynos 8895", "Exynos 7420",
          "Snapdragon 865", "Snapdragon 855", "Snapdragon 845",
          "Snapdragon 835", "Snapdragon 820", "Kirin 990", "Kirin 980",
          "Kirin 970", "Kirin 960"}) {
        EXPECT_TRUE(db.findByName(name).has_value()) << name;
    }
}

TEST(SocDb, LookupIsCaseInsensitiveAndFatalOnMiss)
{
    EXPECT_TRUE(db.findByName("kirin 990").has_value());
    EXPECT_FALSE(db.findByName("Kirin 9000").has_value());
    EXPECT_EXIT(db.byNameOrDie("Apple A13"), ::testing::ExitedWithCode(1),
                "");
}

TEST(SocDb, KnownSpecs)
{
    const SocRecord sd835 = db.byNameOrDie("Snapdragon 835");
    EXPECT_DOUBLE_EQ(sd835.node_nm, 10.0);
    EXPECT_NEAR(util::asSquareMillimeters(sd835.die_area), 72.3, 1e-9);
    EXPECT_DOUBLE_EQ(util::asGigabytes(sd835.dram_capacity), 4.0);
    EXPECT_EQ(sd835.dram_technology, "LPDDR4");

    const SocRecord kirin980 = db.byNameOrDie("Kirin 980");
    EXPECT_DOUBLE_EQ(kirin980.node_nm, 7.0);
    EXPECT_EQ(kirin980.release_year, 2018);
}

TEST(SocDb, FamilyByYearIsSortedOldestFirst)
{
    for (SocFamily family : {SocFamily::Exynos, SocFamily::Snapdragon,
                             SocFamily::Kirin}) {
        const auto chipsets = db.familyByYear(family);
        ASSERT_GE(chipsets.size(), 4u);
        for (std::size_t i = 1; i < chipsets.size(); ++i) {
            EXPECT_LE(chipsets[i - 1].release_year,
                      chipsets[i].release_year);
            EXPECT_EQ(chipsets[i].family, family);
        }
    }
}

TEST(SocDb, WorkloadNamesCoverGeekbenchSuite)
{
    ASSERT_EQ(allMobileWorkloads().size(), kNumMobileWorkloads);
    EXPECT_EQ(workloadName(MobileWorkload::AesEncryption),
              "AES encryption");
    EXPECT_EQ(workloadName(MobileWorkload::ImageClassification),
              "image classification");
}

TEST(SocDb, FamilyNames)
{
    EXPECT_EQ(familyName(SocFamily::Exynos), "Exynos");
    EXPECT_EQ(familyName(SocFamily::Snapdragon), "Snapdragon");
    EXPECT_EQ(familyName(SocFamily::Kirin), "Kirin");
}

/** Per-chipset sanity properties. */
class SocRecords : public ::testing::TestWithParam<std::string> {};

TEST_P(SocRecords, SpecsArePhysical)
{
    const SocRecord soc = db.byNameOrDie(GetParam());
    EXPECT_GE(soc.node_nm, 7.0);
    EXPECT_LE(soc.node_nm, 16.0);
    EXPECT_GT(util::asSquareMillimeters(soc.die_area), 50.0);
    EXPECT_LT(util::asSquareMillimeters(soc.die_area), 150.0);
    EXPECT_GE(util::asGigabytes(soc.dram_capacity), 3.0);
    EXPECT_LE(util::asGigabytes(soc.dram_capacity), 8.0);
    EXPECT_GT(util::asWatts(soc.tdp), 4.0);
    EXPECT_LT(util::asWatts(soc.tdp), 9.0);
    for (double score : soc.workload_scores)
        EXPECT_GT(score, 0.0);
}

TEST_P(SocRecords, AggregateIsGeomeanOfWorkloads)
{
    const SocRecord soc = db.byNameOrDie(GetParam());
    EXPECT_NEAR(soc.aggregateScore(),
                util::geomean(std::span<const double>(soc.workload_scores)),
                1e-9);
    EXPECT_NEAR(soc.efficiencyScorePerWatt(),
                soc.aggregateScore() / util::asWatts(soc.tdp), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllChipsets, SocRecords,
    ::testing::Values("Exynos 9820", "Exynos 9810", "Exynos 8895",
                      "Exynos 7420", "Snapdragon 865", "Snapdragon 855",
                      "Snapdragon 845", "Snapdragon 835",
                      "Snapdragon 820", "Kirin 990", "Kirin 980",
                      "Kirin 970", "Kirin 960"));

TEST(SocDb, NewerGenerationsAreFaster)
{
    // Within each family, aggregate performance increases by release
    // year (Fig. 8(a) "newer architectures have higher performance").
    for (SocFamily family : {SocFamily::Exynos, SocFamily::Snapdragon,
                             SocFamily::Kirin}) {
        const auto chipsets = db.familyByYear(family);
        for (std::size_t i = 1; i < chipsets.size(); ++i) {
            EXPECT_GT(chipsets[i].aggregateScore(),
                      chipsets[i - 1].aggregateScore())
                << chipsets[i].name;
        }
    }
}

TEST(SocDb, AesFavorsSnapdragonFlavor)
{
    // The per-family flavor model gives Snapdragon a crypto edge.
    const SocRecord sd = db.byNameOrDie("Snapdragon 845");
    const std::size_t aes =
        static_cast<std::size_t>(MobileWorkload::AesEncryption);
    EXPECT_GT(sd.workload_scores[aes], sd.aggregateScore());
}

} // namespace
} // namespace act::data
