/**
 * @file
 * Tests for compiled evaluation plans (core/eval_plan.h): the compiled
 * path must be *bit-identical* to the string-keyed, database-resolving
 * oracle -- core::carbonPerArea[Named](), data::storageOrDie(),
 * data::regionIntensity() -- for every node label, memory technology,
 * and region in the databases, and for bound per-sample inputs.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/embodied.h"
#include "core/eval_plan.h"
#include "core/fab_params.h"
#include "data/carbon_intensity_db.h"
#include "data/fab_db.h"
#include "data/memory_db.h"
#include "util/units.h"

namespace act::core {
namespace {

std::vector<FabParams>
fabVariants()
{
    std::vector<FabParams> fabs = {
        FabParams{},
        FabParams::taiwanGrid(),
        FabParams::renewable(),
        FabParams::withIntensity(util::gramsPerKilowattHour(123.0)),
    };
    FabParams low_yield;
    low_yield.yield = 0.5;
    fabs.push_back(low_yield);
    FabParams nearest;
    nearest.lookup = data::NodeLookup::NearestAnchor;
    fabs.push_back(nearest);
    return fabs;
}

TEST(EvalPlan, CurvePlanMatchesCarbonPerAreaBitwise)
{
    // Every compiled baseline must equal the oracle exactly (EXPECT_EQ
    // on doubles is bit comparison for non-NaN values), across fab
    // variants, the abatement band, and on- and off-anchor nodes.
    const double nodes[] = {3.0, 4.2, 5.0,  6.5,  7.0,  8.0,
                            10.0, 12.0, 14.0, 16.0, 20.0, 28.0};
    for (FabParams fab : fabVariants()) {
        for (const double abatement : {0.90, 0.95, 0.97, 0.99, 1.0}) {
            fab.abatement = abatement;
            for (const double nm : nodes) {
                const EvalPlan plan = EvalPlan::forNode(fab, nm);
                EXPECT_EQ(plan.cpa().value(),
                          carbonPerArea(fab, nm).value())
                    << nm << " nm, abatement " << abatement;
                EXPECT_EQ(plan.evaluate(nullptr),
                          carbonPerArea(fab, nm).value())
                    << nm << " nm (evaluate with no bound inputs)";
            }
        }
    }
}

TEST(EvalPlan, NamedPlanMatchesCarbonPerAreaNamedForEveryRow)
{
    for (const FabParams &fab : fabVariants()) {
        for (const auto &record :
             data::FabDatabase::instance().records()) {
            const EvalPlan plan = EvalPlan::forNodeNamed(fab,
                                                         record.name);
            EXPECT_EQ(plan.cpa().value(),
                      carbonPerAreaNamed(fab, record.name).value())
                << record.name;
        }
    }
}

TEST(EvalPlan, TechnologyCpsMatchesStorageOrDieForEveryRow)
{
    for (const data::StorageClass storage_class :
         {data::StorageClass::Dram, data::StorageClass::Ssd,
          data::StorageClass::Hdd}) {
        for (const auto &record : data::storageTable(storage_class)) {
            EXPECT_EQ(
                EvalPlan::resolveTechnologyCps(record.name).value(),
                data::storageOrDie(record.name).cps.value())
                << record.name;
        }
    }
}

TEST(EvalPlan, RegionIntensityMatchesDatabaseForEveryRegion)
{
    for (const auto &record : data::regionTable()) {
        EXPECT_EQ(EvalPlan::resolveRegionIntensity(record.name).value(),
                  data::regionIntensity(record.region).value())
            << record.name;
    }
}

TEST(EvalPlan, BoundEvaluateMatchesMutatedFabParams)
{
    // Binding (ci_fab, yield, abatement) per sample must reproduce the
    // oracle run with a FabParams carrying those values -- the exact
    // substitution the cpa_montecarlo sweep domain performs.
    const FabParams base;
    const std::vector<EvalInput> bindings = {
        EvalInput::CiFab, EvalInput::Yield, EvalInput::Abatement};
    for (const double nm : {3.0, 7.0, 14.0, 28.0}) {
        const EvalPlan plan = EvalPlan::forNode(base, nm, bindings);
        ASSERT_EQ(plan.inputCount(), 3u);
        for (const double ci : {30.0, 365.0, 700.0}) {
            for (const double yield : {0.6, 0.875, 1.0}) {
                for (const double abatement : {0.90, 0.951, 1.0}) {
                    FabParams mutated = base;
                    mutated.ci_fab =
                        util::gramsPerKilowattHour(ci);
                    mutated.yield = yield;
                    mutated.abatement = abatement;
                    const double values[] = {ci, yield, abatement};
                    EXPECT_EQ(plan.evaluate(values),
                              carbonPerArea(mutated, nm).value())
                        << nm << " nm, ci " << ci << ", yield "
                        << yield << ", abatement " << abatement;
                }
            }
        }
    }
}

TEST(EvalPlan, NamedPlanBoundAbatementMatchesNamedOracle)
{
    // Named-row plans replay carbonPerAreaNamed()'s unchecked column
    // interpolation, including extrapolation below the 95% column.
    const FabParams base;
    const std::vector<EvalInput> bindings = {EvalInput::Abatement};
    for (const auto &record :
         data::FabDatabase::instance().records()) {
        const EvalPlan plan =
            EvalPlan::forNodeNamed(base, record.name, bindings);
        for (const double abatement : {0.85, 0.90, 0.97, 1.0}) {
            FabParams mutated = base;
            mutated.abatement = abatement;
            const double values[] = {abatement};
            EXPECT_EQ(plan.evaluate(values),
                      carbonPerAreaNamed(mutated,
                                         record.name).value())
                << record.name << " at abatement " << abatement;
        }
    }
}

TEST(EvalPlan, RawPlanComputesEq5)
{
    const std::vector<EvalInput> bindings = {
        EvalInput::CiFab, EvalInput::Epa, EvalInput::Gpa,
        EvalInput::Mpa, EvalInput::Yield};
    const EvalPlan plan = EvalPlan::forRawCpa(
        {447.5, 1.52, 275.0, 500.0, 0.875}, bindings);
    EXPECT_EQ(plan.cpa().value(),
              (447.5 * 1.52 + 275.0 + 500.0) / 0.875);
    const double values[] = {500.0, 1.3, 250.0, 450.0, 0.9};
    EXPECT_EQ(plan.evaluate(values),
              (500.0 * 1.3 + 250.0 + 450.0) / 0.9);
}

TEST(EvalPlan, EvaluateBatchMatchesEvaluatePerSample)
{
    const FabParams base;
    const std::vector<EvalInput> bindings = {
        EvalInput::CiFab, EvalInput::Yield, EvalInput::Abatement};
    const EvalPlan plan = EvalPlan::forNode(base, 7.0, bindings);

    constexpr std::size_t kSamples = 257; // deliberately off-power-of-2
    std::vector<double> ci(kSamples), yield(kSamples),
        abatement(kSamples), batched(kSamples);
    for (std::size_t s = 0; s < kSamples; ++s) {
        ci[s] = 30.0 + 2.3 * static_cast<double>(s);
        yield[s] = 0.6 + 0.001 * static_cast<double>(s);
        abatement[s] = 0.90 + 0.0003 * static_cast<double>(s);
    }
    const double *columns[] = {ci.data(), yield.data(),
                               abatement.data()};
    plan.evaluateBatch(kSamples, columns, batched.data());
    for (std::size_t s = 0; s < kSamples; ++s) {
        const double values[] = {ci[s], yield[s], abatement[s]};
        EXPECT_EQ(batched[s], plan.evaluate(values)) << "sample " << s;
    }
}

TEST(EvalPlan, InvalidInputsAreFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const FabParams fab;

    // Unknown names.
    EXPECT_EXIT(EvalPlan::forNodeNamed(fab, "6nm"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(EvalPlan::resolveTechnologyCps("unknown tech"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(EvalPlan::resolveRegionIntensity("Atlantis"),
                ::testing::ExitedWithCode(1), "");

    // Bad per-sample values, mirroring the uncompiled checks.
    const std::vector<EvalInput> yield_only = {EvalInput::Yield};
    const EvalPlan plan = EvalPlan::forNode(fab, 7.0, yield_only);
    const double zero_yield[] = {0.0};
    EXPECT_EXIT(plan.evaluate(zero_yield),
                ::testing::ExitedWithCode(1), "");
    const std::vector<EvalInput> abatement_only = {
        EvalInput::Abatement};
    const EvalPlan checked =
        EvalPlan::forNode(fab, 7.0, abatement_only);
    const double low_abatement[] = {0.5};
    EXPECT_EXIT(checked.evaluate(low_abatement),
                ::testing::ExitedWithCode(1), "");

    // Bindings the plan cannot honor.
    const std::vector<EvalInput> duplicate = {EvalInput::Yield,
                                              EvalInput::Yield};
    EXPECT_EXIT(EvalPlan::forNode(fab, 7.0, duplicate),
                ::testing::ExitedWithCode(1), "");
    const std::vector<EvalInput> epa_on_curve = {EvalInput::Epa};
    EXPECT_EXIT(EvalPlan::forNode(fab, 7.0, epa_on_curve),
                ::testing::ExitedWithCode(1), "");
    const std::vector<EvalInput> abatement_on_raw = {
        EvalInput::Abatement};
    EXPECT_EXIT(EvalPlan::forRawCpa({}, abatement_on_raw),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::core
