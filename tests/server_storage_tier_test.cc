/** @file Tests for the HDD-vs-SSD storage-tier trade-off study. */

#include <gtest/gtest.h>

#include "server/storage_tier.h"

namespace act::server {
namespace {

const core::OperationalParams kUse;
const util::Duration kLife = util::years(5.0);

StorageDemand
coldDemand()
{
    StorageDemand demand;
    demand.capacity = util::terabytes(100.0);
    demand.throughput_mbps = 0.0;
    demand.duty = 0.3;
    return demand;
}

TEST(StorageTiers, ReferenceTiersAreSane)
{
    const StorageTier hdd = enterpriseHddTier();
    const StorageTier ssd = datacenterSsdTier();
    // Fig. 7: flash carries several times the embodied carbon per GB.
    EXPECT_GT(ssd.cps.value(), 3.0 * hdd.cps.value());
    // Flash serves over an order of magnitude more MB/s per TB.
    EXPECT_GT(ssd.throughput_mbps_per_tb,
              10.0 * hdd.throughput_mbps_per_tb);
}

TEST(StorageTiers, CapacityProvisioningIsDemandDriven)
{
    const StorageTier hdd = enterpriseHddTier();
    StorageDemand demand = coldDemand();
    // No throughput: provision exactly the data size.
    EXPECT_DOUBLE_EQ(
        util::asGigabytes(provisionedCapacity(hdd, demand)), 100'000.0);
    // High throughput: spindles dominate the provisioning.
    demand.throughput_mbps = 10'000.0;
    EXPECT_GT(util::asGigabytes(provisionedCapacity(hdd, demand)),
              100'000.0);
    // The SSD tier still fits in the data-size provisioning.
    EXPECT_DOUBLE_EQ(util::asGigabytes(provisionedCapacity(
                         datacenterSsdTier(), demand)),
                     100'000.0);
}

TEST(StorageTiers, HddWinsColdStorage)
{
    const auto hdd =
        tierFootprint(enterpriseHddTier(), coldDemand(), kLife, kUse);
    const auto ssd =
        tierFootprint(datacenterSsdTier(), coldDemand(), kLife, kUse);
    EXPECT_LT(util::asGrams(hdd.total()), util::asGrams(ssd.total()));
}

TEST(StorageTiers, SsdWinsThroughputHeavyTiers)
{
    StorageDemand demand = coldDemand();
    demand.throughput_mbps = 50'000.0;  // hot serving tier
    const auto hdd =
        tierFootprint(enterpriseHddTier(), demand, kLife, kUse);
    const auto ssd =
        tierFootprint(datacenterSsdTier(), demand, kLife, kUse);
    EXPECT_LT(util::asGrams(ssd.total()), util::asGrams(hdd.total()));
}

TEST(StorageTiers, CrossoverIsBracketedAndConsistent)
{
    const auto crossover = throughputCrossover(
        enterpriseHddTier(), datacenterSsdTier(), coldDemand(), kLife,
        kUse);
    ASSERT_TRUE(crossover.has_value());
    EXPECT_GT(*crossover, 0.0);
    EXPECT_LT(*crossover, 50'000.0);

    // Just below the crossover HDD wins; just above, SSD wins.
    StorageDemand below = coldDemand();
    below.throughput_mbps = *crossover * 0.95;
    StorageDemand above = coldDemand();
    above.throughput_mbps = *crossover * 1.05;
    EXPECT_LT(util::asGrams(tierFootprint(enterpriseHddTier(), below,
                                          kLife, kUse)
                                .total()),
              util::asGrams(tierFootprint(datacenterSsdTier(), below,
                                          kLife, kUse)
                                .total()));
    EXPECT_GT(util::asGrams(tierFootprint(enterpriseHddTier(), above,
                                          kLife, kUse)
                                .total()),
              util::asGrams(tierFootprint(datacenterSsdTier(), above,
                                          kLife, kUse)
                                .total()));
}

TEST(StorageTiers, CrossoverDegenerateCases)
{
    // Challenger already ahead at zero throughput -> crossover at 0.
    const auto reversed = throughputCrossover(
        datacenterSsdTier(), enterpriseHddTier(), coldDemand(), kLife,
        kUse);
    ASSERT_TRUE(reversed.has_value());
    EXPECT_DOUBLE_EQ(*reversed, 0.0);

    // Challenger never catches up within the search bound.
    const auto never = throughputCrossover(
        enterpriseHddTier(), datacenterSsdTier(), coldDemand(), kLife,
        kUse, 1.0);
    EXPECT_FALSE(never.has_value());
}

TEST(StorageTiers, GreenGridFavorsTheEmbodiedCheapTier)
{
    // On a carbon-free grid only embodied matters, so the HDD's
    // crossover moves to higher throughputs.
    const auto us = throughputCrossover(
        enterpriseHddTier(), datacenterSsdTier(), coldDemand(), kLife,
        kUse);
    const auto free_grid = throughputCrossover(
        enterpriseHddTier(), datacenterSsdTier(), coldDemand(), kLife,
        core::OperationalParams::forSource(
            data::EnergySource::CarbonFree));
    ASSERT_TRUE(us.has_value());
    ASSERT_TRUE(free_grid.has_value());
    EXPECT_GT(*free_grid, *us);
}

TEST(StorageTiers, InvalidDemandsAreFatal)
{
    StorageDemand demand = coldDemand();
    demand.capacity = util::gigabytes(0.0);
    EXPECT_EXIT(provisionedCapacity(enterpriseHddTier(), demand),
                ::testing::ExitedWithCode(1), "");
    demand = coldDemand();
    demand.throughput_mbps = -1.0;
    EXPECT_EXIT(provisionedCapacity(enterpriseHddTier(), demand),
                ::testing::ExitedWithCode(1), "");
    demand = coldDemand();
    demand.duty = 1.5;
    EXPECT_EXIT(tierFootprint(enterpriseHddTier(), demand, kLife, kUse),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::server
