/** @file Tests for the tornado sensitivity analysis. */

#include <gtest/gtest.h>

#include "core/embodied.h"
#include "dse/sensitivity.h"

namespace act::dse {
namespace {

TEST(Tornado, RanksParametersBySwing)
{
    const std::vector<ParameterRange> parameters = {
        {"big", 1.0, 0.0, 10.0},
        {"small", 1.0, 0.9, 1.1},
        {"medium", 1.0, 0.0, 2.0},
    };
    // Model: sum of all parameters.
    const auto entries =
        tornado(parameters, [](const std::vector<double> &v) {
            double sum = 0.0;
            for (double x : v)
                sum += x;
            return sum;
        });
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].name, "big");
    EXPECT_EQ(entries[1].name, "medium");
    EXPECT_EQ(entries[2].name, "small");
    EXPECT_NEAR(entries[0].swing(), 10.0, 1e-12);
    EXPECT_NEAR(entries[2].swing(), 0.2, 1e-12);
}

TEST(Tornado, PerturbsOneParameterAtATime)
{
    const std::vector<ParameterRange> parameters = {
        {"a", 2.0, 1.0, 3.0},
        {"b", 5.0, 0.0, 10.0},
    };
    // Model returns b only: a's swing must be zero.
    const auto entries = tornado(
        parameters,
        [](const std::vector<double> &v) { return v[1]; });
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].name, "b");
    EXPECT_DOUBLE_EQ(entries[1].swing(), 0.0);
    // While b is perturbed, a stayed at baseline (output = b bound).
    EXPECT_DOUBLE_EQ(entries[0].output_low, 0.0);
    EXPECT_DOUBLE_EQ(entries[0].output_high, 10.0);
}

TEST(Tornado, EmptyParameterListIsFatal)
{
    EXPECT_EXIT(tornado({}, [](const std::vector<double> &) {
                    return 0.0;
                }),
                ::testing::ExitedWithCode(1), "");
}

TEST(Tornado, CpaSensitivityIdentifiesDominantInputs)
{
    // CPA at 7 nm: (CI_fab * EPA + GPA + MPA) / Y over Table 1 ranges.
    const std::vector<ParameterRange> parameters = {
        {"CI_fab (g/kWh)", 447.5, 41.0, 583.0},
        {"EPA (kWh/cm2)", 1.52, 1.52 * 0.8, 1.52 * 1.2},
        {"GPA (g/cm2)", 275.0, 200.0, 350.0},
        {"MPA (g/cm2)", 500.0, 400.0, 600.0},
        {"yield", 0.875, 0.6, 0.95},
    };
    const auto entries =
        tornado(parameters, [](const std::vector<double> &v) {
            return (v[0] * v[1] + v[2] + v[3]) / v[4];
        });
    // The fab's energy source spans coal-free to Taiwan grid -- by far
    // the largest swing, matching Fig. 6's bands.
    EXPECT_EQ(entries[0].name, "CI_fab (g/kWh)");
    for (const auto &entry : entries) {
        EXPECT_GT(entry.output_low, 0.0);
        EXPECT_GT(entry.output_high, 0.0);
    }
}

} // namespace
} // namespace act::dse
