/**
 * @file
 * Tests for the SIMD dispatch layer and its kernels. The contract
 * under test is bit-identity (DESIGN.md §11): every vector kernel
 * must reproduce the scalar reference kernel's outputs exactly --
 * EXPECT_EQ on doubles throughout, no tolerances -- for every length,
 * including the ragged tails, and the multi-lane RNG must emit the
 * scalar generator's sequence in the scalar order.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/simd.h"
#include "util/simd_kernels.h"

namespace act::util::simd {
namespace {

/** Every level whose kernels this binary can safely execute. */
std::vector<SimdLevel>
availableLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (simdLevelAvailable(SimdLevel::Sse2))
        levels.push_back(SimdLevel::Sse2);
    if (simdLevelAvailable(SimdLevel::Avx2))
        levels.push_back(SimdLevel::Avx2);
    return levels;
}

/** Lengths that exercise empty, sub-vector, tail, and segment-split
 *  paths for both 2- and 4-lane tiers. */
const std::size_t kLengths[] = {0,  1,   2,   3,   4,    5,    7,
                                8,  15,  16,  17,  63,   64,   65,
                                96, 127, 128, 129, 255,  256,  257,
                                511, 1000, 4096, 6143};

TEST(SimdLevelTest, NamesRoundTrip)
{
    EXPECT_EQ(simdLevelFromName("scalar"), SimdLevel::Scalar);
    EXPECT_EQ(simdLevelFromName("sse2"), SimdLevel::Sse2);
    EXPECT_EQ(simdLevelFromName("avx2"), SimdLevel::Avx2);
    EXPECT_EQ(std::string(simdLevelName(SimdLevel::Scalar)), "scalar");
    EXPECT_EQ(std::string(simdLevelName(SimdLevel::Sse2)), "sse2");
    EXPECT_EQ(std::string(simdLevelName(SimdLevel::Avx2)), "avx2");
}

TEST(SimdLevelTest, AutoAndGarbageResolveToDetected)
{
    EXPECT_EQ(simdLevelFromName("auto"), detectedSimdLevel());
    EXPECT_EQ(simdLevelFromName("turbo9000"), detectedSimdLevel());
}

TEST(SimdLevelTest, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(simdLevelAvailable(SimdLevel::Scalar));
}

TEST(SimdLevelTest, SetSimdLevelInstallsAvailableLevels)
{
    const SimdLevel before = simdLevel();
    for (SimdLevel level : availableLevels())
        EXPECT_EQ(setSimdLevel(level), level);
    // Restore whatever the environment picked.
    setSimdLevel(before);
}

TEST(SimdKernelsTest, TableForEveryAvailableLevel)
{
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        EXPECT_NE(table.fill_units, nullptr);
        EXPECT_NE(table.transform_uniform, nullptr);
        EXPECT_NE(table.transform_triangular, nullptr);
        EXPECT_NE(table.eval_ratio, nullptr);
        EXPECT_NE(table.all_within, nullptr);
    }
}

TEST(SimdKernelsTest, FillUnitsEmitsExactScalarSequence)
{
    const std::uint64_t seeds[] = {1, 42, 7, 0xDEADBEEFULL,
                                   ~std::uint64_t{0}};
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::uint64_t seed : seeds) {
            for (std::size_t n : kLengths) {
                Xorshift64Star reference(seed);
                std::vector<double> expected(n);
                for (std::size_t i = 0; i < n; ++i)
                    expected[i] = reference.nextUnit();

                std::vector<double> actual(n);
                const std::uint64_t end_state = table.fill_units(
                    Xorshift64Star(seed).state(), actual.data(), n);
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(actual[i], expected[i])
                        << simdLevelName(level) << " seed " << seed
                        << " n " << n << " index " << i;
                }
                // The returned state must continue the scalar stream.
                EXPECT_EQ(end_state, reference.state())
                    << simdLevelName(level) << " seed " << seed
                    << " n " << n;
            }
        }
    }
}

TEST(SimdKernelsTest, FillUnitsSplitsAreSeamless)
{
    // Filling 1000 values in ragged pieces must equal one shot: the
    // state handoff between calls is exact at every cut point.
    constexpr std::size_t kTotal = 1000;
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        std::vector<double> whole(kTotal);
        table.fill_units(Xorshift64Star(99).state(), whole.data(),
                         kTotal);
        for (std::size_t cut : {std::size_t{1}, std::size_t{7},
                                std::size_t{128}, std::size_t{513}}) {
            std::vector<double> pieces(kTotal);
            std::uint64_t state = Xorshift64Star(99).state();
            state = table.fill_units(state, pieces.data(), cut);
            table.fill_units(state, pieces.data() + cut,
                             kTotal - cut);
            for (std::size_t i = 0; i < kTotal; ++i) {
                ASSERT_EQ(pieces[i], whole[i])
                    << simdLevelName(level) << " cut " << cut
                    << " index " << i;
            }
        }
    }
}

TEST(SimdKernelsTest, XorshiftJumpMatchesStepping)
{
    const std::uint64_t jumps[] = {0, 1, 2, 3, 63, 64, 65,
                                   384, 1536, 100'000};
    for (std::uint64_t steps : jumps) {
        std::uint64_t expected = Xorshift64Star(1234).state();
        for (std::uint64_t i = 0; i < steps; ++i) {
            expected ^= expected >> 12;
            expected ^= expected << 25;
            expected ^= expected >> 27;
        }
        // Twice: the second call exercises the per-thread cache hit.
        EXPECT_EQ(xorshiftJump(Xorshift64Star(1234).state(), steps),
                  expected)
            << steps;
        EXPECT_EQ(xorshiftJump(Xorshift64Star(1234).state(), steps),
                  expected)
            << steps;
    }
}

TEST(SimdKernelsTest, TransformsMatchScalarReferenceBitwise)
{
    const KernelTable &scalar = scalarKernels();
    UniformTransform uniform;
    uniform.a = 365.0;
    uniform.ba = 335.0;
    TriangularTransform triangular;
    triangular.a = 0.8;
    triangular.b = 0.95;
    triangular.ba = 0.95 - 0.8;
    triangular.ca = 0.875 - 0.8;
    triangular.bc = 0.95 - 0.875;
    triangular.pivot = (0.875 - 0.8) / (0.95 - 0.8);

    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t stride : {std::size_t{1}, std::size_t{3},
                                   std::size_t{7}}) {
            for (std::size_t n : kLengths) {
                std::vector<double> units(n * stride + 1);
                scalar.fill_units(Xorshift64Star(5).state(),
                                  units.data(), units.size());

                std::vector<double> expected(n), actual(n);
                scalar.transform_uniform(units.data(), stride, n,
                                         uniform, expected.data());
                table.transform_uniform(units.data(), stride, n,
                                        uniform, actual.data());
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(actual[i], expected[i])
                        << "uniform " << simdLevelName(level)
                        << " stride " << stride << " n " << n
                        << " index " << i;
                }

                scalar.transform_triangular(units.data(), stride, n,
                                            triangular,
                                            expected.data());
                table.transform_triangular(units.data(), stride, n,
                                           triangular, actual.data());
                for (std::size_t i = 0; i < n; ++i) {
                    ASSERT_EQ(actual[i], expected[i])
                        << "triangular " << simdLevelName(level)
                        << " stride " << stride << " n " << n
                        << " index " << i;
                }
            }
        }
    }
}

/** Run eval_ratio on every level and require bitwise agreement with
 *  the scalar kernel. */
void
expectRatioMatchesScalar(const RatioTerms &terms, std::size_t n)
{
    std::vector<double> expected(n);
    scalarKernels().eval_ratio(terms, n, expected.data());
    for (SimdLevel level : availableLevels()) {
        std::vector<double> actual(n);
        kernels(level).eval_ratio(terms, n, actual.data());
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(actual[i], expected[i])
                << simdLevelName(level) << " recompute "
                << terms.recompute_gpa << " n " << n << " index "
                << i;
        }
    }
}

TEST(SimdKernelsTest, EvalRatioMatchesScalarReferenceBitwise)
{
    for (std::size_t n : kLengths) {
        std::vector<double> ci(n), yield(n), abatement(n);
        const KernelTable &scalar = scalarKernels();
        std::uint64_t state = Xorshift64Star(11).state();
        state = scalar.fill_units(state, ci.data(), n);
        state = scalar.fill_units(state, yield.data(), n);
        scalar.fill_units(state, abatement.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
            ci[i] = 365.0 + 335.0 * ci[i];
            yield[i] = 0.8 + 0.15 * yield[i];
            abatement[i] = 0.90 + 0.10 * abatement[i];
        }
        const double epa = 1.6, gpa = 120.0, mpa = 500.0;

        // Column/constant mixes for both plan shapes.
        RatioTerms plain;
        plain.ci = {ci.data(), true};
        plain.epa = {&epa, false};
        plain.gpa = {&gpa, false};
        plain.mpa = {&mpa, false};
        plain.yield = {yield.data(), true};
        plain.abatement = {abatement.data(), true};
        expectRatioMatchesScalar(plain, n);

        RatioTerms recompute = plain;
        recompute.gpa95 = 100.0;
        recompute.gpa99 = 150.0;
        recompute.recompute_gpa = true;
        expectRatioMatchesScalar(recompute, n);

        RatioTerms constants = plain;
        const double ci0 = 500.0, yield0 = 0.9;
        constants.ci = {&ci0, false};
        constants.yield = {&yield0, false};
        expectRatioMatchesScalar(constants, n);
    }
}

TEST(SimdKernelsTest, AllWithinAgreesAcrossLevels)
{
    constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t n : kLengths) {
            std::vector<double> values(n, 0.95);
            EXPECT_TRUE(
                table.all_within(values.data(), n, 0.9, 1.0, false));
            EXPECT_TRUE(
                table.all_within(values.data(), n, 0.0, 1.0, true));
            // A violation anywhere -- head, vector body, tail -- and
            // NaN must all be caught.
            for (std::size_t bad : {std::size_t{0}, n / 2,
                                    n > 0 ? n - 1 : 0}) {
                if (n == 0)
                    continue;
                for (double poison : {2.0, -1.0, kNan}) {
                    values[bad] = poison;
                    EXPECT_FALSE(table.all_within(values.data(), n,
                                                  0.9, 1.0, false))
                        << simdLevelName(level) << " n " << n
                        << " bad " << bad << " poison " << poison;
                    values[bad] = 0.95;
                }
            }
            // Exclusive vs inclusive lower bound at the boundary.
            if (n > 0) {
                values[n / 2] = 0.0;
                EXPECT_TRUE(table.all_within(values.data(), n, 0.0,
                                             1.0, false));
                EXPECT_FALSE(table.all_within(values.data(), n, 0.0,
                                              1.0, true));
            }
        }
    }
}

TEST(SimdKernelsTest, FleetKernelsRegisteredForEveryLevel)
{
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        EXPECT_NE(table.job_units, nullptr);
        EXPECT_NE(table.power_grid_kw, nullptr);
        EXPECT_NE(table.window_costs, nullptr);
        EXPECT_NE(table.argmin_first, nullptr);
    }
}

TEST(SimdKernelsTest, JobUnitsEmitsEachStatesScalarSequence)
{
    // Lanes are independent generators (one per job); every lane must
    // reproduce its own Xorshift64Star::nextUnit() stream exactly,
    // draw-major in the output.
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t jobs : kLengths) {
            for (std::size_t draws :
                 {std::size_t{1}, std::size_t{6}}) {
                std::vector<std::uint64_t> states(jobs);
                for (std::size_t j = 0; j < jobs; ++j)
                    states[j] = Xorshift64Star(1000 + j).state();

                std::vector<double> out(draws * jobs);
                table.job_units(states.data(), jobs, draws,
                                out.data());
                for (std::size_t j = 0; j < jobs; ++j) {
                    Xorshift64Star reference(1000 + j);
                    for (std::size_t d = 0; d < draws; ++d) {
                        ASSERT_EQ(out[d * jobs + j],
                                  reference.nextUnit())
                            << simdLevelName(level) << " jobs "
                            << jobs << " job " << j << " draw " << d;
                    }
                }
            }
        }
    }
}

TEST(SimdKernelsTest, PowerGridKwMatchesScalarReferenceBitwise)
{
    PowerTransform tr;
    tr.idle_w = 90.0;
    tr.span_w = 415.0 - 90.0;
    tr.pue = 1.3;
    const KernelTable &scalar = scalarKernels();
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t n : kLengths) {
            std::vector<double> u(n);
            scalar.fill_units(Xorshift64Star(31).state(), u.data(),
                              n);
            std::vector<double> expected(n), actual(n);
            scalar.power_grid_kw(u.data(), n, tr, expected.data());
            table.power_grid_kw(u.data(), n, tr, actual.data());
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(actual[i], expected[i])
                    << simdLevelName(level) << " n " << n
                    << " index " << i;
            }
        }
    }
}

TEST(SimdKernelsTest, WindowCostsMatchScalarReferenceBitwise)
{
    // A small cyclic series with irregular values so wrap and
    // non-wrap windows differ; prefix and doubled arrays as the
    // fleet's RegionSeries builds them.
    constexpr std::size_t kSamples = 24;
    std::vector<double> grams(kSamples);
    const KernelTable &scalar = scalarKernels();
    scalar.fill_units(Xorshift64Star(67).state(), grams.data(),
                      kSamples);
    for (double &g : grams)
        g = 100.0 + 500.0 * g;
    std::vector<double> prefix(kSamples + 1, 0.0);
    for (std::size_t i = 0; i < kSamples; ++i)
        prefix[i + 1] = prefix[i] + grams[i];
    std::vector<double> grams2x(grams);
    grams2x.insert(grams2x.end(), grams.begin(), grams.end());

    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t start0 : {std::size_t{0}, std::size_t{5},
                                   std::size_t{23}, std::size_t{70}}) {
            for (std::size_t rem :
                 {std::size_t{0}, std::size_t{1}, std::size_t{11},
                  std::size_t{23}}) {
                // Counts below, at, and far beyond the series length
                // exercise every segment split and the s0 rewrap.
                for (std::size_t count :
                     {std::size_t{1}, std::size_t{2}, std::size_t{13},
                      std::size_t{24}, std::size_t{57}}) {
                    for (double tail : {0.0, 0.37}) {
                        WindowCostProblem problem;
                        problem.prefix = prefix.data();
                        problem.grams2x = grams2x.data();
                        problem.n = kSamples;
                        problem.start0 = start0;
                        problem.count = count;
                        problem.rem = rem;
                        problem.base = 2.0 * prefix[kSamples];
                        problem.step = 1.0;
                        problem.tail_hours = tail;

                        std::vector<double> expected(count),
                            actual(count);
                        scalar.window_costs(problem, expected.data());
                        table.window_costs(problem, actual.data());
                        for (std::size_t k = 0; k < count; ++k) {
                            ASSERT_EQ(actual[k], expected[k])
                                << simdLevelName(level) << " start0 "
                                << start0 << " rem " << rem
                                << " count " << count << " tail "
                                << tail << " shift " << k;
                        }
                    }
                }
            }
        }
    }
}

TEST(SimdKernelsTest, ArgminFirstReturnsEarliestMinimum)
{
    const KernelTable &scalar = scalarKernels();
    for (SimdLevel level : availableLevels()) {
        const KernelTable &table = kernels(level);
        for (std::size_t n : kLengths) {
            if (n == 0)
                continue;
            std::vector<double> values(n);
            scalar.fill_units(Xorshift64Star(123).state(),
                              values.data(), n);
            EXPECT_EQ(table.argmin_first(values.data(), n),
                      scalar.argmin_first(values.data(), n))
                << simdLevelName(level) << " n " << n;

            // Ties must resolve to the earliest index, wherever the
            // duplicates land relative to the vector lanes.
            std::vector<double> tied(n, 5.0);
            EXPECT_EQ(table.argmin_first(tied.data(), n), 0u)
                << simdLevelName(level) << " all-equal n " << n;
            for (std::size_t lo : {std::size_t{0}, n / 3, n - 1}) {
                std::fill(tied.begin(), tied.end(), 5.0);
                tied[lo] = 1.0;
                if (n - 1 > lo)
                    tied[n - 1] = 1.0;
                EXPECT_EQ(table.argmin_first(tied.data(), n), lo)
                    << simdLevelName(level) << " n " << n << " lo "
                    << lo;
            }
        }
    }
}

TEST(XorshiftLanesTest, EmitsScalarSequenceAndHandsBackState)
{
    for (SimdLevel level : availableLevels()) {
        const SimdLevel restore = setSimdLevel(level);
        for (std::size_t n : {std::size_t{17}, std::size_t{300},
                              std::size_t{1536}}) {
            Xorshift64Star reference(2024);
            std::vector<double> expected(n);
            for (std::size_t i = 0; i < n; ++i)
                expected[i] = reference.nextUnit();

            Xorshift64Star rng(2024);
            XorshiftLanes lanes(rng);
            std::vector<double> actual(n);
            // Two ragged calls to exercise the internal state carry.
            lanes.fillUnits(actual.data(), n / 3);
            lanes.fillUnits(actual.data() + n / 3, n - n / 3);
            for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(actual[i], expected[i]) << i;

            // The handed-back generator continues the scalar stream.
            Xorshift64Star resumed = lanes.scalar();
            for (int i = 0; i < 16; ++i)
                EXPECT_EQ(resumed.nextUnit(), reference.nextUnit());
        }
        setSimdLevel(restore);
    }
}

TEST(XorshiftLanesTest, ZeroSeedAndZeroStateAreRemapped)
{
    // Zero is the xorshift fixed point; both entry points must remap
    // it to 1 rather than emit zeros forever.
    Xorshift64Star from_zero(0);
    Xorshift64Star from_one(1);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(from_zero.next(), from_one.next());

    Xorshift64Star rebuilt = Xorshift64Star::fromState(0);
    EXPECT_EQ(rebuilt.state(), 1u);
    Xorshift64Star fresh(1);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rebuilt.next(), fresh.next());

    // Round trip through state() is exact for nonzero states.
    Xorshift64Star original(77);
    original.nextUnit();
    Xorshift64Star copy = Xorshift64Star::fromState(original.state());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(copy.next(), original.next());
}

} // namespace
} // namespace act::util::simd
