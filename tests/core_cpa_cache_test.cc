/** @file Tests for the carbon-per-area memoization cache. */

#include <vector>

#include <gtest/gtest.h>

#include "core/cpa_cache.h"
#include "core/embodied.h"
#include "data/fab_db.h"
#include "util/parallel.h"

namespace act::core {
namespace {

/** Clear cache state around every test so counters are meaningful. */
class CpaCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CpaCache::instance().setEnabled(true);
        CpaCache::instance().clear();
        CpaCache::instance().resetStats();
    }

    void
    TearDown() override
    {
        CpaCache::instance().setEnabled(true);
        CpaCache::instance().clear();
        util::setThreadCount(0);
    }
};

std::vector<FabParams>
fabVariants()
{
    std::vector<FabParams> fabs;
    for (const double abatement : {0.90, 0.95, 0.97, 0.99}) {
        FabParams fab;
        fab.abatement = abatement;
        fabs.push_back(fab);

        FabParams renewable = FabParams::renewable();
        renewable.abatement = abatement;
        fabs.push_back(renewable);
    }
    FabParams nearest;
    nearest.lookup = data::NodeLookup::NearestAnchor;
    fabs.push_back(nearest);
    return fabs;
}

TEST_F(CpaCacheTest, CachedEqualsUncachedAcrossNodesAndAbatement)
{
    CpaCache &cache = CpaCache::instance();
    for (const FabParams &fab : fabVariants()) {
        for (double nm = data::FabDatabase::kMinNode;
             nm <= data::FabDatabase::kMaxNode; nm += 0.5) {
            const double cached = carbonPerArea(fab, nm).value();

            cache.setEnabled(false);
            const double uncached = carbonPerArea(fab, nm).value();
            cache.setEnabled(true);

            EXPECT_EQ(cached, uncached)
                << "nm=" << nm << " abatement=" << fab.abatement;

            // A second cached query must hit and agree exactly.
            const auto before = cache.stats();
            EXPECT_EQ(carbonPerArea(fab, nm).value(), uncached);
            EXPECT_EQ(cache.stats().hits, before.hits + 1);
        }
    }
}

TEST_F(CpaCacheTest, CachedEqualsUncachedForNamedNodes)
{
    CpaCache &cache = CpaCache::instance();
    const FabParams fab;
    for (const auto &record : data::FabDatabase::instance().records()) {
        const double cached =
            carbonPerAreaNamed(fab, record.name).value();
        cache.setEnabled(false);
        const double uncached =
            carbonPerAreaNamed(fab, record.name).value();
        cache.setEnabled(true);
        EXPECT_EQ(cached, uncached) << record.name;
    }
}

TEST_F(CpaCacheTest, DistinctFabFingerprintsDoNotCollide)
{
    FabParams low_yield;
    low_yield.yield = 0.6;
    const double base = carbonPerArea(FabParams{}, 7.0).value();
    const double low = carbonPerArea(low_yield, 7.0).value();
    EXPECT_NE(base, low);
    // Yield enters Eq. 5 as 1/Y; check the cached values kept that.
    EXPECT_NEAR(low / base, FabParams{}.yield / 0.6, 1e-12);
}

TEST_F(CpaCacheTest, CountersTrackHitsAndMisses)
{
    CpaCache &cache = CpaCache::instance();
    const FabParams fab;
    EXPECT_EQ(cache.size(), 0u);

    carbonPerArea(fab, 7.0);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.size(), 1u);

    for (int repeat = 0; repeat < 9; ++repeat)
        carbonPerArea(fab, 7.0);
    EXPECT_EQ(cache.stats().hits, 9u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_NEAR(cache.stats().hitRate(), 0.9, 1e-12);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    carbonPerArea(fab, 7.0);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(CpaCacheTest, DisabledCacheBypassesStorage)
{
    CpaCache &cache = CpaCache::instance();
    cache.setEnabled(false);
    carbonPerArea(FabParams{}, 10.0);
    carbonPerArea(FabParams{}, 10.0);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST_F(CpaCacheTest, ConcurrentLookupsAgreeWithSerialValues)
{
    // Hammer a small key set from the pool: every concurrent lookup
    // must return exactly the serial value (smoke test for the striped
    // locking; run under -DACT_SANITIZE=thread to check for races).
    const std::vector<FabParams> fabs = fabVariants();
    constexpr std::size_t kQueries = 2000;
    std::vector<double> serial(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
        const double nm = 3.0 + static_cast<double>(i % 26);
        serial[i] = carbonPerArea(fabs[i % fabs.size()], nm).value();
    }

    CpaCache::instance().clear();
    util::setThreadCount(8);
    std::vector<double> parallel(kQueries);
    util::parallelFor(0, kQueries, 16, [&](std::size_t i) {
        const double nm = 3.0 + static_cast<double>(i % 26);
        parallel[i] = carbonPerArea(fabs[i % fabs.size()], nm).value();
    });

    for (std::size_t i = 0; i < kQueries; ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "query " << i;
}

} // namespace
} // namespace act::core
