/**
 * @file
 * Tests for the IntensitySeries time-series substrate: JSON
 * round-trips through the in-repo config parser, DiurnalProfile-view
 * equivalence (the 24-hour profiles must be bitwise views over the
 * series builders), seasonal composition, and malformed-input fatals.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/ci_profile.h"
#include "data/intensity_series.h"

namespace act::data {
namespace {

using util::gramsPerKilowattHour;

TEST(IntensitySeries, FlatSeriesIsConstant)
{
    const auto series =
        IntensitySeries::flat(gramsPerKilowattHour(300.0));
    EXPECT_EQ(series.size(), 24u);
    EXPECT_DOUBLE_EQ(series.stepHours(), 1.0);
    EXPECT_DOUBLE_EQ(series.durationHours(), 24.0);
    for (std::size_t s = 0; s < series.size(); ++s)
        EXPECT_DOUBLE_EQ(series.gramsAt(s), 300.0);
    EXPECT_DOUBLE_EQ(series.average().value(), 300.0);
}

TEST(IntensitySeries, AtWrapsCyclically)
{
    const auto series = IntensitySeries::fromSamples({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(series.gramsAt(0), 1.0);
    EXPECT_DOUBLE_EQ(series.gramsAt(3), 1.0);
    EXPECT_DOUBLE_EQ(series.gramsAt(7), 2.0);
}

// ---------------------------------------------------------------------
// DiurnalProfile-view equivalence: the legacy 24-hour profiles are
// thin views over the series builders, bitwise.
// ---------------------------------------------------------------------

void
expectProfileMatchesSeries(const DiurnalProfile &profile,
                           const IntensitySeries &series)
{
    ASSERT_EQ(series.size(), DiurnalProfile::kHours);
    for (std::size_t h = 0; h < DiurnalProfile::kHours; ++h) {
        // Bitwise: the refactor moved the math, it must not have
        // changed a single ulp.
        EXPECT_EQ(profile.at(h).value(), series.gramsAt(h)) << h;
    }
    EXPECT_EQ(profile.dailyAverage().value(), series.average().value());
    const auto hours = profile.hoursByIntensity();
    const auto samples = series.samplesByIntensity();
    for (std::size_t i = 0; i < hours.size(); ++i)
        EXPECT_EQ(hours[i], samples[i]) << i;
}

TEST(IntensitySeries, FlatProfileIsABitwiseView)
{
    expectProfileMatchesSeries(
        DiurnalProfile::flat(gramsPerKilowattHour(583.0)),
        IntensitySeries::flat(gramsPerKilowattHour(583.0)));
}

TEST(IntensitySeries, SolarProfileIsABitwiseView)
{
    expectProfileMatchesSeries(
        DiurnalProfile::solarGrid(gramsPerKilowattHour(583.0), 0.25),
        IntensitySeries::solarDay(gramsPerKilowattHour(583.0), 0.25));
}

TEST(IntensitySeries, WindProfileIsABitwiseView)
{
    expectProfileMatchesSeries(
        DiurnalProfile::windGrid(gramsPerKilowattHour(400.0), 0.3),
        IntensitySeries::windDay(gramsPerKilowattHour(400.0), 0.3));
}

TEST(IntensitySeries, ProfileExposesItsSeries)
{
    const auto profile =
        DiurnalProfile::solarGrid(gramsPerKilowattHour(583.0), 0.25);
    EXPECT_EQ(profile.series().size(), DiurnalProfile::kHours);
    EXPECT_EQ(profile.series().gramsAt(12), profile.at(12).value());
}

// ---------------------------------------------------------------------
// Seasonal composition
// ---------------------------------------------------------------------

TEST(IntensitySeries, SeasonalTilesTheDay)
{
    const auto day =
        IntensitySeries::solarDay(gramsPerKilowattHour(583.0), 0.25);
    const auto year = IntensitySeries::seasonal(day, 365, 0.15, 0.0);
    EXPECT_EQ(year.size(), 8760u);
    EXPECT_DOUBLE_EQ(year.durationHours(), 8760.0);
    // Day 0 is the peak (dirtiest): scaled by 1 + amplitude.
    EXPECT_DOUBLE_EQ(year.gramsAt(12), day.gramsAt(12) * 1.15);
    // Mid-year trough scaled close to 1 - amplitude.
    const double mid = year.gramsAt(182 * 24 + 12) / day.gramsAt(12);
    EXPECT_NEAR(mid, 0.85, 1e-3);
}

TEST(IntensitySeries, ZeroAmplitudeSeasonalRepeatsExactly)
{
    const auto day =
        IntensitySeries::windDay(gramsPerKilowattHour(400.0), 0.3);
    const auto tiled = IntensitySeries::seasonal(day, 3, 0.0);
    ASSERT_EQ(tiled.size(), 72u);
    for (std::size_t s = 0; s < tiled.size(); ++s)
        EXPECT_EQ(tiled.gramsAt(s), day.gramsAt(s % 24)) << s;
}

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

TEST(IntensitySeries, ExplicitJsonRoundTripsBitExactly)
{
    const auto original =
        IntensitySeries::solarDay(gramsPerKilowattHour(583.0), 0.25);
    // dump -> parse -> rebuild: %.17g doubles survive bit-exactly.
    const auto reparsed = intensitySeriesFromJson(
        config::JsonValue::parse(toJson(original).dump()));
    ASSERT_EQ(reparsed.size(), original.size());
    EXPECT_EQ(reparsed.stepHours(), original.stepHours());
    EXPECT_EQ(reparsed.name(), original.name());
    for (std::size_t s = 0; s < original.size(); ++s)
        EXPECT_EQ(reparsed.gramsAt(s), original.gramsAt(s)) << s;
}

TEST(IntensitySeries, GeneratedJsonMatchesBuilders)
{
    const auto from_json =
        intensitySeriesFromJson(config::JsonValue::parse(R"({
            "name": "tw", "profile": "solar", "region": "Taiwan",
            "share": 0.25, "days": 365,
            "seasonal_amplitude": 0.15})"));
    const auto built = IntensitySeries::seasonal(
        IntensitySeries::solarDay(
            regionIntensity(regionByName("Taiwan")), 0.25),
        365, 0.15, 0.0);
    ASSERT_EQ(from_json.size(), built.size());
    EXPECT_EQ(from_json.name(), "tw");
    for (std::size_t s = 0; s < built.size(); ++s)
        EXPECT_EQ(from_json.gramsAt(s), built.gramsAt(s)) << s;
}

TEST(IntensitySeries, FlatGeneratedFormUsesBaseIntensity)
{
    const auto series =
        intensitySeriesFromJson(config::JsonValue::parse(
            R"({"profile": "flat", "base_g_per_kwh": 123.0})"));
    EXPECT_EQ(series.size(), 24u);
    EXPECT_DOUBLE_EQ(series.gramsAt(5), 123.0);
}

// ---------------------------------------------------------------------
// Malformed input
// ---------------------------------------------------------------------

class IntensitySeriesDeathTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    }

    static void
    parseText(const std::string &text)
    {
        intensitySeriesFromJson(config::JsonValue::parse(text));
    }
};

TEST_F(IntensitySeriesDeathTest, EmptySeriesIsFatal)
{
    EXPECT_EXIT(parseText(R"({"samples_g_per_kwh": []})"),
                ::testing::ExitedWithCode(1), "at least one sample");
}

TEST_F(IntensitySeriesDeathTest, NegativeSampleIsFatal)
{
    EXPECT_EXIT(parseText(R"({"samples_g_per_kwh": [300, -1]})"),
                ::testing::ExitedWithCode(1), "sample 1");
}

TEST_F(IntensitySeriesDeathTest, NonPositiveStepIsFatal)
{
    EXPECT_EXIT(
        parseText(R"({"samples_g_per_kwh": [300], "step_hours": 0})"),
        ::testing::ExitedWithCode(1), "step must be positive");
}

TEST_F(IntensitySeriesDeathTest, MissingProfileAndSamplesIsFatal)
{
    EXPECT_EXIT(parseText(R"({"name": "empty"})"),
                ::testing::ExitedWithCode(1), "samples_g_per_kwh");
}

TEST_F(IntensitySeriesDeathTest, UnknownProfileIsFatal)
{
    EXPECT_EXIT(parseText(R"({"profile": "tidal",
                              "base_g_per_kwh": 300})"),
                ::testing::ExitedWithCode(1), "unknown intensity");
}

TEST_F(IntensitySeriesDeathTest, GeneratedFormNeedsABaseGrid)
{
    EXPECT_EXIT(parseText(R"({"profile": "solar", "share": 0.2})"),
                ::testing::ExitedWithCode(1), "base grid");
}

TEST_F(IntensitySeriesDeathTest, FractionalDaysAreFatal)
{
    EXPECT_EXIT(parseText(R"({"profile": "flat",
                              "base_g_per_kwh": 300,
                              "days": 1.5})"),
                ::testing::ExitedWithCode(1), "positive");
}

TEST_F(IntensitySeriesDeathTest, SeasonalAmplitudeOutOfRangeIsFatal)
{
    EXPECT_EXIT(
        IntensitySeries::seasonal(
            IntensitySeries::flat(gramsPerKilowattHour(300.0)), 10,
            1.0),
        ::testing::ExitedWithCode(1), "amplitude");
}

TEST_F(IntensitySeriesDeathTest, OutOfRangeShareIsFatal)
{
    EXPECT_EXIT(IntensitySeries::solarDay(gramsPerKilowattHour(583.0),
                                          0.6),
                ::testing::ExitedWithCode(1), "renewable share");
    EXPECT_EXIT(IntensitySeries::windDay(gramsPerKilowattHour(583.0),
                                         -0.1),
                ::testing::ExitedWithCode(1), "renewable share");
}

} // namespace
} // namespace act::data
