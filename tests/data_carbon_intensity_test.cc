/** @file Tests for Tables 5/6 data and energy-mix helpers. */

#include <gtest/gtest.h>

#include "data/carbon_intensity_db.h"

namespace act::data {
namespace {

using util::CarbonIntensity;

TEST(Table5, ExactSourceIntensities)
{
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Coal).value(), 820.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Gas).value(), 490.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Biomass).value(),
                     230.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Solar).value(), 41.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Geothermal).value(),
                     38.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Hydropower).value(),
                     24.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Nuclear).value(),
                     12.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::Wind).value(), 11.0);
    EXPECT_DOUBLE_EQ(sourceIntensity(EnergySource::CarbonFree).value(),
                     0.0);
}

TEST(Table6, ExactRegionIntensities)
{
    EXPECT_DOUBLE_EQ(regionIntensity(Region::World).value(), 301.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::India).value(), 725.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Australia).value(), 597.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Taiwan).value(), 583.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Singapore).value(), 495.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::UnitedStates).value(),
                     380.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Europe).value(), 295.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Brazil).value(), 82.0);
    EXPECT_DOUBLE_EQ(regionIntensity(Region::Iceland).value(), 28.0);
}

TEST(Table5, TableOrderAndSize)
{
    const auto table = energySourceTable();
    ASSERT_EQ(table.size(), 9u);
    EXPECT_EQ(table.front().name, "coal");
    // Renewable sources report longer energy-payback than fossil.
    EXPECT_GT(table[3].payback_months, table[0].payback_months);
}

TEST(Table6, DominantSources)
{
    for (const auto &record : regionTable()) {
        EXPECT_FALSE(record.name.empty());
        EXPECT_FALSE(record.dominant_source.empty());
    }
}

TEST(Lookup, ByNameIsCaseInsensitive)
{
    EXPECT_EQ(sourceByName("Coal"), EnergySource::Coal);
    EXPECT_EQ(sourceByName("WIND"), EnergySource::Wind);
    EXPECT_EQ(regionByName("taiwan"), Region::Taiwan);
    EXPECT_EQ(regionByName("United States"), Region::UnitedStates);
}

TEST(Lookup, UnknownNamesAreFatal)
{
    EXPECT_EXIT(sourceByName("plutonium"), ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(regionByName("atlantis"), ::testing::ExitedWithCode(1),
                "");
}

TEST(Mix, WeightedAverage)
{
    const MixComponent mix[] = {{EnergySource::Coal, 0.5},
                                {EnergySource::Wind, 0.5}};
    EXPECT_DOUBLE_EQ(mixIntensity(mix).value(), (820.0 + 11.0) / 2.0);
}

TEST(Mix, RejectsBadShares)
{
    const MixComponent under[] = {{EnergySource::Coal, 0.5}};
    EXPECT_EXIT(mixIntensity(under), ::testing::ExitedWithCode(1), "");
    const MixComponent negative[] = {{EnergySource::Coal, -0.5},
                                     {EnergySource::Wind, 1.5}};
    EXPECT_EXIT(mixIntensity(negative), ::testing::ExitedWithCode(1), "");
}

TEST(Blend, RenewableBlendInterpolates)
{
    const CarbonIntensity taiwan = regionIntensity(Region::Taiwan);
    EXPECT_DOUBLE_EQ(renewableBlend(taiwan, 0.0).value(), 583.0);
    EXPECT_DOUBLE_EQ(renewableBlend(taiwan, 1.0).value(), 41.0);
    EXPECT_DOUBLE_EQ(renewableBlend(taiwan, 0.25).value(),
                     0.75 * 583.0 + 0.25 * 41.0);
}

TEST(Blend, RejectsOutOfRangeShare)
{
    EXPECT_EXIT(renewableBlend(regionIntensity(Region::Taiwan), 1.5),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(renewableBlend(regionIntensity(Region::Taiwan), -0.1),
                ::testing::ExitedWithCode(1), "");
}

TEST(Defaults, PaperBaselines)
{
    // Paper default fab: Taiwan grid + 25% solar procurement.
    EXPECT_NEAR(defaultFabIntensity().value(), 447.5, 1e-9);
    // Paper Section 6 use-phase default: 300 g/kWh US average.
    EXPECT_DOUBLE_EQ(defaultUseIntensity().value(), 300.0);
}

/** Property: blending never leaves the [renewable, base] interval. */
class BlendRange : public ::testing::TestWithParam<double> {};

TEST_P(BlendRange, StaysInInterval)
{
    const double share = GetParam();
    const CarbonIntensity blended =
        renewableBlend(regionIntensity(Region::India), share);
    EXPECT_GE(blended.value(), 41.0);
    EXPECT_LE(blended.value(), 725.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlendRange,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.9,
                                           1.0));

} // namespace
} // namespace act::data
