/** @file Tests for validated ACT_* environment-variable parsing. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "util/env.h"

namespace act::util {
namespace {

constexpr const char *kVar = "ACT_ENV_TEST_VARIABLE";

class EnvTest : public ::testing::Test
{
  protected:
    void SetUp() override { ::unsetenv(kVar); }
    void TearDown() override { ::unsetenv(kVar); }

    void set(const char *value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvTest, UnsetYieldsFallback)
{
    EXPECT_EQ(envInt(kVar, 7, 0, 100), 7);
    EXPECT_TRUE(envBool(kVar, true));
    EXPECT_FALSE(envBool(kVar, false));
    EXPECT_EQ(envString(kVar, "fallback"), "fallback");
}

TEST_F(EnvTest, ParsesValidIntegers)
{
    set("42");
    EXPECT_EQ(envInt(kVar, 0, 0, 100), 42);
    set("0");
    EXPECT_EQ(envInt(kVar, 5, 0, 100), 0);
    set("-3");
    EXPECT_EQ(envInt(kVar, 0, -10, 10), -3);
}

TEST_F(EnvTest, GarbageIntegerWarnsAndFallsBack)
{
    set("banana");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
    set("12abc");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
    set("");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
}

TEST_F(EnvTest, OutOfRangeIntegerFallsBack)
{
    set("101");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
    set("-1");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
    // Far beyond int64 range must not silently wrap.
    set("99999999999999999999999999");
    EXPECT_EQ(envInt(kVar, 11, 0, 100), 11);
}

TEST_F(EnvTest, ParsesBooleans)
{
    for (const char *truthy : {"1", "true", "on"}) {
        set(truthy);
        EXPECT_TRUE(envBool(kVar, false)) << truthy;
    }
    for (const char *falsy : {"0", "false", "off"}) {
        set(falsy);
        EXPECT_FALSE(envBool(kVar, true)) << falsy;
    }
}

TEST_F(EnvTest, GarbageBooleanWarnsAndFallsBack)
{
    set("yes-please");
    EXPECT_TRUE(envBool(kVar, true));
    EXPECT_FALSE(envBool(kVar, false));
}

TEST_F(EnvTest, StringValueAndEmptyFallback)
{
    set("/some/path.json");
    EXPECT_EQ(envString(kVar, ""), "/some/path.json");
    set("");
    EXPECT_EQ(envString(kVar, "fallback"), "fallback");
}

} // namespace
} // namespace act::util
