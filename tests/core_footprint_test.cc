/** @file Tests for Eq. 1/2: operational footprint and CF combination. */

#include <gtest/gtest.h>

#include "core/footprint.h"
#include "core/operational.h"

namespace act::core {
namespace {

using util::asGrams;
using util::grams;
using util::kilowattHours;
using util::milliseconds;
using util::watts;
using util::years;

TEST(Operational, Eq2Basic)
{
    const OperationalParams params =
        OperationalParams::withIntensity(util::gramsPerKilowattHour(
            300.0));
    EXPECT_DOUBLE_EQ(
        asGrams(operationalFootprint(kilowattHours(2.0), params)), 600.0);
}

TEST(Operational, Table4CpuInference)
{
    // 6.6 W x 6 ms at 300 g/kWh = 3.3 ug CO2 (Table 4, CPU row).
    const OperationalParams params;
    const util::Mass opcf =
        operationalFootprint(watts(6.6), milliseconds(6.0), params);
    EXPECT_NEAR(util::asMicrograms(opcf), 3.3, 0.01);
}

TEST(Operational, UtilizationEffectivenessScalesGridEnergy)
{
    OperationalParams pue;
    pue.utilization_effectiveness = 1.5;  // data-center PUE
    const OperationalParams ideal;
    EXPECT_DOUBLE_EQ(
        asGrams(operationalFootprint(kilowattHours(1.0), pue)),
        1.5 * asGrams(operationalFootprint(kilowattHours(1.0), ideal)));
}

TEST(Operational, SubUnityEffectivenessIsFatal)
{
    OperationalParams params;
    params.utilization_effectiveness = 0.8;
    EXPECT_EXIT(operationalFootprint(kilowattHours(1.0), params),
                ::testing::ExitedWithCode(1), "");
}

TEST(Operational, RegionAndSourceFactories)
{
    EXPECT_DOUBLE_EQ(
        OperationalParams::forRegion(data::Region::Iceland).ci_use.value(),
        28.0);
    EXPECT_DOUBLE_EQ(OperationalParams::forSource(
                         data::EnergySource::CarbonFree)
                         .ci_use.value(),
                     0.0);
}

TEST(Footprint, Eq1AmortizesEmbodiedByLifetimeShare)
{
    // T = 1 year of a 4-year lifetime charges 25% of the embodied CF.
    const CarbonFootprint cf = combineFootprint(
        grams(100.0), grams(400.0), years(1.0), years(4.0));
    EXPECT_DOUBLE_EQ(asGrams(cf.operational), 100.0);
    EXPECT_DOUBLE_EQ(asGrams(cf.embodied_allocated), 100.0);
    EXPECT_DOUBLE_EQ(asGrams(cf.total()), 200.0);
    EXPECT_DOUBLE_EQ(cf.embodiedShare(), 0.5);
}

TEST(Footprint, WholeLifetime)
{
    const CarbonFootprint cf =
        lifetimeFootprint(grams(10.0), grams(30.0));
    EXPECT_DOUBLE_EQ(asGrams(cf.total()), 40.0);
    EXPECT_DOUBLE_EQ(cf.embodiedShare(), 0.75);
}

TEST(Footprint, ZeroTotalHasZeroShare)
{
    const CarbonFootprint cf = lifetimeFootprint(grams(0.0), grams(0.0));
    EXPECT_DOUBLE_EQ(cf.embodiedShare(), 0.0);
}

TEST(Footprint, InvalidTimesAreFatal)
{
    EXPECT_EXIT(combineFootprint(grams(1.0), grams(1.0), years(1.0),
                                 years(0.0)),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(combineFootprint(grams(1.0), grams(1.0), years(-1.0),
                                 years(3.0)),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(combineFootprint(grams(1.0), grams(1.0), years(4.0),
                                 years(3.0)),
                ::testing::ExitedWithCode(1), "");
}

/** Property: CF is linear in T for fixed OPCF rate and ECF. */
class FootprintLinearity : public ::testing::TestWithParam<double> {};

TEST_P(FootprintLinearity, EmbodiedShareGrowsWithT)
{
    const double t_years = GetParam();
    const CarbonFootprint cf = combineFootprint(
        grams(0.0), grams(1000.0), years(t_years), years(10.0));
    EXPECT_NEAR(asGrams(cf.embodied_allocated), 100.0 * t_years, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FootprintLinearity,
                         ::testing::Values(0.0, 0.5, 1.0, 2.5, 5.0,
                                           10.0));

} // namespace
} // namespace act::core
