/**
 * @file
 * Tests for CPA-cache persistence: a saved cache file reloads to the
 * exact values the model would recompute, and stale or corrupt files
 * degrade to a warned cold start, never to wrong numbers.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "config/json.h"
#include "core/cpa_cache.h"
#include "core/embodied.h"
#include "core/model_config.h"
#include "data/fab_db.h"

namespace act::core {
namespace {

class CpaCachePersistTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "act_cpa_cache_test.json";
        std::remove(path_.c_str());
        CpaCache::instance().setEnabled(true);
        CpaCache::instance().clear();
        CpaCache::instance().resetStats();
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
        CpaCache::instance().setEnabled(true);
        CpaCache::instance().clear();
    }

    /** Warm the cache over a spread of (fab, node) points. */
    std::size_t
    populate()
    {
        std::size_t entries = 0;
        for (const double abatement : {0.90, 0.95, 0.97}) {
            FabParams fab;
            fab.abatement = abatement;
            for (double nm = data::FabDatabase::kMinNode;
                 nm <= data::FabDatabase::kMaxNode; nm += 1.0) {
                carbonPerArea(fab, nm);
                ++entries;
            }
        }
        for (const auto &record :
             data::FabDatabase::instance().records()) {
            carbonPerAreaNamed(FabParams{}, record.name);
            ++entries;
        }
        return entries;
    }

    std::string path_;
};

TEST_F(CpaCachePersistTest, SaveLoadRoundTripMatchesRecomputation)
{
    CpaCache &cache = CpaCache::instance();
    const std::size_t entries = populate();
    EXPECT_EQ(cache.size(), entries);
    cache.saveToFile(path_);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.loadFromFile(path_), entries);
    EXPECT_EQ(cache.size(), entries);

    // Every loaded entry must be a hit, and bit-equal to what the
    // uncached model computes.
    cache.resetStats();
    for (const double abatement : {0.90, 0.95, 0.97}) {
        FabParams fab;
        fab.abatement = abatement;
        for (double nm = data::FabDatabase::kMinNode;
             nm <= data::FabDatabase::kMaxNode; nm += 1.0) {
            const double warm = carbonPerArea(fab, nm).value();
            cache.setEnabled(false);
            const double fresh = carbonPerArea(fab, nm).value();
            cache.setEnabled(true);
            EXPECT_EQ(warm, fresh)
                << "nm=" << nm << " abatement=" << abatement;
        }
    }
    for (const auto &record :
         data::FabDatabase::instance().records()) {
        const double warm =
            carbonPerAreaNamed(FabParams{}, record.name).value();
        cache.setEnabled(false);
        const double fresh =
            carbonPerAreaNamed(FabParams{}, record.name).value();
        cache.setEnabled(true);
        EXPECT_EQ(warm, fresh) << record.name;
    }
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_GT(cache.stats().hits, 0u);
}

TEST_F(CpaCachePersistTest, SavedFileIsDeterministic)
{
    populate();
    CpaCache::instance().saveToFile(path_);
    std::ifstream first_in(path_);
    std::string first((std::istreambuf_iterator<char>(first_in)),
                      std::istreambuf_iterator<char>());

    // Reload into a cleared cache (different insertion history) and
    // save again: shards of one sweep sharing a file must converge on
    // identical bytes for identical entries.
    CpaCache::instance().clear();
    CpaCache::instance().loadFromFile(path_);
    populate();
    CpaCache::instance().saveToFile(path_);
    std::ifstream second_in(path_);
    std::string second((std::istreambuf_iterator<char>(second_in)),
                       std::istreambuf_iterator<char>());
    EXPECT_EQ(first, second);
}

TEST_F(CpaCachePersistTest, StaleFingerprintIsIgnored)
{
    CpaCache &cache = CpaCache::instance();
    populate();
    cache.saveToFile(path_);

    config::JsonValue doc = config::loadJsonFile(path_);
    ASSERT_EQ(doc.at("fingerprint").asString(),
              modelConfigFingerprint());
    doc.asObject()["fingerprint"] =
        config::JsonValue("0000000000000000");
    config::saveJsonFile(path_, doc);

    cache.clear();
    EXPECT_EQ(cache.loadFromFile(path_), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CpaCachePersistTest, CorruptFileWarnsAndStartsCold)
{
    {
        std::ofstream out(path_);
        out << "{\"format\": \"act.cpa_cache.v1\", truncated";
    }
    CpaCache &cache = CpaCache::instance();
    EXPECT_EQ(cache.loadFromFile(path_), 0u);
    EXPECT_EQ(cache.size(), 0u);

    // Well-formed JSON with malformed entries is equally cold.
    {
        std::ofstream out(path_);
        out << "{\"format\": \"act.cpa_cache.v1\", \"fingerprint\": \""
            << modelConfigFingerprint()
            << "\", \"numeric\": [{\"ci_fab\": \"xyz\"}], "
               "\"named\": []}";
    }
    EXPECT_EQ(cache.loadFromFile(path_), 0u);
}

TEST_F(CpaCachePersistTest, MissingFileIsSilentColdStart)
{
    EXPECT_EQ(CpaCache::instance().loadFromFile(
                  path_ + ".does-not-exist"),
              0u);
}

TEST_F(CpaCachePersistTest, WrongFormatTagIsIgnored)
{
    {
        std::ofstream out(path_);
        out << "{\"format\": \"act.other.v9\", \"numeric\": [], "
               "\"named\": []}";
    }
    EXPECT_EQ(CpaCache::instance().loadFromFile(path_), 0u);
}

} // namespace
} // namespace act::core
