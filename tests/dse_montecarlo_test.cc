/** @file Tests for Monte Carlo uncertainty propagation. */

#include <cmath>

#include <gtest/gtest.h>

#include "dse/montecarlo.h"

namespace act::dse {
namespace {

TEST(MonteCarlo, UniformSumMatchesAnalyticMoments)
{
    // Sum of two independent U[0, 1]: mean 1, variance 1/6.
    const std::vector<UncertainParameter> parameters = {
        {"a", Distribution::Uniform, 0.5, 0.0, 1.0},
        {"b", Distribution::Uniform, 0.5, 0.0, 1.0},
    };
    const auto result = monteCarlo(
        parameters,
        [](const std::vector<double> &v) { return v[0] + v[1]; },
        50'000);
    EXPECT_NEAR(result.mean, 1.0, 0.01);
    EXPECT_NEAR(result.stddev, std::sqrt(1.0 / 6.0), 0.01);
    EXPECT_NEAR(result.p50, 1.0, 0.02);
    EXPECT_GE(result.min, 0.0);
    EXPECT_LE(result.max, 2.0);
}

TEST(MonteCarlo, TriangularModeShiftsTheMean)
{
    // Triangular(0, 1) with mode 0.9 has mean (0 + 1 + 0.9)/3.
    const std::vector<UncertainParameter> parameters = {
        {"t", Distribution::Triangular, 0.9, 0.0, 1.0},
    };
    const auto result = monteCarlo(
        parameters,
        [](const std::vector<double> &v) { return v[0]; }, 50'000);
    EXPECT_NEAR(result.mean, 1.9 / 3.0, 0.01);
}

TEST(MonteCarlo, PercentilesAreOrdered)
{
    const std::vector<UncertainParameter> parameters = {
        {"x", Distribution::Uniform, 5.0, 1.0, 9.0},
    };
    const auto result = monteCarlo(
        parameters,
        [](const std::vector<double> &v) { return v[0] * v[0]; },
        10'000);
    EXPECT_LE(result.min, result.p5);
    EXPECT_LE(result.p5, result.p50);
    EXPECT_LE(result.p50, result.p95);
    EXPECT_LE(result.p95, result.max);
}

TEST(MonteCarlo, DeterministicForFixedSeed)
{
    const std::vector<UncertainParameter> parameters = {
        {"x", Distribution::Uniform, 0.5, 0.0, 1.0},
    };
    const auto model = [](const std::vector<double> &v) {
        return v[0];
    };
    const auto a = monteCarlo(parameters, model, 1'000, 11);
    const auto b = monteCarlo(parameters, model, 1'000, 11);
    EXPECT_DOUBLE_EQ(a.mean, b.mean);
    EXPECT_DOUBLE_EQ(a.p95, b.p95);
    const auto c = monteCarlo(parameters, model, 1'000, 12);
    EXPECT_NE(a.mean, c.mean);
}

TEST(MonteCarlo, CpaUncertaintyBandCoversTheDeterministicValue)
{
    // Eq. 5 at 7 nm with the Table 1 ranges: the deterministic default
    // (~1663 g/cm2) must sit inside the sampled [p5, p95] band.
    const std::vector<UncertainParameter> parameters = {
        {"ci_fab", Distribution::Triangular, 447.5, 41.0, 583.0},
        {"epa", Distribution::Triangular, 1.52, 1.52 * 0.8, 1.52 * 1.2},
        {"gpa", Distribution::Uniform, 275.0, 200.0, 350.0},
        {"mpa", Distribution::Uniform, 500.0, 400.0, 600.0},
        {"yield", Distribution::Triangular, 0.875, 0.6, 0.95},
    };
    const auto result = monteCarlo(
        parameters, [](const std::vector<double> &v) {
            return (v[0] * v[1] + v[2] + v[3]) / v[4];
        });
    EXPECT_LT(result.p5, 1663.0);
    EXPECT_GT(result.p95, 1663.0);
    EXPECT_GT(result.stddev, 100.0);  // the band is wide
}

TEST(MonteCarlo, InvalidInputsAreFatal)
{
    const auto model = [](const std::vector<double> &v) {
        return v[0];
    };
    EXPECT_EXIT(monteCarlo({}, model), ::testing::ExitedWithCode(1),
                "");
    const std::vector<UncertainParameter> inverted = {
        {"x", Distribution::Uniform, 0.5, 1.0, 0.0}};
    EXPECT_EXIT(monteCarlo(inverted, model),
                ::testing::ExitedWithCode(1), "");
    const std::vector<UncertainParameter> off_baseline = {
        {"x", Distribution::Uniform, 2.0, 0.0, 1.0}};
    EXPECT_EXIT(monteCarlo(off_baseline, model),
                ::testing::ExitedWithCode(1), "");
    const std::vector<UncertainParameter> ok = {
        {"x", Distribution::Uniform, 0.5, 0.0, 1.0}};
    EXPECT_EXIT(monteCarlo(ok, model, 10),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace act::dse
