/** @file Unit tests for interpolation helpers. */

#include <gtest/gtest.h>

#include "util/interp.h"

namespace act::util {
namespace {

TEST(Interp, ClampAndLerp)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(11.0, 0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
}

TEST(PiecewiseLinearTest, HitsBreakpointsExactly)
{
    const PiecewiseLinear curve({{1.0, 10.0}, {2.0, 20.0}, {4.0, 0.0}});
    EXPECT_DOUBLE_EQ(curve.at(1.0), 10.0);
    EXPECT_DOUBLE_EQ(curve.at(2.0), 20.0);
    EXPECT_DOUBLE_EQ(curve.at(4.0), 0.0);
}

TEST(PiecewiseLinearTest, InterpolatesLinearly)
{
    const PiecewiseLinear curve({{0.0, 0.0}, {10.0, 100.0}});
    EXPECT_DOUBLE_EQ(curve.at(2.5), 25.0);
    EXPECT_DOUBLE_EQ(curve.at(7.5), 75.0);
}

TEST(PiecewiseLinearTest, ClampsOutOfRangeByDefault)
{
    const PiecewiseLinear curve({{1.0, 5.0}, {2.0, 9.0}});
    EXPECT_DOUBLE_EQ(curve.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(curve.at(3.0), 9.0);
}

TEST(PiecewiseLinearTest, ExtrapolatesWhenConfigured)
{
    const PiecewiseLinear curve({{1.0, 5.0}, {2.0, 9.0}}, false,
                                PiecewiseLinear::OutOfRange::Extrapolate);
    EXPECT_DOUBLE_EQ(curve.at(0.0), 1.0);
    EXPECT_DOUBLE_EQ(curve.at(3.0), 13.0);
}

TEST(PiecewiseLinearTest, LogXInterpolation)
{
    // In log-x, the midpoint of [1, 4] is 2.
    const PiecewiseLinear curve({{1.0, 0.0}, {4.0, 10.0}}, true);
    EXPECT_NEAR(curve.at(2.0), 5.0, 1e-12);
}

TEST(PiecewiseLinearTest, SinglePointIsConstant)
{
    const PiecewiseLinear curve({{3.0, 7.0}});
    EXPECT_DOUBLE_EQ(curve.at(1.0), 7.0);
    EXPECT_DOUBLE_EQ(curve.at(100.0), 7.0);
}

TEST(PiecewiseLinearTest, RejectsBadBreakpoints)
{
    EXPECT_EXIT(PiecewiseLinear({}), ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(PiecewiseLinear({{2.0, 1.0}, {2.0, 2.0}}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(PiecewiseLinear({{3.0, 1.0}, {2.0, 2.0}}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(PiecewiseLinear({{0.0, 1.0}, {2.0, 2.0}}, true),
                ::testing::ExitedWithCode(1), "");
}

/**
 * Property: for a monotone breakpoint table, interpolated values stay
 * within the envelope of neighboring breakpoints, in both linear and
 * log-x modes.
 */
class InterpBounds : public ::testing::TestWithParam<bool> {};

TEST_P(InterpBounds, StaysWithinEnvelope)
{
    const bool log_x = GetParam();
    const PiecewiseLinear curve(
        {{3.0, 2.75}, {5.0, 2.75}, {7.0, 1.52}, {10.0, 1.475},
         {14.0, 1.2}, {20.0, 1.2}, {28.0, 0.9}},
        log_x);
    for (double x = 3.0; x <= 28.0; x += 0.25) {
        const double y = curve.at(x);
        EXPECT_GE(y, 0.9);
        EXPECT_LE(y, 2.75);
    }
    // Monotone non-increasing table stays monotone non-increasing.
    double prev = curve.at(3.0);
    for (double x = 3.25; x <= 28.0; x += 0.25) {
        const double y = curve.at(x);
        EXPECT_LE(y, prev + 1e-12);
        prev = y;
    }
}

INSTANTIATE_TEST_SUITE_P(LinearAndLog, InterpBounds, ::testing::Bool());

} // namespace
} // namespace act::util
