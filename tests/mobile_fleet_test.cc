/** @file Integration tests for the Fig. 14 lifetime-extension study. */

#include <gtest/gtest.h>

#include "mobile/fleet.h"

namespace act::mobile {
namespace {

const core::FabParams kFab;

TEST(Figure14, AnnualEfficiencyImprovementIs21Percent)
{
    // Fig. 14 (left): 1.21x mean annual energy-efficiency improvement.
    EXPECT_NEAR(annualEfficiencyImprovement(), 1.21, 0.02);
}

TEST(Figure14, EveryFamilyImprovesYearOverYear)
{
    for (data::SocFamily family : {data::SocFamily::Exynos,
                                   data::SocFamily::Snapdragon,
                                   data::SocFamily::Kirin}) {
        EXPECT_GT(familyEfficiencyGrowth(family), 1.0);
        EXPECT_LT(familyEfficiencyGrowth(family), 1.5);
    }
}

TEST(Figure14, OptimalLifetimeIsAboutFiveYears)
{
    const FleetParams params = defaultFleetParams(kFab);
    const auto sweep = lifetimeSweep(params);
    ASSERT_EQ(sweep.size(), 10u);
    EXPECT_DOUBLE_EQ(sweep[optimalLifetimeIndex(sweep)].lifetime_years,
                     5.0);
}

TEST(Figure14, ImprovementOverCurrentLifetimes)
{
    // "Compared to current lifetimes of 2-3 years ... reduce overall
    // carbon footprint by up to 1.26x."
    const FleetParams params = defaultFleetParams(kFab);
    const auto sweep = lifetimeSweep(params);
    const double at2 = util::asKilograms(sweep[1].total());
    const double at3 = util::asKilograms(sweep[2].total());
    const double best = util::asKilograms(
        sweep[optimalLifetimeIndex(sweep)].total());
    const double improvement = std::sqrt(at2 * at3) / best;
    EXPECT_GT(improvement, 1.15);
    EXPECT_LT(improvement, 1.35);
}

TEST(Figure14, EmbodiedFallsOperationalRisesWithLifetime)
{
    const FleetParams params = defaultFleetParams(kFab);
    const auto sweep = lifetimeSweep(params);
    for (std::size_t i = 1; i < sweep.size(); ++i) {
        EXPECT_LT(util::asGrams(sweep[i].embodied),
                  util::asGrams(sweep[i - 1].embodied));
        EXPECT_GT(util::asGrams(sweep[i].operational),
                  util::asGrams(sweep[i - 1].operational));
    }
}

TEST(Figure14, FractionalLifetimesInterpolate)
{
    const FleetParams params = defaultFleetParams(kFab);
    const double at2 =
        util::asGrams(evaluateLifetime(params, 2.0).total());
    const double at25 =
        util::asGrams(evaluateLifetime(params, 2.5).total());
    const double at3 =
        util::asGrams(evaluateLifetime(params, 3.0).total());
    EXPECT_LT(at25, at2);
    EXPECT_GT(at25, at3);
}

TEST(Figure14, ParameterValidation)
{
    const FleetParams params = defaultFleetParams(kFab);
    EXPECT_EXIT(evaluateLifetime(params, 0.0),
                ::testing::ExitedWithCode(1), "");
    FleetParams no_growth = params;
    no_growth.annual_efficiency_improvement = 1.0;
    EXPECT_EXIT(evaluateLifetime(no_growth, 2.0),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(optimalLifetimeIndex({}), ::testing::ExitedWithCode(1),
                "");
}

TEST(Figure14, GreenFabShiftsOptimumTowardsShorterLives)
{
    // With near-zero embodied cost, replacing hardware often becomes
    // cheap, so the optimal lifetime can only shrink.
    FleetParams green = defaultFleetParams(kFab);
    green.embodied_per_device = util::grams(50.0);
    const auto sweep = lifetimeSweep(green);
    const FleetParams base = defaultFleetParams(kFab);
    const auto base_sweep = lifetimeSweep(base);
    EXPECT_LE(sweep[optimalLifetimeIndex(sweep)].lifetime_years,
              base_sweep[optimalLifetimeIndex(base_sweep)]
                  .lifetime_years);
}

TEST(Figure14, HigherEmbodiedFavorsLongerLives)
{
    FleetParams heavy = defaultFleetParams(kFab);
    heavy.embodied_per_device = heavy.embodied_per_device * 4.0;
    const auto heavy_sweep = lifetimeSweep(heavy);
    const FleetParams base = defaultFleetParams(kFab);
    const auto base_sweep = lifetimeSweep(base);
    EXPECT_GE(heavy_sweep[optimalLifetimeIndex(heavy_sweep)]
                  .lifetime_years,
              base_sweep[optimalLifetimeIndex(base_sweep)]
                  .lifetime_years);
}

} // namespace
} // namespace act::mobile
